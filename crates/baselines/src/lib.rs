//! Baseline cluster schedulers for head-to-head comparison (§7.5, Fig 19).
//!
//! Faithful reimplementations of the *placement logic* of the four systems
//! the paper compares against, behind the common task-by-task
//! [`QueueScheduler`] interface (Fig 2a):
//!
//! - [`SparrowScheduler`]: batch sampling with power-of-two probes and no
//!   global state — effectively random assignment under load;
//! - [`SwarmKitScheduler`]: Docker SwarmKit's simple load spreading (fewest
//!   running tasks wins);
//! - [`KubernetesScheduler`]: feasibility filter plus least-requested /
//!   balanced-allocation scoring (no network awareness);
//! - [`MesosScheduler`]: offer-based placement — frameworks take the first
//!   fitting offer from a rotating subset of machines.
//!
//! None of them consider machine network bandwidth, which is exactly what
//! Fig 19 demonstrates: Firmament's network-aware policy beats them on
//! tail task response time by 3.4–6.2×.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use firmament_cluster::{ClusterState, MachineId, Task};
use firmament_flow::testgen::XorShift64;

/// A queue-based, task-by-task scheduler (Fig 2a).
pub trait QueueScheduler {
    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// Chooses a machine for one task, or `None` if no machine fits (the
    /// task waits in the queue and is retried after the next completion).
    fn place(&mut self, state: &ClusterState, task: &Task) -> Option<MachineId>;
}

fn machines_sorted(state: &ClusterState) -> Vec<MachineId> {
    let mut ids: Vec<MachineId> = state.machines.keys().copied().collect();
    ids.sort_unstable();
    ids
}

/// Sparrow \[28\]: distributed scheduling via batch sampling.
///
/// For each task the scheduler probes `probe_ratio` random machines and
/// places the task on the probed machine with the most free slots. With no
/// global view, placements are close to random under load — Fig 19a's
/// "Sparrow" line.
#[derive(Debug)]
pub struct SparrowScheduler {
    rng: XorShift64,
    /// Probes per task (Sparrow's d; the paper used d = 2).
    pub probe_ratio: usize,
}

impl SparrowScheduler {
    /// Creates a Sparrow scheduler with the canonical probe ratio of 2.
    pub fn new(seed: u64) -> Self {
        SparrowScheduler {
            rng: XorShift64::new(seed),
            probe_ratio: 2,
        }
    }
}

impl QueueScheduler for SparrowScheduler {
    fn name(&self) -> &'static str {
        "sparrow"
    }

    fn place(&mut self, state: &ClusterState, _task: &Task) -> Option<MachineId> {
        let ids = machines_sorted(state);
        if ids.is_empty() {
            return None;
        }
        let mut best: Option<(MachineId, u32)> = None;
        for _ in 0..self.probe_ratio.max(1) {
            let m = ids[self.rng.below(ids.len() as u64) as usize];
            let free = state.machines[&m].free_slots();
            if free > 0 && best.map(|(_, bf)| free > bf).unwrap_or(true) {
                best = Some((m, free));
            }
        }
        best.map(|(m, _)| m)
    }
}

/// Docker SwarmKit: spread tasks so every machine has as few as possible.
#[derive(Debug, Default)]
pub struct SwarmKitScheduler;

impl QueueScheduler for SwarmKitScheduler {
    fn name(&self) -> &'static str {
        "swarmkit"
    }

    fn place(&mut self, state: &ClusterState, _task: &Task) -> Option<MachineId> {
        machines_sorted(state)
            .into_iter()
            .filter(|m| state.machines[m].has_free_slot())
            .min_by_key(|m| (state.machines[m].running.len(), *m))
    }
}

/// Kubernetes: filter feasible machines, score by least-requested resources
/// and balanced allocation, place on the argmax.
#[derive(Debug, Default)]
pub struct KubernetesScheduler;

impl KubernetesScheduler {
    /// Scores a machine for a task: average of the least-requested score
    /// (free fraction) across CPU and RAM, in 0..=100, plus a balance bonus
    /// — the default kube-scheduler priorities (network bandwidth is *not*
    /// considered).
    fn score(state: &ClusterState, m: MachineId, task: &Task) -> i64 {
        let machine = &state.machines[&m];
        let mut used_cpu = 0u64;
        let mut used_ram = 0u64;
        for t in &machine.running {
            if let Some(t) = state.tasks.get(t) {
                used_cpu += t.request.cpu_millis;
                used_ram += t.request.ram_mb;
            }
        }
        used_cpu += task.request.cpu_millis;
        used_ram += task.request.ram_mb;
        let cap = machine.capacity;
        let cpu_free = 100i64 - (100 * used_cpu.min(cap.cpu_millis) / cap.cpu_millis.max(1)) as i64;
        let ram_free = 100i64 - (100 * used_ram.min(cap.ram_mb) / cap.ram_mb.max(1)) as i64;
        let skew = (cpu_free - ram_free).abs();
        (cpu_free + ram_free) / 2 + (100 - skew) / 10
    }
}

impl QueueScheduler for KubernetesScheduler {
    fn name(&self) -> &'static str {
        "kubernetes"
    }

    fn place(&mut self, state: &ClusterState, task: &Task) -> Option<MachineId> {
        machines_sorted(state)
            .into_iter()
            .filter(|m| state.machines[m].has_free_slot())
            .max_by_key(|&m| (Self::score(state, m, task), std::cmp::Reverse(m)))
    }
}

/// Mesos \[21\]: two-level scheduling via resource offers.
///
/// The master offers machines to frameworks in round-robin order; the
/// framework accepts the first offer with a free slot. Placement quality is
/// limited by the partial, rotating view — the framework never sees the
/// whole cluster at once.
#[derive(Debug)]
pub struct MesosScheduler {
    cursor: usize,
    /// How many machines are offered per scheduling attempt.
    pub offer_batch: usize,
}

impl MesosScheduler {
    /// Creates a Mesos-style scheduler offering 5 machines at a time.
    pub fn new() -> Self {
        MesosScheduler {
            cursor: 0,
            offer_batch: 5,
        }
    }
}

impl Default for MesosScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl QueueScheduler for MesosScheduler {
    fn name(&self) -> &'static str {
        "mesos"
    }

    fn place(&mut self, state: &ClusterState, _task: &Task) -> Option<MachineId> {
        let ids = machines_sorted(state);
        if ids.is_empty() {
            return None;
        }
        // Walk at most one full rotation, in offer batches.
        for step in 0..ids.len() {
            let m = ids[(self.cursor + step) % ids.len()];
            if state.machines[&m].has_free_slot() {
                // Advance the cursor past this offer batch.
                self.cursor = (self.cursor + step + self.offer_batch) % ids.len();
                return Some(m);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{ClusterEvent, Job, JobClass, ResourceVector, TopologySpec};

    fn cluster(machines: usize, slots: u32) -> ClusterState {
        ClusterState::with_topology(&TopologySpec {
            machines,
            machines_per_rack: 20,
            slots_per_machine: slots,
        })
    }

    fn task(id: u64) -> Task {
        let mut t = Task::new(id, 0, 0, 1_000_000);
        t.request = ResourceVector::new(1000, 2048, 500);
        t
    }

    fn run_and_place(
        state: &mut ClusterState,
        sched: &mut dyn QueueScheduler,
        t: Task,
    ) -> Option<MachineId> {
        let ev = ClusterEvent::JobSubmitted {
            job: Job::new(t.job, JobClass::Batch, 0, 0),
            tasks: vec![t.clone()],
        };
        state.apply(&ev);
        let m = sched.place(state, &t)?;
        state.apply(&ClusterEvent::TaskPlaced {
            task: t.id,
            machine: m,
            now: 0,
        });
        Some(m)
    }

    #[test]
    fn swarmkit_spreads_evenly() {
        let mut state = cluster(4, 4);
        let mut s = SwarmKitScheduler;
        for i in 0..8 {
            run_and_place(&mut state, &mut s, task(i)).unwrap();
        }
        for m in state.machines.values() {
            assert_eq!(m.running.len(), 2, "machine {} unbalanced", m.id);
        }
    }

    #[test]
    fn sparrow_places_when_capacity_exists() {
        let mut state = cluster(4, 2);
        let mut s = SparrowScheduler::new(42);
        let mut placed = 0;
        for i in 0..8 {
            if run_and_place(&mut state, &mut s, task(i)).is_some() {
                placed += 1;
            }
        }
        // Sampling may miss free machines, but most tasks place.
        assert!(placed >= 5, "placed only {placed}/8");
    }

    #[test]
    fn sparrow_fails_on_full_cluster() {
        let mut state = cluster(2, 1);
        let mut s = SparrowScheduler::new(7);
        // Fill both machines directly so every probe must fail.
        for (tid, m) in [(0u64, 0u64), (1, 1)] {
            let ev = ClusterEvent::JobSubmitted {
                job: Job::new(0, JobClass::Batch, 0, 0),
                tasks: vec![task(tid)],
            };
            state.apply(&ev);
            state.apply(&ClusterEvent::TaskPlaced {
                task: tid,
                machine: m,
                now: 0,
            });
        }
        let t = task(2);
        let ev = ClusterEvent::JobSubmitted {
            job: Job::new(0, JobClass::Batch, 0, 0),
            tasks: vec![t.clone()],
        };
        state.apply(&ev);
        assert_eq!(s.place(&state, &t), None);
    }

    #[test]
    fn kubernetes_prefers_empty_machines() {
        let mut state = cluster(2, 4);
        let mut k = KubernetesScheduler;
        // Load machine 0 manually.
        for i in 0..3 {
            let ev = ClusterEvent::JobSubmitted {
                job: Job::new(0, JobClass::Batch, 0, 0),
                tasks: vec![task(100 + i)],
            };
            state.apply(&ev);
            state.apply(&ClusterEvent::TaskPlaced {
                task: 100 + i,
                machine: 0,
                now: 0,
            });
        }
        let m = run_and_place(&mut state, &mut k, task(0)).unwrap();
        assert_eq!(m, 1, "least-requested must pick the empty machine");
    }

    #[test]
    fn mesos_rotates_offers() {
        let mut state = cluster(6, 10);
        let mut m = MesosScheduler::new();
        let first = run_and_place(&mut state, &mut m, task(0)).unwrap();
        let second = run_and_place(&mut state, &mut m, task(1)).unwrap();
        assert_ne!(
            first, second,
            "rotating offers must not pin everything to one machine"
        );
    }

    #[test]
    fn all_baselines_respect_slot_limits() {
        let mut scheds: Vec<Box<dyn QueueScheduler>> = vec![
            Box::new(SparrowScheduler::new(1)),
            Box::new(SwarmKitScheduler),
            Box::new(KubernetesScheduler),
            Box::new(MesosScheduler::new()),
        ];
        for s in &mut scheds {
            let mut state = cluster(3, 2);
            let mut placed = 0;
            for i in 0..10 {
                if run_and_place(&mut state, s.as_mut(), task(i)).is_some() {
                    placed += 1;
                }
            }
            assert!(placed <= 6, "{} overcommitted: {placed} > 6", s.name());
            for m in state.machines.values() {
                assert!(m.running.len() <= 2);
            }
        }
    }
}
