//! Criterion benchmarks for the end-to-end scheduler path: graph update,
//! solve, and placement extraction (§6.3).

use criterion::{criterion_group, criterion_main, Criterion};
use firmament_bench::warmed_cluster;
use firmament_core::{extract_placements, Firmament};
use firmament_mcmf::{relaxation, SolveOptions};
use firmament_policies::{LoadSpreadingPolicy, QuincyConfig, QuincyPolicy, SchedulingPolicy};

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling_round");
    group.bench_function("quincy_policy_200_machines", |b| {
        let (state, mut firmament, _) = warmed_cluster(
            200,
            12,
            0.8,
            5,
            Firmament::new(QuincyPolicy::new(QuincyConfig::default())),
        );
        b.iter(|| firmament.schedule(&state).unwrap())
    });
    group.bench_function("load_spreading_200_machines", |b| {
        let (state, mut firmament, _) = warmed_cluster(
            200,
            12,
            0.8,
            5,
            Firmament::new(LoadSpreadingPolicy::new()),
        );
        b.iter(|| firmament.schedule(&state).unwrap())
    });
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let (_state, firmament, _) = warmed_cluster(
        200,
        12,
        0.8,
        5,
        Firmament::new(QuincyPolicy::new(QuincyConfig::default())),
    );
    let mut g = firmament.policy().base().graph.clone();
    relaxation::solve(&mut g, &SolveOptions::unlimited()).unwrap();
    c.bench_function("extract_placements_200_machines", |b| {
        b.iter(|| extract_placements(&g))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_round, bench_extraction
}
criterion_main!(benches);
