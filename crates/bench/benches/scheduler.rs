//! Benchmarks for the end-to-end scheduler path: graph update, solve, and
//! placement extraction (§6.3). Self-contained harness (`bench_case`); run
//! with `cargo bench --bench scheduler`.

use firmament_bench::{bench_case, bench_header, warmed_cluster};
use firmament_core::{extract_placements, Firmament};
use firmament_mcmf::{relaxation, SolveOptions};
use firmament_policies::{LoadSpreadingCostModel, QuincyConfig, QuincyCostModel};

const SAMPLES: usize = 10;

fn bench_round() {
    {
        let (state, mut firmament, _) = warmed_cluster(
            200,
            12,
            0.8,
            5,
            Firmament::new(QuincyCostModel::new(QuincyConfig::default())),
        );
        bench_case(
            "scheduling_round/quincy_200_machines",
            SAMPLES,
            || (),
            |()| firmament.schedule(&state).unwrap(),
        );
    }
    {
        let (state, mut firmament, _) = warmed_cluster(
            200,
            12,
            0.8,
            5,
            Firmament::new(LoadSpreadingCostModel::new()),
        );
        bench_case(
            "scheduling_round/load_spreading_200_machines",
            SAMPLES,
            || (),
            |()| firmament.schedule(&state).unwrap(),
        );
    }
}

fn bench_extraction() {
    let (_state, firmament, _) = warmed_cluster(
        200,
        12,
        0.8,
        5,
        Firmament::new(QuincyCostModel::new(QuincyConfig::default())),
    );
    let mut g = firmament.graph().clone();
    relaxation::solve(&mut g, &SolveOptions::unlimited()).unwrap();
    bench_case(
        "extract_placements/200_machines",
        SAMPLES,
        || (),
        |()| extract_placements(&g),
    );
}

fn main() {
    bench_header();
    bench_round();
    bench_extraction();
}
