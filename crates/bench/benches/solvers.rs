//! Micro-benchmarks for the MCMF solver suite, including the α-factor
//! ablation DESIGN.md calls out. Self-contained harness (`bench_case`);
//! run with `cargo bench --bench solvers`.

use firmament_bench::{bench_case, bench_header};
use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
use firmament_mcmf::cost_scaling::{self, CostScalingConfig};
use firmament_mcmf::incremental::IncrementalCostScaling;
use firmament_mcmf::{relaxation, ssp, SolveOptions};

const SAMPLES: usize = 10;

fn instance(tasks: usize) -> InstanceSpec {
    InstanceSpec {
        tasks,
        machines: (tasks / 4).max(4),
        slots_per_machine: 5,
        prefs_per_task: 4,
        ..InstanceSpec::default()
    }
}

fn bench_algorithms() {
    for tasks in [200usize, 1000] {
        let spec = instance(tasks);
        bench_case(
            &format!("solve/relaxation/{tasks}"),
            SAMPLES,
            || scheduling_instance(1, &spec).graph,
            |mut g| relaxation::solve(&mut g, &SolveOptions::unlimited()).unwrap(),
        );
        bench_case(
            &format!("solve/cost_scaling/{tasks}"),
            SAMPLES,
            || scheduling_instance(1, &spec).graph,
            |mut g| cost_scaling::solve(&mut g, &SolveOptions::unlimited()).unwrap(),
        );
        bench_case(
            &format!("solve/ssp/{tasks}"),
            SAMPLES,
            || scheduling_instance(1, &spec).graph,
            |mut g| ssp::solve(&mut g, &SolveOptions::unlimited()).unwrap(),
        );
    }
}

fn bench_alpha_factor() {
    // Ablation: the paper found α = 9 ≈30% faster than the default 2.
    let spec = instance(1000);
    for alpha in [2i64, 4, 9, 16] {
        bench_case(
            &format!("alpha_factor/{alpha}"),
            SAMPLES,
            || scheduling_instance(1, &spec).graph,
            |mut g| {
                cost_scaling::solve_with(
                    &mut g,
                    &SolveOptions::unlimited(),
                    &CostScalingConfig { alpha },
                )
                .unwrap()
            },
        );
    }
}

fn bench_incremental() {
    let spec = instance(1000);
    bench_case(
        "incremental_vs_scratch/from_scratch",
        SAMPLES,
        || {
            let mut inst = scheduling_instance(2, &spec);
            // Perturb a few costs.
            let arcs: Vec<_> = inst.graph.arc_ids().collect();
            for k in 0..20 {
                inst.graph
                    .set_arc_cost(arcs[k * 7], (k as i64) + 1)
                    .unwrap();
            }
            inst.graph
        },
        |mut g| cost_scaling::solve(&mut g, &SolveOptions::unlimited()).unwrap(),
    );
    bench_case(
        "incremental_vs_scratch/incremental",
        SAMPLES,
        || {
            let mut inst = scheduling_instance(2, &spec);
            let mut inc = IncrementalCostScaling::default();
            inc.solve(&mut inst.graph, &SolveOptions::unlimited())
                .unwrap();
            let arcs: Vec<_> = inst.graph.arc_ids().collect();
            for k in 0..20 {
                inst.graph
                    .set_arc_cost(arcs[k * 7], (k as i64) + 1)
                    .unwrap();
            }
            (inst.graph, inc)
        },
        |(mut g, mut inc)| inc.solve(&mut g, &SolveOptions::unlimited()).unwrap(),
    );
}

fn main() {
    bench_header();
    bench_algorithms();
    bench_alpha_factor();
    bench_incremental();
}
