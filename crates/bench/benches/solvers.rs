//! Criterion micro-benchmarks for the MCMF solver suite, including the
//! α-factor ablation DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
use firmament_mcmf::cost_scaling::{self, CostScalingConfig};
use firmament_mcmf::incremental::IncrementalCostScaling;
use firmament_mcmf::{relaxation, ssp, SolveOptions};

fn instance(tasks: usize) -> InstanceSpec {
    InstanceSpec {
        tasks,
        machines: (tasks / 4).max(4),
        slots_per_machine: 5,
        prefs_per_task: 4,
        ..InstanceSpec::default()
    }
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve");
    for tasks in [200usize, 1000] {
        let spec = instance(tasks);
        group.bench_with_input(BenchmarkId::new("relaxation", tasks), &spec, |b, s| {
            b.iter_batched(
                || scheduling_instance(1, s).graph,
                |mut g| relaxation::solve(&mut g, &SolveOptions::unlimited()).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("cost_scaling", tasks), &spec, |b, s| {
            b.iter_batched(
                || scheduling_instance(1, s).graph,
                |mut g| cost_scaling::solve(&mut g, &SolveOptions::unlimited()).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("ssp", tasks), &spec, |b, s| {
            b.iter_batched(
                || scheduling_instance(1, s).graph,
                |mut g| ssp::solve(&mut g, &SolveOptions::unlimited()).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_alpha_factor(c: &mut Criterion) {
    // Ablation: the paper found α = 9 ≈30% faster than the default 2.
    let mut group = c.benchmark_group("alpha_factor");
    let spec = instance(1000);
    for alpha in [2i64, 4, 9, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &a| {
            b.iter_batched(
                || scheduling_instance(1, &spec).graph,
                |mut g| {
                    cost_scaling::solve_with(
                        &mut g,
                        &SolveOptions::unlimited(),
                        &CostScalingConfig { alpha: a },
                    )
                    .unwrap()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_vs_scratch");
    let spec = instance(1000);
    group.bench_function("from_scratch", |b| {
        b.iter_batched(
            || {
                let mut inst = scheduling_instance(2, &spec);
                // Perturb a few costs.
                let arcs: Vec<_> = inst.graph.arc_ids().collect();
                for k in 0..20 {
                    inst.graph.set_arc_cost(arcs[k * 7], (k as i64) + 1).unwrap();
                }
                inst.graph
            },
            |mut g| cost_scaling::solve(&mut g, &SolveOptions::unlimited()).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("incremental", |b| {
        b.iter_batched(
            || {
                let mut inst = scheduling_instance(2, &spec);
                let mut inc = IncrementalCostScaling::default();
                inc.solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
                let arcs: Vec<_> = inst.graph.arc_ids().collect();
                for k in 0..20 {
                    inst.graph.set_arc_cost(arcs[k * 7], (k as i64) + 1).unwrap();
                }
                (inst.graph, inc)
            },
            |(mut g, mut inc)| inc.solve(&mut g, &SolveOptions::unlimited()).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithms, bench_alpha_factor, bench_incremental
}
criterion_main!(benches);
