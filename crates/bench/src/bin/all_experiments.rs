//! Runs every figure/table binary in sequence (at the current scale) and
//! streams their output; use `--scale N` / `--full` as with the individual
//! binaries. Output is EXPERIMENTS.md-ready.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1_complexities",
    "table2_preconditions",
    "table3_arc_changes",
    "fig03_quincy_scaling",
    "fig07_algorithm_comparison",
    "fig08_oversubscription",
    "fig09_large_job",
    "fig10_early_termination",
    "fig11_incremental",
    "fig12_heuristics",
    "fig13_price_refine",
    "fig14_placement_latency",
    "fig15_locality_threshold",
    "fig16_demanding",
    "fig17_short_tasks",
    "fig18_trace_speedup",
    "fig19_placement_quality",
    "ec_hierarchy",
];

fn main() {
    let self_path = std::env::current_exe().expect("current exe path");
    let dir = self_path.parent().expect("target dir");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut failures = 0;
    for exp in EXPERIMENTS {
        println!("\n===== {exp} =====");
        let status = Command::new(dir.join(exp))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e} (build with `cargo build --release -p firmament-bench` first)"));
        if !status.success() {
            eprintln!("{exp} FAILED: {status}");
            failures += 1;
        }
    }
    println!("\n===== done: {failures} failures =====");
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
