//! Convex arc bundles give one-round load spreading.
//!
//! The experiment behind the `ArcBundle` refactor (ROADMAP "within-round
//! spreading needs convex arc costs"): a burst of `k·m` identical tasks
//! hits an idle cluster of `m` machines, and exactly **one** scheduling
//! round runs.
//!
//! - Under the **convex** load-spreading model (per-slot cost ladders:
//!   the j-th extra task on a machine costs more than the (j−1)-th), the
//!   min-cost solver fills every machine's cheap segments before
//!   anyone's expensive ones, so the single round lands ≤ ⌈k⌉+1 tasks
//!   per machine — balance is *optimal*, not emergent.
//! - Under the **uniform** model (the pre-bundle single-segment arcs,
//!   every slot of a machine at the same cost), the solver sees no
//!   within-round gradient: any assignment is equally optimal, bursts
//!   pack onto whichever machines the solver saturates first, and
//!   balance only drifts in across *rounds* as re-priced arcs catch up.
//!
//! The same burst also runs under Octopus (quadratic marginal ladders)
//! and the hierarchical topology model (per-rack machine ladders), which
//! inherit one-round spreading from their bundles.
//!
//! Used as a CI smoke: the run exits non-zero if any convex model
//! exceeds the ⌈k⌉+1 fair-share bound after a single solve.

use firmament_bench::{header, row, verdict, Scale};
use firmament_cluster::{ClusterEvent, ClusterState, Job, JobClass, MachineId, Task, TopologySpec};
use firmament_core::{Firmament, SchedulingAction};
use firmament_policies::{
    CostModel, HierarchicalTopologyCostModel, LoadSpreadingCostModel, OctopusCostModel,
};

struct Outcome {
    max_per_machine: usize,
    min_per_machine: usize,
    placed: usize,
}

/// One burst, one round: returns the per-machine load distribution after
/// applying the single round's placements.
fn one_round_burst<C: CostModel>(machines: usize, slots: u32, k: usize, model: C) -> Outcome {
    let mut state = ClusterState::with_topology(&TopologySpec {
        machines,
        machines_per_rack: 8,
        slots_per_machine: slots,
    });
    let mut f = Firmament::new(model);
    let mut ms: Vec<_> = state.machines.values().cloned().collect();
    ms.sort_by_key(|m| m.id);
    for m in ms {
        f.handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
            .expect("register machine");
    }
    // The burst: k·m identical tasks, one job, no locality, no skew.
    let n = k * machines;
    let job = Job::new(0, JobClass::Batch, 0, 0);
    let tasks: Vec<Task> = (0..n as u64)
        .map(|i| Task::new(i, 0, 0, 60_000_000))
        .collect();
    let ev = ClusterEvent::JobSubmitted { job, tasks };
    state.apply(&ev);
    f.handle_event(&state, &ev).expect("submit burst");

    // Exactly one solver round.
    let outcome = f.schedule(&state).expect("single round");
    let mut placed = 0usize;
    for a in &outcome.actions {
        if let SchedulingAction::Place { task, machine } = a {
            let ev = ClusterEvent::TaskPlaced {
                task: *task,
                machine: *machine,
                now: 0,
            };
            state.apply(&ev);
            f.handle_event(&state, &ev).expect("apply placement");
            placed += 1;
        }
    }
    let loads: Vec<(MachineId, usize)> = state
        .machines
        .values()
        .map(|m| (m.id, m.running.len()))
        .collect();
    Outcome {
        max_per_machine: loads.iter().map(|&(_, l)| l).max().unwrap_or(0),
        min_per_machine: loads.iter().map(|&(_, l)| l).min().unwrap_or(0),
        placed,
    }
}

fn main() {
    let scale = Scale::from_args();
    let machines = scale.machines(100).max(8);
    let slots = 8u32;
    let k = 4usize; // burst = half the cluster's capacity
    header(&[
        "model",
        "machines",
        "burst",
        "placed",
        "min_per_machine",
        "max_per_machine",
        "fair_share_bound",
    ]);

    let bound = k + 1; // ⌈k⌉ + 1 (k integral here)
    let mut convex_ok = true;
    let mut uniform_max = 0usize;
    let cases: Vec<(&str, Outcome)> = vec![
        (
            "load-spreading-convex",
            one_round_burst(machines, slots, k, LoadSpreadingCostModel::new()),
        ),
        (
            "load-spreading-uniform",
            one_round_burst(machines, slots, k, LoadSpreadingCostModel::uniform()),
        ),
        (
            "octopus-convex",
            one_round_burst(machines, slots, k, OctopusCostModel::new()),
        ),
        (
            "hierarchical-convex",
            one_round_burst(machines, slots, k, HierarchicalTopologyCostModel::new()),
        ),
    ];
    for (name, o) in &cases {
        row(&[
            (*name).into(),
            machines.to_string(),
            (k * machines).to_string(),
            o.placed.to_string(),
            o.min_per_machine.to_string(),
            o.max_per_machine.to_string(),
            bound.to_string(),
        ]);
        if name.ends_with("-convex") {
            convex_ok &= o.placed == k * machines && o.max_per_machine <= bound;
        } else {
            uniform_max = uniform_max.max(o.max_per_machine);
        }
    }

    verdict(
        "convex_spreading",
        convex_ok,
        &format!(
            "convex ladders land a {}-task burst at ≤ {bound} per machine in ONE round \
             (uniform packs up to {uniform_max}/{slots} slots)",
            k * machines
        ),
    );
    // The uniform baseline packing is reported, not asserted: with all
    // arcs at equal cost any distribution is optimal, so the exact skew
    // is solver-dependent. The convex bound is the contract.
    if !convex_ok {
        std::process::exit(1);
    }
}
