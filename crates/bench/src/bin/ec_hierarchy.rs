//! EC→EC hierarchies: a 3-level (cluster → rack → machine) topology
//! scheduled end-to-end at increasing scale.
//!
//! Exercises the multi-level equivalence-class support (§3.3's cost-model
//! generality; Quincy's X → R_r → machine shape): tasks enter at a single
//! cluster root, descend through per-rack aggregates priced by rack load,
//! and reach machines priced by machine load. Reports graph size, solve
//! time, and placement outcomes per cluster size, and verifies that every
//! placement's flow crossed *both* aggregator levels — the property flat
//! one-level topologies cannot express.

use firmament_bench::{header, row, timed, verdict, Scale};
use firmament_cluster::{ClusterEvent, ClusterState, Job, JobClass, Task, TopologySpec};
use firmament_core::Firmament;
use firmament_flow::NodeKind;
use firmament_policies::HierarchicalTopologyCostModel;

fn main() {
    let scale = Scale::from_args();
    let sizes = [50usize, 200, 800, 2000];
    header(&[
        "machines",
        "racks",
        "tasks",
        "nodes",
        "arcs",
        "solve_ms",
        "placed",
        "via_root",
        "via_racks",
    ]);
    let mut all_ok = true;
    for &paper_size in &sizes {
        let machines = scale.machines(paper_size).max(8);
        let per_rack = 20usize;
        let slots = 4u32;
        let mut state = ClusterState::with_topology(&TopologySpec {
            machines,
            machines_per_rack: per_rack,
            slots_per_machine: slots,
        });
        let mut firmament = Firmament::new(HierarchicalTopologyCostModel::new());
        let mut ms: Vec<_> = state.machines.values().cloned().collect();
        ms.sort_by_key(|m| m.id);
        for m in ms {
            firmament
                .handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
                .expect("register machine");
        }
        // Half-utilization workload across several jobs.
        let jobs = 8usize.min(machines * slots as usize / 2);
        let per_job = (machines * slots as usize / 2) / jobs;
        let tasks_total = jobs * per_job;
        let mut tid = 0u64;
        for j in 0..jobs as u64 {
            let job = Job::new(j, JobClass::Batch, 0, state.now);
            let tasks: Vec<Task> = (0..per_job)
                .map(|_| {
                    tid += 1;
                    Task::new(tid, j, state.now, 60_000_000)
                })
                .collect();
            let ev = ClusterEvent::JobSubmitted { job, tasks };
            state.apply(&ev);
            firmament.handle_event(&state, &ev).expect("submit");
        }
        let (outcome, elapsed) = timed(|| firmament.schedule(&state).expect("round"));
        let g = firmament.graph();
        // Flow through the root and the rack level.
        let mut via_root = 0i64;
        let mut via_racks = 0i64;
        for n in g.node_ids() {
            let sum_out = || -> i64 {
                g.adj(n)
                    .iter()
                    .copied()
                    .filter(|a| a.is_forward())
                    .map(|a| g.flow(a))
                    .sum()
            };
            match g.kind(n) {
                NodeKind::ClusterAggregator => via_root += sum_out(),
                NodeKind::RackAggregator { .. } => via_racks += sum_out(),
                _ => {}
            }
        }
        let racks = machines.div_ceil(per_rack);
        row(&[
            machines.to_string(),
            racks.to_string(),
            tasks_total.to_string(),
            g.node_count().to_string(),
            g.arc_count().to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
            outcome.placed_tasks.to_string(),
            via_root.to_string(),
            via_racks.to_string(),
        ]);
        all_ok &= outcome.placed_tasks == tasks_total
            && via_root == tasks_total as i64
            && via_racks == tasks_total as i64;
    }
    verdict(
        "ec_hierarchy",
        all_ok,
        "3-level topology schedules end-to-end: every placement's flow crosses the cluster root and a rack aggregate",
    );
}
