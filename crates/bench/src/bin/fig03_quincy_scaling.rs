//! Fig 3: Quincy's cost-scaling approach scales poorly with cluster size.
//!
//! Replays trace-shaped workloads at increasing cluster sizes against the
//! Quincy configuration (from-scratch cost scaling) and reports runtime
//! percentiles per size. Paper: median 64 s / p99 83 s at 12,500 machines.

use firmament_bench::{header, row, verdict, warmed_cluster, Scale};
use firmament_core::Firmament;
use firmament_mcmf::{cost_scaling, SolveOptions};
use firmament_policies::{QuincyConfig, QuincyCostModel};
use firmament_sim::Samples;

fn main() {
    let scale = Scale::from_args();
    let sizes = [50usize, 450, 850, 1250, 2500, 5000, 7500, 10_000, 12_500];
    header(&[
        "machines", "p1_s", "p25_s", "p50_s", "p75_s", "p99_s", "max_s",
    ]);
    let mut medians = Vec::new();
    for &paper_size in &sizes {
        let machines = scale.machines(paper_size);
        let mut samples = Samples::new();
        for rep in 0..5u64 {
            let (_state, firmament, _) = warmed_cluster(
                machines,
                12,
                0.5,
                1000 + rep,
                Firmament::new(QuincyCostModel::new(QuincyConfig::default())),
            );
            let mut g = firmament.graph().clone();
            let sol = cost_scaling::solve(&mut g, &SolveOptions::unlimited()).expect("solve");
            samples.push(sol.runtime.as_secs_f64());
        }
        row(&[
            machines.to_string(),
            format!("{:.4}", samples.percentile(1.0)),
            format!("{:.4}", samples.percentile(25.0)),
            format!("{:.4}", samples.percentile(50.0)),
            format!("{:.4}", samples.percentile(75.0)),
            format!("{:.4}", samples.percentile(99.0)),
            format!("{:.4}", samples.max()),
        ]);
        medians.push(samples.percentile(50.0));
    }
    let grows = medians.last().unwrap() > &(medians[0] * 5.0);
    verdict(
        "fig03",
        grows,
        &format!(
            "cost-scaling median grows {:.1}x from smallest to largest cluster (paper: ~minutes at full scale)",
            medians.last().unwrap() / medians[0].max(1e-9)
        ),
    );
}
