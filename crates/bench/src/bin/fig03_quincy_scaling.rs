//! Fig 3: Quincy's cost-scaling approach scales poorly with cluster size
//! — plus the full-scale paper point under capacity-bucketed ladders.
//!
//! Part 1 replays trace-shaped workloads at increasing cluster sizes
//! against the Quincy configuration (from-scratch cost scaling) and
//! reports runtime percentiles per size. Paper: median 64 s / p99 83 s at
//! 12,500 machines.
//!
//! Part 2 is the point the ROADMAP flagged as gated on bucketing
//! ("Ladder width vs graph size"): the paper-scale cluster under the
//! convex **load-spreading** ladders, whose per-slot form holds
//! 12,500 × 12 = 150,000 parallel aggregate → machine arcs. Both shapes
//! are *built* and measured (nodes/arcs/ladder arcs); the from-scratch
//! Quincy-style solve runs on each, so the row pair shows exactly what
//! the `O(m·log s)` compression buys at full scale. Under `--full` this
//! is the genuine 12,500-machine point; CI gates it at reduced scale via
//! the `scale-smoke` job.

use firmament_bench::scale::{ladder_arc_bound, ladder_arcs};
use firmament_bench::{header, row, verdict, warmed_cluster, Scale};
use firmament_core::Firmament;
use firmament_mcmf::{cost_scaling, SolveOptions};
use firmament_policies::{BundleShape, LoadSpreadingCostModel, QuincyConfig, QuincyCostModel};
use firmament_sim::Samples;

fn main() {
    let scale = Scale::from_args();
    // `--paper-only` skips the Quincy percentile sweep and runs just the
    // Part-2 paper point — what the CI scale-smoke job gates, and the
    // cheap way to reproduce the full-scale numbers recorded in ROADMAP.
    let paper_only = std::env::args().any(|a| a == "--paper-only");
    let sizes: &[usize] = if paper_only {
        &[]
    } else {
        &[50, 450, 850, 1250, 2500, 5000, 7500, 10_000, 12_500]
    };
    if !paper_only {
        header(&[
            "machines", "p1_s", "p25_s", "p50_s", "p75_s", "p99_s", "max_s",
        ]);
    }
    let mut medians = Vec::new();
    for &paper_size in sizes {
        let machines = scale.machines(paper_size);
        let mut samples = Samples::new();
        for rep in 0..5u64 {
            let (_state, firmament, _) = warmed_cluster(
                machines,
                12,
                0.5,
                1000 + rep,
                Firmament::new(QuincyCostModel::new(QuincyConfig::default())),
            );
            let mut g = firmament.graph().clone();
            let sol = cost_scaling::solve(&mut g, &SolveOptions::unlimited()).expect("solve");
            samples.push(sol.runtime.as_secs_f64());
        }
        row(&[
            machines.to_string(),
            format!("{:.4}", samples.percentile(1.0)),
            format!("{:.4}", samples.percentile(25.0)),
            format!("{:.4}", samples.percentile(50.0)),
            format!("{:.4}", samples.percentile(75.0)),
            format!("{:.4}", samples.percentile(99.0)),
            format!("{:.4}", samples.max()),
        ]);
        medians.push(samples.percentile(50.0));
    }
    let grows = paper_only || medians.last().unwrap() > &(medians[0] * 5.0);

    // ---- Part 2: the paper point under convex ladders, both shapes ----
    // 12,500 machines × 12 slots under --full; scaled down (and gated in
    // CI at reduced scale) otherwise.
    let paper_machines = scale.machines(12_500);
    header(&[
        "shape",
        "machines",
        "nodes",
        "arcs",
        "ladder_arcs",
        "ladder_bound",
        "scratch_solve_s",
    ]);
    let mut bucketed_ok = false;
    let mut per_slot_arcs = 0usize;
    let mut bucketed_arcs = 0usize;
    for shape in [BundleShape::PerSlot, BundleShape::Bucketed] {
        let (_state, firmament, _) = warmed_cluster(
            paper_machines,
            12,
            0.5,
            2000,
            Firmament::new(LoadSpreadingCostModel::with_shape(shape)),
        );
        let graph = firmament.graph();
        let ladder = ladder_arcs(graph);
        let bound = ladder_arc_bound(paper_machines, 12, shape);
        let mut g = graph.clone();
        let sol = cost_scaling::solve(&mut g, &SolveOptions::unlimited()).expect("paper point");
        row(&[
            match shape {
                BundleShape::PerSlot => "per-slot".into(),
                BundleShape::Bucketed => "bucketed".into(),
            },
            paper_machines.to_string(),
            graph.node_count().to_string(),
            graph.arc_count().to_string(),
            ladder.to_string(),
            bound.to_string(),
            format!("{:.4}", sol.runtime.as_secs_f64()),
        ]);
        match shape {
            BundleShape::PerSlot => per_slot_arcs = ladder,
            BundleShape::Bucketed => {
                bucketed_arcs = ladder;
                bucketed_ok = ladder <= bound;
            }
        }
    }

    let growth = if paper_only {
        "(sweep skipped) ".to_string()
    } else {
        format!(
            "cost-scaling median grows {:.1}x from smallest to largest cluster \
             (paper: ~minutes at full scale); ",
            medians.last().unwrap() / medians[0].max(1e-9)
        )
    };
    verdict(
        "fig03",
        grows && bucketed_ok && bucketed_arcs * 2 <= per_slot_arcs,
        &format!(
            "{growth}bucketed ladders hold the {paper_machines}-machine point \
             at {bucketed_arcs} ladder arcs vs {per_slot_arcs} per-slot"
        ),
    );
    // Exit status matches the verdict: a Quincy-scaling shape deviation
    // fails the run just like a Part-2 bound violation.
    if !(grows && bucketed_ok && bucketed_arcs * 2 <= per_slot_arcs) {
        std::process::exit(1);
    }
}
