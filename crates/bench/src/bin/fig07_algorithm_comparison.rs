//! Fig 7: average runtime of the four MCMF algorithms vs cluster size.
//!
//! Paper: relaxation best (<200 ms at 12.5k machines) despite the worst
//! complexity; SSP beats only cycle canceling and exceeds 100 s at 1,250
//! machines; cost scaling in between.

use firmament_bench::{header, row, verdict, warmed_cluster, Scale};
use firmament_core::Firmament;
use firmament_mcmf::{cost_scaling, cycle_canceling, relaxation, ssp, SolveOptions};
use firmament_policies::{QuincyConfig, QuincyCostModel};
use std::time::Duration;

fn main() {
    let scale = Scale::from_args();
    let sizes = [50usize, 1250, 2500, 5000, 7500, 10_000, 12_500];
    // Budget each run so the slow algorithms cannot stall the suite.
    let opts = SolveOptions {
        time_limit: Some(Duration::from_secs(20)),
        ..Default::default()
    };
    header(&[
        "machines",
        "cycle_canceling_s",
        "ssp_s",
        "cost_scaling_s",
        "relaxation_s",
    ]);
    let mut last = (0.0f64, 0.0f64);
    for &paper_size in &sizes {
        let machines = scale.machines(paper_size);
        let (_state, firmament, _) = warmed_cluster(
            machines,
            12,
            0.5,
            7,
            Firmament::new(QuincyCostModel::new(QuincyConfig::default())),
        );
        let graph = firmament.graph().clone();
        let run = |f: &dyn Fn(&mut firmament_flow::FlowGraph) -> f64| -> f64 {
            let mut g = graph.clone();
            f(&mut g)
        };
        let cc = if machines <= scale.machines(1250) {
            run(&|g| {
                let s = cycle_canceling::solve(g, &opts).expect("cc");
                if s.terminated_early {
                    f64::NAN
                } else {
                    s.runtime.as_secs_f64()
                }
            })
        } else {
            f64::NAN // too slow to be worth the wall time, as in the paper
        };
        let sp = run(&|g| {
            let s = ssp::solve(g, &opts).expect("ssp");
            if s.terminated_early {
                f64::NAN
            } else {
                s.runtime.as_secs_f64()
            }
        });
        let cs = run(&|g| {
            cost_scaling::solve(g, &opts)
                .expect("cs")
                .runtime
                .as_secs_f64()
        });
        let rx = run(&|g| {
            relaxation::solve(g, &opts)
                .expect("rx")
                .runtime
                .as_secs_f64()
        });
        row(&[
            machines.to_string(),
            format!("{cc:.4}"),
            format!("{sp:.4}"),
            format!("{cs:.4}"),
            format!("{rx:.4}"),
        ]);
        last = (cs, rx);
    }
    verdict(
        "fig07",
        last.1 < last.0,
        &format!(
            "relaxation ({:.3}s) beats cost scaling ({:.3}s) at the largest size, as in the paper",
            last.1, last.0
        ),
    );
}
