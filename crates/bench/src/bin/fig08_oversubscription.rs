//! Fig 8: relaxation degenerates near full cluster utilization.
//!
//! Starting from a 90 %-utilized cluster, submit increasingly large jobs
//! and measure relaxation vs cost scaling. Paper: relaxation overtakes
//! cost scaling around 93 % utilization and reaches >400 s oversubscribed.

use firmament_bench::{header, row, verdict, warmed_cluster, Scale};
use firmament_cluster::{ClusterEvent, Job, JobClass, Task};
use firmament_core::Firmament;
use firmament_mcmf::relaxation::RelaxationConfig;
use firmament_mcmf::{cost_scaling, relaxation, SolveOptions};
use firmament_policies::{QuincyConfig, QuincyCostModel};

fn main() {
    let scale = Scale::from_args();
    let machines = scale.machines(12_500);
    header(&["utilization_pct", "relaxation_s", "cost_scaling_s"]);
    let mut crossed = false;
    let mut rx_first = None;
    let mut rx_last = 0.0f64;
    let mut cs_first = None;
    let mut cs_last = 0.0f64;
    for target_pct in [91usize, 93, 95, 97, 99, 100, 103, 106, 110] {
        let (mut state, mut firmament, _) = warmed_cluster(
            machines,
            12,
            0.90,
            42,
            Firmament::new(QuincyCostModel::new(QuincyConfig::default())),
        );
        // Submit one large job that pushes utilization to the target.
        let total = state.total_slots() as i64;
        let extra = (total * target_pct as i64 / 100 - state.used_slots() as i64).max(1);
        let job = Job::new(9_999_999, JobClass::Batch, 2, state.now);
        let tasks: Vec<Task> = (0..extra)
            .map(|i| Task::new(8_000_000 + i as u64, job.id, state.now, 60_000_000))
            .collect();
        let ev = ClusterEvent::JobSubmitted { job, tasks };
        state.apply(&ev);
        firmament.handle_event(&state, &ev).expect("submit");
        firmament.refresh(&state).expect("refresh");
        let graph = firmament.graph().clone();

        // Plain relaxation: Fig 8 predates the arc-prioritization
        // heuristic that Fig 12a later introduces.
        let mut g = graph.clone();
        let rx = relaxation::solve_with(
            &mut g,
            &SolveOptions::unlimited(),
            &RelaxationConfig {
                arc_prioritization: false,
            },
        )
        .expect("relaxation")
        .runtime
        .as_secs_f64();
        let mut g = graph.clone();
        let cs = cost_scaling::solve(&mut g, &SolveOptions::unlimited())
            .expect("cost scaling")
            .runtime
            .as_secs_f64();
        row(&[
            target_pct.to_string(),
            format!("{rx:.4}"),
            format!("{cs:.4}"),
        ]);
        if rx > cs {
            crossed = true;
        }
        rx_first.get_or_insert(rx);
        rx_last = rx;
        cs_first.get_or_insert(cs);
        cs_last = cs;
    }
    // The shape claim: relaxation degenerates towards oversubscription
    // while cost scaling stays flat. The absolute crossover point is
    // scale-dependent (paper: ~93% at 12,500 machines).
    let rx_growth = rx_last / rx_first.unwrap_or(1.0).max(1e-9);
    let cs_growth = cs_last / cs_first.unwrap_or(1.0).max(1e-9);
    verdict(
        "fig08",
        crossed || (rx_growth > 3.0 && cs_growth < 3.0),
        &format!(
            "relaxation grows {rx_growth:.1}x towards oversubscription, cost scaling {cs_growth:.1}x (crossover: {crossed})"
        ),
    );
}
