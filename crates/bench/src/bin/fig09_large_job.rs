//! Fig 9: contention slows relaxation — large jobs under load spreading.
//!
//! Submit a single job of growing size to a cluster with the
//! load-spreading policy. Paper: relaxation grows linearly in job size and
//! crosses cost scaling just under 3,000 concurrently arriving tasks.

use firmament_bench::{header, row, verdict, warmed_cluster, Scale};
use firmament_cluster::{ClusterEvent, Job, JobClass, Task};
use firmament_core::Firmament;
use firmament_mcmf::relaxation::RelaxationConfig;
use firmament_mcmf::{cost_scaling, relaxation, SolveOptions};
use firmament_policies::LoadSpreadingCostModel;

fn main() {
    let scale = Scale::from_args();
    let machines = scale.machines(12_500);
    header(&["arriving_tasks", "relaxation_s", "cost_scaling_s"]);
    let sizes = [100usize, 500, 1000, 2000, 3000, 4000, 5000];
    let mut crossed = false;
    let mut rx_series = Vec::new();
    for &paper_tasks in &sizes {
        let tasks_n = (paper_tasks / scale.divisor).max(10);
        // An *empty* cluster makes every X→machine cost identical, which
        // is exactly the contention that slows relaxation: every
        // under-populated machine is an equally good destination (§4.3).
        let (mut state, mut firmament, _) = warmed_cluster(
            machines,
            12,
            0.0,
            5,
            Firmament::new(LoadSpreadingCostModel::new()),
        );
        let job = Job::new(9_999_999, JobClass::Batch, 2, state.now);
        let tasks: Vec<Task> = (0..tasks_n)
            .map(|i| Task::new(8_000_000 + i as u64, job.id, state.now, 60_000_000))
            .collect();
        let ev = ClusterEvent::JobSubmitted { job, tasks };
        state.apply(&ev);
        firmament.handle_event(&state, &ev).expect("submit");
        firmament.refresh(&state).expect("refresh");
        let graph = firmament.graph().clone();
        // Plain relaxation (no arc prioritization): Fig 9 predates the
        // heuristic that Fig 12a later adds.
        let mut g = graph.clone();
        let rx = relaxation::solve_with(
            &mut g,
            &SolveOptions::unlimited(),
            &RelaxationConfig {
                arc_prioritization: false,
            },
        )
        .expect("relaxation")
        .runtime
        .as_secs_f64();
        let mut g = graph.clone();
        let cs = cost_scaling::solve(&mut g, &SolveOptions::unlimited())
            .expect("cost scaling")
            .runtime
            .as_secs_f64();
        row(&[tasks_n.to_string(), format!("{rx:.4}"), format!("{cs:.4}")]);
        if rx > cs {
            crossed = true;
        }
        rx_series.push(rx);
    }
    let growth = rx_series.last().unwrap() / rx_series.first().unwrap().max(1e-9);
    verdict(
        "fig09",
        crossed || growth > 5.0,
        &format!(
            "relaxation grows {growth:.1}x with job size (crossover at this scale: {crossed}; paper crosses at ~3,000 tasks on 12,500 machines)"
        ),
    );
}
