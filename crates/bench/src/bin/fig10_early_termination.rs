//! Fig 10: approximate MCMF misplaces tasks until just before convergence.
//!
//! Terminate cost scaling and relaxation at iteration budgets and count
//! tasks placed differently from the optimal solution. Paper: thousands of
//! misplacements persist until the final iterations — early termination is
//! not a viable latency optimization.

use firmament_bench::{header, row, verdict, warmed_cluster, Scale};
use firmament_core::Firmament;
use firmament_mcmf::approx::{count_misplacements, task_assignments};
use firmament_mcmf::{cost_scaling, relaxation, SolveOptions};
use firmament_policies::{QuincyConfig, QuincyCostModel};

fn main() {
    let scale = Scale::from_args();
    let machines = scale.machines(12_500);
    let (_state, firmament, _) = warmed_cluster(
        machines,
        12,
        0.95,
        13,
        Firmament::new(QuincyCostModel::new(QuincyConfig::default())),
    );
    let graph = firmament.graph().clone();

    // Reference: full solves.
    let mut g_opt = graph.clone();
    let full_cs = cost_scaling::solve(&mut g_opt, &SolveOptions::unlimited()).expect("cs");
    let optimal = task_assignments(&g_opt);
    let mut g_rx = graph.clone();
    let full_rx = relaxation::solve(&mut g_rx, &SolveOptions::unlimited()).expect("rx");

    header(&[
        "budget_fraction_pct",
        "cs_misplaced",
        "cs_runtime_s",
        "rx_misplaced",
        "rx_runtime_s",
    ]);
    let mut early_bad = false;
    for pct in [10u64, 25, 50, 75, 90, 99, 100] {
        let cs_budget = (full_cs.stats.iterations * pct / 100).max(1);
        let rx_budget = (full_rx.stats.iterations * pct / 100).max(1);
        let mut g = graph.clone();
        let cs_opts = SolveOptions {
            iteration_limit: Some(cs_budget),
            ..Default::default()
        };
        let cs_sol = cost_scaling::solve(&mut g, &cs_opts).expect("cs partial");
        let cs_mis = count_misplacements(&task_assignments(&g), &optimal);
        let mut g = graph.clone();
        let rx_opts = SolveOptions {
            iteration_limit: Some(rx_budget),
            ..Default::default()
        };
        let rx_sol = relaxation::solve(&mut g, &rx_opts).expect("rx partial");
        let rx_mis = count_misplacements(&task_assignments(&g), &optimal);
        row(&[
            pct.to_string(),
            cs_mis.to_string(),
            format!("{:.4}", cs_sol.runtime.as_secs_f64()),
            rx_mis.to_string(),
            format!("{:.4}", rx_sol.runtime.as_secs_f64()),
        ]);
        if pct <= 75 && (cs_mis > 0 || rx_mis > 0) {
            early_bad = true;
        }
    }
    verdict(
        "fig10",
        early_bad,
        "early termination leaves many tasks misplaced (paper rejects approximate MCMF)",
    );
}
