//! Fig 11: incremental cost scaling beats from-scratch cost scaling.
//!
//! Paper: 25 % faster under the Quincy policy, 50 % under load spreading.
//!
//! This binary drives the real delta-feed pipeline: the
//! `FlowGraphManager` records a typed [`DeltaBatch`] across a burst of
//! cluster events, and the warm `IncrementalCostScaling` consumes it
//! natively. Three solves of the changed graph are compared:
//!
//! - **from-scratch** cost scaling (the Quincy baseline),
//! - **diff-based** warm start (the legacy full-graph violation scan),
//! - **delta-fed** warm start (the targeted dirty-region path),
//!
//! and the run asserts that the delta-fed and diff-based warm starts are
//! verified-optimal, agree with the from-scratch objective, and — after
//! [`canonicalize_flow`] maps each degenerate optimum to the canonical
//! one — produce **identical placements**: equally-optimal warm and cold
//! paths no longer even permute equal-cost assignments. Used as a CI
//! smoke test at small scale (`--scale 2000`).

use firmament_bench::{header, row, verdict, warmed_cluster, Scale};
use firmament_cluster::{ClusterEvent, ClusterState, Job, JobClass, Task, TaskState};
use firmament_core::{extract_placements, Firmament};
use firmament_flow::delta::DeltaBatch;
use firmament_flow::FlowGraph;
use firmament_mcmf::canonical::canonicalize_flow;
use firmament_mcmf::incremental::{IncrementalConfig, IncrementalCostScaling};
use firmament_mcmf::{cost_scaling, SolveOptions};
use firmament_policies::{CostModel, LoadSpreadingCostModel, QuincyConfig, QuincyCostModel};

struct Measurement {
    scratch_s: f64,
    diff_s: f64,
    delta_s: f64,
    delta_nodes_touched: u64,
    deltas: usize,
    solutions_equivalent: bool,
    objectives_agree: bool,
}

fn warm_solver() -> IncrementalCostScaling {
    IncrementalCostScaling::new(IncrementalConfig {
        price_refine_on_adopt: true,
        ..Default::default()
    })
}

/// Applies the fig11 change burst — one job arrives, a batch of running
/// tasks completes — through the scheduler's event path, so drains and
/// dirty-refresh all happen exactly as in production.
fn apply_burst<C: CostModel>(
    state: &mut ClusterState,
    firmament: &mut Firmament<C>,
    machines: usize,
) {
    let job = Job::new(7_777_777, JobClass::Batch, 2, state.now);
    let tasks: Vec<Task> = (0..(machines / 2).max(5))
        .map(|i| Task::new(6_000_000 + i as u64, job.id, state.now, 60_000_000))
        .collect();
    let ev = ClusterEvent::JobSubmitted { job, tasks };
    state.apply(&ev);
    firmament.handle_event(state, &ev).expect("submit");
    let victims: Vec<u64> = state
        .tasks
        .values()
        .filter(|t| t.state == TaskState::Running)
        .take((machines / 4).max(3))
        .map(|t| t.id)
        .collect();
    for v in victims {
        let ev = ClusterEvent::TaskCompleted {
            task: v,
            now: state.now + 1,
        };
        state.apply(&ev);
        firmament.handle_event(state, &ev).expect("complete");
    }
    firmament.refresh(state).expect("refresh");
}

fn bench_policy<C: CostModel>(scale: &Scale, firmament: Firmament<C>) -> Measurement {
    let machines = scale.machines(12_500);
    let (mut state, mut firmament, _) = warmed_cluster(machines, 12, 0.8, 21, firmament);

    // Establish warm state the way the scheduler does: solve the current
    // graph, adopt the optimum back into the manager (so burst events
    // drain and rewire real flow), and drain the log so the next batch
    // covers exactly the change burst.
    let mut base = firmament.manager_mut().take_graph();
    let mut warmup_solver = warm_solver();
    warmup_solver
        .solve(&mut base, &SolveOptions::unlimited())
        .expect("warmup solve");
    let pre_burst_optimum = base.clone();
    firmament.manager_mut().adopt_graph(base);
    firmament.manager_mut().take_deltas();

    apply_burst(&mut state, &mut firmament, machines);
    let batch: DeltaBatch = firmament.manager_mut().take_deltas();
    let changed: &FlowGraph = firmament.graph();

    // From-scratch baseline.
    let mut scratch_graph = changed.clone();
    let scratch =
        cost_scaling::solve(&mut scratch_graph, &SolveOptions::unlimited()).expect("scratch solve");

    // Both warm starts adopt the *pre-burst* optimum (§6.2: price refine
    // runs on the previous solution, before the latest changes) and then
    // solve the changed graph, whose flow is that optimum as disturbed by
    // the burst.
    let mut diff_solver = warm_solver();
    assert!(
        diff_solver.adopt_solution(&pre_burst_optimum),
        "pre-burst flow must be optimal"
    );
    let mut diff_graph = changed.clone();
    let diff = diff_solver
        .solve(&mut diff_graph, &SolveOptions::unlimited())
        .expect("diff-based warm solve");

    let mut delta_solver = warm_solver();
    assert!(delta_solver.adopt_solution(&pre_burst_optimum));
    let mut delta_graph = changed.clone();
    let delta = delta_solver
        .solve_with_deltas(&mut delta_graph, Some(&batch), &SolveOptions::unlimited())
        .expect("delta-fed warm solve");

    // Solution equivalence, tightened to placement identity: all three
    // paths must land on the same optimal objective, both warm flows must
    // verify as feasible optima, and after canonicalization (which maps
    // every degenerate optimum to the same canonical flow, independent of
    // the solver path that produced it) all three graphs must extract
    // *identical* per-task placements — not just equal counts.
    let optimal = firmament_mcmf::verify::is_optimal(&diff_graph)
        && firmament_mcmf::verify::is_optimal(&delta_graph);
    let mut scratch_canon = scratch_graph.clone();
    let mut diff_canon = diff_graph.clone();
    let mut delta_canon = delta_graph.clone();
    let canon_ok = canonicalize_flow(&mut scratch_canon).is_ok()
        && canonicalize_flow(&mut diff_canon).is_ok()
        && canonicalize_flow(&mut delta_canon).is_ok();
    let p_scratch = extract_placements(&scratch_canon);
    let p_diff = extract_placements(&diff_canon);
    let p_delta = extract_placements(&delta_canon);
    Measurement {
        scratch_s: scratch.runtime.as_secs_f64(),
        diff_s: diff.runtime.as_secs_f64(),
        delta_s: delta.runtime.as_secs_f64(),
        delta_nodes_touched: delta.stats.nodes_touched,
        deltas: batch.len(),
        solutions_equivalent: optimal && canon_ok && p_scratch == p_diff && p_diff == p_delta,
        objectives_agree: scratch.objective == diff.objective && diff.objective == delta.objective,
    }
}

fn main() {
    let scale = Scale::from_args();
    header(&[
        "policy",
        "from_scratch_s",
        "diff_based_s",
        "delta_fed_s",
        "deltas",
        "nodes_touched",
        "speedup_pct",
    ]);
    let mut all_equal = true;
    let mut all_faster = true;
    for (name, m) in [
        (
            "quincy",
            bench_policy(
                &scale,
                Firmament::new(QuincyCostModel::new(QuincyConfig::default())),
            ),
        ),
        (
            "load-spreading",
            bench_policy(&scale, Firmament::new(LoadSpreadingCostModel::new())),
        ),
    ] {
        row(&[
            name.into(),
            format!("{:.4}", m.scratch_s),
            format!("{:.4}", m.diff_s),
            format!("{:.4}", m.delta_s),
            format!("{}", m.deltas),
            format!("{}", m.delta_nodes_touched),
            format!("{:.0}", (1.0 - m.delta_s / m.scratch_s) * 100.0),
        ]);
        all_equal &= m.solutions_equivalent && m.objectives_agree;
        all_faster &= m.delta_s < m.scratch_s;
    }
    verdict(
        "fig11_equivalence",
        all_equal,
        "delta-fed and diff-based warm solves are verified-optimal, match from-scratch objectives, and canonicalize to IDENTICAL per-task placements",
    );
    verdict(
        "fig11",
        all_faster,
        "delta-fed incremental cost scaling is faster than from-scratch for both policies (paper: 25%/50%)",
    );
    if !all_equal {
        std::process::exit(1);
    }
}
