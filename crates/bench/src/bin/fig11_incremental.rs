//! Fig 11: incremental cost scaling beats from-scratch cost scaling.
//!
//! Paper: 25 % faster under the Quincy policy, 50 % under load spreading.

use firmament_bench::{header, row, verdict, warmed_cluster, Scale};
use firmament_cluster::{ClusterEvent, Job, JobClass, Task, TaskState};
use firmament_core::Firmament;
use firmament_mcmf::incremental::IncrementalCostScaling;
use firmament_mcmf::{cost_scaling, SolveOptions};
use firmament_policies::{CostModel, LoadSpreadingCostModel, QuincyConfig, QuincyCostModel};

fn bench_policy<C: CostModel>(scale: &Scale, firmament: Firmament<C>) -> (f64, f64) {
    let machines = scale.machines(12_500);
    let (mut state, mut firmament, _) = {
        let (s, f, g) = warmed_cluster(machines, 12, 0.8, 21, firmament);
        (s, f, g)
    };
    // Establish warm incremental state on the current graph.
    let mut inc = IncrementalCostScaling::default();
    let mut g_inc = firmament.graph().clone();
    inc.solve(&mut g_inc, &SolveOptions::unlimited())
        .expect("warmup solve");

    // A batch of changes: one job arrives, some tasks complete.
    let job = Job::new(7_777_777, JobClass::Batch, 2, state.now);
    let tasks: Vec<Task> = (0..(machines / 2).max(5))
        .map(|i| Task::new(6_000_000 + i as u64, job.id, state.now, 60_000_000))
        .collect();
    let ev = ClusterEvent::JobSubmitted { job, tasks };
    state.apply(&ev);
    firmament.handle_event(&state, &ev).expect("submit");
    let victims: Vec<u64> = state
        .tasks
        .values()
        .filter(|t| t.state == TaskState::Running)
        .take((machines / 4).max(3))
        .map(|t| t.id)
        .collect();
    for v in victims {
        let ev = ClusterEvent::TaskCompleted {
            task: v,
            now: state.now + 1,
        };
        state.apply(&ev);
        firmament.handle_event(&state, &ev).expect("complete");
    }
    firmament.refresh(&state).expect("refresh");

    // Mirror the changes onto the warm incremental graph by re-deriving it
    // from the policy graph (flow preserved where arcs survived).
    let changed = firmament.graph().clone();
    let mut scratch_graph = changed.clone();
    let scratch = cost_scaling::solve(&mut scratch_graph, &SolveOptions::unlimited())
        .expect("scratch")
        .runtime
        .as_secs_f64();
    // Warm run: adopt previous optimum, then solve the changed graph.
    let mut inc2 = IncrementalCostScaling::new(firmament_mcmf::incremental::IncrementalConfig {
        price_refine_on_adopt: true,
        ..Default::default()
    });
    inc2.adopt_solution(&g_inc);
    let mut warm_graph = changed.clone();
    let warm = inc2
        .solve(&mut warm_graph, &SolveOptions::unlimited())
        .expect("warm")
        .runtime
        .as_secs_f64();
    (scratch, warm)
}

fn main() {
    let scale = Scale::from_args();
    header(&["policy", "from_scratch_s", "incremental_s", "speedup_pct"]);
    let (q_scratch, q_inc) = bench_policy(
        &scale,
        Firmament::new(QuincyCostModel::new(QuincyConfig::default())),
    );
    row(&[
        "quincy".into(),
        format!("{q_scratch:.4}"),
        format!("{q_inc:.4}"),
        format!("{:.0}", (1.0 - q_inc / q_scratch) * 100.0),
    ]);
    let (l_scratch, l_inc) = bench_policy(&scale, Firmament::new(LoadSpreadingCostModel::new()));
    row(&[
        "load-spreading".into(),
        format!("{l_scratch:.4}"),
        format!("{l_inc:.4}"),
        format!("{:.0}", (1.0 - l_inc / l_scratch) * 100.0),
    ]);
    verdict(
        "fig11",
        q_inc < q_scratch && l_inc < l_scratch,
        "incremental cost scaling is faster than from-scratch for both policies (paper: 25%/50%)",
    );
}
