//! Fig 12: problem-specific heuristics.
//!
//! (a) Arc prioritization cuts relaxation runtime on contended graphs
//! (~45 % in the paper). (b) Efficient task removal speeds incremental
//! cost scaling (~10 %).

use firmament_bench::{header, row, verdict, warmed_cluster, Scale};
use firmament_cluster::{ClusterEvent, Job, JobClass, Task, TaskState};
use firmament_core::Firmament;
use firmament_mcmf::incremental::{drain_task_flow, IncrementalCostScaling};
use firmament_mcmf::relaxation::{self, RelaxationConfig};
use firmament_mcmf::SolveOptions;
use firmament_policies::LoadSpreadingCostModel;

fn main() {
    let scale = Scale::from_args();
    let machines = scale.machines(12_500);

    // (a) Contended load-spreading graph with a large arriving job.
    let (mut state, mut firmament, _) = warmed_cluster(
        machines,
        12,
        0.5,
        3,
        Firmament::new(LoadSpreadingCostModel::new()),
    );
    let job = Job::new(7_777_777, JobClass::Batch, 2, state.now);
    let tasks: Vec<Task> = (0..(machines * 2))
        .map(|i| Task::new(6_000_000 + i as u64, job.id, state.now, 60_000_000))
        .collect();
    let ev = ClusterEvent::JobSubmitted { job, tasks };
    state.apply(&ev);
    firmament.handle_event(&state, &ev).expect("submit");
    firmament.refresh(&state).expect("refresh");
    let graph = firmament.graph().clone();

    let mut g = graph.clone();
    let no_ap = relaxation::solve_with(
        &mut g,
        &SolveOptions::unlimited(),
        &RelaxationConfig {
            arc_prioritization: false,
        },
    )
    .expect("no-ap")
    .runtime
    .as_secs_f64();
    let mut g = graph.clone();
    let ap = relaxation::solve_with(
        &mut g,
        &SolveOptions::unlimited(),
        &RelaxationConfig {
            arc_prioritization: true,
        },
    )
    .expect("ap")
    .runtime
    .as_secs_f64();

    // (b) Task-removal-heavy incremental round.
    let mut inc = IncrementalCostScaling::default();
    let mut base_graph = graph.clone();
    inc.solve(&mut base_graph, &SolveOptions::unlimited())
        .expect("base solve");
    // Complete 20% of running tasks — with and without the drain heuristic.
    let victims: Vec<u64> = state
        .tasks
        .values()
        .filter(|t| t.state == TaskState::Running)
        .take((machines * 2) / 5)
        .map(|t| t.id)
        .collect();
    let run_removal = |use_drain: bool| -> f64 {
        let mut g = base_graph.clone();
        let mut inc = IncrementalCostScaling::new(firmament_mcmf::incremental::IncrementalConfig {
            price_refine_on_adopt: true,
            ..Default::default()
        });
        inc.adopt_solution(&g);
        let manager = firmament.manager();
        for v in &victims {
            if let Some(node) = manager.task_node(*v) {
                if use_drain {
                    drain_task_flow(&mut g, node);
                }
                if g.node_alive(node) {
                    g.remove_node(node).expect("remove");
                    // Shrink sink demand like the policy would.
                    let sink = manager.sink();
                    let d = g.supply(sink);
                    g.set_supply(sink, d + 1).expect("sink");
                }
            }
        }
        inc.solve(&mut g, &SolveOptions::unlimited())
            .expect("incremental")
            .runtime
            .as_secs_f64()
    };
    let no_tr = run_removal(false);
    let tr = run_removal(true);

    header(&["experiment", "without_s", "with_s", "improvement_pct"]);
    row(&[
        "arc_prioritization".into(),
        format!("{no_ap:.4}"),
        format!("{ap:.4}"),
        format!("{:.0}", (1.0 - ap / no_ap) * 100.0),
    ]);
    row(&[
        "task_removal".into(),
        format!("{no_tr:.4}"),
        format!("{tr:.4}"),
        format!("{:.0}", (1.0 - tr / no_tr) * 100.0),
    ]);
    verdict(
        "fig12",
        ap <= no_ap * 1.05 && tr <= no_tr * 1.05,
        "both heuristics help (paper: AP −45%, TR −10%)",
    );
}
