//! Fig 13: price refine accelerates the relaxation → incremental
//! cost-scaling handoff (paper: 4× faster in 90 % of cases).

use firmament_bench::{header, row, verdict, warmed_cluster, Scale};
use firmament_core::Firmament;
use firmament_mcmf::incremental::{IncrementalConfig, IncrementalCostScaling};
use firmament_mcmf::{relaxation, SolveOptions};
use firmament_policies::{QuincyConfig, QuincyCostModel};
use firmament_sim::Samples;

fn main() {
    let scale = Scale::from_args();
    let machines = scale.machines(12_500);
    header(&["round", "with_price_refine_s", "without_s"]);
    let mut with_pr = Samples::new();
    let mut without = Samples::new();
    for round in 0..10u64 {
        let (_state, firmament, _) = warmed_cluster(
            machines,
            12,
            0.85,
            100 + round,
            Firmament::new(QuincyCostModel::new(QuincyConfig::default())),
        );
        // Relaxation produces the previous round's solution.
        let mut solved = firmament.graph().clone();
        relaxation::solve(&mut solved, &SolveOptions::unlimited()).expect("relaxation");
        // Apply some cost changes (the next round's cluster changes).
        let arcs: Vec<_> = solved.arc_ids().collect();
        let mut changed = solved.clone();
        for k in 0..arcs.len() / 20 {
            let a = arcs[k * 20];
            let c = changed.cost(a);
            changed.set_arc_cost(a, (c + 17) % 90 + 1).expect("cost");
        }
        // With price refine: adopt the optimum, then incremental solve.
        let mut inc = IncrementalCostScaling::new(IncrementalConfig {
            price_refine_on_adopt: true,
            ..Default::default()
        });
        inc.adopt_solution(&solved);
        let mut g = changed.clone();
        let a = inc
            .solve(&mut g, &SolveOptions::unlimited())
            .expect("with pr")
            .runtime
            .as_secs_f64();
        // Without: cold incremental solver (cost scaling from scratch).
        let mut inc = IncrementalCostScaling::new(IncrementalConfig {
            price_refine_on_adopt: false,
            ..Default::default()
        });
        inc.adopt_solution(&solved);
        let mut g = changed.clone();
        let b = inc
            .solve(&mut g, &SolveOptions::unlimited())
            .expect("without pr")
            .runtime
            .as_secs_f64();
        row(&[round.to_string(), format!("{a:.4}"), format!("{b:.4}")]);
        with_pr.push(a);
        without.push(b);
    }
    let p90_speedup = without.percentile(90.0) / with_pr.percentile(90.0).max(1e-9);
    verdict(
        "fig13",
        with_pr.percentile(90.0) <= without.percentile(90.0),
        &format!("price refine gives {p90_speedup:.1}x at p90 (paper: ~4x in 90% of cases)"),
    );
}
