//! Fig 14: Firmament places tasks ~20× faster than Quincy at 90 %
//! utilization, with identical (optimal) placement quality — plus the
//! full-scale paper point under capacity-bucketed ladders.
//!
//! Part 1 is the paper comparison: the Quincy cost model driven by the
//! speculative dual solver vs the Quincy configuration (cost scaling
//! only), placement-latency percentiles at the (scaled) 12,500-machine
//! point.
//!
//! Part 2 runs the same placement-latency experiment under the
//! **hierarchical topology model with bucketed rack → machine ladders**
//! ([`BundleShape::Bucketed`]) — the convex load-ladder policy whose
//! per-slot form was the full-scale graph-size blocker (ROADMAP "Ladder
//! width vs graph size"). Under `--full` this is the genuine
//! 12,500-machine paper point (with a shorter simulated horizon so the
//! full-scale sim fits the bench budget); CI gates it at reduced scale
//! via the `scale-smoke` job.

use firmament_bench::{header, row, verdict, Scale};
use firmament_cluster::TopologySpec;
use firmament_core::Firmament;
use firmament_mcmf::{DualConfig, SolverKind};
use firmament_policies::{
    BundleShape, HierarchicalTopologyCostModel, QuincyConfig, QuincyCostModel, TopologyConfig,
};
use firmament_sim::{run_flow_sim, SimConfig, TraceSpec};

fn config(machines: usize, runtime_scale: f64, duration_s: f64) -> SimConfig {
    SimConfig {
        topology: TopologySpec {
            machines,
            machines_per_rack: 40,
            slots_per_machine: 12,
        },
        trace: TraceSpec {
            machines,
            slots_per_machine: 12,
            target_utilization: 0.9,
            median_task_duration_s: 30.0,
            speedup: 1.0,
            seed: 4,
            job_size_scale: machines as f64 / 12_500.0,
            ..TraceSpec::default()
        },
        duration_s,
        // Charge solver runtime as if the cluster were at paper scale:
        // the scaled-down graph solves proportionally faster, but Fig 14
        // measures how solver runtime shapes placement latency.
        runtime_scale,
        ..SimConfig::default()
    }
}

fn run_quincy(kind: SolverKind, machines: usize, runtime_scale: f64) -> firmament_sim::SimReport {
    let firmament = Firmament::with_solver(
        QuincyCostModel::new(QuincyConfig::default()),
        DualConfig {
            kind,
            ..Default::default()
        },
    );
    run_flow_sim(&config(machines, runtime_scale, 60.0), firmament)
}

fn run_bucketed(kind: SolverKind, machines: usize, duration_s: f64) -> firmament_sim::SimReport {
    let firmament = Firmament::with_solver(
        HierarchicalTopologyCostModel::with_config(TopologyConfig {
            shape: BundleShape::Bucketed,
            ..TopologyConfig::default()
        }),
        DualConfig {
            kind,
            ..Default::default()
        },
    );
    // Faithful runtime charging: at this point the graph *is* the
    // full-size graph (no scale-up factor).
    run_flow_sim(&config(machines, 1.0, duration_s), firmament)
}

fn main() {
    let scale = Scale::from_args();
    let machines = scale.machines(12_500);
    let rts = scale.divisor as f64;
    let mut firmament = run_quincy(SolverKind::Dual, machines, rts);
    let mut quincy = run_quincy(SolverKind::CostScalingOnly, machines, rts);
    header(&["percentile", "firmament_latency_s", "quincy_latency_s"]);
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
        row(&[
            format!("{p}"),
            format!("{:.4}", firmament.placement_latency.percentile(p)),
            format!("{:.4}", quincy.placement_latency.percentile(p)),
        ]);
    }
    let f50 = firmament.placement_latency.percentile(50.0);
    let q50 = quincy.placement_latency.percentile(50.0);

    // ---- Part 2: the paper point under bucketed convex ladders --------
    // A shorter horizon at full scale: every round still schedules the
    // whole 12,500-machine workload; the horizon only bounds how many
    // churn rounds the sim replays.
    let duration_s = if scale.divisor == 1 { 10.0 } else { 60.0 };
    let mut bucketed = run_bucketed(SolverKind::Dual, machines, duration_s);
    header(&[
        "series",
        "machines",
        "p50_latency_s",
        "p90_latency_s",
        "p99_latency_s",
        "rounds",
        "median_round_s",
    ]);
    row(&[
        "bucketed-hierarchy-dual".into(),
        machines.to_string(),
        format!("{:.4}", bucketed.placement_latency.percentile(50.0)),
        format!("{:.4}", bucketed.placement_latency.percentile(90.0)),
        format!("{:.4}", bucketed.placement_latency.percentile(99.0)),
        bucketed.rounds.to_string(),
        format!("{:.4}", bucketed.algorithm_runtime.percentile(50.0)),
    ]);
    let b50 = bucketed.placement_latency.percentile(50.0);
    let bucketed_ok = bucketed.rounds > 0 && bucketed.placed_tasks > 0;

    verdict(
        "fig14",
        f50 < q50 && bucketed_ok,
        &format!(
            "Firmament median placement latency {f50:.3}s vs Quincy {q50:.3}s \
             ({:.1}x; paper: 20x at full scale); bucketed-ladder paper point \
             ran {} rounds at median latency {b50:.3}s",
            q50 / f50.max(1e-9),
            bucketed.rounds
        ),
    );
    // Only the bucketed paper-point gate fails the run: the latency
    // comparison is wall-clock-sensitive (and known to invert at `--full`,
    // where faithful runtime charging fits only 1–2 rounds into the
    // horizon — see ROADMAP), so its verdict is advisory.
    if !bucketed_ok {
        std::process::exit(1);
    }
}
