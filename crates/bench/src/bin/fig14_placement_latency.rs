//! Fig 14: Firmament places tasks ~20× faster than Quincy at 90 %
//! utilization, with identical (optimal) placement quality.

use firmament_bench::{header, row, verdict, Scale};
use firmament_cluster::TopologySpec;
use firmament_core::Firmament;
use firmament_mcmf::{DualConfig, SolverKind};
use firmament_policies::{QuincyConfig, QuincyCostModel};
use firmament_sim::{run_flow_sim, SimConfig, TraceSpec};

fn run(kind: SolverKind, machines: usize, runtime_scale: f64) -> firmament_sim::SimReport {
    let config = SimConfig {
        topology: TopologySpec {
            machines,
            machines_per_rack: 40,
            slots_per_machine: 12,
        },
        trace: TraceSpec {
            machines,
            slots_per_machine: 12,
            target_utilization: 0.9,
            median_task_duration_s: 30.0,
            speedup: 1.0,
            seed: 4,
            job_size_scale: machines as f64 / 12_500.0,
            ..TraceSpec::default()
        },
        duration_s: 60.0,
        // Charge solver runtime as if the cluster were at paper scale:
        // the scaled-down graph solves proportionally faster, but Fig 14
        // measures how solver runtime shapes placement latency.
        runtime_scale,
        ..SimConfig::default()
    };
    let firmament = Firmament::with_solver(
        QuincyCostModel::new(QuincyConfig::default()),
        DualConfig {
            kind,
            ..Default::default()
        },
    );
    run_flow_sim(&config, firmament)
}

fn main() {
    let scale = Scale::from_args();
    let machines = scale.machines(12_500);
    let rts = scale.divisor as f64;
    let mut firmament = run(SolverKind::Dual, machines, rts);
    let mut quincy = run(SolverKind::CostScalingOnly, machines, rts);
    header(&["percentile", "firmament_latency_s", "quincy_latency_s"]);
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
        row(&[
            format!("{p}"),
            format!("{:.4}", firmament.placement_latency.percentile(p)),
            format!("{:.4}", quincy.placement_latency.percentile(p)),
        ]);
    }
    let f50 = firmament.placement_latency.percentile(50.0);
    let q50 = quincy.placement_latency.percentile(50.0);
    verdict(
        "fig14",
        f50 < q50,
        &format!(
            "Firmament median placement latency {f50:.3}s vs Quincy {q50:.3}s ({:.1}x; paper: 20x at full scale)",
            q50 / f50.max(1e-9)
        ),
    );
}
