//! Fig 15 / Table 15b: lower preference thresholds add arcs. Firmament
//! stays sub-second where Quincy's cost scaling exceeds 40 s, and a 2 %
//! threshold lifts input data locality from 56 % to 71 %.

use firmament_bench::{header, row, verdict, warmed_cluster, Scale};
use firmament_core::{extract_placements, Firmament, Placement};
use firmament_mcmf::{cost_scaling, relaxation, SolveOptions};
use firmament_policies::{QuincyConfig, QuincyCostModel};

fn main() {
    let scale = Scale::from_args();
    let machines = scale.machines(12_500);
    header(&[
        "threshold_pct",
        "relaxation_s",
        "cost_scaling_s",
        "arcs",
        "locality_pct",
    ]);
    let mut results = Vec::new();
    for threshold in [0.14f64, 0.02] {
        let cfg = QuincyConfig {
            machine_pref_threshold: threshold,
            rack_pref_threshold: threshold,
            max_prefs_per_task: if threshold < 0.1 { 64 } else { 10 },
            ..QuincyConfig::default()
        };
        let (state, firmament, _) = warmed_cluster(
            machines,
            12,
            0.9,
            77,
            Firmament::new(QuincyCostModel::new(cfg)),
        );
        let graph = firmament.graph().clone();
        let arcs = graph.arc_count();
        let mut g = graph.clone();
        let rx = relaxation::solve(&mut g, &SolveOptions::unlimited())
            .expect("rx")
            .runtime
            .as_secs_f64();
        // Measure locality of the optimal placement.
        let placements = extract_placements(&g);
        let mut local_bytes = 0f64;
        let mut total_bytes = 0f64;
        for (task, p) in &placements {
            if let (Placement::OnMachine(m), Some(t)) = (p, state.tasks.get(task)) {
                if t.input_bytes > 0 {
                    total_bytes += t.input_bytes as f64;
                    local_bytes +=
                        t.input_bytes as f64 * state.blocks.machine_locality(&t.input_blocks, *m);
                }
            }
        }
        let locality = if total_bytes > 0.0 {
            local_bytes / total_bytes * 100.0
        } else {
            0.0
        };
        let mut g = graph.clone();
        let cs = cost_scaling::solve(&mut g, &SolveOptions::unlimited())
            .expect("cs")
            .runtime
            .as_secs_f64();
        row(&[
            format!("{:.0}", threshold * 100.0),
            format!("{rx:.4}"),
            format!("{cs:.4}"),
            arcs.to_string(),
            format!("{locality:.0}"),
        ]);
        results.push((rx, cs, arcs, locality));
    }
    let more_arcs = results[1].2 > results[0].2;
    let better_locality = results[1].3 >= results[0].3;
    let relax_still_fast = results[1].0 < results[1].1;
    verdict(
        "fig15",
        more_arcs && better_locality && relax_still_fast,
        "2% threshold: more arcs, higher locality, relaxation still beats cost scaling",
    );
}
