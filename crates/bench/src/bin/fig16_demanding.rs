//! Fig 16: at sustained ~97 % utilization, Firmament's dual solver
//! outperforms relaxation-only (which degenerates) and cost-scaling-only
//! (Quincy), and recovers from overload earlier.

use firmament_bench::{header, row, verdict, Scale};
use firmament_cluster::TopologySpec;
use firmament_core::Firmament;
use firmament_mcmf::{DualConfig, SolverKind};
use firmament_policies::{QuincyConfig, QuincyCostModel};
use firmament_sim::{run_flow_sim, SimConfig, TraceSpec};

fn run(kind: SolverKind, machines: usize, runtime_scale: f64) -> firmament_sim::SimReport {
    let config = SimConfig {
        topology: TopologySpec {
            machines,
            machines_per_rack: 40,
            slots_per_machine: 9, // shrunken slots → transient oversubscription
        },
        trace: TraceSpec {
            machines,
            slots_per_machine: 9,
            target_utilization: 0.97,
            median_task_duration_s: 20.0,
            seed: 16,
            job_size_scale: machines as f64 / 12_500.0,
            ..TraceSpec::default()
        },
        duration_s: 45.0,
        runtime_scale,
        ..SimConfig::default()
    };
    run_flow_sim(
        &config,
        Firmament::with_solver(
            QuincyCostModel::new(QuincyConfig::default()),
            DualConfig {
                kind,
                ..Default::default()
            },
        ),
    )
}

fn main() {
    let scale = Scale::from_args();
    let machines = scale.machines(12_500);
    let rts = scale.divisor as f64;
    let relax = run(SolverKind::RelaxationOnly, machines, rts);
    let quincy = run(SolverKind::CostScalingOnly, machines, rts);
    let firmament = run(SolverKind::Dual, machines, rts);
    header(&["series", "sim_time_s", "algorithm_runtime_s"]);
    for (name, report) in [
        ("relaxation_only", &relax),
        ("cost_scaling_quincy", &quincy),
        ("firmament", &firmament),
    ] {
        for (t, r) in &report.runtime_timeline {
            row(&[name.to_string(), format!("{t:.2}"), format!("{r:.4}")]);
        }
    }
    let max_of = |r: &firmament_sim::SimReport| {
        r.runtime_timeline
            .iter()
            .map(|(_, x)| *x)
            .fold(0.0f64, f64::max)
    };
    let f = max_of(&firmament);
    let rx = max_of(&relax);
    verdict(
        "fig16",
        f <= rx,
        &format!(
            "worst-round runtime: firmament {f:.3}s <= relaxation-only {rx:.3}s (paper: dual wins under overload)"
        ),
    );
}
