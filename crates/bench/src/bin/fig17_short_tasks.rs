//! Fig 17: Firmament's breaking point on a workload of only short tasks.
//!
//! 10-task jobs at 80 % load with shrinking task duration; job response
//! time stays near-ideal (= task duration) until the solver can no longer
//! keep up. Paper: ~5 ms tasks at 100 machines, ~375 ms at 1,000.

use firmament_bench::{header, row, verdict, Scale};
use firmament_cluster::TopologySpec;
use firmament_core::Firmament;
use firmament_policies::LoadSpreadingCostModel;
use firmament_sim::trace::FixedWorkload;
use firmament_sim::{run_flow_sim, SimConfig, TraceSpec};

fn main() {
    let scale = Scale::from_args();
    header(&[
        "machines",
        "task_duration_ms",
        "median_job_response_ms",
        "overhead_ratio",
    ]);
    let mut ok = true;
    for paper_machines in [100usize, 1000] {
        let machines = scale.machines(paper_machines);
        for duration_ms in [5000u64, 2000, 1000, 500, 250, 100] {
            let d = duration_ms as f64 / 1000.0;
            let config = SimConfig {
                topology: TopologySpec {
                    machines,
                    machines_per_rack: 40,
                    slots_per_machine: 4,
                },
                trace: TraceSpec {
                    machines,
                    slots_per_machine: 4,
                    target_utilization: 0.8,
                    seed: 17,
                    fixed: Some(FixedWorkload {
                        tasks_per_job: 10,
                        duration_s: d,
                    }),
                    ..TraceSpec::default()
                },
                duration_s: (d * 20.0).max(5.0),
                warmup: false,
                ..SimConfig::default()
            };
            let mut report = run_flow_sim(&config, Firmament::new(LoadSpreadingCostModel::new()));
            if report.job_response.is_empty() {
                continue;
            }
            let median = report.job_response.percentile(50.0) * 1000.0;
            let ratio = median / duration_ms as f64;
            row(&[
                machines.to_string(),
                duration_ms.to_string(),
                format!("{median:.1}"),
                format!("{ratio:.2}"),
            ]);
            // Near-ideal at long durations.
            if duration_ms >= 2000 && ratio > 2.0 {
                ok = false;
            }
        }
    }
    verdict(
        "fig17",
        ok,
        "job response stays near-ideal for longer tasks and deviates as durations shrink",
    );
}
