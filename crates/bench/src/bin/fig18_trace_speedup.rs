//! Fig 18: Firmament keeps up with a 300×-accelerated Google workload;
//! relaxation alone develops multi-second tails past 150×.

use firmament_bench::{header, row, verdict, Scale};
use firmament_cluster::TopologySpec;
use firmament_core::Firmament;
use firmament_mcmf::{DualConfig, SolverKind};
use firmament_policies::{QuincyConfig, QuincyCostModel};
use firmament_sim::{run_flow_sim, SimConfig, TraceSpec};

fn run(
    kind: SolverKind,
    machines: usize,
    speedup: f64,
    runtime_scale: f64,
) -> firmament_sim::SimReport {
    let config = SimConfig {
        topology: TopologySpec {
            machines,
            machines_per_rack: 40,
            slots_per_machine: 12,
        },
        trace: TraceSpec {
            machines,
            slots_per_machine: 12,
            target_utilization: 0.85,
            speedup,
            seed: 18,
            job_size_scale: machines as f64 / 12_500.0,
            ..TraceSpec::default()
        },
        duration_s: 30.0,
        runtime_scale,
        ..SimConfig::default()
    };
    run_flow_sim(
        &config,
        Firmament::with_solver(
            QuincyCostModel::new(QuincyConfig::default()),
            DualConfig {
                kind,
                ..Default::default()
            },
        ),
    )
}

fn main() {
    let scale = Scale::from_args();
    let machines = scale.machines(12_500);
    header(&["speedup", "series", "p50_s", "p75_s", "p99_s", "max_s"]);
    let mut firmament_beats = 0usize;
    let mut points = 0usize;
    for speedup in [50.0f64, 100.0, 150.0, 200.0, 250.0, 300.0] {
        let rts = scale.divisor as f64;
        let mut dual = run(SolverKind::Dual, machines, speedup, rts);
        let mut relax = run(SolverKind::RelaxationOnly, machines, speedup, rts);
        for (name, r) in [("firmament", &mut dual), ("relaxation_only", &mut relax)] {
            if r.placement_latency.is_empty() {
                continue;
            }
            row(&[
                format!("{speedup:.0}"),
                name.to_string(),
                format!("{:.4}", r.placement_latency.percentile(50.0)),
                format!("{:.4}", r.placement_latency.percentile(75.0)),
                format!("{:.4}", r.placement_latency.percentile(99.0)),
                format!("{:.4}", r.placement_latency.max()),
            ]);
        }
        if !dual.placement_latency.is_empty() && !relax.placement_latency.is_empty() {
            points += 1;
            if dual.placement_latency.max() <= relax.placement_latency.max() * 1.2 {
                firmament_beats += 1;
            }
        }
    }
    verdict(
        "fig18",
        firmament_beats * 2 >= points,
        "dual solver tail latency tracks or beats relaxation-only across speedups",
    );
}
