//! Fig 19: placement quality on the 40-machine testbed (simulated).
//!
//! Short batch analytics tasks reading 4–8 GB inputs; (a) otherwise-idle
//! network, (b) with background iperf/nginx traffic. Paper: Firmament's
//! network-aware policy is closest to isolation above p80 and improves the
//! p99 by 3.4× over SwarmKit/Kubernetes and 6.2× over Sparrow.

use firmament_baselines::{
    KubernetesScheduler, MesosScheduler, SparrowScheduler, SwarmKitScheduler,
};
use firmament_bench::{header, row, verdict};
use firmament_sim::{run_testbed, TestbedConfig, TestbedScheduler};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tasks = if quick { 80 } else { 200 };
    for background in [false, true] {
        println!(
            "# Fig 19{} — {}",
            if background { "b" } else { "a" },
            if background {
                "with background iperf/nginx traffic"
            } else {
                "idle network"
            }
        );
        header(&["scheduler", "p50_s", "p80_s", "p99_s"]);
        let config = TestbedConfig {
            tasks,
            background,
            seed: 19,
            ..TestbedConfig::default()
        };
        let mut results = Vec::new();
        let schedulers: Vec<(&str, TestbedScheduler)> = vec![
            ("idle_isolation", TestbedScheduler::Idle),
            ("firmament", TestbedScheduler::Firmament),
            (
                "swarmkit",
                TestbedScheduler::Baseline(Box::new(SwarmKitScheduler)),
            ),
            (
                "kubernetes",
                TestbedScheduler::Baseline(Box::new(KubernetesScheduler)),
            ),
            (
                "mesos",
                TestbedScheduler::Baseline(Box::new(MesosScheduler::new())),
            ),
            (
                "sparrow",
                TestbedScheduler::Baseline(Box::new(SparrowScheduler::new(19))),
            ),
        ];
        for (name, sched) in schedulers {
            let mut samples = run_testbed(&config, sched);
            row(&[
                name.to_string(),
                format!("{:.2}", samples.percentile(50.0)),
                format!("{:.2}", samples.percentile(80.0)),
                format!("{:.2}", samples.percentile(99.0)),
            ]);
            results.push((name, samples.percentile(99.0)));
        }
        if background {
            let p99 = |n: &str| {
                results
                    .iter()
                    .find(|(name, _)| *name == n)
                    .map(|(_, v)| *v)
                    .unwrap_or(f64::NAN)
            };
            let firm = p99("firmament");
            let swarm = p99("swarmkit");
            let sparrow = p99("sparrow");
            verdict(
                "fig19",
                firm <= swarm && firm <= sparrow,
                &format!(
                    "p99: firmament {firm:.1}s vs swarmkit {:.1}x, sparrow {:.1}x (paper: 3.4x / 6.2x)",
                    swarm / firm.max(1e-9),
                    sparrow / firm.max(1e-9)
                ),
            );
        }
    }
}
