//! The cluster-scale regression sweep (ROADMAP "Ladder width vs graph
//! size" — the gate for every full-scale figure).
//!
//! Sweeps machines × slots × the shipped load-based policies ×
//! [`BundleShape`] over trace-shaped workloads, printing per point:
//! graph size (nodes/arcs), aggregate → machine ladder arcs vs the
//! `O(m·log s)` bound, cold- and warm-round wall times, and delta-feed
//! telemetry. A second section prints the per-slot vs bucketed placement
//! quality of canonicalized one-round bursts (true-cost delta per task,
//! max per-machine load vs the fair-share and bucket-boundary bounds).
//!
//! Used as the CI `scale-smoke` gate at reduced scale: exits non-zero if
//! - any bucketed point exceeds the `O(m·log s)` ladder-arc bound,
//! - any aligned burst deviates from the per-slot optimum at all, or any
//!   burst exceeds one marginal step per task / the bucket-boundary
//!   spreading bound,
//! - bucketed ladders fail to shrink the per-slot ladder arcs at 12
//!   slots by at least 2×.
//!
//! `--full` additionally runs the 12 500-machine paper point (bucketed).

use firmament_bench::scale::{
    bucket_ceiling, burst_quality, ladder_arc_bound, run_scale_point, BurstOutcome, ScalePoint,
    ScalePointSpec, ScalePolicy,
};
use firmament_bench::{header, row, verdict, Scale};
use firmament_policies::BundleShape;

fn shape_name(shape: BundleShape) -> &'static str {
    match shape {
        BundleShape::PerSlot => "per-slot",
        BundleShape::Bucketed => "bucketed",
    }
}

/// Column set matching [`point_row`] — one definition, used by both the
/// sweep table and the `--full` paper-point table.
const POINT_COLUMNS: [&str; 15] = [
    "policy",
    "shape",
    "machines",
    "slots",
    "nodes",
    "arcs",
    "ladder_arcs",
    "ladder_bound",
    "cold_round_s",
    "warm_round_median_s",
    "warm_deltas",
    "warm_repricings",
    "race_skips",
    "placed",
    "unscheduled",
];

fn point_row(p: &ScalePoint, bound: usize) {
    row(&[
        p.spec.policy.name().into(),
        shape_name(p.spec.shape).into(),
        p.spec.machines.to_string(),
        p.spec.slots.to_string(),
        p.nodes.to_string(),
        p.arcs.to_string(),
        p.ladder_arcs.to_string(),
        bound.to_string(),
        format!("{:.4}", p.cold_round_s),
        format!("{:.4}", p.warm_round_median_s()),
        p.warm_deltas.to_string(),
        p.warm_repricings.to_string(),
        p.race_skips.to_string(),
        p.placed.to_string(),
        p.unscheduled.to_string(),
    ]);
}

fn main() {
    let scale = Scale::from_args();
    let mut ok = true;

    // ---- Graph-size / round-time sweep --------------------------------
    header(&POINT_COLUMNS);
    let machine_points = [
        scale.machines(1250),
        scale.machines(2500),
        scale.machines(5000),
    ];
    let slot_points: [u32; 2] = [12, 48];
    let mut shrink_ok = true;
    for &machines in &machine_points {
        for &slots in &slot_points {
            for policy in ScalePolicy::ALL {
                let mut per_shape = Vec::new();
                for shape in [BundleShape::PerSlot, BundleShape::Bucketed] {
                    let spec = ScalePointSpec {
                        utilization: 0.5,
                        churn_rounds: 3,
                        seed: 7,
                        ..ScalePointSpec::new(policy, shape, machines, slots)
                    };
                    let p = run_scale_point(&spec);
                    let bound = ladder_arc_bound(machines, slots, shape);
                    if p.ladder_arcs > bound {
                        eprintln!(
                            "# FAIL {policy:?}/{shape:?} {machines}x{slots}: \
                             {} ladder arcs exceed the bound {bound}",
                            p.ladder_arcs
                        );
                        ok = false;
                    }
                    point_row(&p, bound);
                    per_shape.push(p.ladder_arcs);
                }
                // The compression must actually bite: ≥ 2× fewer ladder
                // arcs than per-slot at 12+ slots.
                if per_shape[1] * 2 > per_shape[0] {
                    eprintln!(
                        "# FAIL {policy:?} {machines}x{slots}: bucketed {} vs per-slot {} \
                         ladder arcs — compression under 2x",
                        per_shape[1], per_shape[0]
                    );
                    shrink_ok = false;
                }
            }
        }
    }
    ok &= shrink_ok;

    // ---- Placement quality: per-slot vs bucketed bursts ---------------
    header(&[
        "policy",
        "machines",
        "slots",
        "burst",
        "aligned",
        "perslot_max",
        "bucketed_max",
        "perslot_cost",
        "bucketed_cost",
        "delta_per_task_units",
    ]);
    let (m, slots) = (8usize, 12u32);
    for policy in ScalePolicy::ALL {
        // k = 4 lands on a bucket boundary (1, 2, 4, 8, 12): zero delta.
        // k = 2.5 (20 tasks) is unaligned: bounded by one step per task
        // and by the bucket boundary above ⌈k⌉ per machine.
        for &(tasks, aligned) in &[(4 * m, true), (20, false)] {
            let q = burst_quality(policy, m, slots, tasks);
            let per_task = q.per_task_units(policy, slots);
            let fair = tasks.div_ceil(m);
            row(&[
                policy.name().into(),
                m.to_string(),
                slots.to_string(),
                tasks.to_string(),
                aligned.to_string(),
                q.per_slot.max_load.to_string(),
                q.bucketed.max_load.to_string(),
                q.per_slot.true_cost.to_string(),
                q.bucketed.true_cost.to_string(),
                format!("{per_task:.3}"),
            ]);
            let placed_ok = |b: &BurstOutcome| b.placed == tasks;
            if !placed_ok(&q.per_slot) || !placed_ok(&q.bucketed) {
                eprintln!(
                    "# FAIL {}: burst not fully placed in one round",
                    policy.name()
                );
                ok = false;
            }
            if q.per_slot.max_load > fair + 1 {
                eprintln!(
                    "# FAIL {}: per-slot burst exceeded fair share + 1: {}",
                    policy.name(),
                    q.per_slot.max_load
                );
                ok = false;
            }
            if q.bucketed.max_load as i64 > bucket_ceiling(fair as i64) {
                eprintln!(
                    "# FAIL {}: bucketed burst exceeded the bucket boundary {}: {}",
                    policy.name(),
                    bucket_ceiling(fair as i64),
                    q.bucketed.max_load
                );
                ok = false;
            }
            if aligned && q.delta != 0 {
                eprintln!(
                    "# FAIL {}: boundary-aligned burst deviated from the per-slot optimum by {}",
                    policy.name(),
                    q.delta
                );
                ok = false;
            }
            if per_task > 1.0 {
                eprintln!(
                    "# FAIL {}: quality delta {per_task:.3} marginal steps per task exceeds 1",
                    policy.name()
                );
                ok = false;
            }
        }
    }

    // ---- The full-scale paper point (bucketed), only under --full -----
    if scale.divisor == 1 {
        header(&POINT_COLUMNS);
        let spec = ScalePointSpec {
            utilization: 0.5,
            churn_rounds: 3,
            seed: 7,
            ..ScalePointSpec::new(
                ScalePolicy::LoadSpreading,
                BundleShape::Bucketed,
                12_500,
                12,
            )
        };
        let p = run_scale_point(&spec);
        let bound = ladder_arc_bound(12_500, 12, BundleShape::Bucketed);
        ok &= p.ladder_arcs <= bound;
        point_row(&p, bound);
    }

    verdict(
        "scale_regression",
        ok,
        &format!(
            "bucketed ladders hold aggregate→machine arcs at O(m·log s) \
             (12 slots: 5 segments/machine vs 12) with burst quality within \
             1 marginal step per task of the per-slot optimum{}",
            if scale.divisor == 1 {
                " — incl. the 12,500-machine paper point"
            } else {
                ""
            }
        ),
    );
    if !ok {
        std::process::exit(1);
    }
}
