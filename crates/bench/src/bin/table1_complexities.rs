//! Table 1: worst-case time complexities of the four MCMF algorithms,
//! plus an empirical scaling sanity check on scheduling graphs.

use firmament_bench::{header, row, verdict};
use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
use firmament_mcmf::invariants::worst_case_complexity;
use firmament_mcmf::{cost_scaling, cycle_canceling, relaxation, ssp, AlgorithmKind, SolveOptions};

fn main() {
    header(&["algorithm", "worst_case", "n200_ms", "n800_ms"]);
    let mut rows: Vec<(AlgorithmKind, f64, f64)> = Vec::new();
    for kind in [
        AlgorithmKind::Relaxation,
        AlgorithmKind::CycleCanceling,
        AlgorithmKind::CostScaling,
        AlgorithmKind::SuccessiveShortestPath,
    ] {
        let mut times = Vec::new();
        for tasks in [200usize, 800] {
            let spec = InstanceSpec {
                tasks,
                machines: tasks / 4,
                slots_per_machine: 5,
                ..InstanceSpec::default()
            };
            let mut inst = scheduling_instance(1, &spec);
            let opts = SolveOptions::unlimited();
            let sol = match kind {
                AlgorithmKind::Relaxation => relaxation::solve(&mut inst.graph, &opts),
                AlgorithmKind::CycleCanceling => cycle_canceling::solve(&mut inst.graph, &opts),
                AlgorithmKind::CostScaling => cost_scaling::solve(&mut inst.graph, &opts),
                AlgorithmKind::SuccessiveShortestPath => ssp::solve(&mut inst.graph, &opts),
                _ => unreachable!(),
            }
            .expect("solve");
            times.push(sol.runtime.as_secs_f64() * 1000.0);
        }
        row(&[
            kind.to_string(),
            worst_case_complexity(kind).to_string(),
            format!("{:.2}", times[0]),
            format!("{:.2}", times[1]),
        ]);
        rows.push((kind, times[0], times[1]));
    }
    // The paper's point: worst-case order does not predict practice —
    // relaxation (worst bound) is fastest on scheduling graphs.
    let relax = rows
        .iter()
        .find(|r| r.0 == AlgorithmKind::Relaxation)
        .unwrap();
    let fastest = rows.iter().all(|r| relax.2 <= r.2 * 1.5);
    verdict(
        "table1",
        fastest,
        "relaxation is competitive or fastest despite the worst theoretical bound",
    );
}
