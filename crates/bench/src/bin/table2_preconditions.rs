//! Table 2: per-iteration preconditions of each algorithm, as encoded in
//! `firmament_mcmf::invariants` (and verified by its unit tests).

use firmament_bench::{header, row, verdict};
use firmament_mcmf::invariants::invariants;
use firmament_mcmf::AlgorithmKind;

fn main() {
    header(&[
        "algorithm",
        "feasibility",
        "reduced_cost_optimality",
        "eps_optimality",
    ]);
    let mark = |b: bool| if b { "yes" } else { "-" }.to_string();
    for kind in [
        AlgorithmKind::Relaxation,
        AlgorithmKind::CycleCanceling,
        AlgorithmKind::CostScaling,
        AlgorithmKind::SuccessiveShortestPath,
    ] {
        let inv = invariants(kind);
        row(&[
            kind.to_string(),
            mark(inv.feasibility),
            mark(inv.reduced_cost_optimality),
            mark(inv.eps_optimality),
        ]);
    }
    let cs = invariants(AlgorithmKind::CostScaling);
    verdict(
        "table2",
        cs.feasibility && cs.eps_optimality,
        "cost scaling needs feasibility AND eps-optimality, which is why it is hard to incrementalize",
    );
}
