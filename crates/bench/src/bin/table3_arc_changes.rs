//! Table 3: which arc changes force reoptimization of an optimal flow.

use firmament_bench::{header, row, verdict};
use firmament_flow::changes::{table3_cell, ArcChangeKind, Table3Cell};

fn main() {
    header(&["change", "rc<0", "rc=0", "rc>0"]);
    let fmt = |c: Table3Cell| match c {
        Table3Cell::Green => "ok".to_string(),
        Table3Cell::Red => "BREAKS".to_string(),
        Table3Cell::Orange(cond) => format!("breaks if {cond}"),
    };
    for (name, kind) in [
        ("increase_capacity", ArcChangeKind::IncreaseCapacity),
        ("decrease_capacity", ArcChangeKind::DecreaseCapacity),
        ("increase_cost", ArcChangeKind::IncreaseCost),
        ("decrease_cost", ArcChangeKind::DecreaseCost),
    ] {
        row(&[
            name.to_string(),
            fmt(table3_cell(kind, -1)),
            fmt(table3_cell(kind, 0)),
            fmt(table3_cell(kind, 1)),
        ]);
    }
    let feasibility_only_from_cap_decrease = matches!(
        table3_cell(ArcChangeKind::DecreaseCapacity, -1),
        Table3Cell::Red
    );
    verdict(
        "table3",
        feasibility_only_from_cap_decrease,
        "only capacity decreases can destroy feasibility; everything else affects optimality",
    );
}
