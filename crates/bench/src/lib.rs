//! Experiment harness shared by the figure/table reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §5 for the index). They print tab-separated rows — the
//! series the paper plots — plus a short "shape check" verdict comparing
//! the measured trend against the paper's qualitative claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scale;

use firmament_cluster::{ClusterEvent, ClusterState, TopologySpec};
use firmament_core::Firmament;
use firmament_policies::CostModel;
use firmament_sim::trace::{GoogleTraceGenerator, TraceSpec};
use std::time::{Duration, Instant};

/// Scale presets: the paper's cluster sizes, scaled down by `--scale` so
/// the suite completes on a laptop while preserving the curves' shape.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Divider applied to the paper's machine counts (default 10).
    pub divisor: usize,
}

impl Scale {
    /// Parses `--scale <n>` / `--full` from the command line.
    pub fn from_args() -> Scale {
        let mut divisor = 10;
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            if a == "--full" {
                divisor = 1;
            }
            if a == "--scale" {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    divisor = v.max(1);
                }
            }
        }
        Scale { divisor }
    }

    /// Scales one of the paper's machine counts.
    pub fn machines(&self, paper_machines: usize) -> usize {
        (paper_machines / self.divisor).max(10)
    }
}

/// Builds a cluster plus Firmament scheduler at the given size, with the
/// machines registered, and fills it to `utilization` with trace workload.
///
/// Returns the state and scheduler ready for measurement; the initial
/// workload has been *submitted and placed* (one warm scheduling round).
pub fn warmed_cluster<C: CostModel>(
    machines: usize,
    slots: u32,
    utilization: f64,
    seed: u64,
    mut firmament: Firmament<C>,
) -> (ClusterState, Firmament<C>, GoogleTraceGenerator) {
    let mut state = ClusterState::with_topology(&TopologySpec {
        machines,
        machines_per_rack: 40,
        slots_per_machine: slots,
    });
    let mut ms: Vec<_> = state.machines.values().cloned().collect();
    ms.sort_by_key(|m| m.id);
    for m in ms {
        firmament
            .handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
            .expect("machine registration");
    }
    let mut generator = GoogleTraceGenerator::new(TraceSpec {
        machines,
        slots_per_machine: slots,
        target_utilization: utilization,
        seed,
        ..TraceSpec::default()
    });
    let warm = generator.warmup(&mut state);
    for a in warm {
        let ev = ClusterEvent::JobSubmitted {
            job: a.job.clone(),
            tasks: a.tasks.clone(),
        };
        state.apply(&ev);
        firmament.handle_event(&state, &ev).expect("submit");
    }
    let outcome = firmament.schedule(&state).expect("warm round");
    for action in &outcome.actions {
        if let firmament_core::SchedulingAction::Place { task, machine } = action {
            if state.machines[machine].has_free_slot() {
                let ev = ClusterEvent::TaskPlaced {
                    task: *task,
                    machine: *machine,
                    now: state.now,
                };
                state.apply(&ev);
                firmament.handle_event(&state, &ev).expect("place");
            }
        }
    }
    (state, firmament, generator)
}

/// Times a closure, returning its result and the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Minimal benchmark runner for the `benches/` targets (self-contained:
/// no external harness): runs `setup` once per sample, times `routine` on
/// the fresh input, and prints min/median/max seconds as a TSV row.
pub fn bench_case<T, R>(
    name: &str,
    samples: usize,
    mut setup: impl FnMut() -> T,
    mut routine: impl FnMut(T) -> R,
) {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        times.push(start.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    println!(
        "{name}\t{:.6}\t{median:.6}\t{:.6}",
        times[0],
        times[times.len() - 1]
    );
}

/// Prints the TSV header matching [`bench_case`] rows.
pub fn bench_header() {
    header(&["benchmark", "min_s", "median_s", "max_s"]);
}

/// Prints a TSV header row.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Prints a TSV data row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Formats seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Prints the shape-check verdict line consumed by EXPERIMENTS.md.
pub fn verdict(experiment: &str, holds: bool, detail: &str) {
    println!(
        "# VERDICT {experiment}: {} — {detail}",
        if holds {
            "SHAPE HOLDS"
        } else {
            "SHAPE DEVIATES"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_policies::LoadSpreadingCostModel;

    #[test]
    fn scale_preset_floors_at_ten() {
        let s = Scale { divisor: 100 };
        assert_eq!(s.machines(50), 10);
        assert_eq!(s.machines(12_500), 125);
    }

    #[test]
    fn warmed_cluster_reaches_utilization() {
        let (state, firmament, _) =
            warmed_cluster(20, 8, 0.5, 7, Firmament::new(LoadSpreadingCostModel::new()));
        assert!(
            state.slot_utilization() >= 0.4,
            "{}",
            state.slot_utilization()
        );
        assert!(state.slot_utilization() <= 1.0);
        assert!(firmament.rounds() >= 1);
    }

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(d.as_secs() < 5);
    }
}
