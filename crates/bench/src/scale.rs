//! The cluster-scale regression testbed.
//!
//! PR 4's per-slot convex ladders buy one-round spreading but multiply
//! aggregate → machine arcs by the slot count — at the paper's
//! 12 500-machine fig3 scale that is ~150 000 parallel arcs for
//! load-spreading alone (ROADMAP "Ladder width vs graph size").
//! Capacity-bucketed ladders ([`ArcBundle::bucketed`]) compress each
//! ladder to `O(log slots)` segments; this module is the harness that
//! *measures* what the compression buys and *pins* what it must not cost:
//!
//! - [`run_scale_point`] builds a trace-warmed cluster at a given
//!   machines × slots × policy × [`BundleShape`] point, runs one cold
//!   round plus a configurable number of churn rounds (completions +
//!   arrivals through the delta feed), and records graph size (nodes,
//!   arcs, ladder arcs), per-round wall times, and solver telemetry.
//! - [`one_round_burst`] / [`burst_quality`] measure placement quality:
//!   the same `k·m` identical-task burst solved under `PerSlot` and
//!   `Bucketed`, placements canonicalized via
//!   [`firmament_mcmf::canonical`] so degenerate optima extract
//!   deterministically, and both load vectors evaluated under the
//!   policy's **true per-slot marginal cost** — the quality delta is a
//!   number, not a vibe.
//! - [`ladder_arc_bound`] is the `O(m·log s)` bound the regression tests
//!   (and the CI `scale-smoke` job) assert: a future change that silently
//!   re-inflates the ladder arcs fails the build.
//!
//! The quality contract, made precise (and pinned by
//! `tests/scale_regression.rs`): bucketed segment costs are bucket means
//! of the per-slot marginals, so any load landing on a bucket boundary
//! (1, 2, 4, 8, …, slots per machine) prices *exactly* like the per-slot
//! ladder — a boundary-aligned burst places with zero true-cost delta —
//! and any other load stays within one ladder step per task of the
//! per-slot optimum, with per-machine spreading bounded by the next
//! bucket boundary above the fair share (vs `⌈k⌉ + 1` for per-slot).

use firmament_cluster::{ClusterEvent, ClusterState, TopologySpec};
use firmament_core::{extract_placements, Firmament, Placement, SchedulingAction};
use firmament_flow::NodeKind;
use firmament_mcmf::{canonicalize_flow, DualConfig, SolverKind};
use firmament_policies::{
    ArcBundle, BundleShape, CostModel, HierarchicalTopologyCostModel, LoadSpreadingCostModel,
    OctopusCostModel,
};
use firmament_sim::{GoogleTraceGenerator, TraceSpec};
use std::time::Instant;

pub use firmament_policies::load_spreading::COST_PER_TASK;

/// The shipped load-based policies the sweep covers — the three models
/// whose aggregate → machine ladders are per-slot by default and carry
/// the [`BundleShape`] knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePolicy {
    /// [`LoadSpreadingCostModel`]: linear marginals through one cluster
    /// aggregate.
    LoadSpreading,
    /// [`OctopusCostModel`]: quadratic marginals through one cluster
    /// aggregate.
    Octopus,
    /// [`HierarchicalTopologyCostModel`]: linear marginals on the
    /// rack → machine level of a cluster → rack → machine hierarchy.
    Hierarchy,
}

impl ScalePolicy {
    /// Every swept policy.
    pub const ALL: [ScalePolicy; 3] = [
        ScalePolicy::LoadSpreading,
        ScalePolicy::Octopus,
        ScalePolicy::Hierarchy,
    ];

    /// Short row label.
    pub fn name(self) -> &'static str {
        match self {
            ScalePolicy::LoadSpreading => "load-spreading",
            ScalePolicy::Octopus => "octopus",
            ScalePolicy::Hierarchy => "hierarchy",
        }
    }

    /// Builds the model with its ladders in the given shape.
    pub fn build(self, shape: BundleShape) -> Box<dyn CostModel> {
        match self {
            ScalePolicy::LoadSpreading => Box::new(LoadSpreadingCostModel::with_shape(shape)),
            ScalePolicy::Octopus => Box::new(OctopusCostModel::with_config(
                firmament_policies::OctopusConfig {
                    shape,
                    ..Default::default()
                },
            )),
            ScalePolicy::Hierarchy => Box::new(HierarchicalTopologyCostModel::with_config(
                firmament_policies::TopologyConfig {
                    shape,
                    ..Default::default()
                },
            )),
        }
    }

    /// The policy's true per-slot marginal cost of the `j`-th task on an
    /// idle machine — what both shapes are approximating, used to
    /// evaluate placements under the *declared* convex cost.
    pub fn marginal(self, j: i64) -> i64 {
        match self {
            ScalePolicy::LoadSpreading => LoadSpreadingCostModel::marginal_cost(0, j),
            ScalePolicy::Octopus => {
                let scale = firmament_policies::OctopusConfig::default().load_cost_scale;
                scale * (2 * j + 1)
            }
            ScalePolicy::Hierarchy => {
                firmament_policies::TopologyConfig::default().machine_load_cost * j
            }
        }
    }

    /// The largest single-slot marginal increment over `0..slots` — the
    /// "one cost unit" of the per-task quality bound.
    pub fn marginal_step(self, slots: i64) -> i64 {
        (1..slots.max(1))
            .map(|j| self.marginal(j) - self.marginal(j - 1))
            .max()
            .unwrap_or(0)
            .max(1)
    }

    /// Evaluates a per-machine load vector under the true per-slot
    /// convex cost.
    pub fn true_cost(self, loads: &[usize]) -> i64 {
        loads
            .iter()
            .map(|&l| (0..l as i64).map(|j| self.marginal(j)).sum::<i64>())
            .sum()
    }
}

/// The smallest geometric bucket boundary (0, 1, 2, 4, 8, …) at or above
/// `x` — the spreading granularity of a bucketed ladder: a one-round
/// burst with per-machine fair share `k` lands at most
/// `bucket_ceiling(⌈k⌉)` tasks on any machine.
pub fn bucket_ceiling(x: i64) -> i64 {
    let mut b = 0i64;
    let mut cap = 1i64;
    while b < x {
        b += cap;
        if b > 1 {
            cap *= 2;
        }
    }
    b
}

/// Upper bound on aggregate → machine ladder arcs at a scale point:
/// `machines × shape.max_segments(slots)` — the `O(m·log s)` assertion
/// for `Bucketed`, `O(m·s)` for `PerSlot`.
pub fn ladder_arc_bound(machines: usize, slots: u32, shape: BundleShape) -> usize {
    machines * shape.max_segments(slots as i64)
}

/// Counts the materialized aggregate → machine arcs (any aggregator kind
/// → machine, forward, positive or parked) — the quantity
/// [`ladder_arc_bound`] bounds.
pub fn ladder_arcs(graph: &firmament_flow::FlowGraph) -> usize {
    graph
        .arc_ids()
        .filter(|&a| {
            matches!(graph.kind(graph.dst(a)), NodeKind::Machine { .. })
                && matches!(
                    graph.kind(graph.src(a)),
                    NodeKind::ClusterAggregator
                        | NodeKind::RackAggregator { .. }
                        | NodeKind::RequestAggregator { .. }
                        | NodeKind::Other { .. }
                )
        })
        .count()
}

/// One point of the scale sweep.
#[derive(Debug, Clone)]
pub struct ScalePointSpec {
    /// Which policy's ladders are under test.
    pub policy: ScalePolicy,
    /// Ladder shape.
    pub shape: BundleShape,
    /// Cluster machines.
    pub machines: usize,
    /// Slots per machine.
    pub slots: u32,
    /// Trace warmup target utilization.
    pub utilization: f64,
    /// Churn rounds after the cold round (each: a batch of completions +
    /// one trace arrival, through the delta feed).
    pub churn_rounds: usize,
    /// Trace seed.
    pub seed: u64,
}

impl ScalePointSpec {
    /// A default-shaped point at the given size.
    pub fn new(policy: ScalePolicy, shape: BundleShape, machines: usize, slots: u32) -> Self {
        ScalePointSpec {
            policy,
            shape,
            machines,
            slots,
            utilization: 0.5,
            churn_rounds: 3,
            seed: 42,
        }
    }
}

/// What a scale point measured.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// The spec this point ran.
    pub spec: ScalePointSpec,
    /// Live graph nodes after warmup.
    pub nodes: usize,
    /// Live graph arcs after warmup.
    pub arcs: usize,
    /// Aggregate → machine ladder arcs after warmup (the bounded
    /// quantity).
    pub ladder_arcs: usize,
    /// Wall time of the cold (first) scheduling round, seconds.
    pub cold_round_s: f64,
    /// Wall times of the churn rounds, seconds.
    pub warm_rounds_s: Vec<f64>,
    /// Deltas fed to the solver across churn rounds.
    pub warm_deltas: usize,
    /// Pure re-pricings among those deltas.
    pub warm_repricings: usize,
    /// Churn rounds whose dual race was short-circuited (re-price-only).
    pub race_skips: usize,
    /// Tasks placed after the cold round.
    pub placed: usize,
    /// Tasks left unscheduled after the cold round.
    pub unscheduled: usize,
}

impl ScalePoint {
    /// Median churn-round wall time, seconds (0 when no churn rounds ran).
    pub fn warm_round_median_s(&self) -> f64 {
        if self.warm_rounds_s.is_empty() {
            return 0.0;
        }
        let mut v = self.warm_rounds_s.clone();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }
}

fn apply_round<C: CostModel>(
    state: &mut ClusterState,
    firmament: &mut Firmament<C>,
    actions: &[SchedulingAction],
) {
    for a in actions {
        let ev = match a {
            SchedulingAction::Place { task, machine } => {
                if !state.machines[machine].has_free_slot() {
                    continue;
                }
                ClusterEvent::TaskPlaced {
                    task: *task,
                    machine: *machine,
                    now: state.now,
                }
            }
            SchedulingAction::Preempt { task } => ClusterEvent::TaskPreempted {
                task: *task,
                now: state.now,
            },
        };
        state.apply(&ev);
        firmament.handle_event(state, &ev).expect("apply action");
    }
}

/// Runs one scale point: trace warmup, a cold round, then
/// `churn_rounds` delta-fed rounds of completions + one arrival each.
pub fn run_scale_point(spec: &ScalePointSpec) -> ScalePoint {
    let mut state = ClusterState::with_topology(&TopologySpec {
        machines: spec.machines,
        machines_per_rack: 40,
        slots_per_machine: spec.slots,
    });
    let mut firmament = Firmament::new(spec.policy.build(spec.shape));
    let mut ms: Vec<_> = state.machines.values().cloned().collect();
    ms.sort_by_key(|m| m.id);
    for m in ms {
        firmament
            .handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
            .expect("machine registration");
    }
    let mut generator = GoogleTraceGenerator::new(TraceSpec {
        machines: spec.machines,
        slots_per_machine: spec.slots,
        target_utilization: spec.utilization,
        seed: spec.seed,
        job_size_scale: (spec.machines as f64 / 12_500.0).max(0.01),
        ..TraceSpec::default()
    });
    for a in generator.warmup(&mut state) {
        let ev = ClusterEvent::JobSubmitted {
            job: a.job.clone(),
            tasks: a.tasks.clone(),
        };
        state.apply(&ev);
        firmament.handle_event(&state, &ev).expect("submit");
    }
    // Refresh without solving so graph-size numbers describe the built
    // network, then the timed cold round (refresh is idempotent).
    firmament.refresh(&state).expect("refresh");
    let nodes = firmament.graph().node_count();
    let arcs = firmament.graph().arc_count();
    let ladder = ladder_arcs(firmament.graph());

    let start = Instant::now();
    let outcome = firmament.schedule(&state).expect("cold round");
    let cold_round_s = start.elapsed().as_secs_f64();
    let placed = outcome.placed_tasks;
    let unscheduled = outcome.unscheduled_tasks;
    apply_round(&mut state, &mut firmament, &outcome.actions.clone());

    let mut warm_rounds_s = Vec::with_capacity(spec.churn_rounds);
    let mut warm_deltas = 0;
    let mut warm_repricings = 0;
    let mut race_skips = 0;
    for round in 0..spec.churn_rounds {
        // A batch of completions (1 % of running tasks, at least one)…
        let mut running: Vec<u64> = state.running_tasks().map(|t| t.id).collect();
        running.sort_unstable();
        for &t in running.iter().take((running.len() / 100).max(1)) {
            let ev = ClusterEvent::TaskCompleted {
                task: t,
                now: state.now,
            };
            state.apply(&ev);
            firmament.handle_event(&state, &ev).expect("complete");
        }
        // …one trace arrival, and a second of clock drift.
        let now = state.now + 1_000_000;
        let ev = ClusterEvent::Tick { now };
        state.apply(&ev);
        firmament.handle_event(&state, &ev).expect("tick");
        let arrival = generator.generate_job_at(now, &mut state);
        let ev = ClusterEvent::JobSubmitted {
            job: arrival.job,
            tasks: arrival.tasks,
        };
        state.apply(&ev);
        firmament.handle_event(&state, &ev).expect("arrival");

        let start = Instant::now();
        let outcome = firmament
            .schedule(&state)
            .unwrap_or_else(|e| panic!("churn round {round}: {e}"));
        warm_rounds_s.push(start.elapsed().as_secs_f64());
        warm_deltas += outcome.solver.deltas_fed;
        warm_repricings += outcome.solver.repricings;
        race_skips += usize::from(outcome.solver.race_skipped);
        apply_round(&mut state, &mut firmament, &outcome.actions.clone());
    }

    ScalePoint {
        spec: spec.clone(),
        nodes,
        arcs,
        ladder_arcs: ladder,
        cold_round_s,
        warm_rounds_s,
        warm_deltas,
        warm_repricings,
        race_skips,
        placed,
        unscheduled,
    }
}

/// The outcome of a one-round `k·m` burst under one shape.
#[derive(Debug, Clone)]
pub struct BurstOutcome {
    /// Per-machine loads after applying the single round's placements
    /// (machine-id order).
    pub loads: Vec<usize>,
    /// Tasks placed by the round.
    pub placed: usize,
    /// Largest per-machine load.
    pub max_load: usize,
    /// The load vector evaluated under the policy's true per-slot
    /// marginal cost.
    pub true_cost: i64,
}

/// Solves one identical-task burst in a single round under the given
/// shape, **canonicalizes** the optimal flow (so degenerate optima — the
/// equal-cost buckets of a partially filled level — extract the same
/// placement everywhere), and returns the resulting load distribution
/// with its true per-slot cost.
pub fn one_round_burst(
    policy: ScalePolicy,
    shape: BundleShape,
    machines: usize,
    slots: u32,
    tasks: usize,
) -> BurstOutcome {
    let mut state = ClusterState::with_topology(&TopologySpec {
        machines,
        machines_per_rack: 8,
        slots_per_machine: slots,
    });
    // Cost scaling only: per-algorithm deterministic, so canonicalized
    // placements are reproducible across runs and shapes.
    let mut firmament = Firmament::with_solver(
        policy.build(shape),
        DualConfig {
            kind: SolverKind::CostScalingOnly,
            ..Default::default()
        },
    );
    let mut ms: Vec<_> = state.machines.values().cloned().collect();
    ms.sort_by_key(|m| m.id);
    for m in ms {
        firmament
            .handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
            .expect("machine registration");
    }
    let mut generator = GoogleTraceGenerator::new(TraceSpec {
        machines,
        slots_per_machine: slots,
        ..TraceSpec::default()
    });
    let arrival = generator.burst_job_at(0, tasks, 60_000_000);
    let ev = ClusterEvent::JobSubmitted {
        job: arrival.job,
        tasks: arrival.tasks,
    };
    state.apply(&ev);
    firmament.handle_event(&state, &ev).expect("submit burst");
    firmament.schedule(&state).expect("single round");

    // Canonical optimum: identical placements for every optimal flow of
    // the same graph (mcmf::canonical), so bucket-level degeneracy cannot
    // make the quality numbers flap.
    let mut graph = firmament.manager_mut().take_graph();
    canonicalize_flow(&mut graph).expect("canonicalize");
    firmament.manager_mut().adopt_graph(graph);
    let placements = extract_placements(firmament.graph());

    let mut machine_ids: Vec<u64> = state.machines.keys().copied().collect();
    machine_ids.sort_unstable();
    let index: std::collections::HashMap<u64, usize> = machine_ids
        .iter()
        .enumerate()
        .map(|(i, &m)| (m, i))
        .collect();
    let mut loads = vec![0usize; machines];
    let mut placed = 0usize;
    for placement in placements.values() {
        if let Placement::OnMachine(m) = placement {
            loads[index[m]] += 1;
            placed += 1;
        }
    }
    BurstOutcome {
        max_load: loads.iter().copied().max().unwrap_or(0),
        true_cost: policy.true_cost(&loads),
        loads,
        placed,
    }
}

/// The per-slot vs bucketed quality delta of one burst.
#[derive(Debug, Clone)]
pub struct QualityDelta {
    /// The per-slot (reference) outcome.
    pub per_slot: BurstOutcome,
    /// The bucketed outcome.
    pub bucketed: BurstOutcome,
    /// Burst size.
    pub tasks: usize,
    /// `bucketed.true_cost − per_slot.true_cost` (≥ 0 when per-slot is
    /// optimal for the true cost, which it is for one-round bursts from
    /// idle).
    pub delta: i64,
}

impl QualityDelta {
    /// True-cost delta per task — the "≤ 1 cost unit per task" quantity
    /// (in units of the policy's largest marginal step).
    pub fn per_task_units(&self, policy: ScalePolicy, slots: u32) -> f64 {
        self.delta as f64 / self.tasks.max(1) as f64 / policy.marginal_step(slots as i64) as f64
    }
}

/// Runs the same burst under both shapes and reports the quality delta.
pub fn burst_quality(
    policy: ScalePolicy,
    machines: usize,
    slots: u32,
    tasks: usize,
) -> QualityDelta {
    let per_slot = one_round_burst(policy, BundleShape::PerSlot, machines, slots, tasks);
    let bucketed = one_round_burst(policy, BundleShape::Bucketed, machines, slots, tasks);
    let delta = bucketed.true_cost - per_slot.true_cost;
    QualityDelta {
        per_slot,
        bucketed,
        tasks,
        delta,
    }
}

/// Direct segment-count check used by tests and the bench bin: the
/// bucketed ladder of every shipped policy stays within
/// [`BundleShape::max_segments`] for any slot count.
pub fn bucketed_segments_for(policy: ScalePolicy, slots: u32) -> usize {
    let bundle: ArcBundle = BundleShape::Bucketed.ladder(slots as i64, |j| policy.marginal(j));
    bundle.segments().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ceiling_follows_geometric_boundaries() {
        assert_eq!(bucket_ceiling(0), 0);
        assert_eq!(bucket_ceiling(1), 1);
        assert_eq!(bucket_ceiling(2), 2);
        assert_eq!(bucket_ceiling(3), 4);
        assert_eq!(bucket_ceiling(4), 4);
        assert_eq!(bucket_ceiling(5), 8);
        assert_eq!(bucket_ceiling(9), 16);
    }

    #[test]
    fn marginal_steps_are_positive() {
        for p in ScalePolicy::ALL {
            assert!(p.marginal_step(12) >= 1, "{}", p.name());
            assert!(
                p.true_cost(&[2, 0]) >= p.true_cost(&[1, 1]),
                "{}: convex",
                p.name()
            );
        }
    }

    #[test]
    fn ladder_arc_bound_matches_shapes() {
        assert_eq!(ladder_arc_bound(100, 12, BundleShape::PerSlot), 1200);
        assert_eq!(ladder_arc_bound(100, 12, BundleShape::Bucketed), 500);
        assert_eq!(
            ladder_arc_bound(12_500, 12, BundleShape::Bucketed),
            62_500,
            "the paper point: 62.5k ladder arcs instead of 150k"
        );
    }
}
