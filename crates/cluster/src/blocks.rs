//! HDFS-like block store for data-locality computation.
//!
//! The Quincy policy expresses data locality through preference arcs: a task
//! gets an arc to a machine or rack holding at least a threshold fraction of
//! its input (§7.2, Fig 15). This block store tracks which machines hold
//! replicas of which blocks and answers "what fraction of this input is
//! local to machine m / rack r".

use crate::machine::RackId;
use crate::task::MachineId;
use std::collections::HashMap;

/// Default HDFS block size (128 MiB).
pub const BLOCK_BYTES: u64 = 128 * 1024 * 1024;

/// Default replication factor.
pub const REPLICATION: usize = 3;

/// Tracks block replica placement across machines.
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    /// block id → machines holding a replica.
    replicas: HashMap<u64, Vec<MachineId>>,
    /// machine → rack, for rack-level locality.
    rack_of: HashMap<MachineId, RackId>,
    next_block: u64,
}

impl BlockStore {
    /// Creates an empty store over the given machine→rack mapping.
    pub fn new(machines: impl IntoIterator<Item = (MachineId, RackId)>) -> Self {
        BlockStore {
            replicas: HashMap::new(),
            rack_of: machines.into_iter().collect(),
            next_block: 0,
        }
    }

    /// Registers a machine (e.g. after a machine join event).
    pub fn add_machine(&mut self, machine: MachineId, rack: RackId) {
        self.rack_of.insert(machine, rack);
    }

    /// Removes a machine and all replicas it held (machine failure).
    pub fn remove_machine(&mut self, machine: MachineId) {
        self.rack_of.remove(&machine);
        for reps in self.replicas.values_mut() {
            reps.retain(|&m| m != machine);
        }
    }

    /// Allocates a fresh block with the given replica holders, returning its
    /// id.
    pub fn place_block(&mut self, holders: Vec<MachineId>) -> u64 {
        let id = self.next_block;
        self.next_block += 1;
        self.replicas.insert(id, holders);
        id
    }

    /// Returns the machines holding a block.
    pub fn holders(&self, block: u64) -> &[MachineId] {
        self.replicas.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Fraction (0..=1) of `blocks` with a replica on `machine`.
    pub fn machine_locality(&self, blocks: &[u64], machine: MachineId) -> f64 {
        if blocks.is_empty() {
            return 0.0;
        }
        let local = blocks
            .iter()
            .filter(|b| self.holders(**b).contains(&machine))
            .count();
        local as f64 / blocks.len() as f64
    }

    /// Fraction (0..=1) of `blocks` with a replica somewhere in `rack`.
    pub fn rack_locality(&self, blocks: &[u64], rack: RackId) -> f64 {
        if blocks.is_empty() {
            return 0.0;
        }
        let local = blocks
            .iter()
            .filter(|b| {
                self.holders(**b)
                    .iter()
                    .any(|m| self.rack_of.get(m) == Some(&rack))
            })
            .count();
        local as f64 / blocks.len() as f64
    }

    /// Machines holding at least `threshold` fraction of `blocks`, with the
    /// fraction they hold. This drives preference-arc creation.
    pub fn machines_above_threshold(
        &self,
        blocks: &[u64],
        threshold: f64,
    ) -> Vec<(MachineId, f64)> {
        if blocks.is_empty() {
            return Vec::new();
        }
        let mut counts: HashMap<MachineId, usize> = HashMap::new();
        for b in blocks {
            for &m in self.holders(*b) {
                *counts.entry(m).or_insert(0) += 1;
            }
        }
        let total = blocks.len() as f64;
        let mut out: Vec<(MachineId, f64)> = counts
            .into_iter()
            .map(|(m, c)| (m, c as f64 / total))
            .filter(|&(_, f)| f >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Racks holding at least `threshold` fraction of `blocks`.
    pub fn racks_above_threshold(&self, blocks: &[u64], threshold: f64) -> Vec<(RackId, f64)> {
        if blocks.is_empty() {
            return Vec::new();
        }
        let mut counts: HashMap<RackId, usize> = HashMap::new();
        for b in blocks {
            let mut racks: Vec<RackId> = self
                .holders(*b)
                .iter()
                .filter_map(|m| self.rack_of.get(m).copied())
                .collect();
            racks.sort_unstable();
            racks.dedup();
            for r in racks {
                *counts.entry(r).or_insert(0) += 1;
            }
        }
        let total = blocks.len() as f64;
        let mut out: Vec<(RackId, f64)> = counts
            .into_iter()
            .map(|(r, c)| (r, c as f64 / total))
            .filter(|&(_, f)| f >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> BlockStore {
        // 4 machines, 2 racks.
        BlockStore::new([(0, 0), (1, 0), (2, 1), (3, 1)])
    }

    #[test]
    fn machine_locality_fraction() {
        let mut s = store();
        let b0 = s.place_block(vec![0, 1, 2]);
        let b1 = s.place_block(vec![0, 3, 2]);
        let b2 = s.place_block(vec![1, 3, 2]);
        let blocks = vec![b0, b1, b2];
        assert!((s.machine_locality(&blocks, 0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.machine_locality(&blocks, 2) - 1.0).abs() < 1e-9);
        assert_eq!(s.machine_locality(&[], 0), 0.0);
    }

    #[test]
    fn rack_locality_fraction() {
        let mut s = store();
        let b0 = s.place_block(vec![0]); // rack 0 only
        let b1 = s.place_block(vec![2]); // rack 1 only
        let blocks = vec![b0, b1];
        assert!((s.rack_locality(&blocks, 0) - 0.5).abs() < 1e-9);
        assert!((s.rack_locality(&blocks, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn threshold_query_sorted_by_fraction() {
        let mut s = store();
        let b0 = s.place_block(vec![0, 1]);
        let b1 = s.place_block(vec![0, 2]);
        let b2 = s.place_block(vec![0, 3]);
        let blocks = vec![b0, b1, b2];
        let hits = s.machines_above_threshold(&blocks, 0.3);
        assert_eq!(hits[0], (0, 1.0));
        assert_eq!(hits.len(), 4); // 1, 2, 3 all hold 1/3 ≥ 0.3
        let strict = s.machines_above_threshold(&blocks, 0.5);
        assert_eq!(strict, vec![(0, 1.0)]);
    }

    #[test]
    fn machine_removal_drops_replicas() {
        let mut s = store();
        let b = s.place_block(vec![0, 1]);
        s.remove_machine(0);
        assert_eq!(s.holders(b), &[1]);
        assert_eq!(s.machine_locality(&[b], 0), 0.0);
    }
}
