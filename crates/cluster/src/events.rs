//! Cluster events: the inputs that drive state and flow-network updates.
//!
//! All of these ultimately reduce to the three graph-change types of §5.2
//! (supply, capacity, and cost changes); the mapping is performed by the
//! scheduling policies in `firmament-policies`.

use crate::machine::Machine;
use crate::task::{Job, MachineId, Task, TaskId, Time};

/// An event observed by the cluster manager.
#[derive(Debug, Clone)]
pub enum ClusterEvent {
    /// Advances the clock without changing state.
    Tick {
        /// New current time (µs).
        now: Time,
    },
    /// A job and its tasks were submitted.
    JobSubmitted {
        /// The job (its `tasks` list is filled in from `tasks`).
        job: Job,
        /// The job's tasks.
        tasks: Vec<Task>,
    },
    /// The scheduler placed (or migrated) a task.
    TaskPlaced {
        /// The task.
        task: TaskId,
        /// Destination machine.
        machine: MachineId,
        /// Placement time (µs).
        now: Time,
    },
    /// The scheduler preempted a running task.
    TaskPreempted {
        /// The task.
        task: TaskId,
        /// Preemption time (µs).
        now: Time,
    },
    /// A task finished.
    TaskCompleted {
        /// The task.
        task: TaskId,
        /// Completion time (µs).
        now: Time,
    },
    /// A machine joined the cluster.
    MachineAdded {
        /// The new machine.
        machine: Machine,
    },
    /// A machine failed or was drained.
    MachineRemoved {
        /// The machine.
        machine: MachineId,
        /// Removal time (µs).
        now: Time,
    },
}

impl ClusterEvent {
    /// Returns `true` if this event changes the set of schedulable work
    /// (and therefore requires a new scheduling round).
    pub fn triggers_scheduling(&self) -> bool {
        matches!(
            self,
            ClusterEvent::JobSubmitted { .. }
                | ClusterEvent::TaskCompleted { .. }
                | ClusterEvent::TaskPreempted { .. }
                | ClusterEvent::MachineAdded { .. }
                | ClusterEvent::MachineRemoved { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::JobClass;

    #[test]
    fn scheduling_triggers() {
        assert!(ClusterEvent::JobSubmitted {
            job: Job::new(0, JobClass::Batch, 0, 0),
            tasks: vec![],
        }
        .triggers_scheduling());
        assert!(ClusterEvent::TaskCompleted { task: 0, now: 0 }.triggers_scheduling());
        assert!(!ClusterEvent::Tick { now: 5 }.triggers_scheduling());
        assert!(!ClusterEvent::TaskPlaced {
            task: 0,
            machine: 0,
            now: 0
        }
        .triggers_scheduling());
    }
}
