//! Cluster model substrate for the Firmament scheduler.
//!
//! Models everything the scheduling policies and simulator need about a
//! datacenter cluster: machines with slots, resources, and network links
//! ([`machine`]); jobs and tasks with the Fig 1 lifecycle ([`task`]); an
//! HDFS-like block store for data-locality computation ([`blocks`]); and
//! the aggregate [`ClusterState`] updated by [`ClusterEvent`]s.
//!
//! # Examples
//!
//! ```
//! use firmament_cluster::{ClusterState, TopologySpec};
//!
//! let state = ClusterState::with_topology(&TopologySpec {
//!     machines: 100,
//!     machines_per_rack: 20,
//!     slots_per_machine: 12,
//! });
//! assert_eq!(state.total_slots(), 1200);
//! assert_eq!(state.slot_utilization(), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod events;
pub mod machine;
pub mod resources;
pub mod state;
pub mod task;

pub use blocks::BlockStore;
pub use events::ClusterEvent;
pub use machine::{Machine, RackId, TopologySpec};
pub use resources::ResourceVector;
pub use state::ClusterState;
pub use task::{Job, JobClass, JobId, MachineId, Task, TaskId, TaskState, Time};
