//! Machines, racks, and cluster topology.

use crate::resources::ResourceVector;
use crate::task::{MachineId, TaskId};

/// Rack identifier.
pub type RackId = u32;

/// A cluster machine with slots, resources, and a network link.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Globally unique id.
    pub id: MachineId,
    /// Rack this machine lives in.
    pub rack: RackId,
    /// Task slots (the paper's head-to-head experiments are slot-based).
    pub slots: u32,
    /// Total resources.
    pub capacity: ResourceVector,
    /// Link bandwidth in Mbit/s (10 Gbps in the paper's testbed).
    pub link_mbps: u64,
    /// Tasks currently placed here.
    pub running: Vec<TaskId>,
    /// Externally observed (non-task) bandwidth use in Mbit/s, e.g. the
    /// background iperf/nginx traffic of Fig 19b.
    pub background_mbps: u64,
}

impl Machine {
    /// Creates a machine with the given slots and a 10 Gbps link.
    pub fn new(id: MachineId, rack: RackId, slots: u32) -> Self {
        Machine {
            id,
            rack,
            slots,
            capacity: ResourceVector::new(12_000, 65_536, 10_000),
            link_mbps: 10_000,
            running: Vec::new(),
            background_mbps: 0,
        }
    }

    /// Free slots on this machine.
    pub fn free_slots(&self) -> u32 {
        self.slots.saturating_sub(self.running.len() as u32)
    }

    /// Returns `true` if at least one slot is free.
    pub fn has_free_slot(&self) -> bool {
        self.free_slots() > 0
    }

    /// Records a task placement.
    ///
    /// # Panics
    ///
    /// Panics if no slot is free or the task is already here.
    pub fn add_task(&mut self, task: TaskId) {
        assert!(self.has_free_slot(), "machine {} has no free slot", self.id);
        assert!(
            !self.running.contains(&task),
            "task {task} already on machine {}",
            self.id
        );
        self.running.push(task);
    }

    /// Removes a task (completion, preemption, migration).
    ///
    /// # Panics
    ///
    /// Panics if the task is not on this machine.
    pub fn remove_task(&mut self, task: TaskId) {
        let pos = self
            .running
            .iter()
            .position(|&t| t == task)
            .unwrap_or_else(|| panic!("task {task} not on machine {}", self.id));
        self.running.swap_remove(pos);
    }
}

/// Parameters for building a cluster.
#[derive(Debug, Clone)]
pub struct TopologySpec {
    /// Number of machines.
    pub machines: usize,
    /// Machines per rack.
    pub machines_per_rack: usize,
    /// Slots per machine (the simulated Google cluster runs ~12 tasks per
    /// machine in the steady state: 150k tasks on 12.5k machines).
    pub slots_per_machine: u32,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec {
            machines: 40,
            machines_per_rack: 20,
            slots_per_machine: 12,
        }
    }
}

/// Builds the machine list for a topology.
pub fn build_machines(spec: &TopologySpec) -> Vec<Machine> {
    (0..spec.machines)
        .map(|m| {
            Machine::new(
                m as MachineId,
                (m / spec.machines_per_rack.max(1)) as RackId,
                spec.slots_per_machine,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_accounting() {
        let mut m = Machine::new(0, 0, 2);
        assert_eq!(m.free_slots(), 2);
        m.add_task(10);
        m.add_task(11);
        assert!(!m.has_free_slot());
        m.remove_task(10);
        assert_eq!(m.free_slots(), 1);
    }

    #[test]
    #[should_panic(expected = "no free slot")]
    fn overcommit_panics() {
        let mut m = Machine::new(0, 0, 1);
        m.add_task(1);
        m.add_task(2);
    }

    #[test]
    fn topology_racks() {
        let spec = TopologySpec {
            machines: 45,
            machines_per_rack: 20,
            slots_per_machine: 4,
        };
        let ms = build_machines(&spec);
        assert_eq!(ms.len(), 45);
        assert_eq!(ms[0].rack, 0);
        assert_eq!(ms[19].rack, 0);
        assert_eq!(ms[20].rack, 1);
        assert_eq!(ms[44].rack, 2);
    }
}
