//! Multi-dimensional resource vectors.
//!
//! The Google trace contains multi-dimensional resource requests; Firmament
//! supports multi-dimensional feasibility checking (as in Borg), though the
//! paper's head-to-head experiments use slot-based assignment for fairness
//! with Quincy (§7.1). Both models are provided here.

/// A vector of resource quantities: CPU millicores, RAM megabytes, and
/// network bandwidth in Mbit/s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceVector {
    /// CPU in millicores (1000 = one core).
    pub cpu_millis: u64,
    /// Memory in MiB.
    pub ram_mb: u64,
    /// Network bandwidth in Mbit/s.
    pub net_mbps: u64,
}

impl ResourceVector {
    /// Creates a resource vector.
    pub const fn new(cpu_millis: u64, ram_mb: u64, net_mbps: u64) -> Self {
        ResourceVector {
            cpu_millis,
            ram_mb,
            net_mbps,
        }
    }

    /// The zero vector.
    pub const fn zero() -> Self {
        ResourceVector::new(0, 0, 0)
    }

    /// Returns `true` if `request` fits within `self` in every dimension.
    pub fn fits(&self, request: &ResourceVector) -> bool {
        self.cpu_millis >= request.cpu_millis
            && self.ram_mb >= request.ram_mb
            && self.net_mbps >= request.net_mbps
    }

    /// Element-wise saturating subtraction.
    pub fn saturating_sub(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            cpu_millis: self.cpu_millis.saturating_sub(other.cpu_millis),
            ram_mb: self.ram_mb.saturating_sub(other.ram_mb),
            net_mbps: self.net_mbps.saturating_sub(other.net_mbps),
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            cpu_millis: self.cpu_millis + other.cpu_millis,
            ram_mb: self.ram_mb + other.ram_mb,
            net_mbps: self.net_mbps + other.net_mbps,
        }
    }

    /// The dominant utilization share of `used` relative to `self`, in the
    /// DRF sense, as parts-per-million (0 if `self` is zero).
    pub fn dominant_share_ppm(&self, used: &ResourceVector) -> u64 {
        let mut best = 0u64;
        for (cap, u) in [
            (self.cpu_millis, used.cpu_millis),
            (self.ram_mb, used.ram_mb),
            (self.net_mbps, used.net_mbps),
        ] {
            if let Some(share) = (u * 1_000_000).checked_div(cap) {
                best = best.max(share);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_is_per_dimension() {
        let cap = ResourceVector::new(4000, 8192, 10_000);
        assert!(cap.fits(&ResourceVector::new(4000, 8192, 10_000)));
        assert!(cap.fits(&ResourceVector::zero()));
        assert!(!cap.fits(&ResourceVector::new(4001, 0, 0)));
        assert!(!cap.fits(&ResourceVector::new(0, 9000, 0)));
        assert!(!cap.fits(&ResourceVector::new(0, 0, 10_001)));
    }

    #[test]
    fn arithmetic() {
        let a = ResourceVector::new(1000, 2048, 100);
        let b = ResourceVector::new(500, 1024, 200);
        assert_eq!(a.add(&b), ResourceVector::new(1500, 3072, 300));
        assert_eq!(a.saturating_sub(&b), ResourceVector::new(500, 1024, 0));
    }

    #[test]
    fn dominant_share() {
        let cap = ResourceVector::new(1000, 1000, 1000);
        let used = ResourceVector::new(500, 250, 750);
        assert_eq!(cap.dominant_share_ppm(&used), 750_000);
        assert_eq!(ResourceVector::zero().dominant_share_ppm(&used), 0);
    }
}
