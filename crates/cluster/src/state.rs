//! Aggregate cluster state consumed by scheduling policies.

use crate::blocks::BlockStore;
use crate::events::ClusterEvent;
use crate::machine::{build_machines, Machine, TopologySpec};
use crate::task::{Job, JobId, MachineId, Task, TaskId, TaskState, Time};
use std::collections::HashMap;

/// The cluster manager's view of the world: machines, jobs, tasks, and the
/// block store, updated by [`ClusterEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct ClusterState {
    /// Machines by id.
    pub machines: HashMap<MachineId, Machine>,
    /// Jobs by id.
    pub jobs: HashMap<JobId, Job>,
    /// Tasks by id.
    pub tasks: HashMap<TaskId, Task>,
    /// Block replica tracking.
    pub blocks: BlockStore,
    /// Current (virtual) time in µs.
    pub now: Time,
}

impl ClusterState {
    /// Creates a cluster with the given topology and an empty workload.
    pub fn with_topology(spec: &TopologySpec) -> Self {
        let machines = build_machines(spec);
        let blocks = BlockStore::new(machines.iter().map(|m| (m.id, m.rack)));
        ClusterState {
            machines: machines.into_iter().map(|m| (m.id, m)).collect(),
            jobs: HashMap::new(),
            tasks: HashMap::new(),
            blocks,
            now: 0,
        }
    }

    /// Total slots across all machines.
    pub fn total_slots(&self) -> u64 {
        self.machines.values().map(|m| m.slots as u64).sum()
    }

    /// Occupied slots (running tasks).
    pub fn used_slots(&self) -> u64 {
        self.machines.values().map(|m| m.running.len() as u64).sum()
    }

    /// Slot utilization in `[0, 1]`.
    pub fn slot_utilization(&self) -> f64 {
        let total = self.total_slots();
        if total == 0 {
            0.0
        } else {
            self.used_slots() as f64 / total as f64
        }
    }

    /// Tasks currently waiting (or preempted and awaiting rescheduling).
    pub fn waiting_tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks
            .values()
            .filter(|t| matches!(t.state, TaskState::Waiting | TaskState::Preempted))
    }

    /// Tasks currently running.
    pub fn running_tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks
            .values()
            .filter(|t| t.state == TaskState::Running)
    }

    /// Applies a cluster event, updating machines/jobs/tasks.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent events (e.g. completing an unknown task);
    /// event streams are produced by the simulator or cluster manager and
    /// must be internally consistent.
    pub fn apply(&mut self, event: &ClusterEvent) {
        match event {
            ClusterEvent::Tick { now } => self.now = *now,
            ClusterEvent::JobSubmitted { job, tasks } => {
                self.now = self.now.max(job.submit_time);
                let mut j = job.clone();
                j.tasks = tasks.iter().map(|t| t.id).collect();
                for t in tasks {
                    self.tasks.insert(t.id, t.clone());
                }
                self.jobs.insert(j.id, j);
            }
            ClusterEvent::TaskPlaced { task, machine, now } => {
                self.now = self.now.max(*now);
                let t = self.tasks.get_mut(task).expect("placed task exists");
                if let Some(old) = t.machine {
                    // Migration: leave the old machine first.
                    self.machines
                        .get_mut(&old)
                        .expect("old machine exists")
                        .remove_task(*task);
                    t.preempt(*now);
                }
                t.place(*machine, *now);
                self.machines
                    .get_mut(machine)
                    .expect("target machine exists")
                    .add_task(*task);
            }
            ClusterEvent::TaskPreempted { task, now } => {
                self.now = self.now.max(*now);
                let t = self.tasks.get_mut(task).expect("preempted task exists");
                let m = t.machine.expect("running task has machine");
                t.preempt(*now);
                self.machines
                    .get_mut(&m)
                    .expect("machine exists")
                    .remove_task(*task);
            }
            ClusterEvent::TaskCompleted { task, now } => {
                self.now = self.now.max(*now);
                let t = self.tasks.get_mut(task).expect("completed task exists");
                let m = t.machine.expect("running task has machine");
                t.complete(*now);
                self.machines
                    .get_mut(&m)
                    .expect("machine exists")
                    .remove_task(*task);
            }
            ClusterEvent::MachineAdded { machine } => {
                self.blocks.add_machine(machine.id, machine.rack);
                self.machines.insert(machine.id, machine.clone());
            }
            ClusterEvent::MachineRemoved { machine, now } => {
                self.now = self.now.max(*now);
                if let Some(m) = self.machines.remove(machine) {
                    // Tasks on a failed machine return to the waiting pool
                    // with their progress lost (fail-stop model).
                    for tid in m.running {
                        let t = self.tasks.get_mut(&tid).expect("running task exists");
                        t.state = TaskState::Waiting;
                        t.machine = None;
                        t.placed_at = None;
                        t.executed = 0;
                    }
                }
                self.blocks.remove_machine(*machine);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::JobClass;

    fn submit_one(state: &mut ClusterState, job_id: JobId, task_id: TaskId, duration: Time) {
        let job = Job::new(job_id, JobClass::Batch, 0, state.now);
        let task = Task::new(task_id, job_id, state.now, duration);
        state.apply(&ClusterEvent::JobSubmitted {
            job,
            tasks: vec![task],
        });
    }

    #[test]
    fn submit_place_complete_roundtrip() {
        let mut s = ClusterState::with_topology(&TopologySpec {
            machines: 2,
            machines_per_rack: 2,
            slots_per_machine: 1,
        });
        submit_one(&mut s, 0, 100, 5_000);
        assert_eq!(s.waiting_tasks().count(), 1);
        s.apply(&ClusterEvent::TaskPlaced {
            task: 100,
            machine: 1,
            now: 10,
        });
        assert_eq!(s.used_slots(), 1);
        assert_eq!(s.slot_utilization(), 0.5);
        s.apply(&ClusterEvent::TaskCompleted {
            task: 100,
            now: 5_010,
        });
        assert_eq!(s.used_slots(), 0);
        assert_eq!(s.tasks[&100].state, TaskState::Completed);
    }

    #[test]
    fn migration_moves_between_machines() {
        let mut s = ClusterState::with_topology(&TopologySpec {
            machines: 2,
            machines_per_rack: 2,
            slots_per_machine: 1,
        });
        submit_one(&mut s, 0, 7, 100_000);
        s.apply(&ClusterEvent::TaskPlaced {
            task: 7,
            machine: 0,
            now: 0,
        });
        s.apply(&ClusterEvent::TaskPlaced {
            task: 7,
            machine: 1,
            now: 50,
        });
        assert_eq!(s.machines[&0].running.len(), 0);
        assert_eq!(s.machines[&1].running.len(), 1);
        assert_eq!(s.tasks[&7].machine, Some(1));
    }

    #[test]
    fn machine_failure_requeues_tasks() {
        let mut s = ClusterState::with_topology(&TopologySpec {
            machines: 2,
            machines_per_rack: 2,
            slots_per_machine: 2,
        });
        submit_one(&mut s, 0, 1, 9_999);
        s.apply(&ClusterEvent::TaskPlaced {
            task: 1,
            machine: 0,
            now: 10,
        });
        s.apply(&ClusterEvent::MachineRemoved {
            machine: 0,
            now: 20,
        });
        assert!(!s.machines.contains_key(&0));
        assert_eq!(s.tasks[&1].state, TaskState::Waiting);
        assert_eq!(s.waiting_tasks().count(), 1);
    }

    #[test]
    fn preemption_returns_slot() {
        let mut s = ClusterState::with_topology(&TopologySpec {
            machines: 1,
            machines_per_rack: 1,
            slots_per_machine: 1,
        });
        submit_one(&mut s, 0, 1, 9_999);
        s.apply(&ClusterEvent::TaskPlaced {
            task: 1,
            machine: 0,
            now: 0,
        });
        s.apply(&ClusterEvent::TaskPreempted { task: 1, now: 500 });
        assert_eq!(s.used_slots(), 0);
        assert_eq!(s.tasks[&1].state, TaskState::Preempted);
        assert_eq!(s.tasks[&1].executed, 500);
    }
}
