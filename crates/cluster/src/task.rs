//! Tasks, jobs, and the task lifecycle state machine (Fig 1).

use crate::resources::ResourceVector;

/// Microseconds of simulated or wall time.
pub type Time = u64;

/// Unique task identifier.
pub type TaskId = u64;

/// Unique job identifier.
pub type JobId = u64;

/// Unique machine identifier.
pub type MachineId = u64;

/// The class of a job, following Omega's priority-based classification
/// (§7.1): service jobs are long-running and prioritized over batch jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// A batch job whose tasks run to completion.
    Batch,
    /// A long-running service job.
    Service,
}

/// Task lifecycle states (Fig 1): submitted → waiting → scheduling →
/// starting/running → completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Submitted and waiting for the scheduler.
    Waiting,
    /// Placed on a machine and running.
    Running,
    /// Finished successfully.
    Completed,
    /// Evicted from its machine; will be rescheduled.
    Preempted,
}

/// A single task of a job.
#[derive(Debug, Clone)]
pub struct Task {
    /// Globally unique id.
    pub id: TaskId,
    /// Owning job.
    pub job: JobId,
    /// Current lifecycle state.
    pub state: TaskState,
    /// Resource request (also used to derive the bandwidth request of the
    /// network-aware policy).
    pub request: ResourceVector,
    /// Total execution time needed (µs); `u64::MAX` for service tasks.
    pub duration: Time,
    /// Submission time (µs).
    pub submit_time: Time,
    /// Time of the current placement, if running.
    pub placed_at: Option<Time>,
    /// Machine currently hosting the task, if running.
    pub machine: Option<MachineId>,
    /// Input data blocks (HDFS-style) read by the task.
    pub input_blocks: Vec<u64>,
    /// Total input size in bytes.
    pub input_bytes: u64,
    /// Accumulated execution before the last preemption (µs), so preempted
    /// work is not repeated (the cluster manager checkpoint assumption).
    pub executed: Time,
}

impl Task {
    /// Creates a waiting task.
    pub fn new(id: TaskId, job: JobId, submit_time: Time, duration: Time) -> Self {
        Task {
            id,
            job,
            state: TaskState::Waiting,
            request: ResourceVector::zero(),
            duration,
            submit_time,
            placed_at: None,
            machine: None,
            input_blocks: Vec::new(),
            input_bytes: 0,
            executed: 0,
        }
    }

    /// Marks the task as placed on a machine at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the task is already running or completed.
    pub fn place(&mut self, machine: MachineId, now: Time) {
        assert!(
            matches!(self.state, TaskState::Waiting | TaskState::Preempted),
            "cannot place task {} in state {:?}",
            self.id,
            self.state
        );
        self.state = TaskState::Running;
        self.machine = Some(machine);
        self.placed_at = Some(now);
    }

    /// Preempts a running task at `now`, banking its executed time.
    ///
    /// # Panics
    ///
    /// Panics if the task is not running.
    pub fn preempt(&mut self, now: Time) {
        assert_eq!(
            self.state,
            TaskState::Running,
            "preempting non-running task"
        );
        let started = self.placed_at.expect("running task has placement time");
        self.executed += now.saturating_sub(started);
        self.state = TaskState::Preempted;
        self.machine = None;
        self.placed_at = None;
    }

    /// Completes a running task at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the task is not running.
    pub fn complete(&mut self, now: Time) {
        assert_eq!(
            self.state,
            TaskState::Running,
            "completing non-running task"
        );
        let started = self.placed_at.expect("running task has placement time");
        self.executed += now.saturating_sub(started);
        self.state = TaskState::Completed;
    }

    /// Remaining execution time (µs).
    pub fn remaining(&self) -> Time {
        self.duration.saturating_sub(self.executed)
    }

    /// Task response time if completed at `finish` (Fig 1: submission →
    /// completion).
    pub fn response_time(&self, finish: Time) -> Time {
        finish.saturating_sub(self.submit_time)
    }
}

/// A job: a set of parallel tasks with a class and priority.
#[derive(Debug, Clone)]
pub struct Job {
    /// Globally unique id.
    pub id: JobId,
    /// Batch or service (Omega-style classification).
    pub class: JobClass,
    /// Priority: higher is more important (service > batch in the paper's
    /// simulations).
    pub priority: u8,
    /// Ids of the job's tasks.
    pub tasks: Vec<TaskId>,
    /// Submission time (µs).
    pub submit_time: Time,
}

impl Job {
    /// Creates an empty job.
    pub fn new(id: JobId, class: JobClass, priority: u8, submit_time: Time) -> Self {
        Job {
            id,
            class,
            priority,
            tasks: Vec::new(),
            submit_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_happy_path() {
        let mut t = Task::new(1, 0, 100, 5_000);
        assert_eq!(t.state, TaskState::Waiting);
        t.place(3, 200);
        assert_eq!(t.state, TaskState::Running);
        assert_eq!(t.machine, Some(3));
        t.complete(5_200);
        assert_eq!(t.state, TaskState::Completed);
        assert_eq!(t.executed, 5_000);
        assert_eq!(t.response_time(5_200), 5_100);
    }

    #[test]
    fn preemption_banks_execution() {
        let mut t = Task::new(1, 0, 0, 10_000);
        t.place(2, 1_000);
        t.preempt(4_000);
        assert_eq!(t.state, TaskState::Preempted);
        assert_eq!(t.executed, 3_000);
        assert_eq!(t.remaining(), 7_000);
        t.place(5, 6_000);
        t.complete(13_000);
        assert_eq!(t.executed, 10_000);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn double_place_panics() {
        let mut t = Task::new(1, 0, 0, 100);
        t.place(0, 0);
        t.place(1, 1);
    }

    #[test]
    #[should_panic(expected = "preempting non-running")]
    fn preempt_waiting_panics() {
        let mut t = Task::new(1, 0, 0, 100);
        t.preempt(5);
    }
}
