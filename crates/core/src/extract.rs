//! Task-placement extraction from the optimal flow (Listing 1, §6.3).
//!
//! Firmament allows arbitrary aggregators, so paths from tasks to machines
//! can be longer than in Quincy (where arcs necessarily pointed at machines
//! or racks). The extraction algorithm starts from machine nodes and
//! propagates, *backwards* along flow-carrying incoming arcs, the multiset
//! of machines each node has sent flow to; when the propagation reaches a
//! task node, popping one machine from its list yields the placement. In
//! the common case this extracts all placements in a single pass over the
//! graph.
//!
//! The backward propagation is agnostic to aggregator depth: EC→EC
//! hierarchy chains (cluster → rack → machine, or deeper) decompose the
//! same way, with nodes whose machine lists fill incrementally re-queued
//! until every unit of flow is attributed
//! (`tests/extraction_and_changes.rs` pins chains up to five levels).

use firmament_flow::{ArcId, FlowGraph, NodeId, NodeKind};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// The extracted placement for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The task's flow reached this machine.
    OnMachine(u64),
    /// The task's flow drained through its unscheduled aggregator.
    Unscheduled,
}

/// Extracts task placements from the flow currently in the graph.
///
/// Implements Listing 1 with explicit per-arc move accounting so that nodes
/// whose machine lists fill up incrementally are revisited until all flow
/// is accounted for. Tasks whose flow routed through an unscheduled
/// aggregator are reported as [`Placement::Unscheduled`].
///
/// The result is a `BTreeMap` keyed by task id, so iteration order — and
/// everything derived from it, like the scheduler's action list — is
/// deterministic by construction rather than by post-hoc sorting.
///
/// # Examples
///
/// ```
/// use firmament_core::extract::{extract_placements, Placement};
/// use firmament_flow::builder::figure5;
/// use firmament_mcmf::{relaxation, SolveOptions};
///
/// let (mut g, _, _) = figure5();
/// relaxation::solve(&mut g, &SolveOptions::unlimited()).unwrap();
/// let placements = extract_placements(&g);
/// assert_eq!(placements.len(), 5);
/// let placed = placements
///     .values()
///     .filter(|p| matches!(p, Placement::OnMachine(_)))
///     .count();
/// assert_eq!(placed, 4); // Fig 5: all tasks but one are scheduled
/// ```
pub fn extract_placements(graph: &FlowGraph) -> BTreeMap<u64, Placement> {
    let mut mappings: BTreeMap<u64, Placement> = BTreeMap::new();
    // Machines each node has sent flow to (with multiplicity).
    let mut destinations: HashMap<NodeId, Vec<u64>> = HashMap::new();
    // Machines already propagated along each arc.
    let mut moved: HashMap<ArcId, i64> = HashMap::new();
    let mut to_visit: VecDeque<NodeId> = VecDeque::new();
    let mut queued: Vec<bool> = vec![false; graph.node_bound()];

    for n in graph.node_ids() {
        match graph.kind(n) {
            NodeKind::Machine { machine } => {
                // A machine's outgoing flow (to the sink) is the number of
                // task units placed on it.
                let placed: i64 = graph
                    .adj(n)
                    .iter()
                    .copied()
                    .filter(|&a| a.is_forward())
                    .map(|a| graph.flow(a))
                    .sum();
                if placed > 0 {
                    destinations.insert(n, vec![machine; placed as usize]);
                    to_visit.push_back(n);
                    queued[n.index()] = true;
                }
            }
            NodeKind::Task { task } => {
                // Default: unscheduled; overwritten if machines arrive.
                mappings.insert(task, Placement::Unscheduled);
            }
            _ => {}
        }
    }

    while let Some(node) = to_visit.pop_front() {
        queued[node.index()] = false;
        if let NodeKind::Task { task } = graph.kind(node) {
            if let Some(dest) = destinations.get_mut(&node) {
                if let Some(m) = dest.pop() {
                    mappings.insert(task, Placement::OnMachine(m));
                }
            }
            continue;
        }
        // Visit incoming arcs: reverse residual arcs out of `node` whose
        // sister (the forward arc into `node`) carries flow.
        let incoming: Vec<(ArcId, NodeId, i64)> = graph
            .adj(node)
            .iter()
            .copied()
            .filter(|&a| !a.is_forward())
            .map(|a| (a.forward(), graph.dst(a), graph.flow(a)))
            .filter(|&(_, _, f)| f > 0)
            .collect();
        for (arc, source, flow) in incoming {
            let already = moved.get(&arc).copied().unwrap_or(0);
            let need = flow - already;
            if need <= 0 {
                continue;
            }
            let available = destinations.get_mut(&node);
            let Some(avail) = available else { break };
            let k = need.min(avail.len() as i64);
            if k <= 0 {
                continue;
            }
            let split_at = avail.len() - k as usize;
            let machines: Vec<u64> = avail.split_off(split_at);
            destinations.entry(source).or_default().extend(machines);
            *moved.entry(arc).or_insert(0) += k;
            if !queued[source.index()] {
                to_visit.push_back(source);
                queued[source.index()] = true;
            }
        }
    }
    mappings
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_flow::builder::figure5;
    use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
    use firmament_flow::NodeKind;
    use firmament_mcmf::{relaxation, ssp, SolveOptions};

    #[test]
    fn figure5_extraction_matches_paper() {
        let (mut g, _, _) = figure5();
        ssp::solve(&mut g, &SolveOptions::unlimited()).unwrap();
        let p = extract_placements(&g);
        // Fig 5 solution: T0,1 (task index 1 of job 0) is unscheduled; in
        // builder::figure5, job-0 tasks are 0..3 and job-1 tasks reuse ids
        // 0..2, so we check counts rather than identities.
        let placed = p
            .values()
            .filter(|x| matches!(x, Placement::OnMachine(_)))
            .count();
        assert_eq!(placed, 4);
        // All four machines are distinct.
        let mut machines: Vec<u64> = p
            .values()
            .filter_map(|x| match x {
                Placement::OnMachine(m) => Some(*m),
                Placement::Unscheduled => None,
            })
            .collect();
        machines.sort_unstable();
        machines.dedup();
        assert_eq!(machines.len(), 4);
    }

    #[test]
    fn extraction_respects_flow_on_random_instances() {
        for seed in 0..5 {
            let mut inst = scheduling_instance(seed, &InstanceSpec::default());
            relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
            let p = extract_placements(&inst.graph);
            assert_eq!(p.len(), inst.tasks.len(), "seed {seed}");
            // Per-machine placement counts must equal machine→sink flow.
            let mut counts: HashMap<u64, i64> = HashMap::new();
            for v in p.values() {
                if let Placement::OnMachine(m) = v {
                    *counts.entry(*m).or_insert(0) += 1;
                }
            }
            for &mn in &inst.machines {
                let NodeKind::Machine { machine } = inst.graph.kind(mn) else {
                    panic!("machine node expected")
                };
                let outflow: i64 = inst
                    .graph
                    .adj(mn)
                    .iter()
                    .copied()
                    .filter(|&a| a.is_forward())
                    .map(|a| inst.graph.flow(a))
                    .sum();
                assert_eq!(
                    counts.get(&machine).copied().unwrap_or(0),
                    outflow,
                    "seed {seed} machine {machine}"
                );
            }
        }
    }

    #[test]
    fn empty_flow_extracts_all_unscheduled() {
        let inst = scheduling_instance(3, &InstanceSpec::default());
        let p = extract_placements(&inst.graph);
        assert!(p.values().all(|x| matches!(x, Placement::Unscheduled)));
    }

    #[test]
    fn multi_hop_aggregator_paths_extract() {
        // task → X → machine → sink: extraction must traverse the
        // aggregator.
        use firmament_flow::FlowGraph;
        let mut g = FlowGraph::new();
        let t0 = g.add_node(NodeKind::Task { task: 0 }, 1);
        let t1 = g.add_node(NodeKind::Task { task: 1 }, 1);
        let x = g.add_node(NodeKind::ClusterAggregator, 0);
        let m0 = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        let m1 = g.add_node(NodeKind::Machine { machine: 1 }, 0);
        let s = g.add_node(NodeKind::Sink, -2);
        g.add_arc(t0, x, 1, 1).unwrap();
        g.add_arc(t1, x, 1, 1).unwrap();
        let xm0 = g.add_arc(x, m0, 1, 0).unwrap();
        let xm1 = g.add_arc(x, m1, 1, 5).unwrap();
        let m0s = g.add_arc(m0, s, 1, 0).unwrap();
        let m1s = g.add_arc(m1, s, 1, 0).unwrap();
        ssp::solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert_eq!(g.flow(xm0), 1);
        assert_eq!(g.flow(xm1), 1);
        assert_eq!(g.flow(m0s), 1);
        assert_eq!(g.flow(m1s), 1);
        let p = extract_placements(&g);
        let mut machines: Vec<u64> = p
            .values()
            .filter_map(|x| match x {
                Placement::OnMachine(m) => Some(*m),
                _ => None,
            })
            .collect();
        machines.sort_unstable();
        assert_eq!(machines, vec![0, 1]);
    }
}
