//! The flow-graph manager: the *imperative* half of the policy split.
//!
//! A [`CostModel`] declares costs and arc structure as pure functions of
//! [`ClusterState`]; the [`FlowGraphManager`] owns the flow network and
//! does everything stateful — it translates [`ClusterEvent`]s into graph
//! deltas, materializes the aggregator nodes a model refers to, runs the
//! two-pass cost update of §6.3 (collect dirty nodes, then re-query the
//! model for exactly those), and enforces gang constraints through the
//! `U_j → S` capacities. No other component mutates the graph: the
//! scheduler core borrows it for solving and hands the winning flow back
//! via [`FlowGraphManager::adopt_graph`].
//!
//! This mirrors real Firmament's `FlowGraphManager`/`CostModelInterface`
//! split, which is what makes new policies cheap: the ~300 lines of node
//! bookkeeping below are written once instead of once per policy.

use firmament_cluster::{ClusterEvent, ClusterState, JobId, MachineId, TaskId, Time};
use firmament_flow::{ArcId, FlowGraph, NodeId, NodeKind};
use firmament_mcmf::incremental::drain_task_flow;
use firmament_policies::{AggregateId, ArcTarget, CostModel, PolicyError};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Node bookkeeping shared by every policy: the sink, per-task and
/// per-machine nodes, per-job unscheduled aggregators, and the arcs whose
/// capacities track cluster quantities.
#[derive(Debug, Default)]
pub struct GraphBase {
    /// The flow network.
    pub graph: FlowGraph,
    /// The sink node `S`.
    pub sink: Option<NodeId>,
    /// Task → node.
    pub task_nodes: HashMap<TaskId, NodeId>,
    /// Machine → node.
    pub machine_nodes: HashMap<MachineId, NodeId>,
    /// Machine → its arc to the sink (capacity = slots).
    pub machine_sink_arcs: HashMap<MachineId, ArcId>,
    /// Job → unscheduled aggregator `U_j`.
    pub unsched_nodes: HashMap<JobId, NodeId>,
    /// Job → the `U_j → S` arc (capacity = incomplete tasks of the job).
    pub unsched_sink_arcs: HashMap<JobId, ArcId>,
}

impl GraphBase {
    /// Creates an empty base with a sink node.
    pub fn new() -> Self {
        let mut base = GraphBase::default();
        let sink = base.graph.add_node(NodeKind::Sink, 0);
        base.sink = Some(sink);
        base
    }

    /// The sink node.
    ///
    /// # Panics
    ///
    /// Panics if called before [`GraphBase::new`] created the sink.
    pub fn sink(&self) -> NodeId {
        self.sink.expect("GraphBase::new creates the sink")
    }

    /// Adds a machine node with a `slots`-capacity arc to the sink.
    pub fn add_machine(&mut self, machine: MachineId, slots: i64) -> Result<NodeId, PolicyError> {
        if self.machine_nodes.contains_key(&machine) {
            return Err(PolicyError::DuplicateMachine(machine));
        }
        let n = self.graph.add_node(NodeKind::Machine { machine }, 0);
        let arc = self.graph.add_arc(n, self.sink(), slots, 0)?;
        self.machine_nodes.insert(machine, n);
        self.machine_sink_arcs.insert(machine, arc);
        Ok(n)
    }

    /// Removes a machine node and its arcs.
    pub fn remove_machine(&mut self, machine: MachineId) -> Result<(), PolicyError> {
        let n = self
            .machine_nodes
            .remove(&machine)
            .ok_or(PolicyError::UnknownMachine(machine))?;
        self.machine_sink_arcs.remove(&machine);
        self.graph.remove_node(n)?;
        Ok(())
    }

    /// Adds a task node with one unit of supply and an arc to its job's
    /// unscheduled aggregator; grows the sink demand and the `U_j → S`
    /// capacity accordingly.
    pub fn add_task(
        &mut self,
        task: TaskId,
        job: JobId,
        unsched_cost: i64,
    ) -> Result<NodeId, PolicyError> {
        if self.task_nodes.contains_key(&task) {
            return Err(PolicyError::DuplicateTask(task));
        }
        let n = self.graph.add_node(NodeKind::Task { task }, 1);
        let u = self.ensure_unscheduled(job)?;
        self.graph.add_arc(n, u, 1, unsched_cost)?;
        self.task_nodes.insert(task, n);
        let sink = self.sink();
        let d = self.graph.supply(sink);
        self.graph.set_supply(sink, d - 1)?;
        let ua = self.unsched_sink_arcs[&job];
        let cap = self.graph.capacity(ua);
        self.graph.set_arc_capacity(ua, cap + 1)?;
        Ok(n)
    }

    /// Removes a task node (after completion or failure), shrinking the sink
    /// demand and the job's unscheduled capacity.
    ///
    /// The caller is responsible for draining the task's flow first when it
    /// wants the efficient-task-removal heuristic (§5.3.2);
    /// [`FlowGraphManager::apply_event`] does so for task completions.
    pub fn remove_task(&mut self, task: TaskId, job: JobId) -> Result<(), PolicyError> {
        let n = self
            .task_nodes
            .remove(&task)
            .ok_or(PolicyError::UnknownTask(task))?;
        self.graph.remove_node(n)?;
        let sink = self.sink();
        let d = self.graph.supply(sink);
        self.graph.set_supply(sink, d + 1)?;
        if let Some(&ua) = self.unsched_sink_arcs.get(&job) {
            let cap = self.graph.capacity(ua);
            self.graph.set_arc_capacity(ua, (cap - 1).max(0))?;
        }
        Ok(())
    }

    /// Returns (creating if needed) the unscheduled aggregator for a job.
    pub fn ensure_unscheduled(&mut self, job: JobId) -> Result<NodeId, PolicyError> {
        if let Some(&n) = self.unsched_nodes.get(&job) {
            return Ok(n);
        }
        let n = self
            .graph
            .add_node(NodeKind::UnscheduledAggregator { job }, 0);
        let arc = self.graph.add_arc(n, self.sink(), 0, 0)?;
        self.unsched_nodes.insert(job, n);
        self.unsched_sink_arcs.insert(job, arc);
        Ok(n)
    }

    /// Node for a task, if present.
    pub fn task_node(&self, task: TaskId) -> Option<NodeId> {
        self.task_nodes.get(&task).copied()
    }

    /// Node for a machine, if present.
    pub fn machine_node(&self, machine: MachineId) -> Option<NodeId> {
        self.machine_nodes.get(&machine).copied()
    }

    /// Finds the arc from `src` to `dst` if one exists (forward direction).
    pub fn find_arc(&self, src: NodeId, dst: NodeId) -> Option<ArcId> {
        self.graph
            .adj(src)
            .iter()
            .copied()
            .find(|&a| a.is_forward() && self.graph.dst(a) == dst)
    }

    /// Removes every outgoing forward arc of `node` except those whose
    /// destination satisfies `keep`; used when a task transitions between
    /// waiting and running arc sets.
    pub fn retain_out_arcs(
        &mut self,
        node: NodeId,
        keep: impl Fn(&FlowGraph, NodeId) -> bool,
    ) -> Result<(), PolicyError> {
        let to_remove: Vec<ArcId> = self
            .graph
            .adj(node)
            .iter()
            .copied()
            .filter(|&a| a.is_forward() && !keep(&self.graph, self.graph.dst(a)))
            .collect();
        for a in to_remove {
            self.graph.remove_arc(a)?;
        }
        Ok(())
    }
}

/// Counters describing what the two-pass refresh actually touched —
/// exposed so tests (and curious operators) can verify that quiescent
/// rounds skip the graph entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct RefreshStats {
    /// Completed refresh passes.
    pub rounds: u64,
    /// Machines whose aggregate arcs were re-evaluated, cumulative.
    pub machines_touched: u64,
    /// Tasks whose unscheduled cost was re-evaluated, cumulative.
    pub tasks_touched: u64,
    /// Machines touched by the most recent refresh.
    pub last_machines_touched: usize,
    /// Tasks touched by the most recent refresh.
    pub last_tasks_touched: usize,
}

/// Owns the scheduling flow network and keeps it in sync with cluster
/// state by querying a [`CostModel`] for the policy-specific numbers.
///
/// See the [module documentation](self) for the division of labor.
#[derive(Debug, Default)]
pub struct FlowGraphManager {
    base: GraphBase,
    /// Aggregate id → node.
    agg_nodes: HashMap<AggregateId, NodeId>,
    /// Machine → its aggregate arcs (aggregate → arc, sorted). Machine-
    /// major so a dirty machine's refresh touches only its own arcs.
    machine_agg_arcs: HashMap<MachineId, BTreeMap<AggregateId, ArcId>>,
    /// Where each running task sits (so preemption/completion events can
    /// dirty the right machine without consulting stale cluster state).
    running_on: HashMap<TaskId, MachineId>,
    /// Machines touched by events since the last refresh.
    dirty_machines: HashSet<MachineId>,
    /// Tasks touched by events since the last refresh.
    dirty_tasks: HashSet<TaskId>,
    /// Job → number of its tasks still in the graph; keeps the gang pass
    /// proportional to *live* jobs instead of every job ever submitted.
    live_job_tasks: HashMap<JobId, i64>,
    /// Virtual time of the last refresh; when unchanged, waiting-task
    /// costs cannot have drifted and are skipped.
    last_refresh_now: Option<Time>,
    stats: RefreshStats,
}

impl FlowGraphManager {
    /// Creates a manager with an empty network (sink only).
    pub fn new() -> Self {
        FlowGraphManager {
            base: GraphBase::new(),
            ..Default::default()
        }
    }

    /// The flow network (read-only; solvers clone or take it via the
    /// scheduler core).
    pub fn graph(&self) -> &FlowGraph {
        &self.base.graph
    }

    /// The shared node bookkeeping.
    pub fn base(&self) -> &GraphBase {
        &self.base
    }

    /// The sink node.
    pub fn sink(&self) -> NodeId {
        self.base.sink()
    }

    /// Node for a task, if present.
    pub fn task_node(&self, task: TaskId) -> Option<NodeId> {
        self.base.task_node(task)
    }

    /// Node for a machine, if present.
    pub fn machine_node(&self, machine: MachineId) -> Option<NodeId> {
        self.base.machine_node(machine)
    }

    /// Node for a policy-defined aggregate, if it has been materialized.
    pub fn aggregate_node(&self, aggregate: AggregateId) -> Option<NodeId> {
        self.agg_nodes.get(&aggregate).copied()
    }

    /// What the refresh passes have touched so far.
    pub fn stats(&self) -> RefreshStats {
        self.stats
    }

    /// Takes the graph out of the manager for an owned (zero-copy) solve.
    /// The caller **must** return it — or the solver's derived copy, which
    /// preserves node/arc ids — via [`adopt_graph`](Self::adopt_graph)
    /// before the next event or refresh.
    pub fn take_graph(&mut self) -> FlowGraph {
        std::mem::take(&mut self.base.graph)
    }

    /// Installs `graph` as the authoritative network. `graph` must be the
    /// one obtained from [`take_graph`](Self::take_graph) or a solver
    /// output derived from it (ids preserved); adopting the winning flow
    /// lets the next incremental solve warm-start from it.
    pub fn adopt_graph(&mut self, graph: FlowGraph) {
        self.base.graph = graph;
    }

    /// Applies one cluster event to the flow network, querying `model` for
    /// any newly required costs or arcs. `state` must already reflect the
    /// event (call [`ClusterState::apply`] first).
    pub fn apply_event<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
        event: &ClusterEvent,
    ) -> Result<(), PolicyError> {
        match event {
            ClusterEvent::Tick { .. } => {}
            ClusterEvent::MachineAdded { machine } => {
                let n = self.base.add_machine(machine.id, machine.slots as i64)?;
                let dynamic = model.dynamic_aggregate_arcs();
                let mut aggs: Vec<AggregateId> = self.agg_nodes.keys().copied().collect();
                aggs.sort_unstable();
                for agg in aggs {
                    let an = self.agg_nodes[&agg];
                    if let Some(spec) = model.aggregate_arc(state, agg, machine) {
                        // Static-structure models keep zero-capacity arcs
                        // alive so later refreshes can revive them;
                        // dynamic models add/remove arcs each round.
                        if dynamic && spec.capacity <= 0 {
                            continue;
                        }
                        let arc =
                            self.base
                                .graph
                                .add_arc(an, n, spec.capacity.max(0), spec.cost)?;
                        self.machine_agg_arcs
                            .entry(machine.id)
                            .or_default()
                            .insert(agg, arc);
                    }
                }
                self.dirty_machines.insert(machine.id);
            }
            ClusterEvent::MachineRemoved { machine, .. } => {
                self.machine_agg_arcs.remove(machine);
                self.running_on.retain(|_, m| *m != *machine);
                self.dirty_machines.remove(machine);
                self.base.remove_machine(*machine)?;
                // Tasks displaced by the failure are back in the waiting
                // pool; their running arc vanished with the machine node,
                // so rebuild their waiting arc set from the model.
                let mut displaced: Vec<TaskId> = state
                    .waiting_tasks()
                    .filter(|t| {
                        self.base
                            .task_node(t.id)
                            .map(|n| self.waiting_arc_count(n) == 0)
                            .unwrap_or(false)
                    })
                    .map(|t| t.id)
                    .collect();
                displaced.sort_unstable();
                for tid in displaced {
                    let task = state.tasks[&tid].clone();
                    self.add_waiting_arcs(model, state, &task)?;
                    self.dirty_tasks.insert(tid);
                }
            }
            ClusterEvent::JobSubmitted { job, tasks } => {
                for task in tasks {
                    self.base.add_task(
                        task.id,
                        job.id,
                        model.task_unscheduled_cost(state, task),
                    )?;
                    self.add_waiting_arcs(model, state, task)?;
                    self.dirty_tasks.insert(task.id);
                    *self.live_job_tasks.entry(job.id).or_insert(0) += 1;
                }
            }
            ClusterEvent::TaskPlaced { task, machine, .. } => {
                let t = self
                    .base
                    .task_node(*task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let m = self
                    .base
                    .machine_node(*machine)
                    .ok_or(PolicyError::UnknownMachine(*machine))?;
                let task_data = state
                    .tasks
                    .get(task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let u = self.base.ensure_unscheduled(task_data.job)?;
                // A running task keeps exactly two arcs: the zero-ish-cost
                // arc to its machine and the preemption arc to U_j, so
                // migrations always go through explicit preemption.
                self.base.retain_out_arcs(t, move |_, dst| dst == u)?;
                let cost = model.running_arc_cost(state, task_data, *machine);
                self.base.graph.add_arc(t, m, 1, cost)?;
                self.running_on.insert(*task, *machine);
                self.dirty_machines.insert(*machine);
            }
            ClusterEvent::TaskPreempted { task, .. } => {
                let t = self
                    .base
                    .task_node(*task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let task_data = state
                    .tasks
                    .get(task)
                    .ok_or(PolicyError::UnknownTask(*task))?
                    .clone();
                let u = self.base.ensure_unscheduled(task_data.job)?;
                self.base.retain_out_arcs(t, move |_, dst| dst == u)?;
                self.add_waiting_arcs(model, state, &task_data)?;
                if let Some(m) = self.running_on.remove(task) {
                    self.dirty_machines.insert(m);
                }
                self.dirty_tasks.insert(*task);
            }
            ClusterEvent::TaskCompleted { task, .. } => {
                // Efficient task removal (§5.3.2): drain the departing
                // task's flow before deleting the node so the graph stays
                // balanced for the incremental solver.
                if let Some(node) = self.base.task_node(*task) {
                    drain_task_flow(&mut self.base.graph, node);
                }
                let job = state
                    .tasks
                    .get(task)
                    .ok_or(PolicyError::UnknownTask(*task))?
                    .job;
                self.base.remove_task(*task, job)?;
                if let Some(n) = self.live_job_tasks.get_mut(&job) {
                    *n -= 1;
                    if *n <= 0 {
                        self.live_job_tasks.remove(&job);
                    }
                }
                self.dirty_tasks.remove(task);
                if let Some(m) = self.running_on.remove(task) {
                    self.dirty_machines.insert(m);
                }
            }
        }
        Ok(())
    }

    /// The two-pass cost update (§6.3): pass 1 collects the dirty node
    /// sets (machines touched by events — or all of them for models with
    /// dynamic arcs — plus waiting tasks whose wait-time cost drifted);
    /// pass 2 re-queries the model for exactly those and applies the
    /// deltas. A quiescent round (no events, clock unchanged) touches
    /// nothing.
    pub fn refresh<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
    ) -> Result<(), PolicyError> {
        // Pass 1: dirty-set collection.
        let mut machines: Vec<MachineId> = if model.dynamic_aggregate_arcs() {
            state.machines.keys().copied().collect()
        } else {
            self.dirty_machines
                .iter()
                .copied()
                .filter(|m| state.machines.contains_key(m))
                .collect()
        };
        machines.sort_unstable();
        let time_advanced = self.last_refresh_now != Some(state.now);
        let mut tasks: Vec<TaskId> = if time_advanced {
            state.waiting_tasks().map(|t| t.id).collect()
        } else {
            self.dirty_tasks.iter().copied().collect()
        };
        tasks.sort_unstable();

        // Pass 2: apply cost/capacity deltas for the dirty nodes only.
        // Static-structure models (the common case) re-price exactly the
        // arcs a dirty machine already has; dynamic models (Fig 6c) get
        // the full (aggregate × machine) scan, since their arc *set*
        // reacts to monitored state.
        if model.dynamic_aggregate_arcs() {
            let mut aggs: Vec<AggregateId> = self.agg_nodes.keys().copied().collect();
            aggs.sort_unstable();
            for &mid in &machines {
                let machine = &state.machines[&mid];
                let Some(mn) = self.base.machine_node(mid) else {
                    continue;
                };
                let arcs = self.machine_agg_arcs.entry(mid).or_default();
                for &agg in &aggs {
                    let spec = model
                        .aggregate_arc(state, agg, machine)
                        .filter(|s| s.capacity > 0);
                    match (arcs.get(&agg).copied(), spec) {
                        (Some(arc), Some(spec)) => {
                            self.base.graph.set_arc_capacity(arc, spec.capacity)?;
                            self.base.graph.set_arc_cost(arc, spec.cost)?;
                        }
                        (Some(arc), None) => {
                            self.base.graph.remove_arc(arc)?;
                            arcs.remove(&agg);
                        }
                        (None, Some(spec)) => {
                            let an = self.agg_nodes[&agg];
                            let arc = self.base.graph.add_arc(an, mn, spec.capacity, spec.cost)?;
                            arcs.insert(agg, arc);
                        }
                        (None, None) => {}
                    }
                }
            }
        } else {
            for &mid in &machines {
                let machine = &state.machines[&mid];
                let Some(arcs) = self.machine_agg_arcs.get(&mid) else {
                    continue;
                };
                for (&agg, &arc) in arcs {
                    match model.aggregate_arc(state, agg, machine) {
                        Some(spec) => {
                            self.base
                                .graph
                                .set_arc_capacity(arc, spec.capacity.max(0))?;
                            self.base.graph.set_arc_cost(arc, spec.cost)?;
                        }
                        // A static-structure model withdrawing an arc is
                        // expressed as zero capacity, keeping the arc
                        // available for revival on a later refresh.
                        None => self.base.graph.set_arc_capacity(arc, 0)?,
                    }
                }
            }
        }
        for &tid in &tasks {
            let Some(task) = state.tasks.get(&tid) else {
                continue;
            };
            let Some(tn) = self.base.task_node(tid) else {
                continue;
            };
            let Some(&u) = self.base.unsched_nodes.get(&task.job) else {
                continue;
            };
            if let Some(arc) = self.base.find_arc(tn, u) {
                self.base
                    .graph
                    .set_arc_cost(arc, model.task_unscheduled_cost(state, task))?;
            }
        }
        // Gang constraints: cap `U_j → S` at incomplete − minimum so at
        // least `minimum` of the job's tasks are forced through machines.
        // Only jobs with tasks still in the graph are consulted, so the
        // pass stays proportional to live work, not total jobs submitted.
        let mut jobs: Vec<JobId> = self.live_job_tasks.keys().copied().collect();
        jobs.sort_unstable();
        for jid in jobs {
            let Some(job) = state.jobs.get(&jid) else {
                continue;
            };
            let gang = model.job_gang_minimum(state, job);
            if gang <= 0 {
                continue;
            }
            let Some(&ua) = self.base.unsched_sink_arcs.get(&jid) else {
                continue;
            };
            let incomplete = job
                .tasks
                .iter()
                .filter(|t| self.base.task_node(**t).is_some())
                .count() as i64;
            self.base
                .graph
                .set_arc_capacity(ua, (incomplete - gang).max(0))?;
        }

        self.stats.rounds += 1;
        self.stats.machines_touched += machines.len() as u64;
        self.stats.tasks_touched += tasks.len() as u64;
        self.stats.last_machines_touched = machines.len();
        self.stats.last_tasks_touched = tasks.len();
        self.dirty_machines.clear();
        self.dirty_tasks.clear();
        self.last_refresh_now = Some(state.now);
        Ok(())
    }

    /// Number of non-unscheduled forward arcs out of a task node — the
    /// arcs through which the task can reach work. A running task counts
    /// 1 (its machine arc); a task displaced by a machine failure counts
    /// 0, which is exactly how `MachineRemoved` detects it.
    fn waiting_arc_count(&self, task_node: NodeId) -> usize {
        self.base
            .graph
            .adj(task_node)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .filter(|&a| {
                !self
                    .base
                    .graph
                    .kind(self.base.graph.dst(a))
                    .is_unscheduled()
            })
            .count()
    }

    /// Materializes the waiting arc set a model declares for `task`:
    /// aggregate targets are created on demand (together with their
    /// machine arcs), unknown machine targets are skipped.
    fn add_waiting_arcs<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
        task: &firmament_cluster::Task,
    ) -> Result<(), PolicyError> {
        let t = self
            .base
            .task_node(task.id)
            .ok_or(PolicyError::UnknownTask(task.id))?;
        for (target, cost) in model.task_arcs(state, task) {
            match target {
                ArcTarget::Aggregate(agg) => {
                    let an = self.ensure_aggregate(model, state, agg)?;
                    if self.base.find_arc(t, an).is_none() {
                        self.base.graph.add_arc(t, an, 1, cost)?;
                    }
                }
                ArcTarget::Machine(mid) => {
                    if let Some(mn) = self.base.machine_node(mid) {
                        if self.base.find_arc(t, mn).is_none() {
                            self.base.graph.add_arc(t, mn, 1, cost)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Returns (creating if needed) the node for a policy-defined
    /// aggregate. On creation, the aggregate's machine arcs are
    /// materialized by querying the model for every known machine.
    fn ensure_aggregate<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
        agg: AggregateId,
    ) -> Result<NodeId, PolicyError> {
        if let Some(&n) = self.agg_nodes.get(&agg) {
            return Ok(n);
        }
        let an = self.base.graph.add_node(model.aggregate_kind(agg), 0);
        self.agg_nodes.insert(agg, an);
        let dynamic = model.dynamic_aggregate_arcs();
        let mut machines: Vec<MachineId> = self.base.machine_nodes.keys().copied().collect();
        machines.sort_unstable();
        for mid in machines {
            let Some(machine) = state.machines.get(&mid) else {
                continue;
            };
            if let Some(spec) = model.aggregate_arc(state, agg, machine) {
                if dynamic && spec.capacity <= 0 {
                    continue;
                }
                let mn = self.base.machine_nodes[&mid];
                let arc = self
                    .base
                    .graph
                    .add_arc(an, mn, spec.capacity.max(0), spec.cost)?;
                self.machine_agg_arcs
                    .entry(mid)
                    .or_default()
                    .insert(agg, arc);
            }
        }
        Ok(an)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{Job, JobClass, Machine, Task, TopologySpec};
    use firmament_policies::ArcSpec;

    #[test]
    fn base_bookkeeping_roundtrip() {
        let mut b = GraphBase::new();
        let m = b.add_machine(0, 4).unwrap();
        let t = b.add_task(10, 0, 50).unwrap();
        assert_eq!(b.graph.supply(b.sink()), -1);
        assert_eq!(b.machine_node(0), Some(m));
        assert_eq!(b.task_node(10), Some(t));
        // Unscheduled agg exists with capacity 1.
        let ua = b.unsched_sink_arcs[&0];
        assert_eq!(b.graph.capacity(ua), 1);

        b.remove_task(10, 0).unwrap();
        assert_eq!(b.graph.supply(b.sink()), 0);
        assert_eq!(b.graph.capacity(ua), 0);
        assert!(b.task_node(10).is_none());
        b.remove_machine(0).unwrap();
        assert!(b.machine_node(0).is_none());
    }

    #[test]
    fn duplicate_rejected() {
        let mut b = GraphBase::new();
        b.add_machine(0, 1).unwrap();
        assert!(matches!(
            b.add_machine(0, 1),
            Err(PolicyError::DuplicateMachine(0))
        ));
        b.add_task(5, 0, 10).unwrap();
        assert!(matches!(
            b.add_task(5, 0, 10),
            Err(PolicyError::DuplicateTask(5))
        ));
    }

    #[test]
    fn unscheduled_shared_per_job() {
        let mut b = GraphBase::new();
        b.add_task(1, 7, 10).unwrap();
        b.add_task(2, 7, 10).unwrap();
        assert_eq!(b.unsched_nodes.len(), 1);
        let ua = b.unsched_sink_arcs[&7];
        assert_eq!(b.graph.capacity(ua), 2);
    }

    /// A minimal cost model for manager tests: one cluster aggregate,
    /// machine cost = running task count.
    struct TestModel;
    const AGG: AggregateId = 0;

    impl CostModel for TestModel {
        fn name(&self) -> &'static str {
            "test"
        }
        fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
            10_000 + (state.now.saturating_sub(task.submit_time) / 1_000_000) as i64
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, i64)> {
            vec![(ArcTarget::Aggregate(AGG), 1)]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcSpec> {
            Some(ArcSpec {
                capacity: machine.slots as i64,
                cost: 10 * machine.running.len() as i64,
            })
        }
        fn aggregate_kind(&self, _: AggregateId) -> NodeKind {
            NodeKind::ClusterAggregator
        }
    }

    fn setup(machines: usize, slots: u32) -> (ClusterState, FlowGraphManager) {
        let state = ClusterState::with_topology(&TopologySpec {
            machines,
            machines_per_rack: 20,
            slots_per_machine: slots,
        });
        let mut mgr = FlowGraphManager::new();
        for m in state.machines.values() {
            mgr.apply_event(
                &TestModel,
                &state,
                &ClusterEvent::MachineAdded { machine: m.clone() },
            )
            .unwrap();
        }
        (state, mgr)
    }

    fn submit(state: &mut ClusterState, mgr: &mut FlowGraphManager, job: u64, n: usize) {
        let j = Job::new(job, JobClass::Batch, 0, state.now);
        let tasks: Vec<Task> = (0..n)
            .map(|i| Task::new(job * 1000 + i as u64, job, state.now, 10_000_000))
            .collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        mgr.apply_event(&TestModel, state, &ev).unwrap();
    }

    #[test]
    fn aggregates_materialize_on_demand_with_machine_arcs() {
        let (mut state, mut mgr) = setup(4, 2);
        assert!(mgr.aggregate_node(AGG).is_none(), "lazy until referenced");
        submit(&mut state, &mut mgr, 0, 3);
        let agg = mgr.aggregate_node(AGG).expect("created by first task");
        // Arc to each of the 4 machines.
        let out = mgr
            .graph()
            .adj(agg)
            .iter()
            .copied()
            .filter(|a| a.is_forward())
            .count();
        assert_eq!(out, 4);
        // sink + 4 machines + agg + 3 tasks + U_0 = 10 nodes.
        assert_eq!(mgr.graph().node_count(), 10);
        assert_eq!(mgr.graph().total_supply(), 3);
    }

    #[test]
    fn task_lifecycle_updates_arcs() {
        let (mut state, mut mgr) = setup(2, 2);
        submit(&mut state, &mut mgr, 0, 1);
        let tid = 0u64;
        let ev = ClusterEvent::TaskPlaced {
            task: tid,
            machine: 0,
            now: 100,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        let t = mgr.task_node(tid).unwrap();
        let g = mgr.graph();
        let out: Vec<_> = g
            .adj(t)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .map(|a| g.kind(g.dst(a)))
            .collect();
        assert_eq!(out.len(), 2, "running arc + unscheduled arc");
        assert!(out.iter().any(|k| k.is_machine()));
        assert!(out.iter().any(|k| k.is_unscheduled()));

        let ev = ClusterEvent::TaskPreempted {
            task: tid,
            now: 200,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        let g = mgr.graph();
        let out: Vec<_> = g
            .adj(t)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .map(|a| g.kind(g.dst(a)))
            .collect();
        assert!(out.iter().any(|k| matches!(k, NodeKind::ClusterAggregator)));

        let ev = ClusterEvent::TaskPlaced {
            task: tid,
            machine: 1,
            now: 300,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        let ev = ClusterEvent::TaskCompleted {
            task: tid,
            now: 400,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        assert!(mgr.task_node(tid).is_none());
        assert_eq!(mgr.graph().total_supply(), 0);
    }

    #[test]
    fn refresh_tracks_running_counts_on_dirty_machines() {
        let (mut state, mut mgr) = setup(2, 2);
        submit(&mut state, &mut mgr, 0, 2);
        for (tid, m) in [(0u64, 0u64), (1, 0)] {
            let ev = ClusterEvent::TaskPlaced {
                task: tid,
                machine: m,
                now: 0,
            };
            state.apply(&ev);
            mgr.apply_event(&TestModel, &state, &ev).unwrap();
        }
        mgr.refresh(&TestModel, &state).unwrap();
        let agg = mgr.aggregate_node(AGG).unwrap();
        let g = mgr.graph();
        let mut costs: Vec<(u64, i64)> = g
            .adj(agg)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .filter_map(|a| match g.kind(g.dst(a)) {
                NodeKind::Machine { machine } => Some((machine, g.cost(a))),
                _ => None,
            })
            .collect();
        costs.sort();
        assert_eq!(costs, vec![(0, 20), (1, 0)]);
    }

    #[test]
    fn quiescent_refresh_touches_nothing() {
        let (mut state, mut mgr) = setup(3, 2);
        submit(&mut state, &mut mgr, 0, 2);
        mgr.refresh(&TestModel, &state).unwrap();
        assert!(mgr.stats().last_tasks_touched > 0);
        // Same state, same clock: the two-pass update finds no dirty nodes.
        mgr.refresh(&TestModel, &state).unwrap();
        assert_eq!(mgr.stats().last_machines_touched, 0);
        assert_eq!(mgr.stats().last_tasks_touched, 0);
    }

    #[test]
    fn machine_removal_rebuilds_displaced_waiting_arcs() {
        let (mut state, mut mgr) = setup(2, 1);
        submit(&mut state, &mut mgr, 0, 1);
        let ev = ClusterEvent::TaskPlaced {
            task: 0,
            machine: 0,
            now: 10,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        let ev = ClusterEvent::MachineRemoved {
            machine: 0,
            now: 20,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        // The displaced task got its aggregate arc back.
        let t = mgr.task_node(0).unwrap();
        let agg = mgr.aggregate_node(AGG).unwrap();
        assert!(mgr.base().find_arc(t, agg).is_some());
    }

    #[test]
    fn take_and_adopt_graph_roundtrip() {
        let (mut state, mut mgr) = setup(2, 1);
        submit(&mut state, &mut mgr, 0, 1);
        let nodes = mgr.graph().node_count();
        let g = mgr.take_graph();
        assert_eq!(mgr.graph().node_count(), 0);
        mgr.adopt_graph(g);
        assert_eq!(mgr.graph().node_count(), nodes);
    }

    /// Gang constraints squeeze the unscheduled capacity.
    struct GangModel;

    impl CostModel for GangModel {
        fn name(&self) -> &'static str {
            "gang"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            0 // unscheduled is free: only the gang constraint forces work
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, i64)> {
            vec![(ArcTarget::Aggregate(AGG), 1)]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcSpec> {
            Some(ArcSpec {
                capacity: machine.slots as i64,
                cost: 5,
            })
        }
        fn job_gang_minimum(&self, _: &ClusterState, _: &Job) -> i64 {
            2
        }
    }

    #[test]
    fn gang_minimum_caps_unscheduled_capacity() {
        let state = ClusterState::with_topology(&TopologySpec {
            machines: 3,
            machines_per_rack: 20,
            slots_per_machine: 1,
        });
        let mut state = state;
        let mut mgr = FlowGraphManager::new();
        for m in state.machines.values() {
            mgr.apply_event(
                &GangModel,
                &state,
                &ClusterEvent::MachineAdded { machine: m.clone() },
            )
            .unwrap();
        }
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let tasks: Vec<Task> = (0..3).map(|i| Task::new(i, 0, 0, 1_000_000)).collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        mgr.apply_event(&GangModel, &state, &ev).unwrap();
        mgr.refresh(&GangModel, &state).unwrap();
        let ua = mgr.base().unsched_sink_arcs[&0];
        // 3 incomplete tasks − gang minimum 2 = capacity 1.
        assert_eq!(mgr.graph().capacity(ua), 1);
    }
}
