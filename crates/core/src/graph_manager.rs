//! The flow-graph manager: the *imperative* half of the policy split.
//!
//! A [`CostModel`] declares costs and arc structure as pure functions of
//! [`ClusterState`]; the [`FlowGraphManager`] owns the flow network and
//! does everything stateful — it translates [`ClusterEvent`]s into graph
//! deltas, materializes the aggregator nodes a model refers to (including
//! whole EC→EC hierarchies, recursively and cycle-checked), runs the
//! two-pass cost update of §6.3 (collect dirty nodes — propagating
//! dirtiness *up* multi-level aggregator chains — then re-query the model
//! for exactly those), admission-controls and enforces gang constraints
//! through the `U_j → S` capacities, and garbage-collects aggregators no
//! task can reach. No other component mutates the graph: the scheduler
//! core borrows it for solving and hands the winning flow back via
//! [`FlowGraphManager::adopt_graph`].
//!
//! # Arc bundles
//!
//! Every declared arc is an [`ArcBundle`] — a piecewise-linear convex
//! cost ladder. The manager materializes one parallel graph arc per
//! segment and keeps the arc ids in a **slot vector** per (source,
//! target) pair, so segment `j` of a bundle always maps to the same graph
//! arc across refreshes: re-pricing a segment is a pure
//! cost/capacity change on its slot (a cheap `CostChanged` delta for the
//! incremental solver), growing a bundle appends slots, and shrinking
//! parks the tail at capacity 0 (static models) or removes it (dynamic
//! models). Convexity — non-decreasing segment costs — is validated at
//! every declaration site and violations are rejected with
//! [`PolicyError::NonConvexBundle`]: a decreasing ladder would let the
//! min-cost solver fill expensive segments before cheap ones, silently
//! corrupting the declared cost function.
//!
//! This mirrors real Firmament's `FlowGraphManager`/`CostModelInterface`
//! split, which is what makes new policies cheap: the node and slot
//! bookkeeping below is written once instead of once per policy.

use firmament_cluster::{ClusterEvent, ClusterState, JobId, MachineId, TaskId, Time};
use firmament_flow::delta::DeltaBatch;
use firmament_flow::{ArcId, FlowGraph, NodeId, NodeKind};
use firmament_mcmf::incremental::drain_task_flow;
use firmament_policies::{AggregateId, ArcBundle, ArcSpec, ArcTarget, CostModel, PolicyError};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Node bookkeeping shared by every policy: the sink, per-task and
/// per-machine nodes, per-job unscheduled aggregators, and the arcs whose
/// capacities track cluster quantities.
#[derive(Debug, Default)]
pub struct GraphBase {
    /// The flow network.
    pub graph: FlowGraph,
    /// The sink node `S`.
    pub sink: Option<NodeId>,
    /// Task → node.
    pub task_nodes: HashMap<TaskId, NodeId>,
    /// Machine → node.
    pub machine_nodes: HashMap<MachineId, NodeId>,
    /// Machine → its arc to the sink (capacity = slots).
    pub machine_sink_arcs: HashMap<MachineId, ArcId>,
    /// Job → unscheduled aggregator `U_j`.
    pub unsched_nodes: HashMap<JobId, NodeId>,
    /// Job → the `U_j → S` arc (capacity = incomplete tasks of the job).
    pub unsched_sink_arcs: HashMap<JobId, ArcId>,
}

impl GraphBase {
    /// Creates an empty base with a sink node. Change tracking is enabled
    /// from the start: the manager's graph records every mutation so each
    /// round's [`DeltaBatch`] can be handed to the incremental solver.
    pub fn new() -> Self {
        let mut base = GraphBase::default();
        base.graph.set_change_tracking(true);
        let sink = base.graph.add_node(NodeKind::Sink, 0);
        base.sink = Some(sink);
        base
    }

    /// The sink node.
    ///
    /// # Panics
    ///
    /// Panics if called before [`GraphBase::new`] created the sink.
    pub fn sink(&self) -> NodeId {
        self.sink.expect("GraphBase::new creates the sink")
    }

    /// Adds a machine node with a `slots`-capacity arc to the sink.
    pub fn add_machine(&mut self, machine: MachineId, slots: i64) -> Result<NodeId, PolicyError> {
        if self.machine_nodes.contains_key(&machine) {
            return Err(PolicyError::DuplicateMachine(machine));
        }
        let n = self.graph.add_node(NodeKind::Machine { machine }, 0);
        let arc = self.graph.add_arc(n, self.sink(), slots, 0)?;
        self.machine_nodes.insert(machine, n);
        self.machine_sink_arcs.insert(machine, arc);
        Ok(n)
    }

    /// Removes a machine node and its arcs.
    pub fn remove_machine(&mut self, machine: MachineId) -> Result<(), PolicyError> {
        let n = self
            .machine_nodes
            .remove(&machine)
            .ok_or(PolicyError::UnknownMachine(machine))?;
        self.machine_sink_arcs.remove(&machine);
        self.graph.remove_node(n)?;
        Ok(())
    }

    /// Adds a task node with one unit of supply and an arc to its job's
    /// unscheduled aggregator; grows the sink demand and the `U_j → S`
    /// capacity accordingly.
    pub fn add_task(
        &mut self,
        task: TaskId,
        job: JobId,
        unsched_cost: i64,
    ) -> Result<NodeId, PolicyError> {
        if self.task_nodes.contains_key(&task) {
            return Err(PolicyError::DuplicateTask(task));
        }
        let n = self.graph.add_node(NodeKind::Task { task }, 1);
        let u = self.ensure_unscheduled(job)?;
        self.graph.add_arc(n, u, 1, unsched_cost)?;
        self.task_nodes.insert(task, n);
        let sink = self.sink();
        let d = self.graph.supply(sink);
        self.graph.set_supply(sink, d - 1)?;
        let ua = self.unsched_sink_arcs[&job];
        let cap = self.graph.capacity(ua);
        self.graph.set_arc_capacity(ua, cap + 1)?;
        Ok(n)
    }

    /// Removes a task node (after completion or failure), shrinking the sink
    /// demand and the job's unscheduled capacity.
    ///
    /// The caller is responsible for draining the task's flow first when it
    /// wants the efficient-task-removal heuristic (§5.3.2);
    /// [`FlowGraphManager::apply_event`] does so for task completions.
    pub fn remove_task(&mut self, task: TaskId, job: JobId) -> Result<(), PolicyError> {
        let n = self
            .task_nodes
            .remove(&task)
            .ok_or(PolicyError::UnknownTask(task))?;
        self.graph.remove_node(n)?;
        let sink = self.sink();
        let d = self.graph.supply(sink);
        self.graph.set_supply(sink, d + 1)?;
        if let Some(&ua) = self.unsched_sink_arcs.get(&job) {
            let cap = self.graph.capacity(ua);
            self.graph.set_arc_capacity(ua, (cap - 1).max(0))?;
        }
        Ok(())
    }

    /// Returns (creating if needed) the unscheduled aggregator for a job.
    pub fn ensure_unscheduled(&mut self, job: JobId) -> Result<NodeId, PolicyError> {
        if let Some(&n) = self.unsched_nodes.get(&job) {
            return Ok(n);
        }
        let n = self
            .graph
            .add_node(NodeKind::UnscheduledAggregator { job }, 0);
        let arc = self.graph.add_arc(n, self.sink(), 0, 0)?;
        self.unsched_nodes.insert(job, n);
        self.unsched_sink_arcs.insert(job, arc);
        Ok(n)
    }

    /// Node for a task, if present.
    pub fn task_node(&self, task: TaskId) -> Option<NodeId> {
        self.task_nodes.get(&task).copied()
    }

    /// Node for a machine, if present.
    pub fn machine_node(&self, machine: MachineId) -> Option<NodeId> {
        self.machine_nodes.get(&machine).copied()
    }

    /// Finds the first arc from `src` to `dst` if one exists (forward
    /// direction). With multi-segment bundles there may be several
    /// parallel arcs; this returns the earliest in adjacency order.
    pub fn find_arc(&self, src: NodeId, dst: NodeId) -> Option<ArcId> {
        self.graph
            .adj(src)
            .iter()
            .copied()
            .find(|&a| a.is_forward() && self.graph.dst(a) == dst)
    }

    /// Removes every outgoing forward arc of `node` except those whose
    /// destination satisfies `keep`; used when a task transitions between
    /// waiting and running arc sets.
    pub fn retain_out_arcs(
        &mut self,
        node: NodeId,
        keep: impl Fn(&FlowGraph, NodeId) -> bool,
    ) -> Result<(), PolicyError> {
        let to_remove: Vec<ArcId> = self
            .graph
            .adj(node)
            .iter()
            .copied()
            .filter(|&a| a.is_forward() && !keep(&self.graph, self.graph.dst(a)))
            .collect();
        for a in to_remove {
            self.graph.remove_arc(a)?;
        }
        Ok(())
    }
}

/// Rejects bundles that break the convexity contract: segment costs must
/// be non-decreasing, or the min-cost solver would fill expensive
/// segments before cheap ones.
fn validate_bundle(hook: &'static str, bundle: &ArcBundle) -> Result<(), PolicyError> {
    if let Some((prev, next)) = bundle.convexity_violation() {
        return Err(PolicyError::NonConvexBundle { hook, prev, next });
    }
    Ok(())
}

/// Synchronizes one bundle's slot vector with its newly declared
/// segments, preserving per-segment slot identity:
///
/// - existing slots are re-priced in place (`CostChanged` /
///   `CapacityChanged` deltas — never structural),
/// - extra declared segments append new arcs,
/// - slots beyond the declared length are parked at capacity 0 (static
///   models, revivable) or removed (`dynamic`).
fn sync_bundle(
    graph: &mut FlowGraph,
    slots: &mut Vec<ArcId>,
    src: NodeId,
    dst: NodeId,
    segments: &[ArcSpec],
    dynamic: bool,
) -> Result<(), PolicyError> {
    let common = slots.len().min(segments.len());
    for (slot, seg) in slots.iter().zip(segments).take(common) {
        graph.set_arc_capacity(*slot, seg.capacity.max(0))?;
        graph.set_arc_cost(*slot, seg.cost)?;
    }
    if slots.len() > segments.len() {
        if dynamic {
            for &arc in &slots[segments.len()..] {
                graph.remove_arc(arc)?;
            }
            slots.truncate(segments.len());
        } else {
            for &arc in &slots[segments.len()..] {
                graph.set_arc_capacity(arc, 0)?;
            }
        }
    }
    // Non-empty exactly when segments outnumber slots: append the rest.
    for seg in &segments[common..] {
        let arc = graph.add_arc(src, dst, seg.capacity.max(0), seg.cost)?;
        slots.push(arc);
    }
    Ok(())
}

/// Materializes a fresh slot vector for a bundle (one arc per segment).
fn materialize_bundle(
    graph: &mut FlowGraph,
    src: NodeId,
    dst: NodeId,
    segments: &[ArcSpec],
) -> Result<Vec<ArcId>, PolicyError> {
    let mut slots = Vec::with_capacity(segments.len());
    for seg in segments {
        slots.push(graph.add_arc(src, dst, seg.capacity.max(0), seg.cost)?);
    }
    Ok(slots)
}

/// Counters describing what the two-pass refresh actually touched —
/// exposed so tests (and curious operators) can verify that quiescent
/// rounds skip the graph entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct RefreshStats {
    /// Completed refresh passes.
    pub rounds: u64,
    /// Machines whose aggregate arcs were re-evaluated, cumulative.
    pub machines_touched: u64,
    /// Tasks whose unscheduled cost was re-evaluated, cumulative.
    pub tasks_touched: u64,
    /// Aggregates whose EC→EC arcs were re-synchronized, cumulative.
    pub aggregates_touched: u64,
    /// Aggregate nodes garbage-collected (task in-degree dropped to zero),
    /// cumulative; includes per-job unscheduled aggregators.
    pub aggregates_collected: u64,
    /// Waiting tasks whose arc sets were re-derived by machine-set events,
    /// cumulative — the quantity the waiting-task dirty-set narrowing
    /// ([`CostModel::task_arcs_machine_local`]) keeps small.
    pub waiting_rederived: u64,
    /// Machines touched by the most recent refresh.
    pub last_machines_touched: usize,
    /// Tasks touched by the most recent refresh.
    pub last_tasks_touched: usize,
    /// Aggregates touched by the most recent refresh.
    pub last_aggregates_touched: usize,
}

/// Owns the scheduling flow network and keeps it in sync with cluster
/// state by querying a [`CostModel`] for the policy-specific numbers.
///
/// See the [module documentation](self) for the division of labor.
#[derive(Debug, Default)]
pub struct FlowGraphManager {
    base: GraphBase,
    /// Aggregate id → node.
    agg_nodes: HashMap<AggregateId, NodeId>,
    /// Machine → its aggregate bundles (aggregate → per-segment arc
    /// slots, sorted). Machine-major so a dirty machine's refresh touches
    /// only its own arcs.
    machine_agg_arcs: HashMap<MachineId, BTreeMap<AggregateId, Vec<ArcId>>>,
    /// EC→EC bundles, source-major: parent aggregate → (child aggregate →
    /// per-segment arc slots). These are the multi-level hierarchy edges
    /// declared via [`CostModel::aggregate_to_aggregate`].
    agg_agg_arcs: HashMap<AggregateId, BTreeMap<AggregateId, Vec<ArcId>>>,
    /// Waiting task → its declared arc targets with per-segment slots, in
    /// declaration order. Machine targets absent from the cluster are
    /// recorded with empty slot vectors so machine-arrival events can
    /// find the tasks that reference them (dirty-set narrowing) and the
    /// dynamic task re-pricing can detect structural drift.
    task_slots: HashMap<TaskId, Vec<(ArcTarget, Vec<ArcId>)>>,
    /// Where each running task sits (so preemption/completion events can
    /// dirty the right machine without consulting stale cluster state).
    running_on: HashMap<TaskId, MachineId>,
    /// Machines touched by events since the last refresh.
    dirty_machines: HashSet<MachineId>,
    /// Tasks touched by events since the last refresh.
    dirty_tasks: HashSet<TaskId>,
    /// Aggregates explicitly dirtied by events (machine-set changes dirty
    /// every aggregate, since EC→EC capacities aggregate machine slots).
    /// Dirtiness also propagates *up* the hierarchy at refresh time.
    dirty_aggs: HashSet<AggregateId>,
    /// Gang jobs whose minimum exceeded free capacity at the last refresh:
    /// their gang cap is left unenforced (the job queues) so the network
    /// stays feasible instead of surfacing a solver infeasibility error.
    deferred_gangs: Vec<JobId>,
    /// Job → number of its tasks still in the graph; keeps the gang pass
    /// proportional to *live* jobs instead of every job ever submitted.
    live_job_tasks: HashMap<JobId, i64>,
    /// Virtual time of the last refresh; when unchanged, waiting-task
    /// costs cannot have drifted and are skipped.
    last_refresh_now: Option<Time>,
    /// Whether the model has *ever* declared an EC→EC child. Flat models
    /// (the common case) never do, so machine-set events skip the blanket
    /// aggregate-dirtying that exists only to re-sync hierarchy arcs and
    /// their subtree capacities. Sticky: once a hierarchy is seen, machine
    /// events always re-dirty every aggregate (hierarchies may grow with
    /// the machine set). Known limit: a model that has never declared any
    /// EC→EC child and whose *first* declaration appears, in response to
    /// a machine-set change, on an existing aggregate with no arc to the
    /// touched machine is not re-queried (the flag can only flip inside a
    /// query). No shipped model behaves this way; the differential fuzz
    /// suite would flag the divergence if one did.
    hierarchy_declared: bool,
    stats: RefreshStats,
}

impl FlowGraphManager {
    /// Creates a manager with an empty network (sink only).
    pub fn new() -> Self {
        FlowGraphManager {
            base: GraphBase::new(),
            ..Default::default()
        }
    }

    /// The flow network (read-only; solvers clone or take it via the
    /// scheduler core).
    pub fn graph(&self) -> &FlowGraph {
        &self.base.graph
    }

    /// The shared node bookkeeping.
    pub fn base(&self) -> &GraphBase {
        &self.base
    }

    /// The sink node.
    pub fn sink(&self) -> NodeId {
        self.base.sink()
    }

    /// Node for a task, if present.
    pub fn task_node(&self, task: TaskId) -> Option<NodeId> {
        self.base.task_node(task)
    }

    /// Node for a machine, if present.
    pub fn machine_node(&self, machine: MachineId) -> Option<NodeId> {
        self.base.machine_node(machine)
    }

    /// Node for a policy-defined aggregate, if it has been materialized.
    pub fn aggregate_node(&self, aggregate: AggregateId) -> Option<NodeId> {
        self.agg_nodes.get(&aggregate).copied()
    }

    /// Number of currently materialized policy aggregates (excludes the
    /// per-job unscheduled aggregators).
    pub fn aggregate_count(&self) -> usize {
        self.agg_nodes.len()
    }

    /// The per-segment arc slots of an aggregate → machine bundle, if
    /// present. Slot `j` is the graph arc of bundle segment `j`.
    pub fn aggregate_machine_slots(
        &self,
        aggregate: AggregateId,
        machine: MachineId,
    ) -> Option<&[ArcId]> {
        self.machine_agg_arcs
            .get(&machine)
            .and_then(|m| m.get(&aggregate))
            .map(|v| v.as_slice())
    }

    /// The first-segment EC→EC arc from one aggregate to another, if
    /// present (see [`aggregate_to_aggregate_slots`] for the whole
    /// bundle).
    ///
    /// [`aggregate_to_aggregate_slots`]: Self::aggregate_to_aggregate_slots
    pub fn aggregate_to_aggregate_arc(
        &self,
        parent: AggregateId,
        child: AggregateId,
    ) -> Option<ArcId> {
        self.aggregate_to_aggregate_slots(parent, child)
            .and_then(|s| s.first().copied())
    }

    /// The per-segment arc slots of an EC→EC bundle, if present.
    pub fn aggregate_to_aggregate_slots(
        &self,
        parent: AggregateId,
        child: AggregateId,
    ) -> Option<&[ArcId]> {
        self.agg_agg_arcs
            .get(&parent)
            .and_then(|m| m.get(&child))
            .map(|v| v.as_slice())
    }

    /// The declared arc targets and per-segment slots of a waiting task,
    /// in declaration order. Machine targets not currently in the cluster
    /// have empty slot vectors. `None` for running or unknown tasks.
    pub fn task_arc_slots(&self, task: TaskId) -> Option<&[(ArcTarget, Vec<ArcId>)]> {
        self.task_slots.get(&task).map(|v| v.as_slice())
    }

    /// Gang jobs deferred by admission control at the last refresh: jobs
    /// whose minimum exceeded total machine capacity (summed across
    /// admitted gangs) or the machine capacity their own tasks can reach
    /// through positive-capacity arcs. Their `U_j → S` cap is left
    /// unenforced — the job queues (its tasks may stay unscheduled)
    /// rather than making the flow network infeasible. Re-evaluated every
    /// refresh, so a deferred gang is admitted automatically once
    /// capacity appears.
    pub fn deferred_gang_jobs(&self) -> &[JobId] {
        &self.deferred_gangs
    }

    /// What the refresh passes have touched so far.
    pub fn stats(&self) -> RefreshStats {
        self.stats
    }

    /// Drains and compacts the graph changes recorded since the last call
    /// — the typed feed the incremental solver warm-starts from. The
    /// scheduler core calls this once per round, after the refresh and
    /// before [`take_graph`](Self::take_graph), so the batch covers
    /// exactly one handoff window.
    pub fn take_deltas(&mut self) -> DeltaBatch {
        DeltaBatch::compact(self.base.graph.take_changes())
    }

    /// Takes the graph out of the manager for an owned (zero-copy) solve.
    /// The caller **must** return it — or the solver's derived copy, which
    /// preserves node/arc ids — via [`adopt_graph`](Self::adopt_graph)
    /// before the next event or refresh.
    pub fn take_graph(&mut self) -> FlowGraph {
        std::mem::take(&mut self.base.graph)
    }

    /// Installs `graph` as the authoritative network. `graph` must be the
    /// one obtained from [`take_graph`](Self::take_graph) or a solver
    /// output derived from it (ids preserved); adopting the winning flow
    /// lets the next incremental solve warm-start from it.
    pub fn adopt_graph(&mut self, graph: FlowGraph) {
        self.base.graph = graph;
    }

    /// Applies one cluster event to the flow network, querying `model` for
    /// any newly required costs or arcs. `state` must already reflect the
    /// event (call [`ClusterState::apply`] first).
    pub fn apply_event<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
        event: &ClusterEvent,
    ) -> Result<(), PolicyError> {
        match event {
            ClusterEvent::Tick { .. } => {}
            ClusterEvent::MachineAdded { machine } => {
                let n = self.base.add_machine(machine.id, machine.slots as i64)?;
                let dynamic = model.dynamic_aggregate_arcs();
                let mut aggs: Vec<AggregateId> = self.agg_nodes.keys().copied().collect();
                aggs.sort_unstable();
                for agg in aggs {
                    let an = self.agg_nodes[&agg];
                    if let Some(bundle) = model.aggregate_arc(state, agg, machine) {
                        validate_bundle("aggregate_arc", &bundle)?;
                        // Static-structure models keep zero-capacity
                        // slots alive so later refreshes can revive them;
                        // dynamic models add/remove bundles each round.
                        if bundle.is_empty() || (dynamic && bundle.total_capacity() <= 0) {
                            continue;
                        }
                        let slots =
                            materialize_bundle(&mut self.base.graph, an, n, bundle.segments())?;
                        self.machine_agg_arcs
                            .entry(machine.id)
                            .or_default()
                            .insert(agg, slots);
                    }
                }
                self.dirty_machines.insert(machine.id);
                // Machine-set changes can alter EC→EC capacities (which
                // aggregate subtree slots) and even create hierarchy levels
                // (first machine of a new rack), so every aggregate's
                // EC→EC arcs are re-synced at the next refresh — but only
                // for models that have ever declared a hierarchy. Flat
                // aggregates have no EC→EC arcs to re-sync, so dirtying
                // them here would only trigger no-op model queries. (A
                // model that has *never* declared any EC→EC child and
                // whose first declaration would come from an aggregate not
                // adjacent to the touched machine is not re-queried — see
                // `hierarchy_declared` for the documented limits.)
                if self.hierarchy_declared {
                    self.dirty_aggs.extend(self.agg_nodes.keys().copied());
                }
                // And they can change waiting tasks' declared arc *sets*:
                // a model that names this machine (or its rack) as a
                // preference target would declare arcs a from-scratch
                // build gets but the old incremental graph lacks.
                // Machine-local models narrow this to the tasks whose
                // declared targets reference the new machine.
                self.resync_waiting_arcs(model, state, Some(machine.id))?;
            }
            ClusterEvent::MachineRemoved { machine, .. } => {
                self.machine_agg_arcs.remove(machine);
                // See `MachineAdded`: the blanket re-sync only exists for
                // EC→EC hierarchies.
                if self.hierarchy_declared {
                    self.dirty_aggs.extend(self.agg_nodes.keys().copied());
                }
                self.running_on.retain(|_, m| *m != *machine);
                self.dirty_machines.remove(machine);
                self.base.remove_machine(*machine)?;
                // A machine failure invalidates waiting arc *sets*, not
                // just those of the displaced tasks: block replicas died
                // with the machine, so locality-driven preference arcs
                // (e.g. a rack arc whose holders are gone) may no longer
                // be declared. Re-derive waiting tasks' arcs from the
                // model, exactly as a from-scratch build would — narrowed
                // to referencing tasks for machine-local models.
                self.resync_waiting_arcs(model, state, Some(*machine))?;
            }
            ClusterEvent::JobSubmitted { job, tasks } => {
                for task in tasks {
                    self.base.add_task(
                        task.id,
                        job.id,
                        model.task_unscheduled_cost(state, task),
                    )?;
                    self.add_waiting_arcs(model, state, task)?;
                    self.dirty_tasks.insert(task.id);
                    *self.live_job_tasks.entry(job.id).or_insert(0) += 1;
                }
            }
            ClusterEvent::TaskPlaced { task, machine, .. } => {
                let t = self
                    .base
                    .task_node(*task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let m = self
                    .base
                    .machine_node(*machine)
                    .ok_or(PolicyError::UnknownMachine(*machine))?;
                let task_data = state
                    .tasks
                    .get(task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let u = self.base.ensure_unscheduled(task_data.job)?;
                // Drain the task's old flow (which may route through
                // aggregator chains) before rewiring its arcs: removing a
                // flow-carrying waiting arc would strand stale flow on the
                // aggregates below, unbalancing the warm start and pinning
                // otherwise-dead aggregates past garbage collection.
                drain_task_flow(&mut self.base.graph, t);
                // A running task keeps exactly two arcs: the zero-ish-cost
                // arc to its machine and the preemption arc to U_j, so
                // migrations always go through explicit preemption.
                self.base.retain_out_arcs(t, move |_, dst| dst == u)?;
                self.task_slots.remove(task);
                let cost = model.running_arc_cost(state, task_data, *machine);
                self.base.graph.add_arc(t, m, 1, cost)?;
                self.running_on.insert(*task, *machine);
                self.dirty_machines.insert(*machine);
            }
            ClusterEvent::TaskPreempted { task, .. } => {
                let t = self
                    .base
                    .task_node(*task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let task_data = state
                    .tasks
                    .get(task)
                    .ok_or(PolicyError::UnknownTask(*task))?
                    .clone();
                let u = self.base.ensure_unscheduled(task_data.job)?;
                // Drain before dropping the running arc, for the same
                // reason as in `TaskPlaced`: its flow must not be stranded
                // on the machine → sink arc.
                drain_task_flow(&mut self.base.graph, t);
                self.base.retain_out_arcs(t, move |_, dst| dst == u)?;
                self.task_slots.remove(task);
                self.add_waiting_arcs(model, state, &task_data)?;
                if let Some(m) = self.running_on.remove(task) {
                    self.dirty_machines.insert(m);
                }
                self.dirty_tasks.insert(*task);
            }
            ClusterEvent::TaskCompleted { task, .. } => {
                // Efficient task removal (§5.3.2): drain the departing
                // task's flow before deleting the node so the graph stays
                // balanced for the incremental solver.
                if let Some(node) = self.base.task_node(*task) {
                    drain_task_flow(&mut self.base.graph, node);
                }
                let job = state
                    .tasks
                    .get(task)
                    .ok_or(PolicyError::UnknownTask(*task))?
                    .job;
                self.base.remove_task(*task, job)?;
                self.task_slots.remove(task);
                if let Some(n) = self.live_job_tasks.get_mut(&job) {
                    *n -= 1;
                    if *n <= 0 {
                        self.live_job_tasks.remove(&job);
                    }
                }
                self.dirty_tasks.remove(task);
                if let Some(m) = self.running_on.remove(task) {
                    self.dirty_machines.insert(m);
                }
            }
        }
        Ok(())
    }

    /// The two-pass cost update (§6.3): pass 1 collects the dirty node
    /// sets (machines touched by events — or all of them for models with
    /// dynamic arcs — plus waiting tasks whose wait-time cost drifted,
    /// plus aggregates above any dirty machine, with dirtiness propagated
    /// *up* multi-level EC→EC chains); pass 2 re-queries the model for
    /// exactly those and applies the deltas. A quiescent round (no events,
    /// clock unchanged) touches nothing.
    ///
    /// Pass 2 re-syncs bundles **in place**: segment slots keep their
    /// identity, so a re-priced ladder reaches the incremental solver as
    /// cost/capacity deltas, never as structural churn. Models with
    /// [`CostModel::dynamic_task_arcs`] additionally get their waiting
    /// tasks' preference bundles re-priced here (the task-side mirror of
    /// the dynamic aggregate-arc refresh).
    ///
    /// The refresh also runs gang admission control (deferring gang caps
    /// that would make the network infeasible; see
    /// [`deferred_gang_jobs`](Self::deferred_gang_jobs)) and garbage-
    /// collects aggregates whose task in-degree dropped to zero.
    pub fn refresh<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
    ) -> Result<(), PolicyError> {
        // Pass 1: dirty-set collection.
        let dynamic = model.dynamic_aggregate_arcs();
        let mut machines: Vec<MachineId> = if dynamic {
            state.machines.keys().copied().collect()
        } else {
            self.dirty_machines
                .iter()
                .copied()
                .filter(|m| state.machines.contains_key(m))
                .collect()
        };
        machines.sort_unstable();
        let time_advanced = self.last_refresh_now != Some(state.now);
        let mut tasks: Vec<TaskId> = if time_advanced {
            // Every task still in the graph: waiting tasks' unscheduled
            // arcs *and* running tasks' preemption arcs carry the
            // wait-scaled cost, and both drift with the clock.
            self.base.task_nodes.keys().copied().collect()
        } else {
            self.dirty_tasks.iter().copied().collect()
        };
        tasks.sort_unstable();
        let dirty_aggs = self.collect_dirty_aggregates(dynamic, &machines);

        // EC→EC re-sync: for every dirty aggregate, bring its declared
        // aggregate→aggregate arc set up to date *before* the machine-arc
        // pass, so aggregates materialized here (e.g. a brand-new rack
        // level) already have their machine arcs when that pass runs.
        for &agg in &dirty_aggs {
            self.sync_aggregate_children(model, state, agg, dynamic)?;
        }

        // Pass 2: apply cost/capacity deltas for the dirty nodes only.
        // Static-structure models (the common case) re-sync exactly the
        // bundles a dirty machine already has; dynamic models (Fig 6c)
        // get the full (aggregate × machine) scan, since their arc *set*
        // reacts to monitored state.
        if dynamic {
            let mut aggs: Vec<AggregateId> = self.agg_nodes.keys().copied().collect();
            aggs.sort_unstable();
            for &mid in &machines {
                let machine = &state.machines[&mid];
                let Some(mn) = self.base.machine_node(mid) else {
                    continue;
                };
                for &agg in &aggs {
                    // Validate before the capacity filter so a non-convex
                    // declaration is rejected even while its capacity is
                    // parked at ≤ 0, matching every other declaration
                    // site (the bug is in the model, not the load).
                    let bundle = model.aggregate_arc(state, agg, machine);
                    if let Some(b) = &bundle {
                        validate_bundle("aggregate_arc", b)?;
                    }
                    let bundle = bundle.filter(|b| !b.is_empty() && b.total_capacity() > 0);
                    let arcs = self.machine_agg_arcs.entry(mid).or_default();
                    match (arcs.get_mut(&agg), bundle) {
                        (Some(slots), Some(b)) => {
                            sync_bundle(
                                &mut self.base.graph,
                                slots,
                                self.agg_nodes[&agg],
                                mn,
                                b.segments(),
                                true,
                            )?;
                        }
                        (Some(slots), None) => {
                            for &arc in slots.iter() {
                                self.base.graph.remove_arc(arc)?;
                            }
                            arcs.remove(&agg);
                        }
                        (None, Some(b)) => {
                            let an = self.agg_nodes[&agg];
                            let slots =
                                materialize_bundle(&mut self.base.graph, an, mn, b.segments())?;
                            arcs.insert(agg, slots);
                        }
                        (None, None) => {}
                    }
                }
            }
        } else {
            for &mid in &machines {
                let machine = &state.machines[&mid];
                let Some(arcs) = self.machine_agg_arcs.get_mut(&mid) else {
                    continue;
                };
                for (&agg, slots) in arcs.iter_mut() {
                    let Some(&an) = self.agg_nodes.get(&agg) else {
                        continue;
                    };
                    let Some(mn) = self.base.machine_nodes.get(&mid).copied() else {
                        continue;
                    };
                    match model.aggregate_arc(state, agg, machine) {
                        Some(bundle) => {
                            validate_bundle("aggregate_arc", &bundle)?;
                            sync_bundle(
                                &mut self.base.graph,
                                slots,
                                an,
                                mn,
                                bundle.segments(),
                                false,
                            )?;
                        }
                        // A static-structure model withdrawing a bundle is
                        // expressed as zero capacity on every slot,
                        // keeping the arcs available for revival on a
                        // later refresh.
                        None => {
                            for &arc in slots.iter() {
                                self.base.graph.set_arc_capacity(arc, 0)?;
                            }
                        }
                    }
                }
            }
        }
        let reprice_tasks = model.dynamic_task_arcs();
        for &tid in &tasks {
            let Some(task) = state.tasks.get(&tid) else {
                continue;
            };
            let Some(tn) = self.base.task_node(tid) else {
                continue;
            };
            let Some(&u) = self.base.unsched_nodes.get(&task.job) else {
                continue;
            };
            if let Some(arc) = self.base.find_arc(tn, u) {
                self.base
                    .graph
                    .set_arc_cost(arc, model.task_unscheduled_cost(state, task))?;
            }
            // The dynamic task-arc hook: re-price this waiting task's
            // declared preference bundles (Execution-Templates style —
            // the cached structure is kept, only the parameters are
            // patched; structural drift falls back to a full re-derive).
            if reprice_tasks && self.task_slots.contains_key(&tid) {
                self.reprice_task_bundles(model, state, task)?;
            }
        }
        // Gang constraints with admission control: cap `U_j → S` at
        // incomplete − minimum so at least `minimum` of the job's tasks
        // are forced through machines — but only while (a) the sum of
        // forced flows fits in total machine capacity and (b) the job's
        // own tasks can actually *reach* that much machine capacity
        // through positive-capacity arcs. A gang beyond either bound
        // would make the network infeasible (a solver error), so the job
        // is *deferred* instead: its cap stays at `incomplete` (the job
        // queues, unconstrained) and it is re-considered every refresh.
        // Both bounds are fast necessary conditions, not a max-flow: a
        // model that bottlenecks a gang below its minimum on *interior*
        // arc capacities (or makes admitted gangs compete for the same
        // machines) can still declare an unsatisfiable constraint, which
        // then surfaces as a solver error. Only jobs with tasks still in
        // the graph are consulted, so the pass stays proportional to live
        // work, not total jobs submitted.
        self.deferred_gangs.clear();
        let mut jobs: Vec<JobId> = self.live_job_tasks.keys().copied().collect();
        jobs.sort_unstable();
        let budget: i64 = state.machines.values().map(|m| m.slots as i64).sum();
        let mut committed: i64 = 0;
        for jid in jobs {
            let Some(job) = state.jobs.get(&jid) else {
                continue;
            };
            let gang = model.job_gang_minimum(state, job);
            if gang <= 0 {
                continue;
            }
            let Some(&ua) = self.base.unsched_sink_arcs.get(&jid) else {
                continue;
            };
            let incomplete = job
                .tasks
                .iter()
                .filter(|t| self.base.task_node(**t).is_some())
                .count() as i64;
            let forced = gang.min(incomplete);
            if committed + forced > budget || forced > self.job_reachable_machine_capacity(job) {
                self.deferred_gangs.push(jid);
                self.base.graph.set_arc_capacity(ua, incomplete)?;
                continue;
            }
            committed += forced;
            self.base
                .graph
                .set_arc_capacity(ua, (incomplete - gang).max(0))?;
        }

        let collected = self.collect_dead_aggregates()?;

        self.stats.rounds += 1;
        self.stats.machines_touched += machines.len() as u64;
        self.stats.tasks_touched += tasks.len() as u64;
        self.stats.aggregates_touched += dirty_aggs.len() as u64;
        self.stats.aggregates_collected += collected as u64;
        self.stats.last_machines_touched = machines.len();
        self.stats.last_tasks_touched = tasks.len();
        self.stats.last_aggregates_touched = dirty_aggs.len();
        self.dirty_machines.clear();
        self.dirty_tasks.clear();
        self.dirty_aggs.clear();
        self.last_refresh_now = Some(state.now);
        Ok(())
    }

    /// The dirty-aggregate set for this refresh: aggregates explicitly
    /// dirtied by events plus those with an arc to a dirty machine, with
    /// dirtiness propagated *up* every EC→EC chain (a parent's arc to a
    /// dirty child may price the child's whole subtree). Dynamic-arc
    /// models re-sync every aggregate each round.
    fn collect_dirty_aggregates(
        &self,
        dynamic: bool,
        dirty_machines: &[MachineId],
    ) -> BTreeSet<AggregateId> {
        let mut set: BTreeSet<AggregateId> = if dynamic {
            self.agg_nodes.keys().copied().collect()
        } else {
            let mut set: BTreeSet<AggregateId> = self.dirty_aggs.iter().copied().collect();
            for m in dirty_machines {
                if let Some(arcs) = self.machine_agg_arcs.get(m) {
                    set.extend(arcs.keys().copied());
                }
            }
            // Reverse EC→EC edges (child → parents) for the upward sweep.
            let mut parents: HashMap<AggregateId, Vec<AggregateId>> = HashMap::new();
            for (&parent, children) in &self.agg_agg_arcs {
                for &child in children.keys() {
                    parents.entry(child).or_default().push(parent);
                }
            }
            let mut work: Vec<AggregateId> = set.iter().copied().collect();
            while let Some(a) = work.pop() {
                if let Some(ps) = parents.get(&a) {
                    for &p in ps {
                        if set.insert(p) {
                            work.push(p);
                        }
                    }
                }
            }
            set
        };
        set.retain(|a| self.agg_nodes.contains_key(a));
        set
    }

    /// Re-synchronizes one aggregate's EC→EC arc set with what the model
    /// currently declares: existing bundles are re-priced slot-by-slot,
    /// newly declared children are materialized (cycle-checked) and
    /// connected, and stale pairs are parked at capacity 0 (static
    /// models) or removed (dynamic models).
    fn sync_aggregate_children<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
        agg: AggregateId,
        dynamic: bool,
    ) -> Result<(), PolicyError> {
        let Some(&an) = self.agg_nodes.get(&agg) else {
            return Ok(());
        };
        let declared = model.aggregate_to_aggregate(state, agg);
        if !declared.is_empty() {
            self.hierarchy_declared = true;
        }
        let mut seen: BTreeSet<AggregateId> = BTreeSet::new();
        for (child, bundle) in declared {
            if child == agg {
                return Err(PolicyError::AggregateCycle(agg));
            }
            validate_bundle("aggregate_to_aggregate", &bundle)?;
            if !seen.insert(child) {
                // Duplicate child declaration: first occurrence wins.
                continue;
            }
            let existing = self
                .agg_agg_arcs
                .get(&agg)
                .is_some_and(|m| m.contains_key(&child));
            if existing {
                let withdraw = dynamic && (bundle.is_empty() || bundle.total_capacity() <= 0);
                if withdraw {
                    let slots = self
                        .agg_agg_arcs
                        .get_mut(&agg)
                        .expect("existing arc implies entry")
                        .remove(&child)
                        .expect("contains_key checked");
                    for arc in slots {
                        self.base.graph.remove_arc(arc)?;
                    }
                } else {
                    let slots = self
                        .agg_agg_arcs
                        .get_mut(&agg)
                        .expect("existing arc implies entry")
                        .get_mut(&child)
                        .expect("contains_key checked");
                    sync_bundle(
                        &mut self.base.graph,
                        slots,
                        an,
                        self.agg_nodes[&child],
                        bundle.segments(),
                        dynamic,
                    )?;
                }
            } else {
                if bundle.is_empty() || (dynamic && bundle.total_capacity() <= 0) {
                    continue;
                }
                let cn = self.ensure_aggregate(model, state, child)?;
                // A new edge into a pre-existing aggregate could close
                // a loop that per-materialization cycle detection
                // cannot see — and materializing `child` may itself
                // have connected descendants back to `agg`'s ancestors
                // — so reachability must be checked *after* the
                // child's subtree exists, just before connecting.
                if self.agg_reaches(child, agg) {
                    return Err(PolicyError::AggregateCycle(agg));
                }
                let slots = materialize_bundle(&mut self.base.graph, an, cn, bundle.segments())?;
                self.agg_agg_arcs
                    .entry(agg)
                    .or_default()
                    .insert(child, slots);
            }
        }
        let stale: Vec<AggregateId> = self
            .agg_agg_arcs
            .get(&agg)
            .map(|m| m.keys().filter(|c| !seen.contains(c)).copied().collect())
            .unwrap_or_default();
        for child in stale {
            if dynamic {
                let slots = self
                    .agg_agg_arcs
                    .get_mut(&agg)
                    .expect("stale arc implies entry")
                    .remove(&child)
                    .expect("stale key present");
                for arc in slots {
                    self.base.graph.remove_arc(arc)?;
                }
            } else {
                let slots = self.agg_agg_arcs[&agg][&child].clone();
                for arc in slots {
                    self.base.graph.set_arc_capacity(arc, 0)?;
                }
            }
        }
        Ok(())
    }

    /// Re-prices one waiting task's declared bundles in place. The cheap
    /// path applies when the declared target sequence matches the cached
    /// slots (and every slot is still alive): per-segment costs and
    /// capacities are patched, grown bundles append, shrunk bundles park
    /// — all slot-stable. Structural drift (targets added, removed, or
    /// reordered; slots killed by machine removal or aggregate GC) falls
    /// back to a full arc re-derivation, exactly what a structural event
    /// would do.
    fn reprice_task_bundles<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
        task: &firmament_cluster::Task,
    ) -> Result<(), PolicyError> {
        let Some(tn) = self.base.task_node(task.id) else {
            return Ok(());
        };
        let declared = dedup_targets(model.task_arcs(state, task));
        for (_, bundle) in &declared {
            validate_bundle("task_arcs", bundle)?;
        }
        let Some(entry) = self.task_slots.get(&task.id) else {
            return Ok(());
        };
        let structural_match = entry.len() == declared.len()
            && entry.iter().zip(&declared).all(|((t0, slots), (t1, _))| {
                t0 == t1
                    && match t0 {
                        ArcTarget::Machine(m) if !state.machines.contains_key(m) => {
                            slots.is_empty()
                        }
                        _ => {
                            !slots.is_empty() && slots.iter().all(|&a| self.base.graph.arc_alive(a))
                        }
                    }
            });
        if !structural_match {
            let u = self.base.ensure_unscheduled(task.job)?;
            self.base.retain_out_arcs(tn, move |_, dst| dst == u)?;
            self.task_slots.remove(&task.id);
            // Rebuild from the declaration already computed (and
            // validated) above — no second model query.
            return self.install_waiting_arcs(model, state, task, declared);
        }
        let mut entry = self.task_slots.remove(&task.id).expect("checked above");
        for ((target, slots), (_, bundle)) in entry.iter_mut().zip(&declared) {
            let dst = match target {
                ArcTarget::Aggregate(agg) => self.agg_nodes[agg],
                ArcTarget::Machine(m) => match self.base.machine_node(*m) {
                    Some(mn) => mn,
                    None => continue, // absent machine: parked reference
                },
            };
            // Parking (not removal) on shrink keeps slot identity so the
            // segment can revive as a pure capacity change later.
            sync_bundle(
                &mut self.base.graph,
                slots,
                tn,
                dst,
                bundle.segments(),
                false,
            )?;
        }
        self.task_slots.insert(task.id, entry);
        Ok(())
    }

    /// Machine → sink capacity reachable from `job`'s task nodes through
    /// positive-capacity arcs (across any aggregator depth) — a fast
    /// upper bound on how much of the job's flow can reach machines, used
    /// by gang admission control. Not a max flow: interior bottlenecks
    /// are ignored, so this can overestimate, never underestimate.
    fn job_reachable_machine_capacity(&self, job: &firmament_cluster::Job) -> i64 {
        let g = &self.base.graph;
        let mut work: Vec<NodeId> = job
            .tasks
            .iter()
            .filter_map(|t| self.base.task_node(*t))
            .collect();
        let mut visited: HashSet<NodeId> = work.iter().copied().collect();
        let mut cap = 0i64;
        while let Some(n) = work.pop() {
            for &a in g.adj(n) {
                if !a.is_forward() || g.capacity(a) <= 0 {
                    continue;
                }
                let dst = g.dst(a);
                if !visited.insert(dst) {
                    continue;
                }
                match g.kind(dst) {
                    NodeKind::Machine { machine } => {
                        if let Some(&ms) = self.base.machine_sink_arcs.get(&machine) {
                            cap += g.capacity(ms);
                        }
                    }
                    NodeKind::UnscheduledAggregator { .. } | NodeKind::Sink => {}
                    _ => work.push(dst),
                }
            }
        }
        cap
    }

    /// Whether `target` is reachable from `from` along EC→EC arcs.
    fn agg_reaches(&self, from: AggregateId, target: AggregateId) -> bool {
        if from == target {
            return true;
        }
        let mut work = vec![from];
        let mut visited: HashSet<AggregateId> = HashSet::new();
        while let Some(a) = work.pop() {
            if !visited.insert(a) {
                continue;
            }
            if let Some(children) = self.agg_agg_arcs.get(&a) {
                for &c in children.keys() {
                    if c == target {
                        return true;
                    }
                    work.push(c);
                }
            }
        }
        false
    }

    /// Garbage-collects aggregator nodes that no task can reach any more:
    /// policy aggregates (and per-job unscheduled aggregators of jobs with
    /// no tasks left in the graph) with zero incoming arcs and no flow on
    /// their outgoing arcs. Runs to a fixpoint, so removing a hierarchy
    /// root frees its (now unreachable) descendants in the same refresh.
    /// Nodes still carrying stale solver flow are left for a later round —
    /// the next adopted solve rebalances them. Collected aggregates are
    /// rematerialized on demand if a model names them again.
    fn collect_dead_aggregates(&mut self) -> Result<usize, PolicyError> {
        let mut collected = 0usize;
        loop {
            let mut victim_aggs: Vec<AggregateId> = self
                .agg_nodes
                .iter()
                .filter(|(_, &n)| self.node_is_collectable(n))
                .map(|(&a, _)| a)
                .collect();
            let mut victim_jobs: Vec<JobId> = self
                .base
                .unsched_nodes
                .iter()
                .filter(|(j, &n)| {
                    !self.live_job_tasks.contains_key(j) && self.node_is_collectable(n)
                })
                .map(|(&j, _)| j)
                .collect();
            if victim_aggs.is_empty() && victim_jobs.is_empty() {
                break;
            }
            victim_aggs.sort_unstable();
            victim_jobs.sort_unstable();
            let victim_set: HashSet<AggregateId> = victim_aggs.iter().copied().collect();
            for &agg in &victim_aggs {
                let n = self
                    .agg_nodes
                    .remove(&agg)
                    .expect("victim came from agg_nodes");
                self.base.graph.remove_node(n)?;
                self.agg_agg_arcs.remove(&agg);
                self.dirty_aggs.remove(&agg);
                collected += 1;
            }
            // One sweep over the arc maps for the whole batch, so mass GC
            // (draining many per-job aggregates at once) stays linear in
            // map size instead of victims × map size.
            if !victim_set.is_empty() {
                for arcs in self.agg_agg_arcs.values_mut() {
                    arcs.retain(|c, _| !victim_set.contains(c));
                }
                for arcs in self.machine_agg_arcs.values_mut() {
                    arcs.retain(|a, _| !victim_set.contains(a));
                }
            }
            for job in victim_jobs {
                let n = self
                    .base
                    .unsched_nodes
                    .remove(&job)
                    .expect("victim came from unsched_nodes");
                self.base.unsched_sink_arcs.remove(&job);
                self.base.graph.remove_node(n)?;
                collected += 1;
            }
        }
        Ok(collected)
    }

    /// A node is collectable when nothing can send it flow — every
    /// incoming forward arc is parked at capacity 0 (e.g. the stale EC→EC
    /// arc of a rack whose machines all departed) — and no incident arc
    /// carries flow (so removal cannot unbalance a warm-started solve).
    fn node_is_collectable(&self, n: NodeId) -> bool {
        let g = &self.base.graph;
        g.adj(n).iter().all(|&a| {
            let fwd = a.forward();
            if a.is_forward() {
                g.flow(fwd) == 0
            } else {
                g.capacity(fwd) == 0 && g.flow(fwd) == 0
            }
        })
    }

    /// Re-derives waiting tasks' declared arc sets from the model —
    /// called on machine-set changes, whose fallout (dead block replicas,
    /// new preference targets) is not limited to displaced tasks. This is
    /// what keeps the incremental graph identical to a from-scratch
    /// rebuild across machine churn; the differential fuzz suite pins it.
    ///
    /// For models whose task arcs are **machine-local**
    /// ([`CostModel::task_arcs_machine_local`]), re-derivation is
    /// narrowed to the waiting tasks whose declared targets reference the
    /// `touched` machine id — every other task's declaration cannot have
    /// changed, by the model's own contract.
    fn resync_waiting_arcs<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
        touched: Option<MachineId>,
    ) -> Result<(), PolicyError> {
        let narrow = model.task_arcs_machine_local();
        let mut waiting: Vec<TaskId> = state.waiting_tasks().map(|t| t.id).collect();
        waiting.sort_unstable();
        for tid in waiting {
            if narrow {
                if let Some(m) = touched {
                    let skip = match self.task_slots.get(&tid) {
                        // A cached declaration that never references the
                        // touched machine cannot have changed — the
                        // machine-local contract.
                        Some(slots) => !slots.iter().any(|(t, _)| *t == ArcTarget::Machine(m)),
                        // No cached declaration: the task just became
                        // waiting (displaced by this very machine
                        // removal) and must derive its arc set from
                        // scratch regardless of narrowing.
                        None => false,
                    };
                    if skip {
                        continue;
                    }
                }
            }
            let Some(tn) = self.base.task_node(tid) else {
                continue;
            };
            let task = state.tasks[&tid].clone();
            let u = self.base.ensure_unscheduled(task.job)?;
            self.base.retain_out_arcs(tn, move |_, dst| dst == u)?;
            self.task_slots.remove(&tid);
            self.add_waiting_arcs(model, state, &task)?;
            self.dirty_tasks.insert(tid);
            self.stats.waiting_rederived += 1;
        }
        Ok(())
    }

    /// Materializes the waiting arc set a model declares for `task`:
    /// aggregate targets are created on demand (together with their
    /// machine arcs); machine targets absent from the cluster are
    /// recorded with empty slot vectors so they materialize when the
    /// machine arrives (and so machine-local narrowing can find their
    /// tasks). Duplicate target declarations keep the first bundle.
    fn add_waiting_arcs<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
        task: &firmament_cluster::Task,
    ) -> Result<(), PolicyError> {
        let declared = dedup_targets(model.task_arcs(state, task));
        for (_, bundle) in &declared {
            validate_bundle("task_arcs", bundle)?;
        }
        self.install_waiting_arcs(model, state, task, declared)
    }

    /// The materialization half of [`add_waiting_arcs`](Self::add_waiting_arcs),
    /// taking an already-deduplicated, already-validated declaration (so
    /// callers that computed one — the dynamic re-price fallback — don't
    /// pay a second `task_arcs` query).
    fn install_waiting_arcs<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
        task: &firmament_cluster::Task,
        declared: Vec<(ArcTarget, ArcBundle)>,
    ) -> Result<(), PolicyError> {
        let t = self
            .base
            .task_node(task.id)
            .ok_or(PolicyError::UnknownTask(task.id))?;
        let mut entry: Vec<(ArcTarget, Vec<ArcId>)> = Vec::with_capacity(declared.len());
        for (target, bundle) in declared {
            let slots = match target {
                ArcTarget::Aggregate(agg) => {
                    let an = self.ensure_aggregate(model, state, agg)?;
                    materialize_bundle(&mut self.base.graph, t, an, bundle.segments())?
                }
                ArcTarget::Machine(mid) => match self.base.machine_node(mid) {
                    Some(mn) => materialize_bundle(&mut self.base.graph, t, mn, bundle.segments())?,
                    // The machine is not in the cluster (yet): park the
                    // reference so arrival re-derivation finds this task.
                    None => Vec::new(),
                },
            };
            entry.push((target, slots));
        }
        self.task_slots.insert(task.id, entry);
        Ok(())
    }

    /// Returns (creating if needed) the node for a policy-defined
    /// aggregate. On creation, the aggregate's machine bundles are
    /// materialized by querying the model for every known machine, and its
    /// EC→EC children (declared via
    /// [`CostModel::aggregate_to_aggregate`]) are materialized
    /// recursively. Fails with [`PolicyError::AggregateCycle`] if the
    /// declared hierarchy is not a DAG.
    fn ensure_aggregate<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
        agg: AggregateId,
    ) -> Result<NodeId, PolicyError> {
        let mut stack = Vec::new();
        self.ensure_aggregate_rec(model, state, agg, &mut stack)
    }

    fn ensure_aggregate_rec<C: CostModel>(
        &mut self,
        model: &C,
        state: &ClusterState,
        agg: AggregateId,
        stack: &mut Vec<AggregateId>,
    ) -> Result<NodeId, PolicyError> {
        // The stack check must precede the node lookup: an aggregate under
        // materialization is already in `agg_nodes`, and reaching it again
        // through its own descendants is exactly the cycle case.
        if stack.contains(&agg) {
            return Err(PolicyError::AggregateCycle(agg));
        }
        if let Some(&n) = self.agg_nodes.get(&agg) {
            return Ok(n);
        }
        stack.push(agg);
        let an = self.base.graph.add_node(model.aggregate_kind(agg), 0);
        self.agg_nodes.insert(agg, an);
        let dynamic = model.dynamic_aggregate_arcs();
        let mut machines: Vec<MachineId> = self.base.machine_nodes.keys().copied().collect();
        machines.sort_unstable();
        for mid in machines {
            let Some(machine) = state.machines.get(&mid) else {
                continue;
            };
            if let Some(bundle) = model.aggregate_arc(state, agg, machine) {
                validate_bundle("aggregate_arc", &bundle)?;
                if bundle.is_empty() || (dynamic && bundle.total_capacity() <= 0) {
                    continue;
                }
                let mn = self.base.machine_nodes[&mid];
                let slots = materialize_bundle(&mut self.base.graph, an, mn, bundle.segments())?;
                self.machine_agg_arcs
                    .entry(mid)
                    .or_default()
                    .insert(agg, slots);
            }
        }
        // EC→EC children: materialize each declared child (recursively —
        // hierarchies can be arbitrarily deep) and connect it.
        let declared = model.aggregate_to_aggregate(state, agg);
        if !declared.is_empty() {
            self.hierarchy_declared = true;
        }
        for (child, bundle) in declared {
            validate_bundle("aggregate_to_aggregate", &bundle)?;
            if bundle.is_empty() || (dynamic && bundle.total_capacity() <= 0) {
                continue;
            }
            let cn = self.ensure_aggregate_rec(model, state, child, stack)?;
            let duplicate = self
                .agg_agg_arcs
                .get(&agg)
                .is_some_and(|m| m.contains_key(&child));
            if !duplicate {
                let slots = materialize_bundle(&mut self.base.graph, an, cn, bundle.segments())?;
                self.agg_agg_arcs
                    .entry(agg)
                    .or_default()
                    .insert(child, slots);
            }
        }
        stack.pop();
        Ok(an)
    }
}

/// Deduplicates a declared target list, keeping the first bundle per
/// target (declaration order preserved) — the bundle-era equivalent of
/// the old "skip if an arc to this destination already exists" guard.
fn dedup_targets(declared: Vec<(ArcTarget, ArcBundle)>) -> Vec<(ArcTarget, ArcBundle)> {
    let mut seen: HashSet<ArcTarget> = HashSet::with_capacity(declared.len());
    declared
        .into_iter()
        .filter(|(t, _)| seen.insert(*t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{Job, JobClass, Machine, Task, TopologySpec};
    use firmament_flow::delta::GraphDelta;
    use firmament_policies::{ArcBundle, ArcSpec};

    #[test]
    fn base_bookkeeping_roundtrip() {
        let mut b = GraphBase::new();
        let m = b.add_machine(0, 4).unwrap();
        let t = b.add_task(10, 0, 50).unwrap();
        assert_eq!(b.graph.supply(b.sink()), -1);
        assert_eq!(b.machine_node(0), Some(m));
        assert_eq!(b.task_node(10), Some(t));
        // Unscheduled agg exists with capacity 1.
        let ua = b.unsched_sink_arcs[&0];
        assert_eq!(b.graph.capacity(ua), 1);

        b.remove_task(10, 0).unwrap();
        assert_eq!(b.graph.supply(b.sink()), 0);
        assert_eq!(b.graph.capacity(ua), 0);
        assert!(b.task_node(10).is_none());
        b.remove_machine(0).unwrap();
        assert!(b.machine_node(0).is_none());
    }

    #[test]
    fn duplicate_rejected() {
        let mut b = GraphBase::new();
        b.add_machine(0, 1).unwrap();
        assert!(matches!(
            b.add_machine(0, 1),
            Err(PolicyError::DuplicateMachine(0))
        ));
        b.add_task(5, 0, 10).unwrap();
        assert!(matches!(
            b.add_task(5, 0, 10),
            Err(PolicyError::DuplicateTask(5))
        ));
    }

    #[test]
    fn unscheduled_shared_per_job() {
        let mut b = GraphBase::new();
        b.add_task(1, 7, 10).unwrap();
        b.add_task(2, 7, 10).unwrap();
        assert_eq!(b.unsched_nodes.len(), 1);
        let ua = b.unsched_sink_arcs[&7];
        assert_eq!(b.graph.capacity(ua), 2);
    }

    /// A minimal cost model for manager tests: one cluster aggregate,
    /// machine cost = running task count (single-segment bundle).
    struct TestModel;
    const AGG: AggregateId = 0;

    impl CostModel for TestModel {
        fn name(&self) -> &'static str {
            "test"
        }
        fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
            10_000 + (state.now.saturating_sub(task.submit_time) / 1_000_000) as i64
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            vec![(ArcTarget::Aggregate(AGG), ArcBundle::cost(1))]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            Some(ArcBundle::single(
                machine.slots as i64,
                10 * machine.running.len() as i64,
            ))
        }
        fn aggregate_kind(&self, _: AggregateId) -> NodeKind {
            NodeKind::ClusterAggregator
        }
    }

    fn setup(machines: usize, slots: u32) -> (ClusterState, FlowGraphManager) {
        let state = ClusterState::with_topology(&TopologySpec {
            machines,
            machines_per_rack: 20,
            slots_per_machine: slots,
        });
        let mut mgr = FlowGraphManager::new();
        for m in state.machines.values() {
            mgr.apply_event(
                &TestModel,
                &state,
                &ClusterEvent::MachineAdded { machine: m.clone() },
            )
            .unwrap();
        }
        (state, mgr)
    }

    fn submit(state: &mut ClusterState, mgr: &mut FlowGraphManager, job: u64, n: usize) {
        let j = Job::new(job, JobClass::Batch, 0, state.now);
        let tasks: Vec<Task> = (0..n)
            .map(|i| Task::new(job * 1000 + i as u64, job, state.now, 10_000_000))
            .collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        mgr.apply_event(&TestModel, state, &ev).unwrap();
    }

    #[test]
    fn aggregates_materialize_on_demand_with_machine_arcs() {
        let (mut state, mut mgr) = setup(4, 2);
        assert!(mgr.aggregate_node(AGG).is_none(), "lazy until referenced");
        submit(&mut state, &mut mgr, 0, 3);
        let agg = mgr.aggregate_node(AGG).expect("created by first task");
        // Arc to each of the 4 machines.
        let out = mgr
            .graph()
            .adj(agg)
            .iter()
            .copied()
            .filter(|a| a.is_forward())
            .count();
        assert_eq!(out, 4);
        // sink + 4 machines + agg + 3 tasks + U_0 = 10 nodes.
        assert_eq!(mgr.graph().node_count(), 10);
        assert_eq!(mgr.graph().total_supply(), 3);
    }

    #[test]
    fn task_lifecycle_updates_arcs() {
        let (mut state, mut mgr) = setup(2, 2);
        submit(&mut state, &mut mgr, 0, 1);
        let tid = 0u64;
        assert!(mgr.task_arc_slots(tid).is_some(), "waiting task has slots");
        let ev = ClusterEvent::TaskPlaced {
            task: tid,
            machine: 0,
            now: 100,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        assert!(
            mgr.task_arc_slots(tid).is_none(),
            "running task keeps no waiting slots"
        );
        let t = mgr.task_node(tid).unwrap();
        let g = mgr.graph();
        let out: Vec<_> = g
            .adj(t)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .map(|a| g.kind(g.dst(a)))
            .collect();
        assert_eq!(out.len(), 2, "running arc + unscheduled arc");
        assert!(out.iter().any(|k| k.is_machine()));
        assert!(out.iter().any(|k| k.is_unscheduled()));

        let ev = ClusterEvent::TaskPreempted {
            task: tid,
            now: 200,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        assert!(mgr.task_arc_slots(tid).is_some(), "waiting slots restored");
        let g = mgr.graph();
        let out: Vec<_> = g
            .adj(t)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .map(|a| g.kind(g.dst(a)))
            .collect();
        assert!(out.iter().any(|k| matches!(k, NodeKind::ClusterAggregator)));

        let ev = ClusterEvent::TaskPlaced {
            task: tid,
            machine: 1,
            now: 300,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        let ev = ClusterEvent::TaskCompleted {
            task: tid,
            now: 400,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        assert!(mgr.task_node(tid).is_none());
        assert_eq!(mgr.graph().total_supply(), 0);
    }

    #[test]
    fn refresh_tracks_running_counts_on_dirty_machines() {
        let (mut state, mut mgr) = setup(2, 2);
        // Three tasks; two get placed, one keeps waiting so the aggregate
        // retains task in-degree (and survives garbage collection).
        submit(&mut state, &mut mgr, 0, 3);
        for (tid, m) in [(0u64, 0u64), (1, 0)] {
            let ev = ClusterEvent::TaskPlaced {
                task: tid,
                machine: m,
                now: 0,
            };
            state.apply(&ev);
            mgr.apply_event(&TestModel, &state, &ev).unwrap();
        }
        mgr.refresh(&TestModel, &state).unwrap();
        let agg = mgr.aggregate_node(AGG).unwrap();
        let g = mgr.graph();
        let mut costs: Vec<(u64, i64)> = g
            .adj(agg)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .filter_map(|a| match g.kind(g.dst(a)) {
                NodeKind::Machine { machine } => Some((machine, g.cost(a))),
                _ => None,
            })
            .collect();
        costs.sort();
        assert_eq!(costs, vec![(0, 20), (1, 0)]);
    }

    #[test]
    fn quiescent_refresh_touches_nothing() {
        let (mut state, mut mgr) = setup(3, 2);
        submit(&mut state, &mut mgr, 0, 2);
        mgr.refresh(&TestModel, &state).unwrap();
        assert!(mgr.stats().last_tasks_touched > 0);
        // Same state, same clock: the two-pass update finds no dirty nodes.
        mgr.refresh(&TestModel, &state).unwrap();
        assert_eq!(mgr.stats().last_machines_touched, 0);
        assert_eq!(mgr.stats().last_tasks_touched, 0);
    }

    #[test]
    fn machine_removal_rebuilds_displaced_waiting_arcs() {
        let (mut state, mut mgr) = setup(2, 1);
        submit(&mut state, &mut mgr, 0, 1);
        let ev = ClusterEvent::TaskPlaced {
            task: 0,
            machine: 0,
            now: 10,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        let ev = ClusterEvent::MachineRemoved {
            machine: 0,
            now: 20,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        // The displaced task got its aggregate arc back.
        let t = mgr.task_node(0).unwrap();
        let agg = mgr.aggregate_node(AGG).unwrap();
        assert!(mgr.base().find_arc(t, agg).is_some());
    }

    #[test]
    fn take_and_adopt_graph_roundtrip() {
        let (mut state, mut mgr) = setup(2, 1);
        submit(&mut state, &mut mgr, 0, 1);
        let nodes = mgr.graph().node_count();
        let g = mgr.take_graph();
        assert_eq!(mgr.graph().node_count(), 0);
        mgr.adopt_graph(g);
        assert_eq!(mgr.graph().node_count(), nodes);
    }

    // ------------------------------------------------------------------
    // Convex bundle behavior
    // ------------------------------------------------------------------

    /// A ladder model: per-slot segments priced by standing load.
    struct LadderModel;

    impl CostModel for LadderModel {
        fn name(&self) -> &'static str {
            "ladder-test"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            100_000
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            vec![(ArcTarget::Aggregate(AGG), ArcBundle::cost(1))]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            let running = machine.running.len() as i64;
            Some(ArcBundle::ladder(
                (0..machine.slots as i64).map(|j| 10 * (running + j)),
            ))
        }
        fn aggregate_kind(&self, _: AggregateId) -> NodeKind {
            NodeKind::ClusterAggregator
        }
    }

    #[test]
    fn ladder_bundle_materializes_parallel_segment_arcs() {
        let state = ClusterState::with_topology(&TopologySpec {
            machines: 2,
            machines_per_rack: 20,
            slots_per_machine: 3,
        });
        let mut state = state;
        let mut mgr = FlowGraphManager::new();
        let mut ms: Vec<_> = state.machines.values().cloned().collect();
        ms.sort_by_key(|m| m.id);
        for m in ms {
            mgr.apply_event(
                &LadderModel,
                &state,
                &ClusterEvent::MachineAdded { machine: m },
            )
            .unwrap();
        }
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let ev = ClusterEvent::JobSubmitted {
            job: j,
            tasks: vec![Task::new(0, 0, 0, 1_000_000)],
        };
        state.apply(&ev);
        mgr.apply_event(&LadderModel, &state, &ev).unwrap();
        let slots = mgr.aggregate_machine_slots(AGG, 0).expect("bundle slots");
        assert_eq!(slots.len(), 3, "one arc per segment");
        let g = mgr.graph();
        let costs: Vec<i64> = slots.iter().map(|&a| g.cost(a)).collect();
        assert_eq!(costs, vec![0, 10, 20]);
        assert!(slots.iter().all(|&a| g.capacity(a) == 1));
        // All three arcs are parallel aggregate → machine-0 arcs.
        let an = mgr.aggregate_node(AGG).unwrap();
        let mn = mgr.machine_node(0).unwrap();
        assert!(slots.iter().all(|&a| g.src(a) == an && g.dst(a) == mn));
    }

    #[test]
    fn repricing_a_segment_is_slot_stable_and_structural_free() {
        let (mut state, mut mgr) = {
            let state = ClusterState::with_topology(&TopologySpec {
                machines: 2,
                machines_per_rack: 20,
                slots_per_machine: 2,
            });
            let mut mgr = FlowGraphManager::new();
            let mut ms: Vec<_> = state.machines.values().cloned().collect();
            ms.sort_by_key(|m| m.id);
            for m in ms {
                mgr.apply_event(
                    &LadderModel,
                    &state,
                    &ClusterEvent::MachineAdded { machine: m },
                )
                .unwrap();
            }
            (state, mgr)
        };
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let tasks: Vec<Task> = (0..2).map(|i| Task::new(i, 0, 0, 1_000_000)).collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        mgr.apply_event(&LadderModel, &state, &ev).unwrap();
        let before: Vec<ArcId> = mgr.aggregate_machine_slots(AGG, 0).unwrap().to_vec();
        mgr.refresh(&LadderModel, &state).unwrap();
        mgr.take_deltas();

        // Place a task on machine 0: its ladder re-prices on refresh.
        let ev = ClusterEvent::TaskPlaced {
            task: 0,
            machine: 0,
            now: 5,
        };
        state.apply(&ev);
        mgr.apply_event(&LadderModel, &state, &ev).unwrap();
        mgr.refresh(&LadderModel, &state).unwrap();
        let after: Vec<ArcId> = mgr.aggregate_machine_slots(AGG, 0).unwrap().to_vec();
        assert_eq!(before, after, "segment slots keep their identity");
        let g = mgr.graph();
        let costs: Vec<i64> = after.iter().map(|&a| g.cost(a)).collect();
        assert_eq!(costs, vec![10, 20], "ladder shifted by the new load");
        // The re-price reached the delta feed as pure cost changes on the
        // machine-0 bundle — no Arc{Added,Removed} for it.
        let batch = mgr.take_deltas();
        let on_bundle = |arc: ArcId| after.contains(&arc);
        assert!(batch
            .deltas()
            .iter()
            .any(|d| matches!(d, GraphDelta::CostChanged { arc, .. } if on_bundle(*arc))));
        assert!(!batch.deltas().iter().any(|d| matches!(
            d,
            GraphDelta::ArcAdded { arc, .. } | GraphDelta::ArcRemoved { arc, .. }
            if on_bundle(*arc)
        )));
    }

    /// Segment count tracks free slots: shrinks when tasks land, grows
    /// when they leave — exercising park/revive in static mode.
    struct ShrinkingLadderModel;

    impl CostModel for ShrinkingLadderModel {
        fn name(&self) -> &'static str {
            "shrinking-ladder"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            100_000
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            vec![(ArcTarget::Aggregate(AGG), ArcBundle::cost(1))]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            let running = machine.running.len() as i64;
            let free = machine.slots as i64 - running;
            Some(ArcBundle::ladder((0..free).map(|j| 10 * (running + j))))
        }
        fn aggregate_kind(&self, _: AggregateId) -> NodeKind {
            NodeKind::ClusterAggregator
        }
    }

    #[test]
    fn static_bundles_park_and_revive_on_segment_count_changes() {
        let mut state = ClusterState::with_topology(&TopologySpec {
            machines: 1,
            machines_per_rack: 20,
            slots_per_machine: 2,
        });
        let mut mgr = FlowGraphManager::new();
        let m0 = state.machines.values().next().unwrap().clone();
        mgr.apply_event(
            &ShrinkingLadderModel,
            &state,
            &ClusterEvent::MachineAdded { machine: m0 },
        )
        .unwrap();
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let tasks: Vec<Task> = (0..2).map(|i| Task::new(i, 0, 0, 1_000_000)).collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        mgr.apply_event(&ShrinkingLadderModel, &state, &ev).unwrap();
        let slots: Vec<ArcId> = mgr.aggregate_machine_slots(AGG, 0).unwrap().to_vec();
        assert_eq!(slots.len(), 2);

        // One task lands: the declared ladder shrinks to one segment; the
        // second slot parks at capacity 0 instead of being removed.
        let ev = ClusterEvent::TaskPlaced {
            task: 0,
            machine: 0,
            now: 5,
        };
        state.apply(&ev);
        mgr.apply_event(&ShrinkingLadderModel, &state, &ev).unwrap();
        mgr.refresh(&ShrinkingLadderModel, &state).unwrap();
        let after: Vec<ArcId> = mgr.aggregate_machine_slots(AGG, 0).unwrap().to_vec();
        assert_eq!(after, slots, "slot identity survives the shrink");
        let g = mgr.graph();
        assert_eq!(g.capacity(slots[0]), 1);
        assert_eq!(g.cost(slots[0]), 10, "remaining slot priced at load 1");
        assert_eq!(g.capacity(slots[1]), 0, "tail parked, not removed");

        // The task completes: the ladder grows back, reviving the slot.
        let ev = ClusterEvent::TaskCompleted { task: 0, now: 9 };
        state.apply(&ev);
        mgr.apply_event(&ShrinkingLadderModel, &state, &ev).unwrap();
        mgr.refresh(&ShrinkingLadderModel, &state).unwrap();
        let g = mgr.graph();
        assert_eq!(g.capacity(slots[0]), 1);
        assert_eq!(g.cost(slots[0]), 0);
        assert_eq!(g.capacity(slots[1]), 1, "parked slot revived in place");
        assert_eq!(g.cost(slots[1]), 10);
    }

    /// Capacity-bucketed ladders go through the same stable-slot path as
    /// per-slot ladders: a load re-price patches the same 5 (not 12) arcs
    /// in place and reaches the delta feed as pure `CostChanged` entries —
    /// never structural churn, never capacity churn (bucket capacities
    /// depend only on the slot count).
    #[test]
    fn bucketed_ladder_reprices_as_pure_cost_deltas() {
        use firmament_policies::LoadSpreadingCostModel;
        let mut state = ClusterState::with_topology(&TopologySpec {
            machines: 2,
            machines_per_rack: 20,
            slots_per_machine: 12,
        });
        let model = LoadSpreadingCostModel::bucketed();
        let mut mgr = FlowGraphManager::new();
        let mut ms: Vec<_> = state.machines.values().cloned().collect();
        ms.sort_by_key(|m| m.id);
        for m in ms {
            mgr.apply_event(&model, &state, &ClusterEvent::MachineAdded { machine: m })
                .unwrap();
        }
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let tasks: Vec<Task> = (0..2).map(|i| Task::new(i, 0, 0, 1_000_000)).collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        mgr.apply_event(&model, &state, &ev).unwrap();
        let slots: Vec<ArcId> = mgr.aggregate_machine_slots(0, 0).unwrap().to_vec();
        assert_eq!(slots.len(), 5, "12 slots → 5 bucketed segments");
        mgr.refresh(&model, &state).unwrap();
        mgr.take_deltas();

        let ev = ClusterEvent::TaskPlaced {
            task: 0,
            machine: 0,
            now: 5,
        };
        state.apply(&ev);
        mgr.apply_event(&model, &state, &ev).unwrap();
        mgr.refresh(&model, &state).unwrap();
        let after: Vec<ArcId> = mgr.aggregate_machine_slots(0, 0).unwrap().to_vec();
        assert_eq!(slots, after, "bucket slots keep their identity");
        let g = mgr.graph();
        let caps: Vec<i64> = after.iter().map(|&a| g.capacity(a)).collect();
        assert_eq!(caps, vec![1, 1, 2, 4, 4], "geometric capacities intact");
        // Ladder shifted up by one standing task (marginal step 10).
        assert_eq!(g.cost(after[0]), 10);
        let batch = mgr.take_deltas();
        let on_bundle = |arc: ArcId| after.contains(&arc);
        assert!(batch
            .deltas()
            .iter()
            .any(|d| matches!(d, GraphDelta::CostChanged { arc, .. } if on_bundle(*arc))));
        assert!(
            !batch.deltas().iter().any(|d| matches!(
                d,
                GraphDelta::ArcAdded { arc, .. }
                    | GraphDelta::ArcRemoved { arc, .. }
                    | GraphDelta::CapacityChanged { arc, .. }
                if on_bundle(*arc)
            )),
            "a bucketed load re-price must be cost-only"
        );
    }

    /// A bucketed ladder whose slot count tracks *free* slots, so every
    /// placement/completion moves the bucket boundaries themselves.
    struct BucketedDriftModel;

    impl CostModel for BucketedDriftModel {
        fn name(&self) -> &'static str {
            "bucketed-drift"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            100_000
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            vec![(ArcTarget::Aggregate(AGG), ArcBundle::cost(1))]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            let running = machine.running.len() as i64;
            let free = machine.slots as i64 - running;
            Some(ArcBundle::bucketed(free, |j| 10 * (running + j)))
        }
        fn aggregate_kind(&self, _: AggregateId) -> NodeKind {
            NodeKind::ClusterAggregator
        }
    }

    /// Bucket-boundary drift under slot-count churn re-prices in place:
    /// segment capacities and costs are patched on the cached slots (and
    /// the tail parks/revives), with **no** `ArcAdded`/`ArcRemoved` in the
    /// delta feed.
    #[test]
    fn bucketed_boundary_drift_reprices_in_place() {
        let mut state = ClusterState::with_topology(&TopologySpec {
            machines: 1,
            machines_per_rack: 20,
            slots_per_machine: 12,
        });
        let model = BucketedDriftModel;
        let mut mgr = FlowGraphManager::new();
        let m0 = state.machines.values().next().unwrap().clone();
        mgr.apply_event(&model, &state, &ClusterEvent::MachineAdded { machine: m0 })
            .unwrap();
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let tasks: Vec<Task> = (0..6).map(|i| Task::new(i, 0, 0, 1_000_000)).collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        mgr.apply_event(&model, &state, &ev).unwrap();
        let slots: Vec<ArcId> = mgr.aggregate_machine_slots(AGG, 0).unwrap().to_vec();
        assert_eq!(slots.len(), 5, "12 free slots → 5 buckets");
        mgr.refresh(&model, &state).unwrap();
        mgr.take_deltas();

        // Four placements: free 12 → 8, buckets [1,1,2,4,4] → [1,1,2,4]
        // — the last slot parks, the others re-price/re-size in place.
        for t in 0..4u64 {
            let ev = ClusterEvent::TaskPlaced {
                task: t,
                machine: 0,
                now: 5 + t,
            };
            state.apply(&ev);
            mgr.apply_event(&model, &state, &ev).unwrap();
        }
        mgr.refresh(&model, &state).unwrap();
        let after: Vec<ArcId> = mgr.aggregate_machine_slots(AGG, 0).unwrap().to_vec();
        assert_eq!(slots, after, "boundary drift keeps slot identity");
        let g = mgr.graph();
        let caps: Vec<i64> = after.iter().map(|&a| g.capacity(a)).collect();
        assert_eq!(caps, vec![1, 1, 2, 4, 0], "tail parked, not removed");
        assert_eq!(g.cost(after[0]), 40, "ladder re-anchored at load 4");
        let batch = mgr.take_deltas();
        // The placements themselves rewire task arcs (legitimate structural
        // deltas); the *bundle* slots must only see cost/capacity patches.
        let on_bundle = |arc: ArcId| after.contains(&arc);
        assert!(
            !batch.deltas().iter().any(|d| matches!(
                d,
                GraphDelta::ArcAdded { arc, .. } | GraphDelta::ArcRemoved { arc, .. }
                if on_bundle(*arc)
            )),
            "drifted boundaries must not churn bundle structure: {:?}",
            batch.deltas()
        );
        assert!(batch
            .deltas()
            .iter()
            .any(|d| matches!(d, GraphDelta::CostChanged { arc, .. } if on_bundle(*arc))));
        assert!(batch
            .deltas()
            .iter()
            .any(|d| matches!(d, GraphDelta::CapacityChanged { arc, .. } if on_bundle(*arc))));

        // Completions drift the boundaries back; the parked slot revives.
        for t in 0..4u64 {
            let ev = ClusterEvent::TaskCompleted {
                task: t,
                now: 20 + t,
            };
            state.apply(&ev);
            mgr.apply_event(&model, &state, &ev).unwrap();
        }
        mgr.refresh(&model, &state).unwrap();
        let revived: Vec<ArcId> = mgr.aggregate_machine_slots(AGG, 0).unwrap().to_vec();
        assert_eq!(slots, revived);
        let g = mgr.graph();
        let caps: Vec<i64> = revived.iter().map(|&a| g.capacity(a)).collect();
        assert_eq!(caps, vec![1, 1, 2, 4, 4], "full ladder revived in place");
        assert_eq!(g.cost(revived[0]), 0);
    }

    /// Models that declare decreasing-cost ladders are rejected with the
    /// typed error, from every hook.
    struct NonConvexModel {
        from: &'static str,
    }

    impl CostModel for NonConvexModel {
        fn name(&self) -> &'static str {
            "non-convex"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            1
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            let bundle = if self.from == "task_arcs" {
                ArcBundle::ladder([5, 3])
            } else {
                ArcBundle::cost(0)
            };
            vec![(ArcTarget::Aggregate(AGG), bundle)]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            aggregate: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            if aggregate != AGG {
                return None;
            }
            Some(if self.from == "aggregate_arc" {
                ArcBundle::ladder([9, 2])
            } else {
                ArcBundle::single(machine.slots as i64, 0)
            })
        }
        fn aggregate_to_aggregate(
            &self,
            _: &ClusterState,
            aggregate: AggregateId,
        ) -> Vec<(AggregateId, ArcBundle)> {
            if self.from == "aggregate_to_aggregate" && aggregate == AGG {
                vec![(7, ArcBundle::ladder([4, 1]))]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn non_convex_bundles_rejected_from_every_hook() {
        for from in ["task_arcs", "aggregate_arc", "aggregate_to_aggregate"] {
            let model = NonConvexModel { from };
            let mut state = ClusterState::with_topology(&TopologySpec {
                machines: 1,
                machines_per_rack: 20,
                slots_per_machine: 2,
            });
            let mut mgr = FlowGraphManager::new();
            let m0 = state.machines.values().next().unwrap().clone();
            mgr.apply_event(&model, &state, &ClusterEvent::MachineAdded { machine: m0 })
                .unwrap();
            let j = Job::new(0, JobClass::Batch, 0, 0);
            let ev = ClusterEvent::JobSubmitted {
                job: j,
                tasks: vec![Task::new(0, 0, 0, 1_000_000)],
            };
            state.apply(&ev);
            let err = mgr.apply_event(&model, &state, &ev);
            assert!(
                matches!(
                    err,
                    Err(PolicyError::NonConvexBundle { hook, .. }) if hook == from
                ),
                "{from}: expected NonConvexBundle, got {err:?}"
            );
        }
    }

    // ------------------------------------------------------------------
    // Dynamic task-arc re-pricing
    // ------------------------------------------------------------------

    /// Preference costs decay with wait time (e.g. locality that matters
    /// less the longer a task starves): the dynamic_task_arcs hook lets
    /// the refresh patch them without structural events.
    struct DecayingPrefModel;

    impl CostModel for DecayingPrefModel {
        fn name(&self) -> &'static str {
            "decaying-pref"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            100_000
        }
        fn task_arcs(&self, state: &ClusterState, task: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            let wait_sec = state.now.saturating_sub(task.submit_time) / 1_000_000;
            // The machine preference fades as the task waits.
            vec![
                (ArcTarget::Aggregate(AGG), ArcBundle::cost(50)),
                (
                    ArcTarget::Machine(0),
                    ArcBundle::cost((40i64 - wait_sec as i64).max(0)),
                ),
            ]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            Some(ArcBundle::single(machine.slots as i64, 0))
        }
        fn aggregate_kind(&self, _: AggregateId) -> NodeKind {
            NodeKind::ClusterAggregator
        }
        fn dynamic_task_arcs(&self) -> bool {
            true
        }
    }

    #[test]
    fn dynamic_task_arcs_reprice_in_place_on_clock_advance() {
        let mut state = ClusterState::with_topology(&TopologySpec {
            machines: 2,
            machines_per_rack: 20,
            slots_per_machine: 1,
        });
        let mut mgr = FlowGraphManager::new();
        let mut ms: Vec<_> = state.machines.values().cloned().collect();
        ms.sort_by_key(|m| m.id);
        for m in ms {
            mgr.apply_event(
                &DecayingPrefModel,
                &state,
                &ClusterEvent::MachineAdded { machine: m },
            )
            .unwrap();
        }
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let ev = ClusterEvent::JobSubmitted {
            job: j,
            tasks: vec![Task::new(0, 0, 0, 60_000_000)],
        };
        state.apply(&ev);
        mgr.apply_event(&DecayingPrefModel, &state, &ev).unwrap();
        mgr.refresh(&DecayingPrefModel, &state).unwrap();
        let slots_before: Vec<(ArcTarget, Vec<ArcId>)> = mgr.task_arc_slots(0).unwrap().to_vec();
        let pref = slots_before
            .iter()
            .find(|(t, _)| *t == ArcTarget::Machine(0))
            .unwrap()
            .1[0];
        assert_eq!(mgr.graph().cost(pref), 40);

        // 10 seconds pass: the preference cost decays — in place.
        let ev = ClusterEvent::Tick { now: 10_000_000 };
        state.apply(&ev);
        mgr.apply_event(&DecayingPrefModel, &state, &ev).unwrap();
        mgr.take_deltas();
        mgr.refresh(&DecayingPrefModel, &state).unwrap();
        assert_eq!(
            mgr.task_arc_slots(0).unwrap().to_vec(),
            slots_before,
            "re-pricing must not rebuild the arc set"
        );
        assert_eq!(mgr.graph().cost(pref), 30, "decayed by 10s");
        // And the batch carries no structural deltas for the task arcs.
        let batch = mgr.take_deltas();
        assert!(!batch.deltas().iter().any(|d| matches!(
            d,
            GraphDelta::ArcAdded { .. } | GraphDelta::ArcRemoved { .. }
        )));
    }

    /// Target-set drift under dynamic_task_arcs forces a full re-derive.
    struct TargetDriftModel;

    impl CostModel for TargetDriftModel {
        fn name(&self) -> &'static str {
            "target-drift"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            100_000
        }
        fn task_arcs(&self, state: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            // After 5 s the task also wants a second aggregate.
            let mut arcs = vec![(ArcTarget::Aggregate(AGG), ArcBundle::cost(1))];
            if state.now >= 5_000_000 {
                arcs.push((ArcTarget::Aggregate(77), ArcBundle::cost(3)));
            }
            arcs
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            Some(ArcBundle::single(machine.slots as i64, 0))
        }
        fn dynamic_task_arcs(&self) -> bool {
            true
        }
    }

    #[test]
    fn dynamic_task_arcs_rebuild_on_target_set_change() {
        let mut state = ClusterState::with_topology(&TopologySpec {
            machines: 1,
            machines_per_rack: 20,
            slots_per_machine: 1,
        });
        let mut mgr = FlowGraphManager::new();
        let m0 = state.machines.values().next().unwrap().clone();
        mgr.apply_event(
            &TargetDriftModel,
            &state,
            &ClusterEvent::MachineAdded { machine: m0 },
        )
        .unwrap();
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let ev = ClusterEvent::JobSubmitted {
            job: j,
            tasks: vec![Task::new(0, 0, 0, 60_000_000)],
        };
        state.apply(&ev);
        mgr.apply_event(&TargetDriftModel, &state, &ev).unwrap();
        assert_eq!(mgr.task_arc_slots(0).unwrap().len(), 1);
        assert!(mgr.aggregate_node(77).is_none());

        let ev = ClusterEvent::Tick { now: 6_000_000 };
        state.apply(&ev);
        mgr.apply_event(&TargetDriftModel, &state, &ev).unwrap();
        mgr.refresh(&TargetDriftModel, &state).unwrap();
        let slots = mgr.task_arc_slots(0).unwrap();
        assert_eq!(slots.len(), 2, "new target materialized");
        assert!(mgr.aggregate_node(77).is_some());
    }

    // ------------------------------------------------------------------
    // Hierarchies (EC→EC)
    // ------------------------------------------------------------------

    /// A two-level hierarchy for manager tests: root `X` → per-rack
    /// aggregates → machines of that rack (no direct X→machine arcs).
    struct HierModel;
    const ROOT: AggregateId = 100;
    fn rack_of(agg: AggregateId) -> u32 {
        (agg - 200) as u32
    }
    fn hier_rack_agg(rack: u32) -> AggregateId {
        200 + rack as AggregateId
    }

    impl CostModel for HierModel {
        fn name(&self) -> &'static str {
            "hier-test"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            100_000
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            vec![(ArcTarget::Aggregate(ROOT), ArcBundle::cost(0))]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            aggregate: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            (aggregate != ROOT && rack_of(aggregate) == machine.rack)
                .then(|| ArcBundle::single(machine.slots as i64, 10 * machine.running.len() as i64))
        }
        fn aggregate_to_aggregate(
            &self,
            state: &ClusterState,
            aggregate: AggregateId,
        ) -> Vec<(AggregateId, ArcBundle)> {
            if aggregate != ROOT {
                return Vec::new();
            }
            firmament_policies::rack_capacities(state)
                .into_iter()
                .map(|(rack, slots, running)| {
                    (hier_rack_agg(rack), ArcBundle::single(slots, running))
                })
                .collect()
        }
        fn aggregate_kind(&self, aggregate: AggregateId) -> NodeKind {
            if aggregate == ROOT {
                NodeKind::ClusterAggregator
            } else {
                NodeKind::RackAggregator {
                    rack: rack_of(aggregate),
                }
            }
        }
    }

    fn hier_setup(
        machines: usize,
        per_rack: usize,
        slots: u32,
    ) -> (ClusterState, FlowGraphManager) {
        let state = ClusterState::with_topology(&TopologySpec {
            machines,
            machines_per_rack: per_rack,
            slots_per_machine: slots,
        });
        let mut mgr = FlowGraphManager::new();
        let mut ms: Vec<_> = state.machines.values().cloned().collect();
        ms.sort_by_key(|m| m.id);
        for m in ms {
            mgr.apply_event(
                &HierModel,
                &state,
                &ClusterEvent::MachineAdded { machine: m },
            )
            .unwrap();
        }
        (state, mgr)
    }

    fn hier_submit(state: &mut ClusterState, mgr: &mut FlowGraphManager, job: u64, n: usize) {
        let j = Job::new(job, JobClass::Batch, 0, state.now);
        let tasks: Vec<Task> = (0..n)
            .map(|i| Task::new(job * 1000 + i as u64, job, state.now, 10_000_000))
            .collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        mgr.apply_event(&HierModel, state, &ev).unwrap();
    }

    #[test]
    fn hierarchy_materializes_recursively_without_direct_root_machine_arcs() {
        // 4 machines in 2 racks of 2.
        let (mut state, mut mgr) = hier_setup(4, 2, 2);
        assert!(mgr.aggregate_node(ROOT).is_none());
        hier_submit(&mut state, &mut mgr, 0, 1);
        let root = mgr.aggregate_node(ROOT).expect("root materialized");
        for rack in [0u32, 1] {
            let rn = mgr
                .aggregate_node(hier_rack_agg(rack))
                .expect("rack agg materialized via EC→EC declaration");
            let arc = mgr
                .aggregate_to_aggregate_arc(ROOT, hier_rack_agg(rack))
                .expect("EC→EC arc exists");
            assert_eq!(mgr.graph().src(arc), root);
            assert_eq!(mgr.graph().dst(arc), rn);
            // Capacity propagated: 2 machines × 2 slots per rack.
            assert_eq!(mgr.graph().capacity(arc), 4);
        }
        // The root has exactly its 2 EC→EC arcs — no machine arcs.
        let root_out: Vec<NodeKind> = mgr
            .graph()
            .adj(root)
            .iter()
            .copied()
            .filter(|a| a.is_forward())
            .map(|a| mgr.graph().kind(mgr.graph().dst(a)))
            .collect();
        assert_eq!(root_out.len(), 2);
        assert!(root_out
            .iter()
            .all(|k| matches!(k, NodeKind::RackAggregator { .. })));
        // Each rack agg reaches exactly its 2 machines.
        for rack in [0u32, 1] {
            let rn = mgr.aggregate_node(hier_rack_agg(rack)).unwrap();
            let machines: Vec<u64> = mgr
                .graph()
                .adj(rn)
                .iter()
                .copied()
                .filter(|a| a.is_forward())
                .filter_map(|a| match mgr.graph().kind(mgr.graph().dst(a)) {
                    NodeKind::Machine { machine } => Some(machine),
                    _ => None,
                })
                .collect();
            assert_eq!(machines.len(), 2, "rack {rack}");
            for m in machines {
                assert_eq!(state.machines[&m].rack, rack);
            }
        }
    }

    #[test]
    fn ec_ec_costs_and_caps_refresh_through_dirty_propagation() {
        let (mut state, mut mgr) = hier_setup(4, 2, 2);
        hier_submit(&mut state, &mut mgr, 0, 3);
        // Place two tasks on rack-0 machines; the X→R_0 arc must re-price.
        for (tid, m) in [(0u64, 0u64), (1, 1)] {
            let ev = ClusterEvent::TaskPlaced {
                task: tid,
                machine: m,
                now: 0,
            };
            state.apply(&ev);
            mgr.apply_event(&HierModel, &state, &ev).unwrap();
        }
        mgr.refresh(&HierModel, &state).unwrap();
        let a0 = mgr
            .aggregate_to_aggregate_arc(ROOT, hier_rack_agg(0))
            .unwrap();
        let a1 = mgr
            .aggregate_to_aggregate_arc(ROOT, hier_rack_agg(1))
            .unwrap();
        assert_eq!(mgr.graph().cost(a0), 2, "two tasks running in rack 0");
        assert_eq!(mgr.graph().cost(a1), 0, "rack 1 idle");
    }

    #[test]
    fn machine_in_new_rack_extends_hierarchy_on_refresh() {
        let (mut state, mut mgr) = hier_setup(2, 2, 1);
        hier_submit(&mut state, &mut mgr, 0, 1);
        assert!(mgr.aggregate_node(hier_rack_agg(7)).is_none());
        // A machine appears in brand-new rack 7.
        let m = Machine::new(50, 7, 1);
        let ev = ClusterEvent::MachineAdded { machine: m };
        state.apply(&ev);
        mgr.apply_event(&HierModel, &state, &ev).unwrap();
        mgr.refresh(&HierModel, &state).unwrap();
        let rn = mgr
            .aggregate_node(hier_rack_agg(7))
            .expect("new rack level materialized by EC→EC re-sync");
        assert!(mgr
            .aggregate_to_aggregate_arc(ROOT, hier_rack_agg(7))
            .is_some());
        // And the new rack aggregate got its machine arc.
        let out = mgr
            .graph()
            .adj(rn)
            .iter()
            .copied()
            .filter(|a| a.is_forward())
            .count();
        assert_eq!(out, 1);
    }

    #[test]
    fn aggregates_gc_when_task_indegree_drops_to_zero() {
        let (mut state, mut mgr) = hier_setup(4, 2, 2);
        let baseline = mgr.graph().node_count();
        hier_submit(&mut state, &mut mgr, 0, 2);
        mgr.refresh(&HierModel, &state).unwrap();
        assert!(mgr.aggregate_count() > 0);
        for tid in [0u64, 1] {
            let ev = ClusterEvent::TaskPlaced {
                task: tid,
                machine: tid,
                now: 5,
            };
            state.apply(&ev);
            mgr.apply_event(&HierModel, &state, &ev).unwrap();
            let ev = ClusterEvent::TaskCompleted { task: tid, now: 10 };
            state.apply(&ev);
            mgr.apply_event(&HierModel, &state, &ev).unwrap();
        }
        mgr.refresh(&HierModel, &state).unwrap();
        // Root, rack aggregates, and the job's U_0 are all unreachable now.
        assert_eq!(mgr.aggregate_count(), 0, "hierarchy collected");
        assert_eq!(mgr.graph().node_count(), baseline, "back to sink+machines");
        assert!(mgr.stats().aggregates_collected >= 4);
        // Reuse after GC: a new job rematerializes the hierarchy.
        hier_submit(&mut state, &mut mgr, 1, 1);
        assert!(mgr.aggregate_node(ROOT).is_some());
    }

    /// A deliberately cyclic hierarchy: 0 → 1 → 0.
    struct CyclicModel;

    impl CostModel for CyclicModel {
        fn name(&self) -> &'static str {
            "cyclic"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            1
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            vec![(ArcTarget::Aggregate(0), ArcBundle::cost(0))]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            Some(ArcBundle::single(machine.slots as i64, 0))
        }
        fn aggregate_to_aggregate(
            &self,
            _: &ClusterState,
            aggregate: AggregateId,
        ) -> Vec<(AggregateId, ArcBundle)> {
            let next = if aggregate == 0 { 1 } else { 0 };
            vec![(next, ArcBundle::single(10, 0))]
        }
    }

    /// A cycle that only closes *across* separate materializations: agg 0
    /// declares child 1 only once a third machine exists, while agg 1
    /// always declares child 0. Agg 0 is materialized alone first; the
    /// machine addition then makes the refresh re-sync try to connect
    /// 0 → 1 after materializing 1 (which links 1 → 0) — reachability is
    /// checked after the child subtree exists, so the loop is caught.
    struct LateCycleModel;

    impl CostModel for LateCycleModel {
        fn name(&self) -> &'static str {
            "late-cycle"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            1
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            vec![(ArcTarget::Aggregate(0), ArcBundle::cost(0))]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            Some(ArcBundle::single(machine.slots as i64, 0))
        }
        fn aggregate_to_aggregate(
            &self,
            state: &ClusterState,
            aggregate: AggregateId,
        ) -> Vec<(AggregateId, ArcBundle)> {
            let bundle = ArcBundle::single(10, 0);
            match aggregate {
                0 if state.machines.len() >= 3 => vec![(1, bundle)],
                1 => vec![(0, bundle)],
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn cycle_closing_across_materializations_is_rejected() {
        let mut state = ClusterState::with_topology(&TopologySpec {
            machines: 2,
            machines_per_rack: 2,
            slots_per_machine: 1,
        });
        let mut mgr = FlowGraphManager::new();
        let mut ms: Vec<_> = state.machines.values().cloned().collect();
        ms.sort_by_key(|m| m.id);
        for m in ms {
            mgr.apply_event(
                &LateCycleModel,
                &state,
                &ClusterEvent::MachineAdded { machine: m },
            )
            .unwrap();
        }
        // Materialize agg 0 while it declares no children.
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let ev = ClusterEvent::JobSubmitted {
            job: j,
            tasks: vec![Task::new(0, 0, 0, 1_000_000)],
        };
        state.apply(&ev);
        mgr.apply_event(&LateCycleModel, &state, &ev).unwrap();
        mgr.refresh(&LateCycleModel, &state).unwrap();
        // The third machine makes agg 0 declare agg 1, whose own
        // materialization links back to agg 0.
        let ev = ClusterEvent::MachineAdded {
            machine: Machine::new(10, 0, 1),
        };
        state.apply(&ev);
        mgr.apply_event(&LateCycleModel, &state, &ev).unwrap();
        let err = mgr.refresh(&LateCycleModel, &state);
        assert!(
            matches!(err, Err(PolicyError::AggregateCycle(0))),
            "late-closing EC→EC cycle must be detected, got {err:?}"
        );
        // The cycle-closing arc was never installed: agg 1's materialized
        // subtree links 1 → 0, but 0 → 1 must be absent, keeping the
        // network a DAG even on the error path.
        assert!(mgr.aggregate_to_aggregate_arc(1, 0).is_some());
        assert!(mgr.aggregate_to_aggregate_arc(0, 1).is_none());
        // The error is deterministic: retrying re-queries the same
        // declaration and fails the same way.
        assert!(matches!(
            mgr.refresh(&LateCycleModel, &state),
            Err(PolicyError::AggregateCycle(0))
        ));
    }

    /// A gang whose tasks can only reach one 1-slot machine must be
    /// deferred even though the cluster as a whole has enough slots.
    struct NarrowGangModel;

    impl CostModel for NarrowGangModel {
        fn name(&self) -> &'static str {
            "narrow-gang"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            0
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            vec![(ArcTarget::Machine(0), ArcBundle::cost(1))]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            _: &Machine,
        ) -> Option<ArcBundle> {
            None
        }
        fn job_gang_minimum(&self, _: &ClusterState, _: &Job) -> i64 {
            2
        }
        fn task_arcs_machine_local(&self) -> bool {
            // Declares Machine(0) unconditionally — the exact contract the
            // narrowing requires (references to absent machines are
            // parked and found on arrival).
            true
        }
    }

    #[test]
    fn late_arriving_preference_machine_gets_its_arc() {
        // NarrowGangModel declares ArcTarget::Machine(0) for every task.
        // Submit while machine 0 is absent, then add it: the waiting arc
        // re-derivation on MachineAdded must materialize the preference
        // arc, exactly as a from-scratch build would — through the
        // narrowed path, since the model is machine-local.
        let mut state = ClusterState::default();
        let mut mgr = FlowGraphManager::new();
        let ev = ClusterEvent::MachineAdded {
            machine: Machine::new(7, 0, 1),
        };
        state.apply(&ev);
        mgr.apply_event(&NarrowGangModel, &state, &ev).unwrap();
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let ev = ClusterEvent::JobSubmitted {
            job: j,
            tasks: vec![Task::new(0, 0, 0, 1_000_000)],
        };
        state.apply(&ev);
        mgr.apply_event(&NarrowGangModel, &state, &ev).unwrap();
        let t = mgr.task_node(0).unwrap();
        assert!(
            mgr.machine_node(0).is_none(),
            "preference target not in the cluster yet"
        );
        // The absent machine is recorded as a parked reference.
        let slots = mgr.task_arc_slots(0).unwrap();
        assert!(slots
            .iter()
            .any(|(t, s)| *t == ArcTarget::Machine(0) && s.is_empty()));
        let ev = ClusterEvent::MachineAdded {
            machine: Machine::new(0, 0, 1),
        };
        state.apply(&ev);
        mgr.apply_event(&NarrowGangModel, &state, &ev).unwrap();
        let m = mgr.machine_node(0).unwrap();
        assert!(
            mgr.base().find_arc(t, m).is_some(),
            "late-arriving preference machine must get the declared arc"
        );
    }

    #[test]
    fn gang_beyond_reachable_capacity_is_deferred() {
        // 3 machines × 1 slot = 3 total slots ≥ gang of 2, but the tasks
        // only have arcs to machine 0 (1 slot).
        let mut state = ClusterState::with_topology(&TopologySpec {
            machines: 3,
            machines_per_rack: 20,
            slots_per_machine: 1,
        });
        let mut mgr = FlowGraphManager::new();
        let mut ms: Vec<_> = state.machines.values().cloned().collect();
        ms.sort_by_key(|m| m.id);
        for m in ms {
            mgr.apply_event(
                &NarrowGangModel,
                &state,
                &ClusterEvent::MachineAdded { machine: m },
            )
            .unwrap();
        }
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let tasks: Vec<Task> = (0..3).map(|i| Task::new(i, 0, 0, 1_000_000)).collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        mgr.apply_event(&NarrowGangModel, &state, &ev).unwrap();
        mgr.refresh(&NarrowGangModel, &state).unwrap();
        assert_eq!(
            mgr.deferred_gang_jobs(),
            &[0],
            "structurally unreachable gang must defer, not go infeasible"
        );
        assert_eq!(
            mgr.graph().capacity(mgr.base().unsched_sink_arcs[&0]),
            3,
            "deferred gang leaves U_0 → S unconstrained"
        );
    }

    #[test]
    fn cyclic_hierarchy_is_rejected() {
        let mut state = ClusterState::with_topology(&TopologySpec {
            machines: 2,
            machines_per_rack: 2,
            slots_per_machine: 1,
        });
        let mut mgr = FlowGraphManager::new();
        for m in state.machines.values() {
            mgr.apply_event(
                &CyclicModel,
                &state,
                &ClusterEvent::MachineAdded { machine: m.clone() },
            )
            .unwrap();
        }
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let tasks = vec![Task::new(0, 0, 0, 1_000_000)];
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        let err = mgr.apply_event(&CyclicModel, &state, &ev);
        assert!(
            matches!(err, Err(PolicyError::AggregateCycle(0))),
            "cycle must be detected, got {err:?}"
        );
    }

    /// Gang constraints squeeze the unscheduled capacity.
    struct GangModel;

    impl CostModel for GangModel {
        fn name(&self) -> &'static str {
            "gang"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            0 // unscheduled is free: only the gang constraint forces work
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            vec![(ArcTarget::Aggregate(AGG), ArcBundle::cost(1))]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            Some(ArcBundle::single(machine.slots as i64, 5))
        }
        fn job_gang_minimum(&self, _: &ClusterState, _: &Job) -> i64 {
            2
        }
    }

    #[test]
    fn gang_minimum_caps_unscheduled_capacity() {
        let state = ClusterState::with_topology(&TopologySpec {
            machines: 3,
            machines_per_rack: 20,
            slots_per_machine: 1,
        });
        let mut state = state;
        let mut mgr = FlowGraphManager::new();
        for m in state.machines.values() {
            mgr.apply_event(
                &GangModel,
                &state,
                &ClusterEvent::MachineAdded { machine: m.clone() },
            )
            .unwrap();
        }
        let j = Job::new(0, JobClass::Batch, 0, 0);
        let tasks: Vec<Task> = (0..3).map(|i| Task::new(i, 0, 0, 1_000_000)).collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        mgr.apply_event(&GangModel, &state, &ev).unwrap();
        mgr.refresh(&GangModel, &state).unwrap();
        let ua = mgr.base().unsched_sink_arcs[&0];
        // 3 incomplete tasks − gang minimum 2 = capacity 1.
        assert_eq!(mgr.graph().capacity(ua), 1);
    }

    #[test]
    fn gang_beyond_capacity_is_deferred_not_infeasible() {
        // 3 slots total; two gang-2 jobs demand 4 forced placements.
        let mut state = ClusterState::with_topology(&TopologySpec {
            machines: 3,
            machines_per_rack: 20,
            slots_per_machine: 1,
        });
        let mut mgr = FlowGraphManager::new();
        for m in state.machines.values() {
            mgr.apply_event(
                &GangModel,
                &state,
                &ClusterEvent::MachineAdded { machine: m.clone() },
            )
            .unwrap();
        }
        for job in 0..2u64 {
            let j = Job::new(job, JobClass::Batch, 0, 0);
            let tasks: Vec<Task> = (0..3)
                .map(|i| Task::new(job * 100 + i, job, 0, 1_000_000))
                .collect();
            let ev = ClusterEvent::JobSubmitted { job: j, tasks };
            state.apply(&ev);
            mgr.apply_event(&GangModel, &state, &ev).unwrap();
        }
        mgr.refresh(&GangModel, &state).unwrap();
        // Job 0 is admitted (cap 3−2=1); job 1 is deferred (cap stays 3).
        assert_eq!(mgr.deferred_gang_jobs(), &[1]);
        assert_eq!(mgr.graph().capacity(mgr.base().unsched_sink_arcs[&0]), 1);
        assert_eq!(mgr.graph().capacity(mgr.base().unsched_sink_arcs[&1]), 3);
        // Capacity appears: two more machines admit the second gang.
        for id in [10u64, 11] {
            let m = Machine::new(id, 0, 1);
            let ev = ClusterEvent::MachineAdded { machine: m };
            state.apply(&ev);
            mgr.apply_event(&GangModel, &state, &ev).unwrap();
        }
        mgr.refresh(&GangModel, &state).unwrap();
        assert!(mgr.deferred_gang_jobs().is_empty());
        assert_eq!(mgr.graph().capacity(mgr.base().unsched_sink_arcs[&1]), 1);
    }

    /// A flat model that counts its `aggregate_to_aggregate` queries, to
    /// pin the dirty-set narrowing: machine events on hierarchy-free
    /// models must not trigger per-aggregate no-op EC→EC queries.
    struct CountingFlatModel {
        a2a_queries: std::cell::Cell<u64>,
    }

    impl CostModel for CountingFlatModel {
        fn name(&self) -> &'static str {
            "counting-flat"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            10_000
        }
        fn task_arcs(&self, _: &ClusterState, task: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            // Per-job aggregates, so the manager holds many flat aggregates.
            vec![(ArcTarget::Aggregate(500 + task.job), ArcBundle::cost(1))]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            Some(ArcBundle::single(machine.slots as i64, 1))
        }
        fn aggregate_to_aggregate(
            &self,
            _: &ClusterState,
            _: AggregateId,
        ) -> Vec<(AggregateId, ArcBundle)> {
            self.a2a_queries.set(self.a2a_queries.get() + 1);
            Vec::new()
        }
    }

    #[test]
    fn flat_models_skip_aggregate_resync_on_machine_events() {
        let model = CountingFlatModel {
            a2a_queries: std::cell::Cell::new(0),
        };
        let mut state = ClusterState::with_topology(&TopologySpec {
            machines: 2,
            machines_per_rack: 20,
            slots_per_machine: 2,
        });
        let mut mgr = FlowGraphManager::new();
        for m in state.machines.values().cloned().collect::<Vec<_>>() {
            mgr.apply_event(&model, &state, &ClusterEvent::MachineAdded { machine: m })
                .unwrap();
        }
        // Ten jobs → ten flat per-job aggregates (queried once each at
        // materialization).
        for job in 0..10u64 {
            let j = Job::new(job, JobClass::Batch, 0, 0);
            let tasks = vec![Task::new(job * 100, job, 0, 1_000_000)];
            let ev = ClusterEvent::JobSubmitted { job: j, tasks };
            state.apply(&ev);
            mgr.apply_event(&model, &state, &ev).unwrap();
        }
        mgr.refresh(&model, &state).unwrap();
        let before = model.a2a_queries.get();

        // A machine joins and another leaves. Without narrowing, every
        // one of the ten aggregates would be re-synced (one EC→EC query
        // each, twice); with it, only aggregates adjacent to the touched
        // machine are — and their sync cost is already paid by the
        // machine-arc pass.
        let m = Machine::new(77, 0, 2);
        let ev = ClusterEvent::MachineAdded { machine: m };
        state.apply(&ev);
        mgr.apply_event(&model, &state, &ev).unwrap();
        mgr.refresh(&model, &state).unwrap();
        let ev = ClusterEvent::MachineRemoved {
            machine: 77,
            now: 5,
        };
        state.apply(&ev);
        mgr.apply_event(&model, &state, &ev).unwrap();
        mgr.refresh(&model, &state).unwrap();

        let after = model.a2a_queries.get();
        // The machine-add still syncs aggregates that gained an arc to the
        // new machine (they become dirty through adjacency); the blanket
        // all-aggregate sweep — 20 queries here — must be gone. Machine
        // *removal* must trigger none at all.
        assert!(
            after - before <= 10,
            "machine events triggered {} EC→EC queries on a flat model",
            after - before
        );
    }

    /// Counts task_arcs queries, to pin the waiting-task half of the
    /// dirty-set narrowing.
    struct CountingTaskModel {
        machine_local: bool,
        task_queries: std::cell::Cell<u64>,
    }

    impl CostModel for CountingTaskModel {
        fn name(&self) -> &'static str {
            "counting-task"
        }
        fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
            10_000
        }
        fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
            self.task_queries.set(self.task_queries.get() + 1);
            vec![(ArcTarget::Aggregate(AGG), ArcBundle::cost(1))]
        }
        fn aggregate_arc(
            &self,
            _: &ClusterState,
            _: AggregateId,
            machine: &Machine,
        ) -> Option<ArcBundle> {
            Some(ArcBundle::single(machine.slots as i64, 1))
        }
        fn task_arcs_machine_local(&self) -> bool {
            self.machine_local
        }
    }

    #[test]
    fn machine_local_models_skip_waiting_task_rederivation() {
        for machine_local in [false, true] {
            let model = CountingTaskModel {
                machine_local,
                task_queries: std::cell::Cell::new(0),
            };
            let mut state = ClusterState::with_topology(&TopologySpec {
                machines: 2,
                machines_per_rack: 20,
                slots_per_machine: 1,
            });
            let mut mgr = FlowGraphManager::new();
            for m in state.machines.values().cloned().collect::<Vec<_>>() {
                mgr.apply_event(&model, &state, &ClusterEvent::MachineAdded { machine: m })
                    .unwrap();
            }
            // 20 waiting tasks, none referencing any machine directly.
            let j = Job::new(0, JobClass::Batch, 0, 0);
            let tasks: Vec<Task> = (0..20).map(|i| Task::new(i, 0, 0, 1_000_000)).collect();
            let ev = ClusterEvent::JobSubmitted { job: j, tasks };
            state.apply(&ev);
            mgr.apply_event(&model, &state, &ev).unwrap();
            let before = model.task_queries.get();
            let rederived_before = mgr.stats().waiting_rederived;

            // Machine churn: one add, one remove.
            let m = Machine::new(50, 0, 1);
            let ev = ClusterEvent::MachineAdded { machine: m };
            state.apply(&ev);
            mgr.apply_event(&model, &state, &ev).unwrap();
            let ev = ClusterEvent::MachineRemoved {
                machine: 50,
                now: 5,
            };
            state.apply(&ev);
            mgr.apply_event(&model, &state, &ev).unwrap();

            let queries = model.task_queries.get() - before;
            let rederived = mgr.stats().waiting_rederived - rederived_before;
            if machine_local {
                assert_eq!(
                    queries, 0,
                    "machine-local model must not re-query any waiting task"
                );
                assert_eq!(rederived, 0);
            } else {
                assert_eq!(
                    queries, 40,
                    "full re-query: every waiting task, on both events"
                );
                assert_eq!(rederived, 40);
            }
        }
    }

    #[test]
    fn hierarchical_models_still_resync_on_machine_events() {
        // The narrowing must not regress hierarchy growth: this is the
        // `machine_in_new_rack_extends_hierarchy_on_refresh` scenario,
        // re-checked here because it is exactly what the blanket dirtying
        // existed for.
        let (mut state, mut mgr) = hier_setup(2, 2, 1);
        hier_submit(&mut state, &mut mgr, 0, 1);
        let m = Machine::new(50, 7, 1);
        let ev = ClusterEvent::MachineAdded { machine: m };
        state.apply(&ev);
        mgr.apply_event(&HierModel, &state, &ev).unwrap();
        mgr.refresh(&HierModel, &state).unwrap();
        assert!(mgr.aggregate_node(hier_rack_agg(7)).is_some());
    }

    #[test]
    fn take_deltas_covers_one_handoff_window() {
        let (mut state, mut mgr) = setup(2, 2);
        // Drain the build-up batch (sink + machines).
        let initial = mgr.take_deltas();
        assert!(!initial.is_empty());
        // A quiescent window records nothing.
        mgr.refresh(&TestModel, &state).unwrap();
        assert!(mgr.take_deltas().is_empty());
        // A job submission lands in the next batch exactly once.
        submit(&mut state, &mut mgr, 0, 2);
        mgr.refresh(&TestModel, &state).unwrap();
        let batch = mgr.take_deltas();
        assert!(!batch.is_empty());
        assert!(batch.raw_len() >= batch.len(), "compaction never grows");
        assert!(mgr.take_deltas().is_empty(), "batch drained");
    }

    #[test]
    fn take_deltas_replays_onto_snapshot() {
        let (mut state, mut mgr) = setup(3, 2);
        mgr.take_deltas();
        let mut snapshot = mgr.graph().clone();
        submit(&mut state, &mut mgr, 0, 3);
        let ev = ClusterEvent::TaskPlaced {
            task: 0,
            machine: 1,
            now: 50,
        };
        state.apply(&ev);
        mgr.apply_event(&TestModel, &state, &ev).unwrap();
        mgr.refresh(&TestModel, &state).unwrap();
        mgr.take_deltas().replay(&mut snapshot).unwrap();
        let live = mgr.graph();
        for n in live.node_ids() {
            assert!(snapshot.node_alive(n));
            assert_eq!(snapshot.kind(n), live.kind(n));
            assert_eq!(snapshot.supply(n), live.supply(n));
        }
        assert_eq!(snapshot.node_count(), live.node_count());
        assert_eq!(snapshot.arc_count(), live.arc_count());
        for a in live.arc_ids() {
            assert!(snapshot.arc_alive(a));
            assert_eq!(snapshot.src(a), live.src(a));
            assert_eq!(snapshot.dst(a), live.dst(a));
            assert_eq!(snapshot.capacity(a), live.capacity(a));
            assert_eq!(snapshot.cost(a), live.cost(a));
        }
    }

    #[test]
    fn bundle_validation_helpers() {
        assert!(validate_bundle("task_arcs", &ArcBundle::ladder([1, 2, 2])).is_ok());
        let err = validate_bundle("aggregate_arc", &ArcBundle::ladder([3, 1]));
        assert!(matches!(
            err,
            Err(PolicyError::NonConvexBundle {
                hook: "aggregate_arc",
                prev: 3,
                next: 1
            })
        ));
        // Zero-capacity segments are legal (parked), convexity still holds.
        let b = ArcBundle::from_segments(vec![
            ArcSpec {
                capacity: 0,
                cost: 1,
            },
            ArcSpec {
                capacity: 4,
                cost: 2,
            },
        ]);
        assert!(validate_bundle("task_arcs", &b).is_ok());
    }
}
