//! The Firmament scheduler core (Fig 4).
//!
//! Wires the pieces together: a declarative
//! [`CostModel`](firmament_policies::CostModel) declares per-arc costs and
//! arc structure; the [`FlowGraphManager`] owns the flow network, turns
//! cluster events into graph deltas, and runs the two-pass cost update
//! (§6.3); the speculative [`DualSolver`](firmament_mcmf::DualSolver)
//! finds the min-cost flow; and [`extract::extract_placements`]
//! (Listing 1) turns the optimal flow back into task placements.
//! [`Firmament`] is the scheduler service a cluster manager embeds.
//!
//! # Architecture
//!
//! ```text
//!  cluster events ──► FlowGraphManager.apply_event ──► flow network
//!                        ▲ queries                        │
//!                     CostModel (pure)                    │
//!                        ▼                                │
//!  schedule():  manager.refresh (two-pass, dirty nodes only)
//!                        │ take_deltas() + take_graph()
//!                        ▼
//!        DeltaBatch ─► DualSolver (relaxation ∥ delta-fed inc. CS)
//!                                                         │ optimal flow
//!                 placements ◄── extract (Listing 1) ◄────┘
//! ```
//!
//! The manager's graph records its own change log; `schedule` drains it
//! as a compacted [`firmament_flow::delta::DeltaBatch`] each round and
//! the incremental solver warm-starts from the deltas natively instead of
//! diffing the graph (per-round telemetry on
//! [`RoundOutcome::solver`](scheduler::RoundOutcome::solver)).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod graph_manager;
pub mod scheduler;

pub use extract::{extract_placements, Placement};
pub use graph_manager::{FlowGraphManager, GraphBase, RefreshStats};
pub use scheduler::{Firmament, RoundOutcome, SchedulerError, SchedulingAction, SolverStats};
