//! The Firmament scheduler core (Fig 4).
//!
//! Wires the pieces together: a
//! [`SchedulingPolicy`](firmament_policies::SchedulingPolicy) maintains the
//! flow network from cluster events; the speculative
//! [`DualSolver`](firmament_mcmf::DualSolver) finds the min-cost flow; and
//! [`extract::extract_placements`] (Listing 1) turns the optimal flow back
//! into task placements. [`Firmament`] is the scheduler service a cluster
//! manager embeds.
//!
//! # Architecture
//!
//! ```text
//!  cluster events ──► policy.apply_event ──► flow network
//!                                               │
//!  schedule():  policy.refresh_costs ──► DualSolver (relaxation ∥ inc. cost scaling)
//!                                               │ optimal flow
//!                 placements ◄── extract (Listing 1) ◄──┘
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod scheduler;

pub use extract::{extract_placements, Placement};
pub use scheduler::{Firmament, RoundOutcome, SchedulerError, SchedulingAction};
