//! The Firmament scheduler service: events in, placements out (Fig 4).
//!
//! Firmament continuously reschedules the entire workload: cluster events
//! update the policy's flow network; each scheduling round refreshes the
//! state-dependent costs (the two-pass update of §6.3), runs the
//! speculative dual MCMF solver (§6.1), and extracts placement actions by
//! diffing the optimal flow against the current task assignments.

use crate::extract::{extract_placements, Placement};
use firmament_cluster::{ClusterEvent, ClusterState, MachineId, TaskId, TaskState};
use firmament_mcmf::dual::{DualConfig, DualOutcome, DualSolver};
use firmament_mcmf::incremental::drain_task_flow;
use firmament_mcmf::{AlgorithmKind, SolveError, SolveOptions};
use firmament_policies::{PolicyError, SchedulingPolicy};
use std::collections::HashMap;
use std::time::Duration;

/// A scheduling action produced by a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingAction {
    /// Start (or migrate) a task on a machine.
    Place {
        /// The task to place.
        task: TaskId,
        /// The destination machine.
        machine: MachineId,
    },
    /// Evict a running task (it re-enters the waiting pool).
    Preempt {
        /// The task to evict.
        task: TaskId,
    },
}

/// The outcome of one scheduling round.
#[derive(Debug)]
pub struct RoundOutcome {
    /// Actions to apply to the cluster, in order (preemptions first).
    pub actions: Vec<SchedulingAction>,
    /// The solver's algorithm runtime (Fig 2b: "solver running").
    pub algorithm_runtime: Duration,
    /// Which MCMF algorithm won the speculative race.
    pub winner: AlgorithmKind,
    /// Objective value of the optimal flow.
    pub objective: i64,
    /// Total tasks currently placed somewhere after this round.
    pub placed_tasks: usize,
    /// Tasks left unscheduled by this round.
    pub unscheduled_tasks: usize,
}

/// Errors from the scheduler.
#[derive(Debug)]
pub enum SchedulerError {
    /// The policy failed to translate an event.
    Policy(PolicyError),
    /// The MCMF solver failed.
    Solver(SolveError),
}

impl From<PolicyError> for SchedulerError {
    fn from(e: PolicyError) -> Self {
        SchedulerError::Policy(e)
    }
}

impl From<SolveError> for SchedulerError {
    fn from(e: SolveError) -> Self {
        SchedulerError::Solver(e)
    }
}

impl std::fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerError::Policy(e) => write!(f, "policy error: {e}"),
            SchedulerError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for SchedulerError {}

/// The Firmament scheduler.
///
/// # Examples
///
/// ```
/// use firmament_cluster::{ClusterEvent, ClusterState, Job, JobClass, Task, TopologySpec};
/// use firmament_core::Firmament;
/// use firmament_policies::LoadSpreadingPolicy;
///
/// let mut state = ClusterState::with_topology(&TopologySpec {
///     machines: 4,
///     machines_per_rack: 4,
///     slots_per_machine: 2,
/// });
/// let mut firmament = Firmament::new(LoadSpreadingPolicy::new());
/// // Register machines.
/// let machines: Vec<_> = state.machines.values().cloned().collect();
/// for m in machines {
///     firmament.handle_event(&state, &ClusterEvent::MachineAdded { machine: m }).unwrap();
/// }
/// // Submit a job with two tasks.
/// let job = Job::new(0, JobClass::Batch, 0, 0);
/// let tasks = vec![Task::new(0, 0, 0, 1_000_000), Task::new(1, 0, 0, 1_000_000)];
/// let ev = ClusterEvent::JobSubmitted { job, tasks };
/// state.apply(&ev);
/// firmament.handle_event(&state, &ev).unwrap();
/// // Run a scheduling round.
/// let outcome = firmament.schedule(&state).unwrap();
/// assert_eq!(outcome.actions.len(), 2);
/// ```
#[derive(Debug)]
pub struct Firmament<P: SchedulingPolicy> {
    policy: P,
    solver: DualSolver,
    /// Per-round solver options (budgets apply to each algorithm).
    pub solve_options: SolveOptions,
    rounds: u64,
}

impl<P: SchedulingPolicy> Firmament<P> {
    /// Creates a scheduler with the default dual-solver configuration.
    pub fn new(policy: P) -> Self {
        Self::with_solver(policy, DualConfig::default())
    }

    /// Creates a scheduler with an explicit solver configuration (e.g.
    /// `SolverKind::CostScalingOnly` to emulate Quincy).
    pub fn with_solver(policy: P, config: DualConfig) -> Self {
        Firmament {
            policy,
            solver: DualSolver::new(config),
            solve_options: SolveOptions::unlimited(),
            rounds: 0,
        }
    }

    /// The policy driving this scheduler.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the policy (for experiment configuration).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Number of completed scheduling rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Feeds a cluster event into the flow network.
    ///
    /// `state` must already reflect the event (call
    /// [`ClusterState::apply`] first). Task completions drain the departing
    /// task's flow before node removal — the efficient-task-removal
    /// heuristic (§5.3.2) that keeps the graph balanced for the incremental
    /// solver.
    pub fn handle_event(
        &mut self,
        state: &ClusterState,
        event: &ClusterEvent,
    ) -> Result<(), SchedulerError> {
        if let ClusterEvent::TaskCompleted { task, .. } = event {
            if let Some(node) = self.policy.base().task_node(*task) {
                drain_task_flow(&mut self.policy.base_mut().graph, node);
            }
        }
        self.policy.apply_event(state, event)?;
        Ok(())
    }

    /// Runs one scheduling round: refresh costs, solve, extract, diff.
    pub fn schedule(&mut self, state: &ClusterState) -> Result<RoundOutcome, SchedulerError> {
        self.policy.refresh_costs(state)?;
        let outcome: DualOutcome = self
            .solver
            .solve(&self.policy.base().graph, &self.solve_options)?;
        // Adopt the winning flow as the authoritative graph so the next
        // incremental run starts from it (ids are preserved by cloning).
        self.policy.base_mut().graph = outcome.graph;
        let placements = extract_placements(&self.policy.base().graph);
        let actions = diff_placements(state, &placements);
        self.rounds += 1;
        let placed = placements
            .values()
            .filter(|p| matches!(p, Placement::OnMachine(_)))
            .count();
        Ok(RoundOutcome {
            actions,
            algorithm_runtime: outcome.solution.runtime,
            winner: outcome.winner,
            objective: outcome.solution.objective,
            placed_tasks: placed,
            unscheduled_tasks: placements.len() - placed,
        })
    }
}

/// Diffs extracted placements against current task state, yielding
/// preemptions (first) and placements/migrations.
fn diff_placements(
    state: &ClusterState,
    placements: &HashMap<u64, Placement>,
) -> Vec<SchedulingAction> {
    let mut preemptions = Vec::new();
    let mut moves = Vec::new();
    for (&task, placement) in placements {
        let Some(t) = state.tasks.get(&task) else {
            continue;
        };
        match (t.state, t.machine, placement) {
            // Waiting task gets a machine: place it.
            (TaskState::Waiting | TaskState::Preempted, _, Placement::OnMachine(m)) => {
                moves.push(SchedulingAction::Place { task, machine: *m });
            }
            // Running task keeps its machine: no action.
            (TaskState::Running, Some(cur), Placement::OnMachine(m)) if cur == *m => {}
            // Running task moved: migration = preempt + place.
            (TaskState::Running, Some(_), Placement::OnMachine(m)) => {
                preemptions.push(SchedulingAction::Preempt { task });
                moves.push(SchedulingAction::Place { task, machine: *m });
            }
            // Running task lost its flow: preempt it.
            (TaskState::Running, Some(_), Placement::Unscheduled) => {
                preemptions.push(SchedulingAction::Preempt { task });
            }
            _ => {}
        }
    }
    // Deterministic order: preemptions first, then placements by task id.
    preemptions.sort_by_key(|a| match a {
        SchedulingAction::Preempt { task } => *task,
        SchedulingAction::Place { task, .. } => *task,
    });
    moves.sort_by_key(|a| match a {
        SchedulingAction::Preempt { task } => *task,
        SchedulingAction::Place { task, .. } => *task,
    });
    preemptions.extend(moves);
    preemptions
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{Job, JobClass, Task, TopologySpec};
    use firmament_policies::LoadSpreadingPolicy;

    fn setup(machines: usize, slots: u32) -> (ClusterState, Firmament<LoadSpreadingPolicy>) {
        let state = ClusterState::with_topology(&TopologySpec {
            machines,
            machines_per_rack: 20,
            slots_per_machine: slots,
        });
        let mut f = Firmament::new(LoadSpreadingPolicy::new());
        let ms: Vec<_> = state.machines.values().cloned().collect();
        for m in ms {
            f.handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
                .unwrap();
        }
        (state, f)
    }

    fn submit(
        state: &mut ClusterState,
        f: &mut Firmament<LoadSpreadingPolicy>,
        job: u64,
        n: usize,
        duration: u64,
    ) {
        let j = Job::new(job, JobClass::Batch, 0, state.now);
        let tasks: Vec<Task> = (0..n)
            .map(|i| Task::new(job * 1000 + i as u64, job, state.now, duration))
            .collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        f.handle_event(state, &ev).unwrap();
    }

    fn apply_actions(
        state: &mut ClusterState,
        f: &mut Firmament<LoadSpreadingPolicy>,
        actions: &[SchedulingAction],
    ) {
        for a in actions {
            let ev = match a {
                SchedulingAction::Place { task, machine } => ClusterEvent::TaskPlaced {
                    task: *task,
                    machine: *machine,
                    now: state.now,
                },
                SchedulingAction::Preempt { task } => ClusterEvent::TaskPreempted {
                    task: *task,
                    now: state.now,
                },
            };
            state.apply(&ev);
            f.handle_event(state, &ev).unwrap();
        }
    }

    #[test]
    fn schedules_all_tasks_when_capacity_exists() {
        let (mut state, mut f) = setup(4, 2);
        submit(&mut state, &mut f, 0, 6, 10_000_000);
        let outcome = f.schedule(&state).unwrap();
        assert_eq!(outcome.placed_tasks, 6);
        assert_eq!(outcome.unscheduled_tasks, 0);
        assert_eq!(outcome.actions.len(), 6);
        apply_actions(&mut state, &mut f, &outcome.actions.clone());
        assert_eq!(state.used_slots(), 6);
    }

    #[test]
    fn oversubscription_leaves_tasks_unscheduled() {
        let (mut state, mut f) = setup(2, 1);
        submit(&mut state, &mut f, 0, 5, 10_000_000);
        let outcome = f.schedule(&state).unwrap();
        assert_eq!(outcome.placed_tasks, 2);
        assert_eq!(outcome.unscheduled_tasks, 3);
    }

    #[test]
    fn completion_frees_slot_for_waiting_task() {
        let (mut state, mut f) = setup(1, 1);
        submit(&mut state, &mut f, 0, 2, 10_000_000);
        let o1 = f.schedule(&state).unwrap();
        assert_eq!(o1.placed_tasks, 1);
        apply_actions(&mut state, &mut f, &o1.actions.clone());
        // Complete the running task.
        let running: Vec<u64> = state.running_tasks().map(|t| t.id).collect();
        let ev = ClusterEvent::TaskCompleted {
            task: running[0],
            now: 1_000,
        };
        state.apply(&ev);
        f.handle_event(&state, &ev).unwrap();
        let o2 = f.schedule(&state).unwrap();
        assert_eq!(o2.placed_tasks, 1, "the waiting task takes the slot");
        assert!(o2
            .actions
            .iter()
            .any(|a| matches!(a, SchedulingAction::Place { .. })));
    }

    #[test]
    fn stable_placements_produce_no_actions() {
        let (mut state, mut f) = setup(3, 2);
        submit(&mut state, &mut f, 0, 4, 10_000_000);
        let o1 = f.schedule(&state).unwrap();
        apply_actions(&mut state, &mut f, &o1.actions.clone());
        // Rescheduling without any cluster change must not thrash.
        let o2 = f.schedule(&state).unwrap();
        assert!(
            o2.actions.is_empty(),
            "no changes → no actions, got {:?}",
            o2.actions
        );
    }

    #[test]
    fn rounds_counter_increments() {
        let (state, mut f) = setup(2, 1);
        assert_eq!(f.rounds(), 0);
        f.schedule(&state).unwrap();
        f.schedule(&state).unwrap();
        assert_eq!(f.rounds(), 2);
    }
}
