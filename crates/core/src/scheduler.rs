//! The Firmament scheduler service: events in, placements out (Fig 4).
//!
//! Firmament continuously reschedules the entire workload: cluster events
//! are translated into flow-network deltas by the [`FlowGraphManager`],
//! each scheduling round runs the two-pass cost update of §6.3 against the
//! configured [`CostModel`], the speculative dual MCMF solver (§6.1) finds
//! the min-cost flow, and placement actions are extracted by diffing the
//! optimal flow against the current task assignments.
//!
//! The scheduler core never mutates the graph itself — the manager owns
//! it. `schedule` *takes* the graph out of the manager, hands ownership to
//! the solver (avoiding a full per-round copy), and adopts the winning
//! flow back so the next incremental solve warm-starts from it.

use crate::extract::{extract_placements, Placement};
use crate::graph_manager::FlowGraphManager;
use firmament_cluster::{ClusterEvent, ClusterState, JobId, MachineId, TaskId, TaskState};
use firmament_flow::FlowGraph;
use firmament_mcmf::dual::{DualConfig, DualSolver};
use firmament_mcmf::{AlgorithmKind, SolveError, SolveOptions};
use firmament_policies::{CostModel, PolicyError};
use std::collections::BTreeMap;
use std::time::Duration;

/// A scheduling action produced by a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingAction {
    /// Start (or migrate) a task on a machine.
    Place {
        /// The task to place.
        task: TaskId,
        /// The destination machine.
        machine: MachineId,
    },
    /// Evict a running task (it re-enters the waiting pool).
    Preempt {
        /// The task to evict.
        task: TaskId,
    },
}

/// Per-round solver telemetry: how the change feed reached the solver and
/// how much of the graph the warm start actually visited. This is what
/// lets experiments (fig11/fig14) show the incremental path scaling with
/// *change* size rather than graph size.
#[derive(Debug, Clone, Default)]
pub struct SolverStats {
    /// Compacted [`firmament_flow::delta::GraphDelta`]s handed to the
    /// solver this round.
    pub deltas_fed: usize,
    /// Raw change-log entries the batch was compacted from.
    pub raw_changes: usize,
    /// Pure re-pricings (`CostChanged`) among the deltas — the shape a
    /// convex-bundle segment re-price or a `dynamic_task_arcs` cost
    /// drift produces. These are the cheap warm-start events: no flow
    /// moved, no structure changed.
    pub repricings: usize,
    /// Nodes the incremental cost-scaling solver activated (its honest
    /// work measure); 0 when it went cold, was cancelled, or lost the
    /// race before finishing.
    pub nodes_touched: u64,
    /// Iterations the incremental solver spent (push/relabel steps).
    pub iterations: u64,
    /// Warm-start safety-valve trips this round (the warm attempt was
    /// abandoned for a bounded cold re-solve).
    pub bailouts: u64,
    /// `true` when the speculative dual race was short-circuited: the
    /// round's batch was re-price-only with no exposed violation (all cost
    /// rises on flowless arcs — the convex-ladder clock-advance shape), so
    /// only the warm cost-scaling path ran, in O(Δ), and no relaxation
    /// thread (or graph clone) was spawned.
    pub race_skipped: bool,
    /// Which MCMF algorithm won the speculative race — a convenience copy
    /// of [`RoundOutcome::winner`] so this struct is self-contained when
    /// logged on its own.
    pub winner: Option<AlgorithmKind>,
}

/// The outcome of one scheduling round.
#[derive(Debug)]
pub struct RoundOutcome {
    /// Actions to apply to the cluster, in order (preemptions first).
    pub actions: Vec<SchedulingAction>,
    /// The solver's algorithm runtime (Fig 2b: "solver running").
    pub algorithm_runtime: Duration,
    /// Which MCMF algorithm won the speculative race.
    pub winner: AlgorithmKind,
    /// Delta-feed and warm-start telemetry for this round.
    pub solver: SolverStats,
    /// Objective value of the optimal flow.
    pub objective: i64,
    /// Total tasks currently placed somewhere after this round.
    pub placed_tasks: usize,
    /// Tasks left unscheduled by this round.
    pub unscheduled_tasks: usize,
    /// Gang jobs deferred by admission control this round — the minimum
    /// exceeded total machine capacity across admitted gangs, or the
    /// machine capacity reachable from the job's own tasks. Their gang
    /// constraint was left unenforced (the job queues) instead of making
    /// the flow network infeasible. Re-admitted automatically once
    /// capacity appears.
    pub deferred_gang_jobs: Vec<JobId>,
}

/// Errors from the scheduler.
#[derive(Debug)]
pub enum SchedulerError {
    /// The graph manager failed to translate an event or refresh costs.
    Policy(PolicyError),
    /// The MCMF solver failed.
    Solver(SolveError),
}

impl From<PolicyError> for SchedulerError {
    fn from(e: PolicyError) -> Self {
        SchedulerError::Policy(e)
    }
}

impl From<SolveError> for SchedulerError {
    fn from(e: SolveError) -> Self {
        SchedulerError::Solver(e)
    }
}

impl std::fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerError::Policy(e) => write!(f, "policy error: {e}"),
            SchedulerError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for SchedulerError {}

/// The Firmament scheduler, parameterized by a declarative [`CostModel`].
///
/// # Examples
///
/// ```
/// use firmament_cluster::{ClusterEvent, ClusterState, Job, JobClass, Task, TopologySpec};
/// use firmament_core::Firmament;
/// use firmament_policies::LoadSpreadingCostModel;
///
/// let mut state = ClusterState::with_topology(&TopologySpec {
///     machines: 4,
///     machines_per_rack: 4,
///     slots_per_machine: 2,
/// });
/// let mut firmament = Firmament::new(LoadSpreadingCostModel::new());
/// // Register machines.
/// let machines: Vec<_> = state.machines.values().cloned().collect();
/// for m in machines {
///     firmament.handle_event(&state, &ClusterEvent::MachineAdded { machine: m }).unwrap();
/// }
/// // Submit a job with two tasks.
/// let job = Job::new(0, JobClass::Batch, 0, 0);
/// let tasks = vec![Task::new(0, 0, 0, 1_000_000), Task::new(1, 0, 0, 1_000_000)];
/// let ev = ClusterEvent::JobSubmitted { job, tasks };
/// state.apply(&ev);
/// firmament.handle_event(&state, &ev).unwrap();
/// // Run a scheduling round.
/// let outcome = firmament.schedule(&state).unwrap();
/// assert_eq!(outcome.actions.len(), 2);
/// ```
#[derive(Debug)]
pub struct Firmament<C: CostModel> {
    model: C,
    manager: FlowGraphManager,
    solver: DualSolver,
    /// Per-round solver options (budgets apply to each algorithm).
    pub solve_options: SolveOptions,
    rounds: u64,
}

impl<C: CostModel> Firmament<C> {
    /// Creates a scheduler with the default dual-solver configuration.
    pub fn new(model: C) -> Self {
        Self::with_solver(model, DualConfig::default())
    }

    /// Creates a scheduler with an explicit solver configuration (e.g.
    /// `SolverKind::CostScalingOnly` to emulate Quincy).
    pub fn with_solver(model: C, config: DualConfig) -> Self {
        Firmament {
            model,
            manager: FlowGraphManager::new(),
            solver: DualSolver::new(config),
            solve_options: SolveOptions::unlimited(),
            rounds: 0,
        }
    }

    /// The cost model driving this scheduler.
    pub fn model(&self) -> &C {
        &self.model
    }

    /// Mutable access to the cost model (for experiment configuration).
    /// Structural knobs take effect for *future* events; already-declared
    /// arcs keep their shape.
    pub fn model_mut(&mut self) -> &mut C {
        &mut self.model
    }

    /// The flow-graph manager (read-only: node lookups, refresh stats).
    pub fn manager(&self) -> &FlowGraphManager {
        &self.manager
    }

    /// Mutable access to the flow-graph manager, for benchmarks and tests
    /// that drive the take-graph/adopt-graph/take-deltas handoff manually
    /// instead of through [`schedule`](Self::schedule).
    pub fn manager_mut(&mut self) -> &mut FlowGraphManager {
        &mut self.manager
    }

    /// The current flow network.
    pub fn graph(&self) -> &FlowGraph {
        self.manager.graph()
    }

    /// Number of completed scheduling rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Feeds a cluster event into the flow network.
    ///
    /// `state` must already reflect the event (call
    /// [`ClusterState::apply`] first). Task completions drain the departing
    /// task's flow before node removal — the efficient-task-removal
    /// heuristic (§5.3.2) that keeps the graph balanced for the incremental
    /// solver.
    pub fn handle_event(
        &mut self,
        state: &ClusterState,
        event: &ClusterEvent,
    ) -> Result<(), SchedulerError> {
        self.manager.apply_event(&self.model, state, event)?;
        Ok(())
    }

    /// Runs the two-pass cost update (§6.3) without solving — exposed for
    /// benchmarks that want to inspect or solve the refreshed graph
    /// out-of-band. [`schedule`](Self::schedule) calls this itself.
    pub fn refresh(&mut self, state: &ClusterState) -> Result<(), SchedulerError> {
        self.manager.refresh(&self.model, state)?;
        Ok(())
    }

    /// Runs one scheduling round: refresh costs, solve, extract, diff.
    pub fn schedule(&mut self, state: &ClusterState) -> Result<RoundOutcome, SchedulerError> {
        self.manager.refresh(&self.model, state)?;
        // Drain the typed change feed recorded since the last handoff —
        // the incremental solver warm-starts from it natively instead of
        // diffing the graph against its warm state.
        let deltas = self.manager.take_deltas();
        // Hand the solver ownership of the graph: single-algorithm runs
        // solve in place and dual runs clone once instead of twice, and
        // adopting the winning flow is a move either way.
        let graph = self.manager.take_graph();
        let outcome =
            match self
                .solver
                .solve_owned_with_deltas(graph, Some(&deltas), &self.solve_options)
            {
                Ok(outcome) => outcome,
                Err((err, mut graph)) => {
                    // Restore the network so the manager stays consistent; the
                    // failed run may have left partial flow behind. (The
                    // drained delta batch is intentionally dropped: the
                    // incremental solver went cold, so the next round solves
                    // from scratch and needs no feed.)
                    graph.reset_flow();
                    self.manager.adopt_graph(graph);
                    return Err(err.into());
                }
            };
        self.manager.adopt_graph(outcome.graph);
        let placements = extract_placements(self.manager.graph());
        let actions = diff_placements(state, &placements);
        self.rounds += 1;
        let placed = placements
            .values()
            .filter(|p| matches!(p, Placement::OnMachine(_)))
            .count();
        let cs = outcome.cs_stats.as_ref();
        Ok(RoundOutcome {
            actions,
            algorithm_runtime: outcome.solution.runtime,
            winner: outcome.winner,
            solver: SolverStats {
                deltas_fed: deltas.len(),
                raw_changes: deltas.raw_len(),
                repricings: deltas.cost_changes(),
                nodes_touched: cs.map(|s| s.nodes_touched).unwrap_or(0),
                iterations: cs.map(|s| s.iterations).unwrap_or(0),
                bailouts: cs.map(|s| s.bailouts).unwrap_or(0),
                race_skipped: outcome.race_skipped,
                winner: Some(outcome.winner),
            },
            objective: outcome.solution.objective,
            placed_tasks: placed,
            unscheduled_tasks: placements.len() - placed,
            deferred_gang_jobs: self.manager.deferred_gang_jobs().to_vec(),
        })
    }
}

/// Diffs extracted placements against current task state, yielding
/// preemptions (first) and placements/migrations.
///
/// `placements` is ordered by task id (a `BTreeMap`), so the output order
/// is deterministic by construction — no post-hoc sorting of hash-map
/// iteration order.
fn diff_placements(
    state: &ClusterState,
    placements: &BTreeMap<u64, Placement>,
) -> Vec<SchedulingAction> {
    let mut preemptions = Vec::new();
    let mut moves = Vec::new();
    for (&task, placement) in placements {
        let Some(t) = state.tasks.get(&task) else {
            continue;
        };
        match (t.state, t.machine, placement) {
            // Waiting task gets a machine: place it.
            (TaskState::Waiting | TaskState::Preempted, _, Placement::OnMachine(m)) => {
                moves.push(SchedulingAction::Place { task, machine: *m });
            }
            // Running task keeps its machine: no action.
            (TaskState::Running, Some(cur), Placement::OnMachine(m)) if cur == *m => {}
            // Running task moved: migration = preempt + place.
            (TaskState::Running, Some(_), Placement::OnMachine(m)) => {
                preemptions.push(SchedulingAction::Preempt { task });
                moves.push(SchedulingAction::Place { task, machine: *m });
            }
            // Running task lost its flow: preempt it.
            (TaskState::Running, Some(_), Placement::Unscheduled) => {
                preemptions.push(SchedulingAction::Preempt { task });
            }
            _ => {}
        }
    }
    preemptions.extend(moves);
    preemptions
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{Job, JobClass, Task, TopologySpec};
    use firmament_policies::LoadSpreadingCostModel;

    fn setup(machines: usize, slots: u32) -> (ClusterState, Firmament<LoadSpreadingCostModel>) {
        let state = ClusterState::with_topology(&TopologySpec {
            machines,
            machines_per_rack: 20,
            slots_per_machine: slots,
        });
        let mut f = Firmament::new(LoadSpreadingCostModel::new());
        let ms: Vec<_> = state.machines.values().cloned().collect();
        for m in ms {
            f.handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
                .unwrap();
        }
        (state, f)
    }

    fn submit(
        state: &mut ClusterState,
        f: &mut Firmament<LoadSpreadingCostModel>,
        job: u64,
        n: usize,
        duration: u64,
    ) {
        let j = Job::new(job, JobClass::Batch, 0, state.now);
        let tasks: Vec<Task> = (0..n)
            .map(|i| Task::new(job * 1000 + i as u64, job, state.now, duration))
            .collect();
        let ev = ClusterEvent::JobSubmitted { job: j, tasks };
        state.apply(&ev);
        f.handle_event(state, &ev).unwrap();
    }

    fn apply_actions(
        state: &mut ClusterState,
        f: &mut Firmament<LoadSpreadingCostModel>,
        actions: &[SchedulingAction],
    ) {
        for a in actions {
            let ev = match a {
                SchedulingAction::Place { task, machine } => ClusterEvent::TaskPlaced {
                    task: *task,
                    machine: *machine,
                    now: state.now,
                },
                SchedulingAction::Preempt { task } => ClusterEvent::TaskPreempted {
                    task: *task,
                    now: state.now,
                },
            };
            state.apply(&ev);
            f.handle_event(state, &ev).unwrap();
        }
    }

    #[test]
    fn schedules_all_tasks_when_capacity_exists() {
        let (mut state, mut f) = setup(4, 2);
        submit(&mut state, &mut f, 0, 6, 10_000_000);
        let outcome = f.schedule(&state).unwrap();
        assert_eq!(outcome.placed_tasks, 6);
        assert_eq!(outcome.unscheduled_tasks, 0);
        assert_eq!(outcome.actions.len(), 6);
        apply_actions(&mut state, &mut f, &outcome.actions.clone());
        assert_eq!(state.used_slots(), 6);
    }

    #[test]
    fn oversubscription_leaves_tasks_unscheduled() {
        let (mut state, mut f) = setup(2, 1);
        submit(&mut state, &mut f, 0, 5, 10_000_000);
        let outcome = f.schedule(&state).unwrap();
        assert_eq!(outcome.placed_tasks, 2);
        assert_eq!(outcome.unscheduled_tasks, 3);
    }

    #[test]
    fn completion_frees_slot_for_waiting_task() {
        let (mut state, mut f) = setup(1, 1);
        submit(&mut state, &mut f, 0, 2, 10_000_000);
        let o1 = f.schedule(&state).unwrap();
        assert_eq!(o1.placed_tasks, 1);
        apply_actions(&mut state, &mut f, &o1.actions.clone());
        // Complete the running task.
        let running: Vec<u64> = state.running_tasks().map(|t| t.id).collect();
        let ev = ClusterEvent::TaskCompleted {
            task: running[0],
            now: 1_000,
        };
        state.apply(&ev);
        f.handle_event(&state, &ev).unwrap();
        let o2 = f.schedule(&state).unwrap();
        assert_eq!(o2.placed_tasks, 1, "the waiting task takes the slot");
        assert!(o2
            .actions
            .iter()
            .any(|a| matches!(a, SchedulingAction::Place { .. })));
    }

    #[test]
    fn stable_placements_produce_no_actions() {
        let (mut state, mut f) = setup(3, 2);
        submit(&mut state, &mut f, 0, 4, 10_000_000);
        let o1 = f.schedule(&state).unwrap();
        apply_actions(&mut state, &mut f, &o1.actions.clone());
        // Rescheduling without any cluster change must not thrash.
        let o2 = f.schedule(&state).unwrap();
        assert!(
            o2.actions.is_empty(),
            "no changes → no actions, got {:?}",
            o2.actions
        );
    }

    /// The re-price-only race short-circuit, end to end: once everything
    /// is placed, a pure clock advance only *raises* costs on flowless
    /// arcs (wait-scaled unscheduled costs of placed tasks, upper ladder
    /// segments), so the round is proven quiescent and the dual executor
    /// runs the warm path alone — `RoundOutcome::solver.race_skipped`
    /// records the skip, and the placements stay put.
    #[test]
    fn reprice_only_clock_advance_skips_the_race() {
        let (mut state, mut f) = setup(3, 2);
        submit(&mut state, &mut f, 0, 4, 600_000_000);
        let o1 = f.schedule(&state).unwrap();
        assert!(!o1.solver.race_skipped, "structural round races");
        apply_actions(&mut state, &mut f, &o1.actions.clone());
        // Settle the post-placement round (structural task-arc rewires).
        let o2 = f.schedule(&state).unwrap();
        apply_actions(&mut state, &mut f, &o2.actions.clone());

        // Pure clock advance: every surviving cost change is a wait-cost
        // rise on a flowless arc.
        let ev = ClusterEvent::Tick { now: 30_000_000 };
        state.apply(&ev);
        f.handle_event(&state, &ev).unwrap();
        let o3 = f.schedule(&state).unwrap();
        assert!(
            o3.solver.race_skipped,
            "re-price-only round must skip the race: {:?}",
            o3.solver
        );
        assert_eq!(
            o3.solver.repricings, o3.solver.deltas_fed,
            "the whole batch is cost drift"
        );
        assert!(o3.actions.is_empty(), "no churn on a quiescent round");
    }

    #[test]
    fn rounds_counter_increments() {
        let (state, mut f) = setup(2, 1);
        assert_eq!(f.rounds(), 0);
        f.schedule(&state).unwrap();
        f.schedule(&state).unwrap();
        assert_eq!(f.rounds(), 2);
    }

    #[test]
    fn scheduler_never_mutates_graph_between_rounds() {
        // The graph is only changed by the manager (events + refresh) and
        // by adopting solver output: two schedules with no intervening
        // events leave the network structurally identical.
        let (mut state, mut f) = setup(3, 2);
        submit(&mut state, &mut f, 0, 4, 10_000_000);
        f.schedule(&state).unwrap();
        let nodes = f.graph().node_count();
        let arcs = f.graph().arc_count();
        f.schedule(&state).unwrap();
        assert_eq!(f.graph().node_count(), nodes);
        assert_eq!(f.graph().arc_count(), arcs);
    }
}
