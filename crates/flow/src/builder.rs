//! Convenience builder for scheduling-shaped flow networks.
//!
//! Tests, examples, and documentation build small networks like the paper's
//! Fig 5 by hand; this builder removes the boilerplate of tracking node ids.

use crate::graph::{FlowGraph, GraphError};
use crate::ids::{ArcId, NodeId};
use crate::node::NodeKind;

/// Incrementally builds a [`FlowGraph`] shaped like the paper's examples:
/// task sources, optional aggregators, machines, per-job unscheduled
/// aggregators, and a single sink.
///
/// # Examples
///
/// Reconstructing the essence of Fig 5 (two jobs, four machines):
///
/// ```
/// use firmament_flow::SchedulingGraphBuilder;
///
/// let mut b = SchedulingGraphBuilder::new();
/// let m0 = b.machine(0);
/// let t00 = b.task(0, 0); // job 0, task 0
/// b.task_to_machine(t00, m0, 5).unwrap();
/// b.task_to_unscheduled(t00, 0, 9).unwrap();
/// let g = b.finish();
/// assert_eq!(g.total_supply(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SchedulingGraphBuilder {
    graph: FlowGraph,
    sink: Option<NodeId>,
    unscheduled: Vec<(u64, NodeId)>,
}

impl SchedulingGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the sink node, creating it on first use.
    pub fn sink(&mut self) -> NodeId {
        if let Some(s) = self.sink {
            s
        } else {
            let s = self.graph.add_node(NodeKind::Sink, 0);
            self.sink = Some(s);
            s
        }
    }

    /// Adds a task node for `(job, task)` with one unit of supply.
    ///
    /// `task` ids must be globally unique across jobs: placement extraction
    /// keys on them.
    pub fn task(&mut self, job: u64, task: u64) -> NodeId {
        let _ = job;
        let n = self.graph.add_node(NodeKind::Task { task }, 1);
        let sink = self.sink();
        // Keep the sink's demand in balance with the number of tasks.
        let d = self.graph.supply(sink) - 1;
        self.graph.set_supply(sink, d).expect("sink exists");
        n
    }

    /// Adds a machine node with `slots` units of capacity on its sink arc.
    pub fn machine(&mut self, machine: u64) -> NodeId {
        self.machine_with_slots(machine, 1)
    }

    /// Adds a machine node whose arc to the sink has the given capacity.
    pub fn machine_with_slots(&mut self, machine: u64, slots: i64) -> NodeId {
        let n = self.graph.add_node(NodeKind::Machine { machine }, 0);
        let sink = self.sink();
        self.graph
            .add_arc(n, sink, slots, 0)
            .expect("machine-sink arc");
        n
    }

    /// Adds an aggregator node of the given kind.
    pub fn aggregator(&mut self, kind: NodeKind) -> NodeId {
        self.graph.add_node(kind, 0)
    }

    /// Adds a unit-capacity preference arc from a task to a machine or
    /// aggregator.
    pub fn task_to_machine(
        &mut self,
        task: NodeId,
        target: NodeId,
        cost: i64,
    ) -> Result<ArcId, GraphError> {
        self.graph.add_arc(task, target, 1, cost)
    }

    /// Connects a task to its job's unscheduled aggregator (created on first
    /// use), with the given cost; the aggregator drains to the sink with
    /// effectively unbounded capacity.
    pub fn task_to_unscheduled(
        &mut self,
        task: NodeId,
        job: u64,
        cost: i64,
    ) -> Result<ArcId, GraphError> {
        let u = self.unscheduled_aggregator(job);
        self.graph.add_arc(task, u, 1, cost)
    }

    /// Returns (creating if needed) the unscheduled aggregator for a job.
    pub fn unscheduled_aggregator(&mut self, job: u64) -> NodeId {
        if let Some(&(_, n)) = self.unscheduled.iter().find(|&&(j, _)| j == job) {
            return n;
        }
        let n = self
            .graph
            .add_node(NodeKind::UnscheduledAggregator { job }, 0);
        let sink = self.sink();
        // Arcs between unscheduled aggregators and the sink are the only
        // ones without unit capacity in Fig 5.
        self.graph
            .add_arc(n, sink, i32::MAX as i64, 0)
            .expect("unscheduled-sink arc");
        self.unscheduled.push((job, n));
        n
    }

    /// Adds an arbitrary arc (for aggregator fan-out, etc.).
    pub fn arc(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: i64,
        cost: i64,
    ) -> Result<ArcId, GraphError> {
        self.graph.add_arc(src, dst, capacity, cost)
    }

    /// Returns a mutable reference to the graph under construction.
    pub fn graph_mut(&mut self) -> &mut FlowGraph {
        &mut self.graph
    }

    /// Consumes the builder and returns the graph.
    pub fn finish(self) -> FlowGraph {
        self.graph
    }
}

/// Builds the paper's Fig 5 network: two jobs (3 + 2 tasks), four machines,
/// per-job unscheduled aggregators, and the arc costs printed in the figure.
///
/// Returns the graph plus the task and machine node ids in figure order.
pub fn figure5() -> (FlowGraph, Vec<NodeId>, Vec<NodeId>) {
    let mut b = SchedulingGraphBuilder::new();
    let machines: Vec<NodeId> = (0..4).map(|m| b.machine(m)).collect();
    let mut tasks = Vec::new();
    // Job 0: three tasks with unscheduled cost 5. Task ids are globally
    // unique (0..3 for job 0, 3..5 for job 1).
    for i in 0..3 {
        let t = b.task(0, i);
        b.task_to_unscheduled(t, 0, 5).unwrap();
        tasks.push(t);
    }
    // Job 1: two tasks with unscheduled cost 7.
    for i in 3..5 {
        let t = b.task(1, i);
        b.task_to_unscheduled(t, 1, 7).unwrap();
        tasks.push(t);
    }
    // Preference arcs with the figure's costs.
    b.task_to_machine(tasks[0], machines[0], 2).unwrap();
    b.task_to_machine(tasks[0], machines[1], 3).unwrap();
    b.task_to_machine(tasks[1], machines[1], 6).unwrap();
    b.task_to_machine(tasks[2], machines[1], 1).unwrap();
    b.task_to_machine(tasks[3], machines[2], 4).unwrap();
    b.task_to_machine(tasks[4], machines[3], 2).unwrap();
    (b.finish(), tasks, machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn figure5_shape() {
        let (g, tasks, machines) = figure5();
        assert_eq!(tasks.len(), 5);
        assert_eq!(machines.len(), 4);
        // 4 machines + 5 tasks + 2 unscheduled aggregators + sink.
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.total_supply(), 5);
        assert!(validate(&g).is_empty());
        // The sink absorbs all five units.
        let sink = g
            .node_ids()
            .find(|&n| g.kind(n).is_sink())
            .expect("sink exists");
        assert_eq!(g.supply(sink), -5);
    }

    #[test]
    fn unscheduled_aggregator_is_shared_per_job() {
        let mut b = SchedulingGraphBuilder::new();
        let t0 = b.task(3, 0);
        let t1 = b.task(3, 1);
        b.task_to_unscheduled(t0, 3, 5).unwrap();
        b.task_to_unscheduled(t1, 3, 5).unwrap();
        let g = b.finish();
        let aggs = g.node_ids().filter(|&n| g.kind(n).is_unscheduled()).count();
        assert_eq!(aggs, 1);
    }

    #[test]
    fn machine_slots_control_sink_capacity() {
        let mut b = SchedulingGraphBuilder::new();
        let m = b.machine_with_slots(0, 12);
        let g = b.finish();
        let arc = g.adj(m)[0];
        assert_eq!(g.capacity(arc), 12);
    }
}
