//! Graph-change taxonomy and the Table 3 reoptimization analysis.
//!
//! All cluster events ultimately reduce to three kinds of flow-network
//! change (§5.2): supply changes at nodes, capacity changes on arcs, and
//! cost changes on arcs. This module records those changes for the
//! incremental solvers and implements the paper's Table 3: which arc changes
//! leave an optimal feasible flow valid, and which force reoptimization.

use crate::ids::{ArcId, NodeId};
use crate::node::NodeKind;

/// One recorded mutation of a [`FlowGraph`](crate::FlowGraph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphChange {
    /// A node was added (e.g. task submission).
    AddNode {
        /// The new node.
        node: NodeId,
        /// Its kind.
        kind: NodeKind,
        /// Its initial supply.
        supply: i64,
    },
    /// A node was removed (e.g. task completion, machine failure). Incident
    /// arc removals are recorded separately, before this entry.
    RemoveNode {
        /// The removed node.
        node: NodeId,
        /// The supply it had when removed.
        supply: i64,
    },
    /// A node's supply changed.
    SupplyChange {
        /// The affected node.
        node: NodeId,
        /// Previous supply.
        old: i64,
        /// New supply.
        new: i64,
    },
    /// An arc was added.
    AddArc {
        /// Forward id of the new pair.
        arc: ArcId,
        /// Tail node.
        src: NodeId,
        /// Head node.
        dst: NodeId,
        /// Capacity.
        capacity: i64,
        /// Cost.
        cost: i64,
    },
    /// An arc was removed; `flow` is the flow it carried at removal time.
    RemoveArc {
        /// Forward id of the removed pair.
        arc: ArcId,
        /// Tail node.
        src: NodeId,
        /// Head node.
        dst: NodeId,
        /// Capacity at removal.
        capacity: i64,
        /// Cost at removal.
        cost: i64,
        /// Flow carried at removal (creates imbalance if non-zero).
        flow: i64,
    },
    /// An arc's capacity changed; `flow_spilled` units were clamped off.
    CapacityChange {
        /// Forward id of the pair.
        arc: ArcId,
        /// Previous capacity.
        old: i64,
        /// New capacity.
        new: i64,
        /// Flow removed because it exceeded the new capacity.
        flow_spilled: i64,
    },
    /// An arc's cost changed.
    CostChange {
        /// Forward id of the pair.
        arc: ArcId,
        /// Previous cost.
        old: i64,
        /// New cost.
        new: i64,
    },
    /// Flow was moved at this node outside a solver run (e.g. a §5.3.2
    /// task-removal drain ended here), so its excess may be non-zero even
    /// though no structural change names it. Purely a marker for the
    /// incremental solver's dirty set; carries no replayable effect.
    FlowDisturbed {
        /// The node whose conservation may have been broken.
        node: NodeId,
    },
}

impl GraphChange {
    /// Returns the magnitude of the cost perturbation this change introduces,
    /// used by incremental cost scaling to choose its starting ε (§6.2:
    /// "cost scaling must start only at a value of ε equal to the costliest
    /// arc graph change").
    pub fn cost_perturbation(&self) -> i64 {
        match self {
            GraphChange::CostChange { old, new, .. } => (new - old).abs(),
            GraphChange::AddArc { cost, .. } => cost.abs(),
            GraphChange::RemoveArc { cost, flow, .. } if *flow > 0 => cost.abs(),
            _ => 0,
        }
    }
}

/// The kind of single-arc change analysed by Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArcChangeKind {
    /// Capacity increased (`u' > u`).
    IncreaseCapacity,
    /// Capacity decreased (`u' < u`).
    DecreaseCapacity,
    /// Cost increased (`c' > c`).
    IncreaseCost,
    /// Cost decreased (`c' < c`).
    DecreaseCost,
}

/// The effect of an arc change on a previously optimal, feasible flow
/// (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptEffect {
    /// The flow stays optimal and feasible (green cells).
    StaysValid,
    /// Complementary slackness is violated; the solution must be
    /// reoptimized, but all flow still fits (red/orange optimality cells).
    BreaksOptimality,
    /// The flow no longer fits the capacities; feasibility must be restored
    /// (only capacity decreases can cause this).
    BreaksFeasibility,
}

/// Inputs to the Table 3 analysis for a single arc `(i, j)`.
#[derive(Debug, Clone, Copy)]
pub struct ArcChangeAnalysis {
    /// Reduced cost `c^π_ij` before the change.
    pub reduced_cost_before: i64,
    /// Reduced cost after the change (equal to `reduced_cost_before` for
    /// capacity changes).
    pub reduced_cost_after: i64,
    /// Flow on the arc before the change.
    pub flow: i64,
    /// Capacity before the change.
    pub capacity_before: i64,
    /// Capacity after the change (equal to `capacity_before` for cost
    /// changes).
    pub capacity_after: i64,
}

/// Evaluates Table 3: does this arc change leave the optimal feasible flow
/// valid, break complementary slackness, or break feasibility?
///
/// The complementary slackness conditions for an optimal flow are: flow on
/// arcs with `c^π_ij > 0` is zero, and arcs with `c^π_ij < 0` are saturated
/// (§4, optimality condition 3). "Decreasing arc capacity can destroy
/// feasibility; all other changes affect optimality only."
///
/// # Examples
///
/// ```
/// use firmament_flow::changes::{arc_change_effect, ArcChangeAnalysis, ReoptEffect};
///
/// // Increasing the cost of a flow-carrying balanced arc breaks optimality.
/// let a = ArcChangeAnalysis {
///     reduced_cost_before: 0,
///     reduced_cost_after: 4,
///     flow: 1,
///     capacity_before: 1,
///     capacity_after: 1,
/// };
/// assert_eq!(arc_change_effect(&a), ReoptEffect::BreaksOptimality);
/// ```
pub fn arc_change_effect(a: &ArcChangeAnalysis) -> ReoptEffect {
    if a.flow > a.capacity_after {
        return ReoptEffect::BreaksFeasibility;
    }
    // Complementary slackness after the change:
    //   rc > 0  requires  f = 0
    //   rc < 0  requires  f = u'
    let rc = a.reduced_cost_after;
    if rc > 0 && a.flow > 0 {
        return ReoptEffect::BreaksOptimality;
    }
    if rc < 0 && a.flow < a.capacity_after {
        return ReoptEffect::BreaksOptimality;
    }
    ReoptEffect::StaysValid
}

/// One cell of Table 3: the effect of a change kind for a reduced-cost sign
/// class, together with the condition (if any) under which it breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table3Cell {
    /// Green: the solution stays optimal and feasible unconditionally.
    Green,
    /// Red: the solution always requires reoptimization.
    Red,
    /// Orange: the solution breaks only if the named condition holds.
    Orange(&'static str),
}

/// Returns the static Table 3 matrix cell for `(change, sign of c^π_ij)`.
///
/// `rc_sign` is `-1`, `0`, or `1` for `c^π_ij < 0`, `= 0`, `> 0`.
///
/// # Panics
///
/// Panics if `rc_sign` is not one of `-1`, `0`, `1`.
pub fn table3_cell(change: ArcChangeKind, rc_sign: i8) -> Table3Cell {
    use ArcChangeKind::*;
    use Table3Cell::*;
    match (change, rc_sign) {
        // Increasing capacity: a saturated negative-rc arc gains residual
        // capacity, violating slackness.
        (IncreaseCapacity, -1) => Red,
        (IncreaseCapacity, 0) => Green,
        (IncreaseCapacity, 1) => Green,
        // Decreasing capacity: a saturated negative-rc arc always overflows;
        // a balanced arc overflows only if it carried more than u'.
        (DecreaseCapacity, -1) => Red,
        (DecreaseCapacity, 0) => Orange("f_ij > u'_ij"),
        (DecreaseCapacity, 1) => Green,
        // Increasing cost: breaks when the arc still carries flow but its
        // new reduced cost turns positive.
        (IncreaseCost, -1) => Orange("c'^π_ij > 0"),
        (IncreaseCost, 0) => Orange("f_ij > 0"),
        (IncreaseCost, 1) => Green,
        // Decreasing cost: breaks when the new reduced cost turns negative
        // while the arc is not saturated.
        (DecreaseCost, -1) => Green,
        (DecreaseCost, 0) => Orange("f_ij < u_ij"),
        (DecreaseCost, 1) => Orange("c'^π_ij < 0"),
        (_, s) => panic!("rc_sign must be -1, 0, or 1; got {s}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysis(rc_before: i64, rc_after: i64, flow: i64, u: i64, u2: i64) -> ArcChangeAnalysis {
        ArcChangeAnalysis {
            reduced_cost_before: rc_before,
            reduced_cost_after: rc_after,
            flow,
            capacity_before: u,
            capacity_after: u2,
        }
    }

    #[test]
    fn increase_capacity_on_saturated_negative_arc_breaks() {
        // rc < 0, f = u = 2, u' = 5: arc must be saturated but is not.
        let a = analysis(-3, -3, 2, 2, 5);
        assert_eq!(arc_change_effect(&a), ReoptEffect::BreaksOptimality);
    }

    #[test]
    fn increase_capacity_on_balanced_or_empty_arc_is_fine() {
        assert_eq!(
            arc_change_effect(&analysis(0, 0, 1, 2, 5)),
            ReoptEffect::StaysValid
        );
        assert_eq!(
            arc_change_effect(&analysis(4, 4, 0, 2, 5)),
            ReoptEffect::StaysValid
        );
    }

    #[test]
    fn decrease_capacity_below_flow_breaks_feasibility() {
        let a = analysis(0, 0, 3, 5, 2);
        assert_eq!(arc_change_effect(&a), ReoptEffect::BreaksFeasibility);
    }

    #[test]
    fn decrease_capacity_above_flow_ok_unless_negative_rc() {
        assert_eq!(
            arc_change_effect(&analysis(0, 0, 1, 5, 2)),
            ReoptEffect::StaysValid
        );
        // rc < 0 requires saturation at the *new* capacity.
        assert_eq!(
            arc_change_effect(&analysis(-1, -1, 3, 5, 4)),
            ReoptEffect::BreaksOptimality
        );
        assert_eq!(
            arc_change_effect(&analysis(-1, -1, 4, 5, 4)),
            ReoptEffect::StaysValid
        );
    }

    #[test]
    fn cost_increase_turning_rc_positive_with_flow_breaks() {
        // The paper's worked example: cost change from c^π < 0 to c'^π > 0.
        let a = analysis(-2, 3, 1, 1, 1);
        assert_eq!(arc_change_effect(&a), ReoptEffect::BreaksOptimality);
    }

    #[test]
    fn cost_increase_without_flow_is_fine() {
        let a = analysis(2, 6, 0, 1, 1);
        assert_eq!(arc_change_effect(&a), ReoptEffect::StaysValid);
    }

    #[test]
    fn cost_decrease_turning_rc_negative_on_unsaturated_arc_breaks() {
        let a = analysis(3, -1, 0, 1, 1);
        assert_eq!(arc_change_effect(&a), ReoptEffect::BreaksOptimality);
        // Saturated arc with newly negative rc stays valid.
        let a = analysis(0, -4, 1, 1, 1);
        assert_eq!(arc_change_effect(&a), ReoptEffect::StaysValid);
    }

    #[test]
    fn table3_matrix_shape() {
        use ArcChangeKind::*;
        // Green cells per the paper.
        assert_eq!(table3_cell(IncreaseCapacity, 0), Table3Cell::Green);
        assert_eq!(table3_cell(IncreaseCapacity, 1), Table3Cell::Green);
        assert_eq!(table3_cell(DecreaseCapacity, 1), Table3Cell::Green);
        assert_eq!(table3_cell(IncreaseCost, 1), Table3Cell::Green);
        assert_eq!(table3_cell(DecreaseCost, -1), Table3Cell::Green);
        // Red cells.
        assert_eq!(table3_cell(IncreaseCapacity, -1), Table3Cell::Red);
        assert_eq!(table3_cell(DecreaseCapacity, -1), Table3Cell::Red);
        // Conditional cells carry their condition.
        assert!(matches!(
            table3_cell(DecreaseCapacity, 0),
            Table3Cell::Orange(_)
        ));
        assert!(matches!(
            table3_cell(IncreaseCost, -1),
            Table3Cell::Orange(_)
        ));
        assert!(matches!(
            table3_cell(IncreaseCost, 0),
            Table3Cell::Orange(_)
        ));
        assert!(matches!(
            table3_cell(DecreaseCost, 1),
            Table3Cell::Orange(_)
        ));
    }

    #[test]
    fn table3_cells_agree_with_exact_analysis() {
        // For every cell, sample concrete instances and check that the
        // exhaustive analysis agrees with the matrix classification.
        use ArcChangeKind::*;
        for (kind, rc_sign, rc_b, rc_a, f, u, u2, expect_break) in [
            (IncreaseCapacity, -1i8, -2i64, -2i64, 3i64, 3i64, 6i64, true),
            (IncreaseCapacity, 0, 0, 0, 2, 3, 6, false),
            (IncreaseCapacity, 1, 5, 5, 0, 3, 6, false),
            (DecreaseCapacity, -1, -2, -2, 3, 3, 2, true),
            (DecreaseCapacity, 0, 0, 0, 3, 5, 2, true), // f > u'
            (DecreaseCapacity, 0, 0, 0, 1, 5, 2, false), // f <= u'
            (DecreaseCapacity, 1, 4, 4, 0, 5, 2, false),
            (IncreaseCost, -1, -3, 2, 4, 4, 4, true), // c' > 0
            (IncreaseCost, -1, -9, -4, 4, 4, 4, false),
            (IncreaseCost, 0, 0, 5, 2, 4, 4, true), // f > 0
            (IncreaseCost, 0, 0, 5, 0, 4, 4, false),
            (IncreaseCost, 1, 2, 7, 0, 4, 4, false),
            (DecreaseCost, -1, -1, -6, 4, 4, 4, false),
            (DecreaseCost, 0, 0, -5, 2, 4, 4, true), // f < u
            (DecreaseCost, 0, 0, -5, 4, 4, 4, false),
            (DecreaseCost, 1, 6, -1, 0, 4, 4, true), // c' < 0
            (DecreaseCost, 1, 6, 2, 0, 4, 4, false),
        ] {
            let a = analysis(rc_b, rc_a, f, u, u2);
            let effect = arc_change_effect(&a);
            let broke = effect != ReoptEffect::StaysValid;
            assert_eq!(
                broke, expect_break,
                "kind={kind:?} rc_sign={rc_sign} analysis={a:?} effect={effect:?}"
            );
        }
    }

    #[test]
    fn cost_perturbation_magnitudes() {
        let c = GraphChange::CostChange {
            arc: ArcId::from_index(0),
            old: 5,
            new: 12,
        };
        assert_eq!(c.cost_perturbation(), 7);
        let a = GraphChange::AddArc {
            arc: ArcId::from_index(0),
            src: NodeId::from_index(0),
            dst: NodeId::from_index(1),
            capacity: 1,
            cost: -9,
        };
        assert_eq!(a.cost_perturbation(), 9);
        let s = GraphChange::SupplyChange {
            node: NodeId::from_index(0),
            old: 0,
            new: 5,
        };
        assert_eq!(s.cost_perturbation(), 0);
    }
}
