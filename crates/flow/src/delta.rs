//! The typed graph change log handed from the graph owner to incremental
//! solvers (§6.2–6.3): compaction of raw [`GraphChange`] streams into
//! [`GraphDelta`] batches, and exact replay of a batch onto a snapshot.
//!
//! # The change-log contract
//!
//! Three parties touch the log:
//!
//! - **The graph records.** A [`FlowGraph`](crate::FlowGraph) with change
//!   tracking enabled appends one [`GraphChange`] per structural or pricing
//!   mutation (node/arc add/remove, cost, capacity, supply). Flow pushes
//!   are *not* recorded: between two solver handoffs every flow move the
//!   graph owner makes (path drains, rebalancing) preserves conservation
//!   except at nodes that also appear in the log, so the log plus the live
//!   flow state is enough to find every node whose excess may be non-zero.
//! - **The owner compacts and emits.** Whoever owns the graph (the
//!   `FlowGraphManager` in `firmament-core`) drains the raw log once per
//!   scheduling round — *after* applying events and the dirty-node cost
//!   refresh, *before* handing the graph to the solver — and compacts it
//!   with [`DeltaBatch::compact`].
//! - **The solver consumes.** An incremental solver warm-starts from the
//!   batch alone: the touched-node set, the reduced-cost violations, and
//!   the feasibility damage are all derivable from the deltas plus
//!   O(degree) local reads of the live graph — no full-graph diff against
//!   the warm state is needed.
//!
//! # Compaction rules
//!
//! Within one batch (one scheduling round):
//!
//! - an entity added and removed in the same round **cancels** (a task that
//!   arrived and completed between two solves never reaches the solver);
//!   cancellation relies on within-batch arcs never carrying flow, which
//!   holds because no solver runs inside a batch window;
//! - repeated cost/capacity/supply changes on a surviving entity **merge**
//!   end-to-end (first `old`, last `new`) and vanish when they net out,
//!   except that flow spilled by capacity clamps is accumulated — it is
//!   feasibility damage even when the capacity itself nets out;
//! - changes to an entity that is later removed are **absorbed** into the
//!   removal entry;
//! - surviving deltas are emitted in dependency order — arc removals, node
//!   removals, node additions, arc additions, then mutations — so a batch
//!   replays onto a pre-batch snapshot without ever referencing a dead or
//!   not-yet-created slot, even across id (slot) reuse.
//!
//! Replay ([`DeltaBatch::replay`]) reproduces the **structure** of the
//! live graph exactly — alive sets, ids, kinds, supplies, arc endpoints,
//! capacities, and costs. It does *not* reproduce flow (flow is carried by
//! the live graph, not the log), so replayed capacity clamps may spill
//! differently than the live sequence did.

use crate::changes::GraphChange;
use crate::graph::{FlowGraph, GraphError};
use crate::ids::{ArcId, NodeId};
use crate::node::NodeKind;
use std::collections::HashMap;

/// One compacted graph change, as consumed by incremental solvers.
///
/// Unlike the raw [`GraphChange`] stream, a batch of `GraphDelta`s contains
/// at most one structural entry per surviving entity and no entries at all
/// for entities whose round trip (add then remove) cancelled out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphDelta {
    /// A node exists now that did not exist at the last handoff.
    NodeAdded {
        /// The new node.
        node: NodeId,
        /// Its kind.
        kind: NodeKind,
        /// Its supply at the end of the batch.
        supply: i64,
    },
    /// A node from the last handoff is gone (its incident arc removals are
    /// emitted separately, earlier in the batch).
    NodeRemoved {
        /// The removed node.
        node: NodeId,
        /// The supply it had *at the last handoff* (not at removal time:
        /// in-batch supply changes are absorbed, and consumers balance
        /// end-state against pre-batch supplies).
        supply: i64,
    },
    /// A surviving node's supply changed.
    SupplyChanged {
        /// The affected node.
        node: NodeId,
        /// Supply at the last handoff.
        old: i64,
        /// Supply now.
        new: i64,
    },
    /// An arc exists now that did not exist at the last handoff.
    ArcAdded {
        /// Forward id of the new pair.
        arc: ArcId,
        /// Tail node.
        src: NodeId,
        /// Head node.
        dst: NodeId,
        /// Capacity at the end of the batch.
        capacity: i64,
        /// Cost at the end of the batch.
        cost: i64,
    },
    /// An arc from the last handoff is gone.
    ArcRemoved {
        /// Forward id of the removed pair.
        arc: ArcId,
        /// Tail node.
        src: NodeId,
        /// Head node.
        dst: NodeId,
        /// Capacity at removal.
        capacity: i64,
        /// Cost at removal.
        cost: i64,
        /// Flow it carried at removal (excess appears at both endpoints).
        flow: i64,
    },
    /// A surviving arc's cost changed.
    CostChanged {
        /// Forward id of the pair.
        arc: ArcId,
        /// Cost at the last handoff.
        old: i64,
        /// Cost now.
        new: i64,
    },
    /// A surviving arc's capacity changed (possibly netting to the same
    /// value, with intermediate flow spills).
    CapacityChanged {
        /// Forward id of the pair.
        arc: ArcId,
        /// Capacity at the last handoff.
        old: i64,
        /// Capacity now.
        new: i64,
        /// Total flow clamped off across the batch (feasibility damage).
        flow_spilled: i64,
    },
    /// Flow was moved at this surviving node outside a solver run (a
    /// recorded [`GraphChange::FlowDisturbed`] marker, e.g. the terminus
    /// of a §5.3.2 drain), so its excess must be re-derived even though no
    /// structural delta names it. No replayable effect.
    FlowTouched {
        /// The node whose conservation may have been broken.
        node: NodeId,
    },
}

/// Per-node compaction state machine.
struct NodeFold {
    /// Did the node exist before the batch? Decided by the first op seen:
    /// `AddNode` first means it did not, anything else means it did.
    existed_before: bool,
    /// Alive at the current point of the fold.
    alive: bool,
    /// Kind, known only when the node was (re-)added within the batch.
    kind: Option<NodeKind>,
    /// Current supply (valid while `alive`).
    supply: i64,
    /// Pre-batch supply (valid when `existed_before`).
    first_old_supply: i64,
    /// First removal of the pre-existing incarnation: (seq, supply).
    removed: Option<(usize, i64)>,
    /// Sequence of the last addition / last supply change, for ordering.
    added_seq: usize,
    supply_seq: usize,
}

/// Removal record of a pre-existing arc: (src, dst, capacity, cost, flow).
type RemovedArc = (NodeId, NodeId, i64, i64, i64);

/// Per-arc compaction state machine (keyed by forward id).
struct ArcFold {
    existed_before: bool,
    alive: bool,
    /// Endpoints, known only when the arc was (re-)added within the batch.
    endpoints: Option<(NodeId, NodeId)>,
    /// Current capacity/cost (valid while `alive`).
    capacity: i64,
    cost: i64,
    /// Pre-batch cost/capacity (valid when `existed_before` and the first
    /// mutating op recorded them).
    first_old_cost: Option<i64>,
    first_old_capacity: Option<i64>,
    /// First removal of the pre-existing incarnation.
    removed: Option<(usize, RemovedArc)>,
    /// Accumulated capacity-clamp spill across the batch.
    spilled: i64,
    added_seq: usize,
    changed_seq: usize,
}

/// A compacted, replayable batch of graph changes covering one handoff
/// window (typically one scheduling round).
///
/// # Examples
///
/// ```
/// use firmament_flow::delta::{DeltaBatch, GraphDelta};
/// use firmament_flow::{FlowGraph, NodeKind};
///
/// let mut g = FlowGraph::new();
/// g.set_change_tracking(true);
/// let t = g.add_node(NodeKind::Task { task: 0 }, 1);
/// let s = g.add_node(NodeKind::Sink, -1);
/// let a = g.add_arc(t, s, 1, 5).unwrap();
/// g.set_arc_cost(a, 7).unwrap();
/// // A node that comes and goes within the round cancels entirely.
/// let ghost = g.add_node(NodeKind::Other { tag: 9 }, 0);
/// g.remove_node(ghost).unwrap();
///
/// let batch = DeltaBatch::compact(g.take_changes());
/// assert_eq!(batch.raw_len(), 6);
/// // Two node adds + one arc add (with the final cost folded in).
/// assert_eq!(batch.len(), 3);
/// assert!(batch
///     .deltas()
///     .iter()
///     .any(|d| matches!(d, GraphDelta::ArcAdded { cost: 7, .. })));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    deltas: Vec<GraphDelta>,
    raw_len: usize,
}

impl DeltaBatch {
    /// An empty batch (what a quiescent round hands the solver).
    pub fn empty() -> Self {
        DeltaBatch::default()
    }

    /// Compacts a raw change stream into a typed delta batch.
    pub fn compact(changes: Vec<GraphChange>) -> Self {
        let raw_len = changes.len();
        let mut nodes: HashMap<u32, NodeFold> = HashMap::new();
        let mut arcs: HashMap<u32, ArcFold> = HashMap::new();
        // Nodes with flow disturbances, by first marker sequence.
        let mut disturbed: Vec<(usize, u32)> = Vec::new();

        for (seq, change) in changes.into_iter().enumerate() {
            match change {
                GraphChange::FlowDisturbed { node } => {
                    disturbed.push((seq, node.index() as u32));
                    continue;
                }
                GraphChange::AddNode { node, kind, supply } => {
                    let f = nodes
                        .entry(node.index() as u32)
                        .or_insert_with(|| NodeFold {
                            existed_before: false,
                            alive: false,
                            kind: None,
                            supply: 0,
                            first_old_supply: 0,
                            removed: None,
                            added_seq: 0,
                            supply_seq: 0,
                        });
                    f.alive = true;
                    f.kind = Some(kind);
                    f.supply = supply;
                    f.added_seq = seq;
                }
                GraphChange::RemoveNode { node, supply } => {
                    let f = nodes
                        .entry(node.index() as u32)
                        .or_insert_with(|| NodeFold {
                            existed_before: true,
                            alive: true,
                            kind: None,
                            supply,
                            first_old_supply: supply,
                            removed: None,
                            added_seq: 0,
                            supply_seq: 0,
                        });
                    if f.kind.is_none() && f.existed_before && f.removed.is_none() {
                        // Removing the pre-existing incarnation.
                        f.removed = Some((seq, supply));
                    }
                    // Otherwise: a within-batch incarnation cancels.
                    f.alive = false;
                    f.kind = None;
                }
                GraphChange::SupplyChange { node, old, new } => {
                    let f = nodes
                        .entry(node.index() as u32)
                        .or_insert_with(|| NodeFold {
                            existed_before: true,
                            alive: true,
                            kind: None,
                            supply: old,
                            first_old_supply: old,
                            removed: None,
                            added_seq: 0,
                            supply_seq: 0,
                        });
                    f.supply = new;
                    f.supply_seq = seq;
                }
                GraphChange::AddArc {
                    arc,
                    src,
                    dst,
                    capacity,
                    cost,
                } => {
                    let f = arcs.entry(arc.index() as u32).or_insert_with(|| ArcFold {
                        existed_before: false,
                        alive: false,
                        endpoints: None,
                        capacity: 0,
                        cost: 0,
                        first_old_cost: None,
                        first_old_capacity: None,
                        removed: None,
                        spilled: 0,
                        added_seq: 0,
                        changed_seq: 0,
                    });
                    f.alive = true;
                    f.endpoints = Some((src, dst));
                    f.capacity = capacity;
                    f.cost = cost;
                    f.added_seq = seq;
                }
                GraphChange::RemoveArc {
                    arc,
                    src,
                    dst,
                    capacity,
                    cost,
                    flow,
                } => {
                    let f = arcs.entry(arc.index() as u32).or_insert_with(|| ArcFold {
                        existed_before: true,
                        alive: true,
                        endpoints: None,
                        capacity,
                        cost,
                        first_old_cost: Some(cost),
                        first_old_capacity: Some(capacity),
                        removed: None,
                        spilled: 0,
                        added_seq: 0,
                        changed_seq: 0,
                    });
                    if f.endpoints.is_none() && f.existed_before && f.removed.is_none() {
                        f.removed = Some((seq, (src, dst, capacity, cost, flow)));
                    } else {
                        // Within-batch incarnation cancels; the contract
                        // guarantees it never carried flow (no solver runs
                        // inside a batch window).
                        debug_assert_eq!(
                            flow, 0,
                            "within-batch arc {arc} removed while carrying flow"
                        );
                    }
                    f.alive = false;
                    f.endpoints = None;
                }
                GraphChange::CostChange { arc, old, new } => {
                    let f = arcs.entry(arc.index() as u32).or_insert_with(|| ArcFold {
                        existed_before: true,
                        alive: true,
                        endpoints: None,
                        capacity: 0,
                        cost: old,
                        first_old_cost: None,
                        first_old_capacity: None,
                        removed: None,
                        spilled: 0,
                        added_seq: 0,
                        changed_seq: 0,
                    });
                    if f.endpoints.is_none() && f.first_old_cost.is_none() {
                        f.first_old_cost = Some(old);
                    }
                    f.cost = new;
                    f.changed_seq = seq;
                }
                GraphChange::CapacityChange {
                    arc,
                    old,
                    new,
                    flow_spilled,
                } => {
                    let f = arcs.entry(arc.index() as u32).or_insert_with(|| ArcFold {
                        existed_before: true,
                        alive: true,
                        endpoints: None,
                        capacity: old,
                        cost: 0,
                        first_old_cost: None,
                        first_old_capacity: None,
                        removed: None,
                        spilled: 0,
                        added_seq: 0,
                        changed_seq: 0,
                    });
                    if f.endpoints.is_none() && f.first_old_capacity.is_none() {
                        f.first_old_capacity = Some(old);
                    }
                    f.capacity = new;
                    f.spilled += flow_spilled;
                    f.changed_seq = seq;
                }
            }
        }

        // Emission in dependency order (see module docs); within each
        // category, by the sequence number of the defining operation, so
        // replay follows the live graph's slot-allocation history.
        let mut arc_removed: Vec<(usize, GraphDelta)> = Vec::new();
        let mut node_removed: Vec<(usize, GraphDelta)> = Vec::new();
        let mut node_added: Vec<(usize, GraphDelta)> = Vec::new();
        let mut arc_added: Vec<(usize, GraphDelta)> = Vec::new();
        let mut mutated: Vec<(usize, GraphDelta)> = Vec::new();

        for (raw, f) in &arcs {
            let arc = ArcId::from_index(*raw as usize);
            if let Some((seq, (src, dst, capacity, cost, flow))) = f.removed {
                arc_removed.push((
                    seq,
                    GraphDelta::ArcRemoved {
                        arc,
                        src,
                        dst,
                        capacity,
                        cost,
                        flow,
                    },
                ));
                // Feasibility damage must survive removal: a capacity
                // clamp earlier in the batch spilled flow (excess at both
                // endpoints), but the removal records the *post-clamp*
                // flow — possibly 0 — so without these markers the
                // solver would never re-derive the endpoints' excesses.
                if f.spilled > 0 {
                    mutated.push((seq, GraphDelta::FlowTouched { node: src }));
                    mutated.push((seq, GraphDelta::FlowTouched { node: dst }));
                }
            }
            if !f.alive {
                continue;
            }
            match f.endpoints {
                // (Re-)added within the batch.
                Some((src, dst)) => arc_added.push((
                    f.added_seq,
                    GraphDelta::ArcAdded {
                        arc,
                        src,
                        dst,
                        capacity: f.capacity,
                        cost: f.cost,
                    },
                )),
                // Survived in place: merged mutations only.
                None => {
                    if let Some(old) = f.first_old_cost {
                        if old != f.cost {
                            mutated.push((
                                f.changed_seq,
                                GraphDelta::CostChanged {
                                    arc,
                                    old,
                                    new: f.cost,
                                },
                            ));
                        }
                    }
                    if let Some(old) = f.first_old_capacity {
                        if old != f.capacity || f.spilled > 0 {
                            mutated.push((
                                f.changed_seq,
                                GraphDelta::CapacityChanged {
                                    arc,
                                    old,
                                    new: f.capacity,
                                    flow_spilled: f.spilled,
                                },
                            ));
                        }
                    }
                }
            }
        }
        for (raw, f) in &nodes {
            let node = NodeId::from_index(*raw as usize);
            if let Some((seq, _removal_supply)) = f.removed {
                // Report the pre-batch supply, not the removal-time one:
                // in-batch supply changes were absorbed into this entry,
                // and the solver's balance check sums end-state minus
                // pre-batch supplies.
                node_removed.push((
                    seq,
                    GraphDelta::NodeRemoved {
                        node,
                        supply: f.first_old_supply,
                    },
                ));
            }
            if !f.alive {
                continue;
            }
            match f.kind {
                // (Re-)added within the batch.
                Some(kind) => node_added.push((
                    f.added_seq,
                    GraphDelta::NodeAdded {
                        node,
                        kind,
                        supply: f.supply,
                    },
                )),
                // Survived in place: merged supply change only.
                None => {
                    if f.first_old_supply != f.supply {
                        mutated.push((
                            f.supply_seq,
                            GraphDelta::SupplyChanged {
                                node,
                                old: f.first_old_supply,
                                new: f.supply,
                            },
                        ));
                    }
                }
            }
        }

        // Flow-disturbance markers survive for nodes still alive at the
        // end of the batch and not already covered by their own
        // added/removed entry.
        disturbed.sort_unstable_by_key(|&(seq, n)| (n, seq));
        disturbed.dedup_by_key(|&mut (_, n)| n);
        for (seq, raw) in disturbed {
            let dead_or_readded = nodes
                .get(&raw)
                .map(|f| !f.alive || f.kind.is_some())
                .unwrap_or(false);
            if !dead_or_readded {
                mutated.push((
                    seq,
                    GraphDelta::FlowTouched {
                        node: NodeId::from_index(raw as usize),
                    },
                ));
            }
        }

        for v in [
            &mut arc_removed,
            &mut node_removed,
            &mut node_added,
            &mut arc_added,
            &mut mutated,
        ] {
            v.sort_by_key(|(seq, _)| *seq);
        }
        let mut deltas = Vec::with_capacity(
            arc_removed.len()
                + node_removed.len()
                + node_added.len()
                + arc_added.len()
                + mutated.len(),
        );
        for v in [arc_removed, node_removed, node_added, arc_added, mutated] {
            deltas.extend(v.into_iter().map(|(_, d)| d));
        }
        DeltaBatch { deltas, raw_len }
    }

    /// The compacted deltas, in replay (dependency) order.
    pub fn deltas(&self) -> &[GraphDelta] {
        &self.deltas
    }

    /// Number of compacted deltas.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// `true` if the batch carries no changes (a quiescent round).
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Number of raw change-log entries this batch was compacted from.
    pub fn raw_len(&self) -> usize {
        self.raw_len
    }

    /// Number of pure re-pricings ([`GraphDelta::CostChanged`]) in the
    /// batch — the deltas a convex-bundle segment re-price produces.
    /// Cheap for warm starts (no flow moved, no structure changed), so
    /// telemetry reports them separately from structural churn.
    pub fn cost_changes(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| matches!(d, GraphDelta::CostChanged { .. }))
            .count()
    }

    /// `true` when the whole batch is cost drift: every delta is a
    /// [`GraphDelta::CostChanged`] (vacuously true for an empty, fully
    /// quiescent batch). No structure moved, no capacity changed, no flow
    /// was disturbed — the shape a pure clock-advance round produces when
    /// convex-ladder costs drift under load.
    ///
    /// A re-price-only batch *may* still expose a reduced-cost violation
    /// (a cost fall, or a rise on a flow-carrying arc); whether the round
    /// is provably quiescent additionally needs the flow state — see
    /// `DualSolver`'s re-price-only race short-circuit.
    pub fn is_reprice_only(&self) -> bool {
        self.deltas
            .iter()
            .all(|d| matches!(d, GraphDelta::CostChanged { .. }))
    }

    /// Replays the batch onto `graph`, which must be a snapshot of the
    /// state the batch was recorded against. Reproduces structure exactly
    /// (ids included); does not touch flow except where capacity clamps
    /// force it (see module docs).
    pub fn replay(&self, graph: &mut FlowGraph) -> Result<(), GraphError> {
        for d in &self.deltas {
            match *d {
                GraphDelta::ArcRemoved { arc, .. } => graph.remove_arc(arc)?,
                GraphDelta::NodeRemoved { node, .. } => {
                    graph.remove_node(node)?;
                }
                GraphDelta::NodeAdded { node, kind, supply } => {
                    graph.restore_node(node, kind, supply)?
                }
                GraphDelta::ArcAdded {
                    arc,
                    src,
                    dst,
                    capacity,
                    cost,
                } => graph.restore_arc(arc, src, dst, capacity, cost)?,
                GraphDelta::SupplyChanged { node, new, .. } => graph.set_supply(node, new)?,
                GraphDelta::CostChanged { arc, new, .. } => graph.set_arc_cost(arc, new)?,
                GraphDelta::CapacityChanged { arc, new, .. } => graph.set_arc_capacity(arc, new)?,
                GraphDelta::FlowTouched { .. } => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracked() -> FlowGraph {
        let mut g = FlowGraph::new();
        g.set_change_tracking(true);
        g
    }

    /// Asserts that `replayed` and `live` are structurally identical slot
    /// by slot (ids, kinds, supplies, arc endpoints, capacities, costs).
    /// Bounds may differ only by trailing dead slots: entities that
    /// cancelled within a batch still grew the live arena, but never reach
    /// the replayed snapshot.
    fn assert_same_structure(replayed: &FlowGraph, live: &FlowGraph) {
        for i in 0..live.node_bound().max(replayed.node_bound()) {
            let n = NodeId::from_index(i);
            assert_eq!(replayed.node_alive(n), live.node_alive(n), "alive {n}");
            if live.node_alive(n) {
                assert_eq!(replayed.kind(n), live.kind(n), "kind {n}");
                assert_eq!(replayed.supply(n), live.supply(n), "supply {n}");
            }
        }
        for i in (0..live.arc_bound().max(replayed.arc_bound())).step_by(2) {
            let a = ArcId::from_index(i);
            assert_eq!(replayed.arc_alive(a), live.arc_alive(a), "alive {a}");
            if live.arc_alive(a) {
                assert_eq!(replayed.src(a), live.src(a), "src {a}");
                assert_eq!(replayed.dst(a), live.dst(a), "dst {a}");
                assert_eq!(replayed.capacity(a), live.capacity(a), "capacity {a}");
                assert_eq!(replayed.cost(a), live.cost(a), "cost {a}");
            }
        }
    }

    #[test]
    fn add_then_remove_cancels() {
        let mut g = tracked();
        let t = g.add_node(NodeKind::Task { task: 1 }, 1);
        let s = g.add_node(NodeKind::Sink, -1);
        g.take_changes();
        let snapshot = g.clone();

        let ghost = g.add_node(NodeKind::Other { tag: 5 }, 0);
        let a = g.add_arc(t, ghost, 1, 3).unwrap();
        g.set_arc_cost(a, 9).unwrap();
        g.remove_node(ghost).unwrap();
        let batch = DeltaBatch::compact(g.take_changes());
        assert!(batch.is_empty(), "round-trip must cancel: {:?}", batch);

        let mut replayed = snapshot;
        batch.replay(&mut replayed).unwrap();
        assert_same_structure(&replayed, &g);
        let _ = s;
    }

    #[test]
    fn cost_and_capacity_changes_merge() {
        let mut g = tracked();
        let t = g.add_node(NodeKind::Task { task: 1 }, 1);
        let s = g.add_node(NodeKind::Sink, -1);
        let a = g.add_arc(t, s, 5, 3).unwrap();
        g.take_changes();

        g.set_arc_cost(a, 10).unwrap();
        g.set_arc_cost(a, 4).unwrap();
        g.set_arc_capacity(a, 2).unwrap();
        g.set_arc_capacity(a, 7).unwrap();
        let batch = DeltaBatch::compact(g.take_changes());
        assert_eq!(batch.len(), 2);
        assert!(batch.deltas().contains(&GraphDelta::CostChanged {
            arc: a,
            old: 3,
            new: 4
        }));
        assert!(batch.deltas().contains(&GraphDelta::CapacityChanged {
            arc: a,
            old: 5,
            new: 7,
            flow_spilled: 0
        }));
    }

    #[test]
    fn netted_out_changes_vanish_but_spill_survives() {
        let mut g = tracked();
        let t = g.add_node(NodeKind::Task { task: 1 }, 1);
        let s = g.add_node(NodeKind::Sink, -1);
        let a = g.add_arc(t, s, 5, 3).unwrap();
        g.push_flow(a, 4);
        g.take_changes();

        g.set_arc_cost(a, 10).unwrap();
        g.set_arc_cost(a, 3).unwrap();
        let batch = DeltaBatch::compact(g.take_changes());
        assert!(batch.is_empty(), "netted cost change must vanish");

        // Capacity 5 → 1 (spills 3 units) → 5 again: the capacity netted
        // out but the spilled flow is real damage and must be reported.
        g.set_arc_capacity(a, 1).unwrap();
        g.set_arc_capacity(a, 5).unwrap();
        let batch = DeltaBatch::compact(g.take_changes());
        assert_eq!(
            batch.deltas(),
            &[GraphDelta::CapacityChanged {
                arc: a,
                old: 5,
                new: 5,
                flow_spilled: 3
            }]
        );
    }

    #[test]
    fn removal_absorbs_prior_changes() {
        let mut g = tracked();
        let t = g.add_node(NodeKind::Task { task: 1 }, 1);
        let s = g.add_node(NodeKind::Sink, -1);
        let a = g.add_arc(t, s, 5, 3).unwrap();
        g.take_changes();
        let snapshot = g.clone();

        g.set_arc_cost(a, 10).unwrap();
        g.remove_arc(a).unwrap();
        let batch = DeltaBatch::compact(g.take_changes());
        assert_eq!(batch.len(), 1);
        assert!(matches!(
            batch.deltas()[0],
            GraphDelta::ArcRemoved { arc, cost: 10, .. } if arc == a
        ));
        let mut replayed = snapshot;
        batch.replay(&mut replayed).unwrap();
        assert_same_structure(&replayed, &g);
    }

    #[test]
    fn slot_reuse_across_removal_replays_exactly() {
        let mut g = tracked();
        let t = g.add_node(NodeKind::Task { task: 1 }, 1);
        let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        let s = g.add_node(NodeKind::Sink, -1);
        let tm = g.add_arc(t, m, 1, 2).unwrap();
        g.add_arc(m, s, 1, 0).unwrap();
        g.take_changes();
        let snapshot = g.clone();

        // Remove the machine (freeing its node slot and both arc pairs),
        // then add a different machine that reuses the slot, plus an arc
        // reusing a freed pair.
        g.remove_node(m).unwrap();
        let m2 = g.add_node(NodeKind::Machine { machine: 9 }, 0);
        assert_eq!(m2, m, "slot reuse expected");
        let tm2 = g.add_arc(t, m2, 3, 8).unwrap();
        assert!(tm2 == tm || g.arc_alive(tm2));
        let batch = DeltaBatch::compact(g.take_changes());

        let mut replayed = snapshot;
        batch.replay(&mut replayed).unwrap();
        assert_same_structure(&replayed, &g);
    }

    #[test]
    fn reincarnated_node_emits_remove_then_add() {
        let mut g = tracked();
        let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        g.take_changes();

        g.remove_node(m).unwrap();
        let m2 = g.add_node(NodeKind::Machine { machine: 7 }, 0);
        assert_eq!(m2, m);
        let batch = DeltaBatch::compact(g.take_changes());
        assert_eq!(batch.len(), 2);
        assert!(matches!(batch.deltas()[0], GraphDelta::NodeRemoved { .. }));
        assert!(matches!(
            batch.deltas()[1],
            GraphDelta::NodeAdded {
                kind: NodeKind::Machine { machine: 7 },
                ..
            }
        ));
    }

    /// A capacity clamp that spills flow followed by removal of the same
    /// arc must still surface the endpoints (the spill is feasibility
    /// damage; the removal records the post-clamp flow of 0).
    #[test]
    fn spill_then_remove_still_marks_endpoints() {
        let mut g = tracked();
        let t = g.add_node(NodeKind::Task { task: 1 }, 1);
        let s = g.add_node(NodeKind::Sink, -1);
        let a = g.add_arc(t, s, 5, 3).unwrap();
        g.push_flow(a, 4);
        g.take_changes();

        g.set_arc_capacity(a, 0).unwrap(); // spills all 4 units
        g.remove_arc(a).unwrap(); // removal-time flow is 0
        let batch = DeltaBatch::compact(g.take_changes());
        assert!(matches!(
            batch.deltas()[0],
            GraphDelta::ArcRemoved { flow: 0, .. }
        ));
        let touched: Vec<NodeId> = batch
            .deltas()
            .iter()
            .filter_map(|d| match d {
                GraphDelta::FlowTouched { node } => Some(*node),
                _ => None,
            })
            .collect();
        assert!(touched.contains(&t), "spilled tail must be marked");
        assert!(touched.contains(&s), "spilled head must be marked");
    }

    /// A node whose supply changes and is then removed in the same batch
    /// must report its *pre-batch* supply, so end-state-minus-pre-batch
    /// balance sums stay exact.
    #[test]
    fn removed_node_reports_pre_batch_supply() {
        let mut g = tracked();
        let x = g.add_node(NodeKind::Task { task: 1 }, 3);
        let s = g.add_node(NodeKind::Sink, -3);
        g.take_changes();

        g.set_supply(x, 7).unwrap();
        g.set_supply(s, -7).unwrap();
        g.remove_node(x).unwrap();
        g.set_supply(s, 0).unwrap();
        let batch = DeltaBatch::compact(g.take_changes());
        // Net supply delta across the batch: (removed x: -3) + (sink
        // -3 → 0: +3) = 0 — balanced, as the graph genuinely is.
        let mut delta = 0i64;
        for d in batch.deltas() {
            match *d {
                GraphDelta::NodeAdded { supply, .. } => delta += supply,
                GraphDelta::NodeRemoved { supply, .. } => delta -= supply,
                GraphDelta::SupplyChanged { old, new, .. } => delta += new - old,
                _ => {}
            }
        }
        assert_eq!(delta, 0, "batch must net to zero: {:?}", batch.deltas());
    }

    #[test]
    fn supply_changes_merge_end_to_end() {
        let mut g = tracked();
        let s = g.add_node(NodeKind::Sink, -3);
        g.take_changes();
        g.set_supply(s, -4).unwrap();
        g.set_supply(s, -6).unwrap();
        let batch = DeltaBatch::compact(g.take_changes());
        assert_eq!(
            batch.deltas(),
            &[GraphDelta::SupplyChanged {
                node: s,
                old: -3,
                new: -6
            }]
        );
        g.set_supply(s, -2).unwrap();
        g.set_supply(s, -6).unwrap();
        assert!(DeltaBatch::compact(g.take_changes()).is_empty());
    }

    #[test]
    fn new_node_supply_folds_into_added() {
        let mut g = tracked();
        g.add_node(NodeKind::Sink, 0);
        g.take_changes();
        let t = g.add_node(NodeKind::Task { task: 3 }, 1);
        g.set_supply(t, 2).unwrap();
        let batch = DeltaBatch::compact(g.take_changes());
        assert_eq!(
            batch.deltas(),
            &[GraphDelta::NodeAdded {
                node: t,
                kind: NodeKind::Task { task: 3 },
                supply: 2
            }]
        );
    }

    #[test]
    fn randomized_mutation_scripts_replay_exactly() {
        use crate::testgen::XorShift64;
        for seed in 1..20u64 {
            let mut rng = XorShift64::new(seed);
            let mut g = tracked();
            let sink = g.add_node(NodeKind::Sink, 0);
            let mut machines = Vec::new();
            for i in 0..4 {
                let m = g.add_node(NodeKind::Machine { machine: i }, 0);
                g.add_arc(m, sink, 2, 0).unwrap();
                machines.push(m);
            }
            g.take_changes();
            for round in 0..10 {
                let snapshot = g.clone();
                for _ in 0..(1 + rng.below(6)) {
                    match rng.below(6) {
                        0 => {
                            let t = g.add_node(
                                NodeKind::Task {
                                    task: rng.below(1 << 30),
                                },
                                1,
                            );
                            let m = machines[rng.below(machines.len() as u64) as usize];
                            if g.node_alive(m) {
                                g.add_arc(t, m, 1, rng.below(100) as i64).unwrap();
                            }
                        }
                        1 => {
                            let alive: Vec<NodeId> = g
                                .node_ids()
                                .filter(|&n| matches!(g.kind(n), NodeKind::Task { .. }))
                                .collect();
                            if let Some(&t) =
                                alive.get(rng.below((alive.len().max(1)) as u64) as usize)
                            {
                                g.remove_node(t).unwrap();
                            }
                        }
                        2 | 3 => {
                            let arcs: Vec<ArcId> = g.arc_ids().collect();
                            if let Some(&a) = arcs.get(rng.below(arcs.len().max(1) as u64) as usize)
                            {
                                g.set_arc_cost(a, rng.below(200) as i64 - 100).unwrap();
                            }
                        }
                        4 => {
                            let arcs: Vec<ArcId> = g.arc_ids().collect();
                            if let Some(&a) = arcs.get(rng.below(arcs.len().max(1) as u64) as usize)
                            {
                                g.set_arc_capacity(a, rng.below(5) as i64).unwrap();
                            }
                        }
                        _ => {
                            g.set_supply(sink, -(rng.below(10) as i64)).unwrap();
                        }
                    }
                }
                let batch = DeltaBatch::compact(g.take_changes());
                let mut replayed = snapshot;
                batch
                    .replay(&mut replayed)
                    .unwrap_or_else(|e| panic!("seed {seed} round {round}: {e}"));
                assert_same_structure(&replayed, &g);
            }
        }
    }
}
