//! DIMACS min-cost-flow file format support.
//!
//! The DIMACS format is the lingua franca of MCMF solver comparisons
//! (Király & Kovács \[24\]; Lobel \[26\]) and what Quincy's `cs2` solver
//! consumes. We use it for differential-test fixtures and interop.
//!
//! Grammar (lines):
//! - `c <comment>`
//! - `p min <nodes> <arcs>`
//! - `n <id> <supply>` (1-based node ids; omitted nodes have supply 0)
//! - `a <src> <dst> <low> <cap> <cost>` (lower bounds must be 0)

use crate::graph::FlowGraph;
use crate::ids::NodeId;
use crate::node::NodeKind;
use std::fmt::Write as _;

/// Errors raised while parsing a DIMACS instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsError {
    /// The problem line is missing or malformed.
    MissingProblemLine,
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        what: String,
    },
    /// A node id was outside `1..=n`.
    NodeOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending id.
        id: i64,
    },
    /// A non-zero lower bound was given (unsupported).
    NonZeroLowerBound {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::MissingProblemLine => write!(f, "missing `p min N M` problem line"),
            DimacsError::Malformed { line, what } => write!(f, "line {line}: {what}"),
            DimacsError::NodeOutOfRange { line, id } => {
                write!(f, "line {line}: node id {id} out of range")
            }
            DimacsError::NonZeroLowerBound { line } => {
                write!(f, "line {line}: non-zero lower bounds are unsupported")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

/// Parses a DIMACS `min` instance into a [`FlowGraph`].
///
/// All nodes are created with [`NodeKind::Other`]; ids are assigned densely
/// in DIMACS order, so DIMACS node `k` becomes raw index `k − 1`.
///
/// # Examples
///
/// ```
/// let text = "c tiny\np min 2 1\nn 1 1\nn 2 -1\na 1 2 0 1 5\n";
/// let g = firmament_flow::dimacs::parse(text).unwrap();
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.arc_count(), 1);
/// ```
pub fn parse(text: &str) -> Result<FlowGraph, DimacsError> {
    let mut graph: Option<FlowGraph> = None;
    let mut n_nodes = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('c') {
            continue;
        }
        let mut it = l.split_whitespace();
        match it.next() {
            Some("p") => {
                let kind = it.next().ok_or(DimacsError::Malformed {
                    line,
                    what: "missing problem kind".into(),
                })?;
                if kind != "min" {
                    return Err(DimacsError::Malformed {
                        line,
                        what: format!("unsupported problem kind `{kind}`"),
                    });
                }
                let n: usize = parse_field(it.next(), line, "node count")?;
                let m: usize = parse_field(it.next(), line, "arc count")?;
                let mut g = FlowGraph::with_capacity(n, m);
                for i in 0..n {
                    g.add_node(NodeKind::Other { tag: i as u64 }, 0);
                }
                n_nodes = n;
                graph = Some(g);
            }
            Some("n") => {
                let g = graph.as_mut().ok_or(DimacsError::MissingProblemLine)?;
                let id: i64 = parse_field(it.next(), line, "node id")?;
                let supply: i64 = parse_field(it.next(), line, "supply")?;
                if id < 1 || id as usize > n_nodes {
                    return Err(DimacsError::NodeOutOfRange { line, id });
                }
                let node = NodeId::from_index(id as usize - 1);
                g.set_supply(node, supply).expect("node exists");
            }
            Some("a") => {
                let g = graph.as_mut().ok_or(DimacsError::MissingProblemLine)?;
                let src: i64 = parse_field(it.next(), line, "src")?;
                let dst: i64 = parse_field(it.next(), line, "dst")?;
                let low: i64 = parse_field(it.next(), line, "lower bound")?;
                let cap: i64 = parse_field(it.next(), line, "capacity")?;
                let cost: i64 = parse_field(it.next(), line, "cost")?;
                if low != 0 {
                    return Err(DimacsError::NonZeroLowerBound { line });
                }
                for (name, id) in [("src", src), ("dst", dst)] {
                    if id < 1 || id as usize > n_nodes {
                        let _ = name;
                        return Err(DimacsError::NodeOutOfRange { line, id });
                    }
                }
                let s = NodeId::from_index(src as usize - 1);
                let d = NodeId::from_index(dst as usize - 1);
                g.add_arc(s, d, cap, cost)
                    .map_err(|e| DimacsError::Malformed {
                        line,
                        what: e.to_string(),
                    })?;
            }
            Some(other) => {
                return Err(DimacsError::Malformed {
                    line,
                    what: format!("unknown record `{other}`"),
                })
            }
            None => {}
        }
    }
    graph.ok_or(DimacsError::MissingProblemLine)
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, DimacsError> {
    field
        .ok_or_else(|| DimacsError::Malformed {
            line,
            what: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| DimacsError::Malformed {
            line,
            what: format!("unparseable {what}"),
        })
}

/// Serializes a graph to DIMACS `min` format.
///
/// Dead slots are compacted away: nodes are renumbered densely in raw-index
/// order, so round-tripping a graph with holes yields an isomorphic instance
/// rather than an identical one.
pub fn serialize(graph: &FlowGraph) -> String {
    let mut remap = vec![0usize; graph.node_bound()];
    let mut next = 0usize;
    for n in graph.node_ids() {
        next += 1;
        remap[n.index()] = next; // 1-based DIMACS ids
    }
    let mut out = String::new();
    let _ = writeln!(out, "c generated by firmament-flow");
    let _ = writeln!(out, "p min {} {}", graph.node_count(), graph.arc_count());
    for n in graph.node_ids() {
        let s = graph.supply(n);
        if s != 0 {
            let _ = writeln!(out, "n {} {}", remap[n.index()], s);
        }
    }
    for a in graph.arc_ids() {
        let _ = writeln!(
            out,
            "a {} {} 0 {} {}",
            remap[graph.src(a).index()],
            remap[graph.dst(a).index()],
            graph.capacity(a),
            graph.cost(a)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "\
c example
p min 4 4
n 1 2
n 4 -2
a 1 2 0 2 1
a 1 3 0 1 3
a 2 4 0 2 1
a 3 4 0 1 1
";

    #[test]
    fn parse_tiny() {
        let g = parse(TINY).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.total_supply(), 2);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = parse(TINY).unwrap();
        let text = serialize(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.arc_count(), g.arc_count());
        assert_eq!(g2.total_supply(), g.total_supply());
        assert_eq!(g2.max_cost(), g.max_cost());
        assert_eq!(g2.max_capacity(), g.max_capacity());
    }

    #[test]
    fn rejects_missing_problem_line() {
        assert!(matches!(
            parse("n 1 2\n"),
            Err(DimacsError::MissingProblemLine)
        ));
    }

    #[test]
    fn rejects_bad_node_id() {
        let bad = "p min 2 1\nn 3 1\n";
        assert!(matches!(
            parse(bad),
            Err(DimacsError::NodeOutOfRange { id: 3, .. })
        ));
    }

    #[test]
    fn rejects_lower_bounds() {
        let bad = "p min 2 1\na 1 2 1 2 3\n";
        assert!(matches!(
            parse(bad),
            Err(DimacsError::NonZeroLowerBound { .. })
        ));
    }

    #[test]
    fn rejects_max_flow_instances() {
        assert!(matches!(
            parse("p max 2 1\n"),
            Err(DimacsError::Malformed { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "c hi\n\np min 1 0\nc bye\n";
        let g = parse(text).unwrap();
        assert_eq!(g.node_count(), 1);
    }
}
