//! The mutable flow-network representation shared by all MCMF solvers.
//!
//! Arcs are stored in forward/reverse *residual* pairs in a flat arena, which
//! is the layout min-cost max-flow algorithms want: pushing `δ` units along a
//! residual arc `a` decrements `rescap(a)` and increments `rescap(a.sister())`
//! without any branching on direction. Node adjacency lists hold residual
//! arcs of both directions, so a single slice walk visits every residual arc
//! out of a node.

use crate::changes::GraphChange;
use crate::ids::{ArcId, NodeId};
use crate::node::NodeKind;

/// Internal node storage.
#[derive(Debug, Clone)]
struct NodeSlot {
    alive: bool,
    kind: NodeKind,
    supply: i64,
}

/// Internal residual-arc storage.
///
/// Every pair uses two consecutive slots; slot `2k` is the forward arc and
/// `2k + 1` the reverse. `capacity` is only meaningful on the forward slot.
#[derive(Debug, Clone)]
struct ArcSlot {
    alive: bool,
    src: NodeId,
    dst: NodeId,
    /// Cost of sending one unit along this residual direction (reverse slots
    /// hold the negated forward cost).
    cost: i64,
    /// Remaining capacity in this residual direction.
    rescap: i64,
    /// Original capacity of the pair (forward slot only; 0 on reverse).
    capacity: i64,
}

/// A directed flow network with costs, capacities, and node supplies.
///
/// This is the `G = (N, A)` of §4: each arc `(i, j)` has a cost `c_ij` and
/// capacity `u_ij`; each node has a supply `b(i)` (positive for sources,
/// negative for sinks). Flow state lives *in* the graph (as residual
/// capacities), so solvers mutate the graph they solve and placement
/// extraction reads the flow back out.
///
/// # Examples
///
/// ```
/// use firmament_flow::{FlowGraph, NodeKind};
///
/// let mut g = FlowGraph::new();
/// let t = g.add_node(NodeKind::Task { task: 0 }, 1);
/// let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
/// let s = g.add_node(NodeKind::Sink, -1);
/// let tm = g.add_arc(t, m, 1, 5).unwrap();
/// let ms = g.add_arc(m, s, 1, 0).unwrap();
/// g.push_flow(tm, 1);
/// g.push_flow(ms, 1);
/// assert_eq!(g.flow(tm), 1);
/// assert_eq!(g.objective(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowGraph {
    nodes: Vec<NodeSlot>,
    arcs: Vec<ArcSlot>,
    adj: Vec<Vec<ArcId>>,
    free_nodes: Vec<NodeId>,
    /// Base (even) indices of freed arc pairs.
    free_arc_pairs: Vec<u32>,
    alive_nodes: usize,
    alive_arc_pairs: usize,
    track_changes: bool,
    changes: Vec<GraphChange>,
}

/// Errors returned by graph mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The referenced node is not alive.
    DeadNode(NodeId),
    /// The referenced arc is not alive.
    DeadArc(ArcId),
    /// A self-loop arc was requested, which scheduling graphs never contain.
    SelfLoop(NodeId),
    /// A negative capacity was requested.
    NegativeCapacity(i64),
    /// A restore targeted a node slot that is currently alive.
    OccupiedNode(NodeId),
    /// A restore targeted an arc slot that is currently alive.
    OccupiedArc(ArcId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::DeadNode(n) => write!(f, "node {n} is not alive"),
            GraphError::DeadArc(a) => write!(f, "arc {a} is not alive"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on {n} is not allowed"),
            GraphError::NegativeCapacity(c) => write!(f, "negative capacity {c}"),
            GraphError::OccupiedNode(n) => write!(f, "node slot {n} is occupied"),
            GraphError::OccupiedArc(a) => write!(f, "arc slot {a} is occupied"),
        }
    }
}

impl std::error::Error for GraphError {}

impl FlowGraph {
    /// Creates an empty flow network.
    pub fn new() -> Self {
        FlowGraph::default()
    }

    /// Creates an empty flow network with room for `nodes` nodes and `arcs`
    /// arc pairs.
    pub fn with_capacity(nodes: usize, arcs: usize) -> Self {
        FlowGraph {
            nodes: Vec::with_capacity(nodes),
            arcs: Vec::with_capacity(arcs * 2),
            adj: Vec::with_capacity(nodes),
            ..FlowGraph::default()
        }
    }

    /// Enables or disables the change log consumed by incremental solvers.
    pub fn set_change_tracking(&mut self, on: bool) {
        self.track_changes = on;
        if !on {
            self.changes.clear();
        }
    }

    /// Returns `true` if mutations are being recorded.
    pub fn tracks_changes(&self) -> bool {
        self.track_changes
    }

    /// Drains and returns the recorded changes since the last call.
    pub fn take_changes(&mut self) -> Vec<GraphChange> {
        std::mem::take(&mut self.changes)
    }

    /// Returns the recorded changes without draining them.
    pub fn pending_changes(&self) -> &[GraphChange] {
        &self.changes
    }

    #[inline]
    fn record(&mut self, change: GraphChange) {
        if self.track_changes {
            self.changes.push(change);
        }
    }

    // ------------------------------------------------------------------
    // Nodes
    // ------------------------------------------------------------------

    /// Adds a node with the given kind and supply, reusing a free slot if one
    /// exists, and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, supply: i64) -> NodeId {
        let id = if let Some(id) = self.free_nodes.pop() {
            let slot = &mut self.nodes[id.index()];
            debug_assert!(!slot.alive);
            *slot = NodeSlot {
                alive: true,
                kind,
                supply,
            };
            self.adj[id.index()].clear();
            id
        } else {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(NodeSlot {
                alive: true,
                kind,
                supply,
            });
            self.adj.push(Vec::new());
            id
        };
        self.alive_nodes += 1;
        self.record(GraphChange::AddNode {
            node: id,
            kind,
            supply,
        });
        id
    }

    /// Removes a node and every arc incident to it.
    ///
    /// Returns the list of removed arc pairs (forward ids) so callers such as
    /// the incremental solvers can account for disrupted flow. The incident
    /// arc removals are recorded in the change log *before* the node removal.
    pub fn remove_node(&mut self, node: NodeId) -> Result<Vec<ArcId>, GraphError> {
        self.check_node(node)?;
        let incident: Vec<ArcId> = self.adj[node.index()].clone();
        let mut removed = Vec::with_capacity(incident.len());
        for a in incident {
            let fwd = a.forward();
            if self.arcs[fwd.index()].alive {
                self.remove_arc(fwd)?;
                removed.push(fwd);
            }
        }
        let slot = &mut self.nodes[node.index()];
        slot.alive = false;
        let supply = slot.supply;
        slot.supply = 0;
        self.alive_nodes -= 1;
        self.free_nodes.push(node);
        self.record(GraphChange::RemoveNode { node, supply });
        Ok(removed)
    }

    /// Revives a node in an exact slot — the id-faithful insertion used by
    /// change-log replay ([`crate::delta::DeltaBatch::replay`]): unlike
    /// [`add_node`](Self::add_node), which allocates from the free list,
    /// this places the node at `node` regardless of allocation history, so
    /// a replayed snapshot reproduces the live graph's ids exactly.
    ///
    /// Fails with [`GraphError::OccupiedNode`] if the slot is alive. Slots
    /// between the current bound and `node` are created dead (they mirror
    /// live slots whose occupants cancelled out within the batch).
    pub fn restore_node(
        &mut self,
        node: NodeId,
        kind: NodeKind,
        supply: i64,
    ) -> Result<(), GraphError> {
        while self.nodes.len() <= node.index() {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(NodeSlot {
                alive: false,
                kind: NodeKind::Sink,
                supply: 0,
            });
            self.adj.push(Vec::new());
            if id != node {
                self.free_nodes.push(id);
            }
        }
        if self.nodes[node.index()].alive {
            return Err(GraphError::OccupiedNode(node));
        }
        if let Some(pos) = self.free_nodes.iter().position(|&n| n == node) {
            self.free_nodes.swap_remove(pos);
        }
        self.nodes[node.index()] = NodeSlot {
            alive: true,
            kind,
            supply,
        };
        self.adj[node.index()].clear();
        self.alive_nodes += 1;
        self.record(GraphChange::AddNode { node, kind, supply });
        Ok(())
    }

    /// Changes the supply of a node.
    pub fn set_supply(&mut self, node: NodeId, supply: i64) -> Result<(), GraphError> {
        self.check_node(node)?;
        let old = self.nodes[node.index()].supply;
        if old != supply {
            self.nodes[node.index()].supply = supply;
            self.record(GraphChange::SupplyChange {
                node,
                old,
                new: supply,
            });
        }
        Ok(())
    }

    /// Returns the supply `b(i)` of a node.
    #[inline]
    pub fn supply(&self, node: NodeId) -> i64 {
        self.nodes[node.index()].supply
    }

    /// Returns the kind of a node.
    #[inline]
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.index()].kind
    }

    /// Replaces the kind of a node (used by policies when repurposing slots).
    pub fn set_kind(&mut self, node: NodeId, kind: NodeKind) -> Result<(), GraphError> {
        self.check_node(node)?;
        self.nodes[node.index()].kind = kind;
        Ok(())
    }

    /// Returns `true` if the node id refers to a live node.
    #[inline]
    pub fn node_alive(&self, node: NodeId) -> bool {
        node.index() < self.nodes.len() && self.nodes[node.index()].alive
    }

    /// Number of live nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.alive_nodes
    }

    /// Upper bound (exclusive) on raw node indices; useful for sizing
    /// solver-side per-node arrays.
    #[inline]
    pub fn node_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over the ids of all live nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Sum of positive supplies (total flow that must reach sinks).
    pub fn total_supply(&self) -> i64 {
        self.nodes
            .iter()
            .filter(|s| s.alive && s.supply > 0)
            .map(|s| s.supply)
            .sum()
    }

    // ------------------------------------------------------------------
    // Arcs
    // ------------------------------------------------------------------

    /// Adds an arc `src → dst` with the given capacity and cost; returns the
    /// forward residual arc id. The new arc carries no flow.
    pub fn add_arc(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: i64,
        cost: i64,
    ) -> Result<ArcId, GraphError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        if capacity < 0 {
            return Err(GraphError::NegativeCapacity(capacity));
        }
        let fwd = if let Some(base) = self.free_arc_pairs.pop() {
            let fwd = ArcId(base);
            self.arcs[fwd.index()] = ArcSlot {
                alive: true,
                src,
                dst,
                cost,
                rescap: capacity,
                capacity,
            };
            self.arcs[fwd.index() + 1] = ArcSlot {
                alive: true,
                src: dst,
                dst: src,
                cost: -cost,
                rescap: 0,
                capacity: 0,
            };
            fwd
        } else {
            let fwd = ArcId(self.arcs.len() as u32);
            debug_assert!(fwd.is_forward());
            self.arcs.push(ArcSlot {
                alive: true,
                src,
                dst,
                cost,
                rescap: capacity,
                capacity,
            });
            self.arcs.push(ArcSlot {
                alive: true,
                src: dst,
                dst: src,
                cost: -cost,
                rescap: 0,
                capacity: 0,
            });
            fwd
        };
        self.adj[src.index()].push(fwd);
        self.adj[dst.index()].push(fwd.sister());
        self.alive_arc_pairs += 1;
        self.record(GraphChange::AddArc {
            arc: fwd,
            src,
            dst,
            capacity,
            cost,
        });
        Ok(fwd)
    }

    /// Revives an arc pair in an exact slot — the id-faithful counterpart
    /// of [`restore_node`](Self::restore_node) for change-log replay. The
    /// new pair carries no flow.
    ///
    /// Fails with [`GraphError::OccupiedArc`] if the pair's forward slot is
    /// alive. Pairs between the current bound and `arc` are created dead.
    pub fn restore_arc(
        &mut self,
        arc: ArcId,
        src: NodeId,
        dst: NodeId,
        capacity: i64,
        cost: i64,
    ) -> Result<(), GraphError> {
        let fwd = arc.forward();
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        if capacity < 0 {
            return Err(GraphError::NegativeCapacity(capacity));
        }
        while self.arcs.len() <= fwd.index() + 1 {
            let base = self.arcs.len() as u32;
            debug_assert_eq!(base % 2, 0);
            for _ in 0..2 {
                self.arcs.push(ArcSlot {
                    alive: false,
                    src: NodeId(0),
                    dst: NodeId(0),
                    cost: 0,
                    rescap: 0,
                    capacity: 0,
                });
            }
            if base != fwd.0 {
                self.free_arc_pairs.push(base);
            }
        }
        if self.arcs[fwd.index()].alive {
            return Err(GraphError::OccupiedArc(fwd));
        }
        if let Some(pos) = self.free_arc_pairs.iter().position(|&b| b == fwd.0) {
            self.free_arc_pairs.swap_remove(pos);
        }
        self.arcs[fwd.index()] = ArcSlot {
            alive: true,
            src,
            dst,
            cost,
            rescap: capacity,
            capacity,
        };
        self.arcs[fwd.index() + 1] = ArcSlot {
            alive: true,
            src: dst,
            dst: src,
            cost: -cost,
            rescap: 0,
            capacity: 0,
        };
        self.adj[src.index()].push(fwd);
        self.adj[dst.index()].push(fwd.sister());
        self.alive_arc_pairs += 1;
        self.record(GraphChange::AddArc {
            arc: fwd,
            src,
            dst,
            capacity,
            cost,
        });
        Ok(())
    }

    /// Removes an arc pair given either of its residual arc ids.
    pub fn remove_arc(&mut self, arc: ArcId) -> Result<(), GraphError> {
        let fwd = arc.forward();
        self.check_arc(fwd)?;
        let (src, dst, capacity, cost, flow) = {
            let a = &self.arcs[fwd.index()];
            (a.src, a.dst, a.capacity, a.cost, self.flow(fwd))
        };
        self.arcs[fwd.index()].alive = false;
        self.arcs[fwd.index() + 1].alive = false;
        self.detach(src, fwd);
        self.detach(dst, fwd.sister());
        self.alive_arc_pairs -= 1;
        self.free_arc_pairs.push(fwd.0);
        self.record(GraphChange::RemoveArc {
            arc: fwd,
            src,
            dst,
            capacity,
            cost,
            flow,
        });
        Ok(())
    }

    fn detach(&mut self, node: NodeId, arc: ArcId) {
        let list = &mut self.adj[node.index()];
        if let Some(pos) = list.iter().position(|&a| a == arc) {
            list.swap_remove(pos);
        }
    }

    /// Changes the cost of an arc pair (given either residual id).
    pub fn set_arc_cost(&mut self, arc: ArcId, cost: i64) -> Result<(), GraphError> {
        let fwd = arc.forward();
        self.check_arc(fwd)?;
        let old = self.arcs[fwd.index()].cost;
        if old != cost {
            self.arcs[fwd.index()].cost = cost;
            self.arcs[fwd.index() + 1].cost = -cost;
            self.record(GraphChange::CostChange {
                arc: fwd,
                old,
                new: cost,
            });
        }
        Ok(())
    }

    /// Changes the capacity of an arc pair (given either residual id).
    ///
    /// If the new capacity is below the current flow, the flow on the arc is
    /// clamped down to the new capacity; the spilled units show up as node
    /// imbalance that the next solver run repairs (Table 3: decreasing
    /// capacity can break feasibility).
    pub fn set_arc_capacity(&mut self, arc: ArcId, capacity: i64) -> Result<(), GraphError> {
        let fwd = arc.forward();
        self.check_arc(fwd)?;
        if capacity < 0 {
            return Err(GraphError::NegativeCapacity(capacity));
        }
        let old = self.arcs[fwd.index()].capacity;
        if old == capacity {
            return Ok(());
        }
        let flow = self.flow(fwd);
        let spilled = (flow - capacity).max(0);
        let new_flow = flow.min(capacity);
        self.arcs[fwd.index()].capacity = capacity;
        self.arcs[fwd.index()].rescap = capacity - new_flow;
        self.arcs[fwd.index() + 1].rescap = new_flow;
        self.record(GraphChange::CapacityChange {
            arc: fwd,
            old,
            new: capacity,
            flow_spilled: spilled,
        });
        Ok(())
    }

    /// Returns `true` if the arc id refers to a live residual arc.
    #[inline]
    pub fn arc_alive(&self, arc: ArcId) -> bool {
        arc.index() < self.arcs.len() && self.arcs[arc.index()].alive
    }

    /// Number of live arc pairs.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.alive_arc_pairs
    }

    /// Upper bound (exclusive) on raw residual-arc indices.
    #[inline]
    pub fn arc_bound(&self) -> usize {
        self.arcs.len()
    }

    /// Iterates over the forward ids of all live arc pairs.
    pub fn arc_ids(&self) -> impl Iterator<Item = ArcId> + '_ {
        (0..self.arcs.len())
            .step_by(2)
            .filter(|&i| self.arcs[i].alive)
            .map(|i| ArcId(i as u32))
    }

    /// Source node of a residual arc.
    #[inline]
    pub fn src(&self, arc: ArcId) -> NodeId {
        self.arcs[arc.index()].src
    }

    /// Destination node of a residual arc.
    #[inline]
    pub fn dst(&self, arc: ArcId) -> NodeId {
        self.arcs[arc.index()].dst
    }

    /// Cost of one unit of flow along a residual arc (negated on reverse
    /// arcs).
    #[inline]
    pub fn cost(&self, arc: ArcId) -> i64 {
        self.arcs[arc.index()].cost
    }

    /// Remaining residual capacity of a residual arc.
    #[inline]
    pub fn rescap(&self, arc: ArcId) -> i64 {
        self.arcs[arc.index()].rescap
    }

    /// Original capacity of the pair containing `arc`.
    #[inline]
    pub fn capacity(&self, arc: ArcId) -> i64 {
        self.arcs[arc.forward().index()].capacity
    }

    /// Current flow on the pair containing `arc` (always reported for the
    /// forward direction).
    #[inline]
    pub fn flow(&self, arc: ArcId) -> i64 {
        self.arcs[arc.forward().index() + 1].rescap
    }

    /// Residual out-arcs (both directions) of a node.
    #[inline]
    pub fn adj(&self, node: NodeId) -> &[ArcId] {
        &self.adj[node.index()]
    }

    // ------------------------------------------------------------------
    // Flow manipulation
    // ------------------------------------------------------------------

    /// Pushes `delta` units of flow along a residual arc.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `delta` exceeds the residual capacity.
    #[inline]
    pub fn push_flow(&mut self, arc: ArcId, delta: i64) {
        debug_assert!(
            delta <= self.arcs[arc.index()].rescap,
            "push of {delta} exceeds residual capacity {} on {arc}",
            self.arcs[arc.index()].rescap
        );
        self.arcs[arc.index()].rescap -= delta;
        self.arcs[arc.index() ^ 1].rescap += delta;
    }

    /// Notes in the change log that flow was moved at `node` outside a
    /// solver run (e.g. a §5.3.2 drain terminated here), so incremental
    /// solvers re-derive its excess. No-op when tracking is off.
    pub fn note_flow_disturbance(&mut self, node: NodeId) {
        if self.node_alive(node) {
            self.record(GraphChange::FlowDisturbed { node });
        }
    }

    /// Sets the flow on a pair directly (clamped to `[0, capacity]`).
    pub fn set_flow(&mut self, arc: ArcId, flow: i64) {
        let fwd = arc.forward();
        let cap = self.arcs[fwd.index()].capacity;
        let f = flow.clamp(0, cap);
        self.arcs[fwd.index()].rescap = cap - f;
        self.arcs[fwd.index() + 1].rescap = f;
    }

    /// Clears all flow, restoring every pair to `rescap = capacity`.
    pub fn reset_flow(&mut self) {
        for i in (0..self.arcs.len()).step_by(2) {
            if self.arcs[i].alive {
                let cap = self.arcs[i].capacity;
                self.arcs[i].rescap = cap;
                self.arcs[i + 1].rescap = 0;
            }
        }
    }

    /// Total cost of the current flow: `Σ c_ij · f_ij` (Eq. 1).
    pub fn objective(&self) -> i64 {
        let mut total = 0i64;
        for i in (0..self.arcs.len()).step_by(2) {
            if self.arcs[i].alive {
                total += self.arcs[i].cost * self.arcs[i + 1].rescap;
            }
        }
        total
    }

    /// Per-node excess `e(i) = b(i) + inflow(i) − outflow(i)`, indexed by raw
    /// node index. A feasible flow has zero excess everywhere (Eq. 2).
    pub fn excesses(&self) -> Vec<i64> {
        let mut e = vec![0i64; self.nodes.len()];
        for (i, s) in self.nodes.iter().enumerate() {
            if s.alive {
                e[i] = s.supply;
            }
        }
        for i in (0..self.arcs.len()).step_by(2) {
            if self.arcs[i].alive {
                let f = self.arcs[i + 1].rescap;
                if f != 0 {
                    e[self.arcs[i].src.index()] -= f;
                    e[self.arcs[i].dst.index()] += f;
                }
            }
        }
        e
    }

    /// Returns the maximum absolute arc cost `C` (0 for an empty graph).
    pub fn max_cost(&self) -> i64 {
        self.arc_ids()
            .map(|a| self.cost(a).abs())
            .max()
            .unwrap_or(0)
    }

    /// Returns the maximum arc capacity `U` (0 for an empty graph).
    pub fn max_capacity(&self) -> i64 {
        self.arc_ids().map(|a| self.capacity(a)).max().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Checks
    // ------------------------------------------------------------------

    #[inline]
    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if self.node_alive(node) {
            Ok(())
        } else {
            Err(GraphError::DeadNode(node))
        }
    }

    #[inline]
    fn check_arc(&self, arc: ArcId) -> Result<(), GraphError> {
        if self.arc_alive(arc) {
            Ok(())
        } else {
            Err(GraphError::DeadArc(arc))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (FlowGraph, NodeId, NodeId, NodeId, ArcId, ArcId) {
        let mut g = FlowGraph::new();
        let t = g.add_node(NodeKind::Task { task: 0 }, 1);
        let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        let s = g.add_node(NodeKind::Sink, -1);
        let tm = g.add_arc(t, m, 1, 5).unwrap();
        let ms = g.add_arc(m, s, 2, 3).unwrap();
        (g, t, m, s, tm, ms)
    }

    #[test]
    fn add_and_query() {
        let (g, t, m, s, tm, ms) = tiny();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.arc_count(), 2);
        assert_eq!(g.src(tm), t);
        assert_eq!(g.dst(tm), m);
        assert_eq!(g.cost(tm), 5);
        assert_eq!(g.cost(tm.sister()), -5);
        assert_eq!(g.capacity(ms), 2);
        assert_eq!(g.supply(t), 1);
        assert_eq!(g.supply(s), -1);
        assert_eq!(g.total_supply(), 1);
        assert!(g.adj(m).contains(&tm.sister()));
        assert!(g.adj(m).contains(&ms));
    }

    #[test]
    fn push_and_objective() {
        let (mut g, _, _, _, tm, ms) = tiny();
        g.push_flow(tm, 1);
        g.push_flow(ms, 1);
        assert_eq!(g.flow(tm), 1);
        assert_eq!(g.flow(ms), 1);
        assert_eq!(g.rescap(tm), 0);
        assert_eq!(g.rescap(tm.sister()), 1);
        assert_eq!(g.objective(), 8);
        let e = g.excesses();
        assert!(e.iter().all(|&x| x == 0));
    }

    #[test]
    fn push_reverse_undoes() {
        let (mut g, _, _, _, tm, _) = tiny();
        g.push_flow(tm, 1);
        g.push_flow(tm.sister(), 1);
        assert_eq!(g.flow(tm), 0);
        assert_eq!(g.objective(), 0);
    }

    #[test]
    fn excess_without_flow_equals_supply() {
        let (g, t, _, s, _, _) = tiny();
        let e = g.excesses();
        assert_eq!(e[t.index()], 1);
        assert_eq!(e[s.index()], -1);
    }

    #[test]
    fn remove_arc_updates_adjacency() {
        let (mut g, t, m, _, tm, _) = tiny();
        g.remove_arc(tm).unwrap();
        assert_eq!(g.arc_count(), 1);
        assert!(!g.arc_alive(tm));
        assert!(!g.adj(t).contains(&tm));
        assert!(!g.adj(m).contains(&tm.sister()));
        assert!(g.remove_arc(tm).is_err());
    }

    #[test]
    fn remove_node_removes_incident_arcs() {
        let (mut g, _, m, _, tm, ms) = tiny();
        let removed = g.remove_node(m).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.arc_count(), 0);
        assert!(removed.contains(&tm));
        assert!(removed.contains(&ms));
    }

    #[test]
    fn slot_reuse_after_removal() {
        let (mut g, _, m, _, _, _) = tiny();
        g.remove_node(m).unwrap();
        let m2 = g.add_node(NodeKind::Machine { machine: 9 }, 0);
        assert_eq!(m2, m, "freed slot should be reused");
        assert_eq!(g.kind(m2), NodeKind::Machine { machine: 9 });
        assert!(g.adj(m2).is_empty());
    }

    #[test]
    fn arc_pair_reuse_keeps_even_alignment() {
        let (mut g, t, m, _, tm, _) = tiny();
        g.remove_arc(tm).unwrap();
        let a = g.add_arc(t, m, 4, 7).unwrap();
        assert!(a.is_forward());
        assert_eq!(a, tm, "freed pair should be reused");
        assert_eq!(g.capacity(a), 4);
        assert_eq!(g.flow(a), 0);
    }

    #[test]
    fn capacity_decrease_clamps_flow() {
        let (mut g, _, _, _, _, ms) = tiny();
        g.push_flow(ms, 2);
        g.set_arc_capacity(ms, 1).unwrap();
        assert_eq!(g.flow(ms), 1);
        assert_eq!(g.capacity(ms), 1);
        // The clamp spilled one unit back onto the machine node.
        let e = g.excesses();
        assert_eq!(e[1], -1, "machine lost one unit of outflow");
        assert_eq!(e[2], 0, "sink is balanced after the clamp");
    }

    #[test]
    fn cost_change_applies_to_both_directions() {
        let (mut g, _, _, _, tm, _) = tiny();
        g.set_arc_cost(tm, 11).unwrap();
        assert_eq!(g.cost(tm), 11);
        assert_eq!(g.cost(tm.sister()), -11);
    }

    #[test]
    fn change_log_records_mutations() {
        let mut g = FlowGraph::new();
        g.set_change_tracking(true);
        let t = g.add_node(NodeKind::Task { task: 0 }, 1);
        let s = g.add_node(NodeKind::Sink, -1);
        let a = g.add_arc(t, s, 1, 2).unwrap();
        g.set_arc_cost(a, 3).unwrap();
        g.set_supply(t, 0).unwrap();
        let changes = g.take_changes();
        assert_eq!(changes.len(), 5);
        assert!(g.take_changes().is_empty());
    }

    #[test]
    fn no_change_no_log_entry() {
        let mut g = FlowGraph::new();
        g.set_change_tracking(true);
        let t = g.add_node(NodeKind::Task { task: 0 }, 1);
        let s = g.add_node(NodeKind::Sink, -1);
        let a = g.add_arc(t, s, 1, 2).unwrap();
        g.take_changes();
        g.set_arc_cost(a, 2).unwrap();
        g.set_supply(t, 1).unwrap();
        g.set_arc_capacity(a, 1).unwrap();
        assert!(g.take_changes().is_empty());
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = FlowGraph::new();
        let n = g.add_node(NodeKind::Sink, 0);
        assert_eq!(g.add_arc(n, n, 1, 1), Err(GraphError::SelfLoop(n)));
    }

    #[test]
    fn reset_flow_clears_everything() {
        let (mut g, _, _, _, tm, ms) = tiny();
        g.push_flow(tm, 1);
        g.push_flow(ms, 2);
        g.reset_flow();
        assert_eq!(g.flow(tm), 0);
        assert_eq!(g.flow(ms), 0);
        assert_eq!(g.objective(), 0);
    }
}
