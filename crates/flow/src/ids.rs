//! Strongly-typed identifiers for flow-network entities.

use std::fmt;

/// Identifier of a node in a [`FlowGraph`](crate::FlowGraph).
///
/// Node ids are dense indices; slots freed by [`FlowGraph::remove_node`](crate::graph::FlowGraph::remove_node) are reused by later insertions, so a
/// `NodeId` is only meaningful while the node it names is alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NodeId` from a raw index.
    ///
    /// Callers are responsible for only using indices handed out by a
    /// [`FlowGraph`](crate::FlowGraph).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a *residual* arc in a [`FlowGraph`](crate::FlowGraph).
///
/// Arcs are stored in forward/reverse pairs: the partner of arc `a` is
/// [`ArcId::sister`], obtained by flipping the lowest bit. The forward arc of
/// a pair always has an even raw index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArcId(pub(crate) u32);

impl ArcId {
    /// Returns the raw index of this residual arc.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an `ArcId` from a raw index.
    ///
    /// Callers are responsible for only using indices handed out by a
    /// [`FlowGraph`](crate::FlowGraph).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ArcId(index as u32)
    }

    /// Returns the paired residual arc (forward ↔ reverse).
    #[inline]
    pub fn sister(self) -> ArcId {
        ArcId(self.0 ^ 1)
    }

    /// Returns `true` if this is the forward arc of its pair.
    #[inline]
    pub fn is_forward(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns the forward arc of this arc's pair.
    #[inline]
    pub fn forward(self) -> ArcId {
        ArcId(self.0 & !1)
    }
}

impl fmt::Display for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sister_flips_low_bit() {
        assert_eq!(ArcId(4).sister(), ArcId(5));
        assert_eq!(ArcId(5).sister(), ArcId(4));
    }

    #[test]
    fn forward_detection() {
        assert!(ArcId(0).is_forward());
        assert!(!ArcId(1).is_forward());
        assert_eq!(ArcId(7).forward(), ArcId(6));
        assert_eq!(ArcId(6).forward(), ArcId(6));
    }

    #[test]
    fn node_roundtrip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(format!("{n}"), "n42");
    }
}
