//! Flow-network substrate for flow-based cluster scheduling.
//!
//! This crate implements the directed flow network of Firmament (Gog et al.,
//! OSDI 2016, §3.2): a graph whose arcs carry flow from task sources to a
//! single sink, with costs and capacities that encode a scheduling policy.
//! It provides:
//!
//! - [`FlowGraph`]: a mutable residual-network representation designed for
//!   min-cost max-flow solvers (paired forward/reverse arcs, flat arenas,
//!   slot reuse for removed nodes/arcs);
//! - [`changes::GraphChange`]: the raw mutation log recorded by a tracked
//!   graph (§5.2), and the Table 3 analysis of which arc changes require
//!   reoptimization;
//! - [`delta::DeltaBatch`]: the *compacted*, typed change feed handed to
//!   incremental solvers once per scheduling round — add-then-remove pairs
//!   cancel, repeated re-pricings merge, and the batch replays exactly
//!   onto a snapshot (see the [`delta`] module docs for the contract);
//! - [`SchedulingGraphBuilder`]: ergonomic construction of scheduling-shaped
//!   networks (tasks, machines, aggregators, unscheduled aggregators, sink);
//! - DIMACS min-cost-flow import/export ([`dimacs`]);
//! - feasibility validation ([`validate`]) and deterministic instance
//!   generation for tests and benchmarks ([`testgen`]).
//!
//! # Examples
//!
//! ```
//! use firmament_flow::{FlowGraph, NodeKind};
//!
//! // A task that can run on one machine or stay unscheduled.
//! let mut g = FlowGraph::new();
//! let t = g.add_node(NodeKind::Task { task: 0 }, 1);
//! let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
//! let u = g.add_node(NodeKind::UnscheduledAggregator { job: 0 }, 0);
//! let s = g.add_node(NodeKind::Sink, -1);
//! g.add_arc(t, m, 1, 2).unwrap();
//! g.add_arc(t, u, 1, 7).unwrap();
//! g.add_arc(m, s, 1, 0).unwrap();
//! g.add_arc(u, s, 1, 0).unwrap();
//! assert_eq!(g.node_count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod changes;
pub mod delta;
pub mod dimacs;
pub mod graph;
pub mod ids;
pub mod node;
pub mod testgen;
pub mod validate;

pub use builder::SchedulingGraphBuilder;
pub use changes::{ArcChangeKind, GraphChange, ReoptEffect};
pub use delta::{DeltaBatch, GraphDelta};
pub use graph::{FlowGraph, GraphError};
pub use ids::{ArcId, NodeId};
pub use node::NodeKind;
