//! Node kinds for scheduling flow networks.

use std::fmt;

/// The role a node plays in the scheduling flow network (§3.2 of the paper).
///
/// The MCMF solvers in `firmament-mcmf` never inspect the kind; it exists so
/// that scheduling policies and the placement-extraction pass (Listing 1)
/// can interpret the optimal flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeKind {
    /// A task node `T_{j,i}`: a source of one unit of flow.
    Task {
        /// Identifier of the task in the cluster model.
        task: u64,
    },
    /// A machine node `M_m`: flow through it schedules a task on machine `m`.
    Machine {
        /// Identifier of the machine in the cluster model.
        machine: u64,
    },
    /// A rack aggregator `R_r` (Quincy policy, Fig 6b).
    RackAggregator {
        /// Identifier of the rack.
        rack: u32,
    },
    /// The cluster-wide aggregator `X` (load-spreading and Quincy policies).
    ClusterAggregator,
    /// A request aggregator `RA` (network-aware policy, Fig 6c).
    RequestAggregator {
        /// Identifier of the request class (e.g. a bandwidth bucket).
        class: u32,
    },
    /// The per-job unscheduled aggregator `U_j`.
    UnscheduledAggregator {
        /// Identifier of the job.
        job: u64,
    },
    /// The unique sink node `S`.
    Sink,
    /// A policy-defined aggregator that none of the built-in passes need to
    /// understand.
    Other {
        /// Policy-private tag.
        tag: u64,
    },
}

impl NodeKind {
    /// Returns `true` for task nodes.
    #[inline]
    pub fn is_task(&self) -> bool {
        matches!(self, NodeKind::Task { .. })
    }

    /// Returns `true` for machine nodes.
    #[inline]
    pub fn is_machine(&self) -> bool {
        matches!(self, NodeKind::Machine { .. })
    }

    /// Returns `true` for the sink node.
    #[inline]
    pub fn is_sink(&self) -> bool {
        matches!(self, NodeKind::Sink)
    }

    /// Returns `true` for unscheduled aggregators.
    #[inline]
    pub fn is_unscheduled(&self) -> bool {
        matches!(self, NodeKind::UnscheduledAggregator { .. })
    }

    /// Returns `true` for any aggregator kind (rack, cluster, request,
    /// unscheduled, or other).
    #[inline]
    pub fn is_aggregator(&self) -> bool {
        matches!(
            self,
            NodeKind::RackAggregator { .. }
                | NodeKind::ClusterAggregator
                | NodeKind::RequestAggregator { .. }
                | NodeKind::UnscheduledAggregator { .. }
                | NodeKind::Other { .. }
        )
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Task { task } => write!(f, "T{task}"),
            NodeKind::Machine { machine } => write!(f, "M{machine}"),
            NodeKind::RackAggregator { rack } => write!(f, "R{rack}"),
            NodeKind::ClusterAggregator => write!(f, "X"),
            NodeKind::RequestAggregator { class } => write!(f, "RA{class}"),
            NodeKind::UnscheduledAggregator { job } => write!(f, "U{job}"),
            NodeKind::Sink => write!(f, "S"),
            NodeKind::Other { tag } => write!(f, "O{tag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Task { task: 1 }.is_task());
        assert!(NodeKind::Machine { machine: 2 }.is_machine());
        assert!(NodeKind::Sink.is_sink());
        assert!(NodeKind::UnscheduledAggregator { job: 3 }.is_unscheduled());
        assert!(NodeKind::ClusterAggregator.is_aggregator());
        assert!(NodeKind::RackAggregator { rack: 0 }.is_aggregator());
        assert!(!NodeKind::Sink.is_aggregator());
        assert!(!NodeKind::Task { task: 1 }.is_aggregator());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(NodeKind::Task { task: 7 }.to_string(), "T7");
        assert_eq!(NodeKind::ClusterAggregator.to_string(), "X");
        assert_eq!(NodeKind::Sink.to_string(), "S");
        assert_eq!(NodeKind::RequestAggregator { class: 4 }.to_string(), "RA4");
    }
}
