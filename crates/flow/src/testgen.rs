//! Deterministic random-instance generation for tests and benchmarks.
//!
//! Generated instances are *feasible by construction*: every source has a
//! fallback path to the sink through an "unscheduled"-style aggregator with
//! ample capacity, mirroring how real scheduling graphs guarantee that every
//! task can always route its flow (§3.2). A tiny xorshift generator keeps
//! this module dependency-free and reproducible across platforms.

use crate::graph::FlowGraph;
use crate::ids::NodeId;
use crate::node::NodeKind;

/// A small, fast, deterministic PRNG (xorshift64*).
///
/// Not cryptographically secure; used only for reproducible test instances.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a non-zero seed (zero is mapped to a fixed
    /// constant).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Returns a uniform `i64` in `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + (self.below((hi - lo + 1) as u64) as i64)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Parameters for [`scheduling_instance`].
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// Number of task (source) nodes.
    pub tasks: usize,
    /// Number of machine nodes.
    pub machines: usize,
    /// Slots per machine (capacity of the machine → sink arc).
    pub slots_per_machine: i64,
    /// Preference arcs per task (each to a uniformly random machine).
    pub prefs_per_task: usize,
    /// Maximum preference-arc cost (cost drawn uniformly from `1..=max`).
    pub max_cost: i64,
    /// Cost of leaving a task unscheduled (typically larger than `max_cost`).
    pub unscheduled_cost: i64,
    /// Whether tasks also reach machines through a cluster aggregator.
    pub cluster_aggregator: bool,
}

impl Default for InstanceSpec {
    fn default() -> Self {
        InstanceSpec {
            tasks: 50,
            machines: 20,
            slots_per_machine: 4,
            prefs_per_task: 3,
            max_cost: 100,
            unscheduled_cost: 150,
            cluster_aggregator: true,
        }
    }
}

/// A generated instance with handles to the interesting nodes.
#[derive(Debug)]
pub struct Instance {
    /// The generated graph (flow cleared).
    pub graph: FlowGraph,
    /// Task node ids, in creation order.
    pub tasks: Vec<NodeId>,
    /// Machine node ids, in creation order.
    pub machines: Vec<NodeId>,
    /// The sink node.
    pub sink: NodeId,
    /// The unscheduled aggregator shared by all tasks.
    pub unscheduled: NodeId,
}

/// Generates a feasible scheduling-shaped MCMF instance.
///
/// # Examples
///
/// ```
/// use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
///
/// let inst = scheduling_instance(42, &InstanceSpec::default());
/// assert_eq!(inst.graph.total_supply(), 50);
/// ```
pub fn scheduling_instance(seed: u64, spec: &InstanceSpec) -> Instance {
    let mut rng = XorShift64::new(seed);
    let mut g = FlowGraph::with_capacity(
        spec.tasks + spec.machines + 3,
        spec.tasks * (spec.prefs_per_task + 2) + spec.machines + 2,
    );
    let sink = g.add_node(NodeKind::Sink, -(spec.tasks as i64));
    let unscheduled = g.add_node(NodeKind::UnscheduledAggregator { job: 0 }, 0);
    g.add_arc(unscheduled, sink, spec.tasks as i64, 0)
        .expect("unscheduled-sink arc");
    let cluster = if spec.cluster_aggregator {
        Some(g.add_node(NodeKind::ClusterAggregator, 0))
    } else {
        None
    };
    let mut machines = Vec::with_capacity(spec.machines);
    for m in 0..spec.machines {
        let n = g.add_node(NodeKind::Machine { machine: m as u64 }, 0);
        g.add_arc(n, sink, spec.slots_per_machine, 0)
            .expect("machine-sink arc");
        if let Some(x) = cluster {
            let cost = rng.range_i64(1, spec.max_cost);
            g.add_arc(x, n, spec.slots_per_machine, cost)
                .expect("cluster-machine arc");
        }
        machines.push(n);
    }
    let mut tasks = Vec::with_capacity(spec.tasks);
    for t in 0..spec.tasks {
        let n = g.add_node(NodeKind::Task { task: t as u64 }, 1);
        g.add_arc(n, unscheduled, 1, spec.unscheduled_cost)
            .expect("task-unscheduled arc");
        if let Some(x) = cluster {
            let cost = rng.range_i64(1, spec.max_cost);
            g.add_arc(n, x, 1, cost).expect("task-cluster arc");
        }
        for _ in 0..spec.prefs_per_task.min(spec.machines) {
            let m = machines[rng.below(spec.machines as u64) as usize];
            let cost = rng.range_i64(1, spec.max_cost);
            // Duplicate arcs are fine for MCMF, so no dedup needed.
            g.add_arc(n, m, 1, cost).expect("preference arc");
        }
        tasks.push(n);
    }
    Instance {
        graph: g,
        tasks,
        machines,
        sink,
        unscheduled,
    }
}

/// Generates a layered random DAG instance (sources → layers → sink) with a
/// fallback arc per source, exercising longer augmenting paths than
/// [`scheduling_instance`].
pub fn layered_instance(seed: u64, sources: usize, layers: usize, width: usize) -> FlowGraph {
    let mut rng = XorShift64::new(seed);
    let mut g = FlowGraph::new();
    let sink = g.add_node(NodeKind::Sink, -(sources as i64));
    let mut prev: Vec<NodeId> = Vec::new();
    for l in 0..layers {
        let mut layer = Vec::with_capacity(width);
        for w in 0..width {
            let n = g.add_node(
                NodeKind::Other {
                    tag: (l * width + w) as u64,
                },
                0,
            );
            layer.push(n);
        }
        if l == 0 {
            prev = layer;
            continue;
        }
        for &u in &prev {
            // Two random arcs into the next layer.
            for _ in 0..2 {
                let v = layer[rng.below(width as u64) as usize];
                let cap = rng.range_i64(1, 4);
                let cost = rng.range_i64(0, 50);
                g.add_arc(u, v, cap, cost).expect("layer arc");
            }
        }
        prev = layer;
    }
    for &u in &prev {
        g.add_arc(u, sink, sources as i64, rng.range_i64(0, 10))
            .expect("last-layer arc");
    }
    // Sources feed the first layer, with a direct fallback to the sink so
    // the instance is always feasible.
    let first: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| matches!(g.kind(n), NodeKind::Other { tag } if (tag as usize) < width))
        .collect();
    for s in 0..sources {
        let n = g.add_node(NodeKind::Task { task: s as u64 }, 1);
        let v = first[rng.below(first.len() as u64) as usize];
        g.add_arc(n, v, 1, rng.range_i64(0, 20))
            .expect("source arc");
        g.add_arc(n, sink, 1, 500).expect("fallback arc");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn deterministic_for_same_seed() {
        let a = scheduling_instance(7, &InstanceSpec::default());
        let b = scheduling_instance(7, &InstanceSpec::default());
        assert_eq!(a.graph.arc_count(), b.graph.arc_count());
        let costs_a: Vec<i64> = a.graph.arc_ids().map(|x| a.graph.cost(x)).collect();
        let costs_b: Vec<i64> = b.graph.arc_ids().map(|x| b.graph.cost(x)).collect();
        assert_eq!(costs_a, costs_b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = scheduling_instance(1, &InstanceSpec::default());
        let b = scheduling_instance(2, &InstanceSpec::default());
        let costs_a: Vec<i64> = a.graph.arc_ids().map(|x| a.graph.cost(x)).collect();
        let costs_b: Vec<i64> = b.graph.arc_ids().map(|x| b.graph.cost(x)).collect();
        assert_ne!(costs_a, costs_b);
    }

    #[test]
    fn generated_instance_validates() {
        let inst = scheduling_instance(3, &InstanceSpec::default());
        assert!(validate(&inst.graph).is_empty());
        assert_eq!(inst.tasks.len(), 50);
        assert_eq!(inst.machines.len(), 20);
    }

    #[test]
    fn layered_instance_validates() {
        let g = layered_instance(5, 10, 3, 4);
        assert!(validate(&g).is_empty());
        assert_eq!(g.total_supply(), 10);
    }

    #[test]
    fn rng_unit_interval() {
        let mut rng = XorShift64::new(99);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn rng_range_bounds() {
        let mut rng = XorShift64::new(4);
        for _ in 0..1000 {
            let v = rng.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }
}
