//! Structural and flow-feasibility validation.
//!
//! Solvers and tests use these checks to assert the flow feasibility
//! constraints of §4: mass balance (Eq. 2) and capacity (Eq. 3).

use crate::graph::FlowGraph;
use crate::ids::NodeId;

/// A violated invariant found by [`validate`] or [`check_feasible`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An arc endpoint refers to a dead node.
    DanglingArc {
        /// Raw arc index.
        arc: usize,
    },
    /// Residual capacities of a pair do not sum to the pair capacity.
    ResidualMismatch {
        /// Raw forward-arc index.
        arc: usize,
    },
    /// A residual capacity is negative.
    NegativeResidual {
        /// Raw arc index.
        arc: usize,
    },
    /// Node excess is non-zero, so mass balance (Eq. 2) fails.
    MassBalance {
        /// The unbalanced node.
        node: NodeId,
        /// Its excess `e(i)`.
        excess: i64,
    },
    /// Total positive supply does not equal total negative supply.
    SupplyImbalance {
        /// `Σ b(i)` over all nodes (should be 0).
        total: i64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DanglingArc { arc } => write!(f, "arc #{arc} touches a dead node"),
            Violation::ResidualMismatch { arc } => {
                write!(f, "arc pair #{arc}: residuals do not sum to capacity")
            }
            Violation::NegativeResidual { arc } => write!(f, "arc #{arc}: negative residual"),
            Violation::MassBalance { node, excess } => {
                write!(f, "node {node}: excess {excess} != 0")
            }
            Violation::SupplyImbalance { total } => {
                write!(f, "total supply {total} != 0")
            }
        }
    }
}

/// Checks structural invariants: arcs reference live nodes, residual
/// capacities are non-negative and pair-consistent.
pub fn validate(graph: &FlowGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    for a in graph.arc_ids() {
        let i = a.index();
        if !graph.node_alive(graph.src(a)) || !graph.node_alive(graph.dst(a)) {
            out.push(Violation::DanglingArc { arc: i });
        }
        let fwd = graph.rescap(a);
        let rev = graph.rescap(a.sister());
        if fwd < 0 {
            out.push(Violation::NegativeResidual { arc: i });
        }
        if rev < 0 {
            out.push(Violation::NegativeResidual { arc: i + 1 });
        }
        if fwd + rev != graph.capacity(a) {
            out.push(Violation::ResidualMismatch { arc: i });
        }
    }
    out
}

/// Checks that the current flow is feasible: structural invariants hold and
/// every node's excess is zero.
pub fn check_feasible(graph: &FlowGraph) -> Vec<Violation> {
    let mut out = validate(graph);
    let total: i64 = graph.node_ids().map(|n| graph.supply(n)).sum();
    if total != 0 {
        out.push(Violation::SupplyImbalance { total });
    }
    let e = graph.excesses();
    for n in graph.node_ids() {
        if e[n.index()] != 0 {
            out.push(Violation::MassBalance {
                node: n,
                excess: e[n.index()],
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    #[test]
    fn balanced_flow_is_feasible() {
        let mut g = FlowGraph::new();
        let t = g.add_node(NodeKind::Task { task: 0 }, 1);
        let s = g.add_node(NodeKind::Sink, -1);
        let a = g.add_arc(t, s, 1, 2).unwrap();
        g.push_flow(a, 1);
        assert!(check_feasible(&g).is_empty());
    }

    #[test]
    fn missing_flow_reports_mass_balance() {
        let mut g = FlowGraph::new();
        let t = g.add_node(NodeKind::Task { task: 0 }, 1);
        let s = g.add_node(NodeKind::Sink, -1);
        g.add_arc(t, s, 1, 2).unwrap();
        let v = check_feasible(&g);
        assert_eq!(
            v.iter()
                .filter(|x| matches!(x, Violation::MassBalance { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn supply_imbalance_detected() {
        let mut g = FlowGraph::new();
        g.add_node(NodeKind::Task { task: 0 }, 2);
        g.add_node(NodeKind::Sink, -1);
        let v = check_feasible(&g);
        assert!(v.contains(&Violation::SupplyImbalance { total: 1 }));
    }

    #[test]
    fn pristine_graph_validates() {
        let mut g = FlowGraph::new();
        let a = g.add_node(NodeKind::ClusterAggregator, 0);
        let b = g.add_node(NodeKind::Sink, 0);
        g.add_arc(a, b, 5, 1).unwrap();
        assert!(validate(&g).is_empty());
    }
}
