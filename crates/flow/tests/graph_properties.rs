//! Property-based tests for the flow-graph substrate: arbitrary mutation
//! sequences must preserve structural invariants, slot reuse must never
//! leak state, and DIMACS round-trips must preserve instance semantics.
//!
//! Cases derive from the crate's own deterministic generator
//! (`XorShift64`), so failures reproduce exactly.

use firmament_flow::dimacs;
use firmament_flow::testgen::XorShift64;
use firmament_flow::validate::validate;
use firmament_flow::{FlowGraph, NodeId, NodeKind};

/// A random mutation applied to a growing graph.
#[derive(Debug, Clone)]
enum Op {
    AddNode(i64),
    AddArc {
        src: usize,
        dst: usize,
        cap: i64,
        cost: i64,
    },
    RemoveNode(usize),
    RemoveArc(usize),
    SetCost {
        arc: usize,
        cost: i64,
    },
    SetCapacity {
        arc: usize,
        cap: i64,
    },
    Push {
        arc: usize,
        frac: u8,
    },
}

fn random_op(rng: &mut XorShift64) -> Op {
    match rng.below(7) {
        0 => Op::AddNode(rng.below(6) as i64 - 3),
        1 => Op::AddArc {
            src: rng.below(64) as usize,
            dst: rng.below(64) as usize,
            cap: rng.below(10) as i64,
            cost: rng.below(100) as i64 - 50,
        },
        2 => Op::RemoveNode(rng.below(64) as usize),
        3 => Op::RemoveArc(rng.below(64) as usize),
        4 => Op::SetCost {
            arc: rng.below(64) as usize,
            cost: rng.below(100) as i64 - 50,
        },
        5 => Op::SetCapacity {
            arc: rng.below(64) as usize,
            cap: rng.below(10) as i64,
        },
        _ => Op::Push {
            arc: rng.below(64) as usize,
            frac: rng.below(101) as u8,
        },
    }
}

fn random_ops(rng: &mut XorShift64, min: usize, max: usize) -> Vec<Op> {
    let n = min + rng.below((max - min) as u64) as usize;
    (0..n).map(|_| random_op(rng)).collect()
}

fn apply(graph: &mut FlowGraph, op: &Op) {
    let nodes: Vec<NodeId> = graph.node_ids().collect();
    let arcs: Vec<_> = graph.arc_ids().collect();
    match op {
        Op::AddNode(supply) => {
            graph.add_node(NodeKind::Other { tag: 0 }, *supply);
        }
        Op::AddArc {
            src,
            dst,
            cap,
            cost,
        } => {
            if nodes.len() >= 2 {
                let s = nodes[src % nodes.len()];
                let d = nodes[dst % nodes.len()];
                if s != d {
                    graph.add_arc(s, d, *cap, *cost).unwrap();
                }
            }
        }
        Op::RemoveNode(i) => {
            if !nodes.is_empty() {
                graph.remove_node(nodes[i % nodes.len()]).unwrap();
            }
        }
        Op::RemoveArc(i) => {
            if !arcs.is_empty() {
                graph.remove_arc(arcs[i % arcs.len()]).unwrap();
            }
        }
        Op::SetCost { arc, cost } => {
            if !arcs.is_empty() {
                graph.set_arc_cost(arcs[arc % arcs.len()], *cost).unwrap();
            }
        }
        Op::SetCapacity { arc, cap } => {
            if !arcs.is_empty() {
                graph
                    .set_arc_capacity(arcs[arc % arcs.len()], *cap)
                    .unwrap();
            }
        }
        Op::Push { arc, frac } => {
            if !arcs.is_empty() {
                let a = arcs[arc % arcs.len()];
                let r = graph.rescap(a);
                let delta = r * (*frac as i64) / 100;
                if delta > 0 {
                    graph.push_flow(a, delta);
                }
            }
        }
    }
}

/// Arbitrary mutation sequences never violate structural invariants.
#[test]
fn mutations_preserve_invariants() {
    let mut rng = XorShift64::new(0x6A41);
    for case in 0..64 {
        let ops = random_ops(&mut rng, 1, 80);
        let mut g = FlowGraph::new();
        for op in &ops {
            apply(&mut g, op);
            let violations = validate(&g);
            assert!(
                violations.is_empty(),
                "case {case}: after {op:?}: {violations:?}"
            );
        }
        // Counts agree with iteration.
        assert_eq!(g.node_count(), g.node_ids().count());
        assert_eq!(g.arc_count(), g.arc_ids().count());
    }
}

/// The change log replays to an equivalent structure: applying the same
/// ops with tracking on records one entry per effective mutation.
#[test]
fn change_log_matches_mutations() {
    let mut rng = XorShift64::new(0xC4A6);
    for case in 0..64 {
        let ops = random_ops(&mut rng, 1, 40);
        let mut g = FlowGraph::new();
        g.set_change_tracking(true);
        let mut effective = 0usize;
        for op in &ops {
            let nodes_before = g.node_count();
            let arcs_before = g.arc_count();
            let log_before = g.pending_changes().len();
            apply(&mut g, op);
            let log_delta = g.pending_changes().len() - log_before;
            match op {
                Op::AddNode(_) => assert_eq!(log_delta, 1, "case {case}"),
                Op::RemoveNode(_) if nodes_before > 0 => {
                    // Node removal logs the node plus each incident arc.
                    assert!(log_delta >= 1, "case {case}");
                }
                Op::RemoveArc(_) if arcs_before > 0 => assert_eq!(log_delta, 1, "case {case}"),
                Op::Push { .. } => {
                    assert_eq!(log_delta, 0, "case {case}: pushes are not changes")
                }
                _ => {}
            }
            effective += log_delta;
        }
        assert_eq!(g.take_changes().len(), effective, "case {case}");
    }
}

/// DIMACS round-trips preserve node/arc counts, supplies, and the
/// multiset of (capacity, cost) pairs.
#[test]
fn dimacs_roundtrip_preserves_semantics() {
    let mut rng = XorShift64::new(0xD14AC5);
    for case in 0..64 {
        let ops = random_ops(&mut rng, 1, 60);
        let mut g = FlowGraph::new();
        for op in &ops {
            apply(&mut g, op);
        }
        let text = dimacs::serialize(&g);
        let g2 = dimacs::parse(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count(), "case {case}");
        assert_eq!(g2.arc_count(), g.arc_count(), "case {case}");
        assert_eq!(g2.total_supply(), g.total_supply(), "case {case}");
        let mut pairs1: Vec<(i64, i64)> = g.arc_ids().map(|a| (g.capacity(a), g.cost(a))).collect();
        let mut pairs2: Vec<(i64, i64)> =
            g2.arc_ids().map(|a| (g2.capacity(a), g2.cost(a))).collect();
        pairs1.sort_unstable();
        pairs2.sort_unstable();
        assert_eq!(pairs1, pairs2, "case {case}");
    }
}

/// Objective is bilinear: scaling all costs scales the objective.
#[test]
fn objective_scales_with_costs() {
    use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
    let mut rng = XorShift64::new(0x0B7EC7);
    for case in 0..32 {
        let seed = rng.below(1000);
        let factor = 2 + rng.below(3) as i64;
        let mut inst = scheduling_instance(seed, &InstanceSpec::default());
        // Route one unit down the first task's unscheduled path.
        let t = inst.tasks[0];
        let g = &mut inst.graph;
        let arc = g.adj(t).iter().copied().find(|&a| a.is_forward()).unwrap();
        g.push_flow(arc, 1);
        let before = g.objective();
        for a in g.arc_ids().collect::<Vec<_>>() {
            let c = g.cost(a);
            g.set_arc_cost(a, c * factor).unwrap();
        }
        assert_eq!(g.objective(), before * factor, "case {case} seed {seed}");
    }
}
