//! Approximate min-cost max-flow support (§5.1, Fig 10).
//!
//! MCMF algorithms return an optimal solution, but a scheduler might hope an
//! approximate one suffices. The paper investigates terminating cost scaling
//! and relaxation early and measuring *task misplacements* — and rejects the
//! idea, because thousands of tasks remain misplaced until shortly before
//! the algorithms converge. This module provides the misplacement metric
//! used by that experiment.

use firmament_flow::{FlowGraph, NodeId, NodeKind};
use std::collections::HashMap;

/// Where a task's unit of flow ended up in some (possibly partial) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskAssignment {
    /// Routed to a machine node (the machine's `machine` id is given).
    Machine(u64),
    /// Routed through its unscheduled aggregator (task not placed).
    Unscheduled,
    /// Flow not (fully) routed — only possible in early-terminated
    /// pseudoflows.
    Unrouted,
}

/// Extracts each task's effective assignment by tracing its unit of flow
/// forward until a machine node, an unscheduled aggregator, or a dead end.
///
/// This is a *diagnostic* extraction tolerant of infeasible pseudoflows; the
/// production placement extraction (Listing 1) lives in `firmament-core`.
pub fn task_assignments(graph: &FlowGraph) -> HashMap<u64, TaskAssignment> {
    let mut out = HashMap::new();
    for t in graph.node_ids() {
        let NodeKind::Task { task } = graph.kind(t) else {
            continue;
        };
        out.insert(task, trace_assignment(graph, t));
    }
    out
}

fn trace_assignment(graph: &FlowGraph, task: NodeId) -> TaskAssignment {
    let mut u = task;
    let mut steps = 0usize;
    let limit = graph.node_count() + 1;
    loop {
        match graph.kind(u) {
            NodeKind::Machine { machine } if u != task => return TaskAssignment::Machine(machine),
            NodeKind::UnscheduledAggregator { .. } => return TaskAssignment::Unscheduled,
            NodeKind::Sink => return TaskAssignment::Unrouted,
            _ => {}
        }
        let next = graph
            .adj(u)
            .iter()
            .copied()
            .find(|&a| a.is_forward() && graph.flow(a) > 0);
        match next {
            Some(a) => u = graph.dst(a),
            None => return TaskAssignment::Unrouted,
        }
        steps += 1;
        if steps > limit {
            return TaskAssignment::Unrouted;
        }
    }
}

/// Counts misplaced tasks between an approximate assignment and the optimal
/// one (§5.1): a task is misplaced if it is (i) preempted/unplaced in the
/// approximate solution but runs in the optimal one, or (ii) scheduled on a
/// different machine than in the optimal solution.
pub fn count_misplacements(
    approximate: &HashMap<u64, TaskAssignment>,
    optimal: &HashMap<u64, TaskAssignment>,
) -> usize {
    let mut misplaced = 0usize;
    for (task, opt) in optimal {
        let approx = approximate.get(task).unwrap_or(&TaskAssignment::Unrouted);
        match (approx, opt) {
            (TaskAssignment::Machine(a), TaskAssignment::Machine(b)) if a == b => {}
            (_, TaskAssignment::Machine(_)) => misplaced += 1,
            // Task unscheduled in the optimal solution: the approximate
            // solution scheduling it somewhere also counts as misplacement
            // (it would be erroneously started and then preempted).
            (TaskAssignment::Machine(_), _) => misplaced += 1,
            _ => {}
        }
    }
    misplaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::SolveOptions;
    use firmament_flow::testgen::{scheduling_instance, InstanceSpec};

    #[test]
    fn assignments_of_optimal_flow_are_routed() {
        let mut inst = scheduling_instance(1, &InstanceSpec::default());
        crate::relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let assignments = task_assignments(&inst.graph);
        assert_eq!(assignments.len(), inst.tasks.len());
        assert!(
            assignments
                .values()
                .all(|a| !matches!(a, TaskAssignment::Unrouted)),
            "optimal feasible flow routes every task"
        );
    }

    #[test]
    fn optimal_vs_itself_has_zero_misplacements() {
        let mut inst = scheduling_instance(2, &InstanceSpec::default());
        crate::relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let a = task_assignments(&inst.graph);
        assert_eq!(count_misplacements(&a, &a), 0);
    }

    #[test]
    fn early_terminated_flow_has_misplacements() {
        let spec = InstanceSpec {
            tasks: 120,
            machines: 12,
            slots_per_machine: 4,
            prefs_per_task: 4,
            ..InstanceSpec::default()
        };
        let mut partial = scheduling_instance(5, &spec);
        let opts = SolveOptions {
            iteration_limit: Some(30),
            ..Default::default()
        };
        let sol = crate::cost_scaling::solve(&mut partial.graph, &opts).unwrap();
        assert!(sol.terminated_early);
        let approx = task_assignments(&partial.graph);

        let mut full = scheduling_instance(5, &spec);
        crate::cost_scaling::solve(&mut full.graph, &SolveOptions::unlimited()).unwrap();
        let optimal = task_assignments(&full.graph);

        let misplaced = count_misplacements(&approx, &optimal);
        assert!(
            misplaced > 0,
            "a severely truncated run must misplace tasks"
        );
    }

    #[test]
    fn unscheduled_agreement_is_not_misplacement() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        a.insert(1, TaskAssignment::Unscheduled);
        b.insert(1, TaskAssignment::Unscheduled);
        a.insert(2, TaskAssignment::Machine(3));
        b.insert(2, TaskAssignment::Machine(3));
        assert_eq!(count_misplacements(&a, &b), 0);
    }

    #[test]
    fn wrong_machine_counts() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        a.insert(1, TaskAssignment::Machine(0));
        b.insert(1, TaskAssignment::Machine(4));
        a.insert(2, TaskAssignment::Unscheduled);
        b.insert(2, TaskAssignment::Machine(1));
        a.insert(3, TaskAssignment::Machine(7));
        b.insert(3, TaskAssignment::Unscheduled);
        assert_eq!(count_misplacements(&a, &b), 3);
    }
}
