//! Deterministic canonicalization of degenerate optima.
//!
//! Min-cost scheduling flows are almost always degenerate: equal-cost
//! task ↔ machine assignments can be permuted freely, so equally-optimal
//! solves that take different paths — warm vs cold, delta-fed vs
//! diff-based, relaxation vs cost scaling — produce *different* optimal
//! flows and hence different (equally good) placements. That is correct
//! but unreproducible: CI can only assert objective equality, and
//! replaying a cluster trace twice through different solver paths yields
//! different placement logs.
//!
//! [`canonicalize_flow`] rewrites the graph's optimal flow into the
//! **canonical optimum**, a function of the graph alone — independent of
//! which solver (or which warm path) produced the input flow:
//!
//! 1. **Canonical potentials.** Bellman-Ford over the residual graph with
//!    all-zero initialization computes `d(v) = min over residual walks`
//!    — the greatest solution of the difference-constraint system
//!    `{d(v) ≤ d(u) + c(uv) for every residual arc, d ≤ 0}`. For any two
//!    optimal flows the feasible-potential polytope is the *same* set
//!    (complementary slackness holds between every optimal primal and
//!    every optimal dual), so its greatest element `d` is flow-path
//!    independent. A relaxation that still improves after `n` rounds
//!    means a negative residual cycle — the input was not optimal.
//! 2. **Forced arcs.** With `rc(a) = c(a) + d(src) − d(dst)`: arcs with
//!    `rc < 0` carry full capacity in every optimal flow (saturate them);
//!    arcs with `rc > 0` carry none (zero them). Arcs with `rc = 0` are
//!    the degenerate freedom — reset to zero.
//! 3. **Deterministic completion.** The remaining excesses are routed to
//!    the remaining deficits through the tight (`rc = 0`) subgraph with
//!    lexicographic BFS (lowest node index first, arcs in sorted id
//!    order). Every step is a pure function of the graph and `d`, so the
//!    output flow is too.
//!
//! The result is an optimal flow (same objective; only tight arcs carry
//! discretionary flow) that any two optimal inputs map to identically —
//! which upgrades cross-solver comparisons from "same objective" to
//! "same placements" (the fig11 CI smoke does exactly this).
//!
//! Cost: one Bellman-Ford plus one unit-augmenting max-flow over the
//! tight subgraph — comparable to a cold solve. This is a verification /
//! reproducibility tool, not a hot-path pass.

use crate::common::SolveError;
use firmament_flow::{ArcId, FlowGraph, NodeId};
use std::collections::VecDeque;

/// Replaces the graph's optimal flow with the canonical optimal flow (see
/// the [module docs](self)). Fails with [`SolveError::NotOptimal`] if the
/// current flow admits a negative-cost residual cycle, and
/// [`SolveError::Infeasible`] if the forced-arc pseudoflow cannot be
/// completed (impossible for a genuinely optimal input).
///
/// The flow is modified in place; node prices held by incremental solvers
/// for this graph remain valid certificates (any optimal dual certifies
/// any optimal primal), but flow-dependent caches should be rebuilt.
pub fn canonicalize_flow(graph: &mut FlowGraph) -> Result<(), SolveError> {
    let n = graph.node_bound();
    if n == 0 {
        return Ok(());
    }

    // Step 1: canonical potentials — greatest feasible d ≤ 0.
    let mut d = vec![0i64; n];
    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > n + 1 {
            return Err(SolveError::NotOptimal);
        }
        for u in graph.node_ids() {
            let du = d[u.index()];
            for &a in graph.adj(u) {
                if graph.rescap(a) > 0 {
                    let v = graph.dst(a);
                    let nd = du + graph.cost(a);
                    if nd < d[v.index()] {
                        d[v.index()] = nd;
                        changed = true;
                    }
                }
            }
        }
    }

    // Step 2: force the non-tight arcs, reset the tight ones.
    let rc = |g: &FlowGraph, a: ArcId| g.cost(a) + d[g.src(a).index()] - d[g.dst(a).index()];
    let arcs: Vec<ArcId> = graph.arc_ids().collect();
    for &a in &arcs {
        let r = rc(graph, a);
        if r < 0 {
            graph.set_flow(a, graph.capacity(a));
        } else {
            // rc > 0: forced empty. rc = 0: degenerate freedom, reset for
            // the deterministic completion below.
            graph.set_flow(a, 0);
        }
    }

    // Step 3: route excesses to deficits through the tight subgraph with
    // lexicographic BFS. Sorted adjacency copies make the traversal
    // independent of adjacency-list insertion history.
    let mut excess = graph.excesses();
    let mut sorted_adj: Vec<Vec<ArcId>> = vec![Vec::new(); n];
    for u in graph.node_ids() {
        let mut adj = graph.adj(u).to_vec();
        adj.sort_unstable();
        sorted_adj[u.index()] = adj;
    }
    let mut parent: Vec<Option<ArcId>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    let sources: Vec<usize> = (0..n)
        .filter(|&i| excess[i] > 0 && graph.node_alive(NodeId::from_index(i)))
        .collect();
    for src in sources {
        while excess[src] > 0 {
            // BFS from `src` through residual tight arcs to any deficit.
            for s in seen.iter_mut() {
                *s = false;
            }
            for p in parent.iter_mut() {
                *p = None;
            }
            queue.clear();
            queue.push_back(src as u32);
            seen[src] = true;
            let mut found: Option<usize> = None;
            'bfs: while let Some(ui) = queue.pop_front() {
                let u = NodeId::from_index(ui as usize);
                for &a in &sorted_adj[ui as usize] {
                    if graph.rescap(a) <= 0 || rc(graph, a) != 0 {
                        continue;
                    }
                    debug_assert_eq!(graph.src(a), u);
                    let v = graph.dst(a).index();
                    if seen[v] {
                        continue;
                    }
                    seen[v] = true;
                    parent[v] = Some(a);
                    if excess[v] < 0 {
                        found = Some(v);
                        break 'bfs;
                    }
                    queue.push_back(v as u32);
                }
            }
            let Some(t) = found else {
                // No tight path to a deficit: the input flow was not a
                // completable optimum.
                return Err(SolveError::Infeasible);
            };
            // Bottleneck along the path, capped by the endpoint balances.
            let mut delta = excess[src].min(-excess[t]);
            let mut v = t;
            while let Some(a) = parent[v] {
                delta = delta.min(graph.rescap(a));
                v = graph.src(a).index();
            }
            let mut v = t;
            while let Some(a) = parent[v] {
                graph.push_flow(a, delta);
                v = graph.src(a).index();
            }
            excess[src] -= delta;
            excess[t] += delta;
        }
    }
    debug_assert!(graph.excesses().iter().all(|&e| e == 0));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::SolveOptions;
    use crate::verify::is_optimal;
    use firmament_flow::testgen::{scheduling_instance, InstanceSpec};

    fn flows(g: &FlowGraph) -> Vec<(ArcId, i64)> {
        g.arc_ids().map(|a| (a, g.flow(a))).collect()
    }

    #[test]
    fn canonical_flow_is_optimal_and_objective_preserving() {
        for seed in 0..6 {
            let mut inst = scheduling_instance(seed, &InstanceSpec::default());
            crate::cost_scaling::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
            let objective = inst.graph.objective();
            canonicalize_flow(&mut inst.graph).unwrap();
            assert_eq!(inst.graph.objective(), objective, "seed {seed}");
            assert!(is_optimal(&inst.graph), "seed {seed}");
        }
    }

    #[test]
    fn different_solver_paths_canonicalize_identically() {
        for seed in 0..6 {
            let spec = InstanceSpec::default();
            // Three different paths to an optimum of the same graph.
            let mut a = scheduling_instance(seed, &spec);
            crate::cost_scaling::solve(&mut a.graph, &SolveOptions::unlimited()).unwrap();
            let mut b = scheduling_instance(seed, &spec);
            crate::relaxation::solve(&mut b.graph, &SolveOptions::unlimited()).unwrap();
            let mut c = scheduling_instance(seed, &spec);
            crate::ssp::solve(&mut c.graph, &SolveOptions::unlimited()).unwrap();
            canonicalize_flow(&mut a.graph).unwrap();
            canonicalize_flow(&mut b.graph).unwrap();
            canonicalize_flow(&mut c.graph).unwrap();
            assert_eq!(flows(&a.graph), flows(&b.graph), "seed {seed}: cs vs relax");
            assert_eq!(
                flows(&b.graph),
                flows(&c.graph),
                "seed {seed}: relax vs ssp"
            );
        }
    }

    #[test]
    fn warm_and_cold_paths_canonicalize_identically() {
        for seed in [1, 4, 9] {
            let spec = InstanceSpec::default();
            let mut warm_inst = scheduling_instance(seed, &spec);
            let mut inc = crate::incremental::IncrementalCostScaling::default();
            inc.solve(&mut warm_inst.graph, &SolveOptions::unlimited())
                .unwrap();
            // Perturb some costs, then warm-resolve.
            let arcs: Vec<ArcId> = warm_inst.graph.arc_ids().collect();
            warm_inst.graph.set_arc_cost(arcs[3], 7).unwrap();
            warm_inst.graph.set_arc_cost(arcs[13], 90).unwrap();
            inc.solve(&mut warm_inst.graph, &SolveOptions::unlimited())
                .unwrap();
            // Cold path on an identical graph.
            let mut cold = warm_inst.graph.clone();
            crate::cost_scaling::solve(&mut cold, &SolveOptions::unlimited()).unwrap();

            canonicalize_flow(&mut warm_inst.graph).unwrap();
            canonicalize_flow(&mut cold).unwrap();
            assert_eq!(
                flows(&warm_inst.graph),
                flows(&cold),
                "seed {seed}: warm and cold optima must canonicalize to the same flow"
            );
        }
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let mut inst = scheduling_instance(2, &InstanceSpec::default());
        crate::cost_scaling::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        canonicalize_flow(&mut inst.graph).unwrap();
        let once = flows(&inst.graph);
        canonicalize_flow(&mut inst.graph).unwrap();
        assert_eq!(once, flows(&inst.graph));
    }

    #[test]
    fn non_optimal_flow_is_rejected() {
        use firmament_flow::NodeKind;
        // A 2-cycle of flow with negative total residual cost: t → m is
        // saturated at cost 5 while a parallel cheap arc is empty, so the
        // residual graph has the cycle (reverse expensive, forward cheap)
        // with cost −5 + 1 < 0.
        let mut g = FlowGraph::new();
        let t = g.add_node(NodeKind::Task { task: 0 }, 1);
        let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        let s = g.add_node(NodeKind::Sink, -1);
        let expensive = g.add_arc(t, m, 1, 5).unwrap();
        let _cheap = g.add_arc(t, m, 1, 1).unwrap();
        let ms = g.add_arc(m, s, 1, 0).unwrap();
        g.push_flow(expensive, 1);
        g.push_flow(ms, 1);
        assert_eq!(
            canonicalize_flow(&mut g),
            Err(SolveError::NotOptimal),
            "negative residual cycle must be detected"
        );
    }
}
