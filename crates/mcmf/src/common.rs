//! Shared solver types: options, statistics, solutions, and errors.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which MCMF algorithm produced a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Cycle canceling (Klein \[25\]).
    CycleCanceling,
    /// Successive shortest path (Ahuja–Magnanti–Orlin \[2\]).
    SuccessiveShortestPath,
    /// Relaxation (Bertsekas–Tseng \[4; 5\]).
    Relaxation,
    /// Cost scaling (Goldberg \[17–19\]).
    CostScaling,
    /// Incremental cost scaling (§5.2).
    IncrementalCostScaling,
    /// Incremental relaxation (§5.2).
    IncrementalRelaxation,
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AlgorithmKind::CycleCanceling => "cycle-canceling",
            AlgorithmKind::SuccessiveShortestPath => "successive-shortest-path",
            AlgorithmKind::Relaxation => "relaxation",
            AlgorithmKind::CostScaling => "cost-scaling",
            AlgorithmKind::IncrementalCostScaling => "incremental-cost-scaling",
            AlgorithmKind::IncrementalRelaxation => "incremental-relaxation",
        };
        f.write_str(s)
    }
}

/// Cooperative cancellation token shared between the speculative dual
/// executor and a running solver (§6.1).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, unset token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Returns `true` if cancellation was requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Options controlling a single solver run.
#[derive(Debug, Clone, Default)]
pub struct SolveOptions {
    /// Cooperative cancellation (checked periodically in inner loops).
    pub cancel: Option<CancelToken>,
    /// Wall-clock budget after which the solver stops early and returns the
    /// best pseudo-solution reached so far (`terminated_early = true`); used
    /// by the approximate-MCMF experiment (§5.1, Fig 10).
    pub time_limit: Option<Duration>,
    /// Iteration budget with the same early-termination semantics as
    /// `time_limit` (an "iteration" is algorithm-specific: an augmentation,
    /// a canceled cycle, or a push/relabel step).
    pub iteration_limit: Option<u64>,
}

impl SolveOptions {
    /// Options that simply run the algorithm to optimality.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Options with a cancellation token attached.
    pub fn with_cancel(token: CancelToken) -> Self {
        SolveOptions {
            cancel: Some(token),
            ..Self::default()
        }
    }
}

/// Outcome statistics for a solver run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Algorithm-specific iteration count (augmentations, canceled cycles,
    /// or pushes).
    pub iterations: u64,
    /// Relabel / price-rise operations.
    pub price_updates: u64,
    /// Scaling phases (cost scaling only).
    pub phases: u64,
    /// Flow augmentations performed.
    pub augmentations: u64,
    /// Node activations (entries into a discharge work queue). For
    /// delta-fed incremental solves this is the honest "how much of the
    /// graph did the solver visit" measure: it scales with the change
    /// size, not the graph size.
    pub nodes_touched: u64,
    /// Warm-start safety-valve trips: the warm attempt exceeded its work
    /// bound (or hit a spurious infeasibility) and the solver fell back to
    /// a from-scratch solve.
    pub bailouts: u64,
}

/// A completed (or early-terminated) solver run.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Which algorithm produced this solution.
    pub algorithm: AlgorithmKind,
    /// Objective value `Σ c_ij · f_ij` of the flow left in the graph.
    pub objective: i64,
    /// `true` if the run stopped on a time or iteration budget before
    /// reaching a provably optimal feasible flow.
    pub terminated_early: bool,
    /// Wall-clock runtime of the solve call.
    pub runtime: Duration,
    /// Operation counts.
    pub stats: SolveStats,
}

/// Errors from a solver run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Not all supply can reach the sinks (or supplies are unbalanced).
    Infeasible,
    /// The run was cancelled via its [`CancelToken`].
    Cancelled,
    /// Supplies do not sum to zero, so no feasible flow exists.
    UnbalancedSupply {
        /// The non-zero total supply.
        total: i64,
    },
    /// The operation requires an optimal flow but the graph's current
    /// flow admits a negative-cost residual cycle (e.g.
    /// [`canonicalize_flow`](crate::canonical::canonicalize_flow) called
    /// on a non-optimal or early-terminated solution).
    NotOptimal,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "no feasible flow routes all supply"),
            SolveError::Cancelled => write!(f, "solve cancelled"),
            SolveError::UnbalancedSupply { total } => {
                write!(f, "supplies sum to {total}, not zero")
            }
            SolveError::NotOptimal => {
                write!(f, "the graph's flow is not optimal")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Deadline/budget tracking shared by the solver inner loops.
#[derive(Debug)]
pub(crate) struct Budget {
    start: Instant,
    deadline: Option<Instant>,
    iteration_limit: Option<u64>,
    cancel: Option<CancelToken>,
    pub(crate) iterations: u64,
    check_mask: u64,
}

/// Why a budget check tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BudgetStop {
    /// Cancelled via token: abort with an error.
    Cancelled,
    /// Budget exhausted: stop early, keep partial state.
    Exhausted,
}

impl Budget {
    pub(crate) fn new(opts: &SolveOptions) -> Self {
        let start = Instant::now();
        Budget {
            start,
            deadline: opts.time_limit.map(|d| start + d),
            iteration_limit: opts.iteration_limit,
            cancel: opts.cancel.clone(),
            iterations: 0,
            // Check wall clock / cancel flag every 256 iterations to keep
            // the hot loops branch-cheap.
            check_mask: 0xFF,
        }
    }

    /// Counts one iteration and reports whether the run must stop.
    #[inline]
    pub(crate) fn tick(&mut self) -> Option<BudgetStop> {
        self.iterations += 1;
        if let Some(limit) = self.iteration_limit {
            if self.iterations > limit {
                return Some(BudgetStop::Exhausted);
            }
        }
        if self.iterations & self.check_mask == 0 {
            if let Some(c) = &self.cancel {
                if c.is_cancelled() {
                    return Some(BudgetStop::Cancelled);
                }
            }
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    return Some(BudgetStop::Exhausted);
                }
            }
        }
        None
    }

    pub(crate) fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_roundtrip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn budget_iteration_limit() {
        let opts = SolveOptions {
            iteration_limit: Some(10),
            ..Default::default()
        };
        let mut b = Budget::new(&opts);
        for _ in 0..10 {
            assert_eq!(b.tick(), None);
        }
        assert_eq!(b.tick(), Some(BudgetStop::Exhausted));
    }

    #[test]
    fn budget_cancellation_detected() {
        let token = CancelToken::new();
        let opts = SolveOptions::with_cancel(token.clone());
        let mut b = Budget::new(&opts);
        token.cancel();
        // The flag is only polled every 256 ticks.
        let mut stopped = None;
        for _ in 0..512 {
            if let Some(s) = b.tick() {
                stopped = Some(s);
                break;
            }
        }
        assert_eq!(stopped, Some(BudgetStop::Cancelled));
    }

    #[test]
    fn algorithm_kind_display() {
        assert_eq!(AlgorithmKind::Relaxation.to_string(), "relaxation");
        assert_eq!(AlgorithmKind::CostScaling.to_string(), "cost-scaling");
    }
}
