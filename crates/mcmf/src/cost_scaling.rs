//! Cost scaling (Goldberg [17–19]): ε-optimality push/relabel scaling.
//!
//! Cost scaling iterates to reduce cost while maintaining feasibility, using
//! the relaxed complementary slackness condition called ε-optimality (§4):
//! a flow is ε-optimal if no residual arc has reduced cost below −ε.
//! Initially ε equals the maximum arc cost; each `refine` phase divides it
//! by the configurable α-factor until `1/n`-optimality — equivalent to full
//! optimality for integer costs — is reached.
//!
//! This is the algorithm behind Quincy's `cs2` solver; Firmament uses the
//! *incremental* variant (see [`crate::incremental`]) as its fallback
//! algorithm and runs it speculatively next to relaxation (§6.1).
//!
//! Sign conventions: reduced costs are `c^π(a) = c(a) + π(src) − π(dst)`;
//! prices only ever *decrease* (as in Goldberg's implementation), and a
//! residual arc is *admissible* when its reduced cost is negative.

use crate::common::{
    AlgorithmKind, Budget, BudgetStop, Solution, SolveError, SolveOptions, SolveStats,
};
use firmament_flow::{FlowGraph, NodeId};
use std::collections::VecDeque;

/// Tuning parameters for cost scaling.
#[derive(Debug, Clone)]
pub struct CostScalingConfig {
    /// The scale factor by which ε shrinks between phases. Quincy used the
    /// default of 2; the paper found α = 9 about 30 % faster on its graphs
    /// (§7.2, footnote 3).
    pub alpha: i64,
}

impl Default for CostScalingConfig {
    fn default() -> Self {
        CostScalingConfig { alpha: 2 }
    }
}

/// Persistent cost-scaling state, reusable across incremental runs (§5.2).
#[derive(Debug, Clone, Default)]
pub struct CostScalingState {
    /// Node prices in *scaled* cost units, indexed by raw node index.
    pub potentials: Vec<i64>,
    /// The internal cost multiplier `F`: all reduced costs are computed on
    /// `F · c(a)` so that integer ε < 1 certifies optimality when `F > n`.
    pub scale: i64,
}

impl CostScalingState {
    /// Ensures the state covers a graph with `node_bound` raw node slots and
    /// that the scale exceeds the node count (rescaling prices exactly if
    /// the graph has grown past the old scale).
    pub fn fit(&mut self, node_bound: usize) {
        let needed = next_pow2(node_bound as i64 + 2);
        if self.scale == 0 {
            self.scale = needed;
        } else if needed > self.scale {
            let ratio = needed / self.scale;
            for p in &mut self.potentials {
                *p *= ratio;
            }
            self.scale = needed;
        }
        if self.potentials.len() < node_bound {
            self.potentials.resize(node_bound, 0);
        }
    }
}

fn next_pow2(x: i64) -> i64 {
    let mut p = 1i64;
    while p < x {
        p <<= 1;
    }
    p
}

/// Solves min-cost max-flow by cost scaling from scratch.
///
/// # Examples
///
/// ```
/// use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
/// use firmament_mcmf::{cost_scaling, SolveOptions};
///
/// let mut inst = scheduling_instance(1, &InstanceSpec::default());
/// let sol = cost_scaling::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
/// assert!(firmament_mcmf::verify::is_optimal(&inst.graph));
/// # let _ = sol;
/// ```
pub fn solve(graph: &mut FlowGraph, opts: &SolveOptions) -> Result<Solution, SolveError> {
    solve_with(graph, opts, &CostScalingConfig::default())
}

/// Solves from scratch with explicit configuration.
pub fn solve_with(
    graph: &mut FlowGraph,
    opts: &SolveOptions,
    config: &CostScalingConfig,
) -> Result<Solution, SolveError> {
    let mut state = CostScalingState::default();
    graph.reset_flow();
    state.fit(graph.node_bound());
    let eps0 = state.scale * graph.max_cost();
    let sol = run_phases(graph, opts, config, &mut state, eps0)?;
    Ok(Solution {
        algorithm: AlgorithmKind::CostScaling,
        ..sol
    })
}

/// Runs the ε-scaling phase loop starting from `eps0`, reusing `state`'s
/// prices. The flow currently in the graph is treated as a pseudoflow; on
/// success the graph holds an optimal feasible flow.
///
/// This is the shared engine for both from-scratch and incremental cost
/// scaling: the only difference is the starting ε and the prices.
pub fn run_phases(
    graph: &mut FlowGraph,
    opts: &SolveOptions,
    config: &CostScalingConfig,
    state: &mut CostScalingState,
    eps0: i64,
) -> Result<Solution, SolveError> {
    let mut budget = Budget::new(opts);
    let mut stats = SolveStats::default();
    let total: i64 = graph.node_ids().map(|v| graph.supply(v)).sum();
    if total != 0 {
        return Err(SolveError::UnbalancedSupply { total });
    }
    state.fit(graph.node_bound());
    let alpha = config.alpha.max(2);
    let mut eps = eps0.max(1);
    loop {
        stats.phases += 1;
        match refine(graph, state, eps, &mut budget, &mut stats) {
            Ok(()) => {}
            Err(RefineStop::Cancelled) => return Err(SolveError::Cancelled),
            Err(RefineStop::Infeasible) => return Err(SolveError::Infeasible),
            Err(RefineStop::Exhausted) => {
                stats.iterations = budget.iterations;
                return Ok(Solution {
                    algorithm: AlgorithmKind::CostScaling,
                    objective: graph.objective(),
                    terminated_early: true,
                    runtime: budget.elapsed(),
                    stats,
                });
            }
        }
        if eps == 1 {
            break;
        }
        eps = (eps / alpha).max(1);
    }
    stats.iterations = budget.iterations;
    Ok(Solution {
        algorithm: AlgorithmKind::CostScaling,
        objective: graph.objective(),
        terminated_early: false,
        runtime: budget.elapsed(),
        stats,
    })
}

pub(crate) enum RefineStop {
    Cancelled,
    Exhausted,
    Infeasible,
}

/// One `refine` phase: converts the current pseudoflow into an ε-optimal
/// feasible flow by saturating admissible arcs and then discharging active
/// nodes FIFO with push/relabel.
fn refine(
    graph: &mut FlowGraph,
    state: &mut CostScalingState,
    eps: i64,
    budget: &mut Budget,
    stats: &mut SolveStats,
) -> Result<(), RefineStop> {
    let n = graph.node_bound();
    let scale = state.scale;
    let pot = &mut state.potentials;

    // Saturate every residual arc with negative reduced cost; afterwards the
    // pseudoflow is 0-optimal (hence ε-optimal) with respect to `pot`.
    let nodes: Vec<NodeId> = graph.node_ids().collect();
    for &u in &nodes {
        // Collect first: pushing mutates residual capacities, and the push
        // on arc `a` only affects `a` and its sister, never other arcs of u.
        let arcs: Vec<_> = graph.adj(u).to_vec();
        for a in arcs {
            let r = graph.rescap(a);
            if r <= 0 {
                continue;
            }
            let v = graph.dst(a);
            let rc = scale * graph.cost(a) + pot[u.index()] - pot[v.index()];
            if rc < 0 {
                graph.push_flow(a, r);
            }
        }
    }

    let mut excess = graph.excesses();
    let mut active: VecDeque<u32> = VecDeque::new();
    let mut in_active = vec![false; n];
    for &u in &nodes {
        if excess[u.index()] > 0 {
            active.push_back(u.index() as u32);
            in_active[u.index()] = true;
            stats.nodes_touched += 1;
        }
    }
    let mut current_arc = vec![0usize; n];
    let mut relabeled = Vec::new();
    let mut touched = Vec::new();
    discharge(
        graph,
        state,
        eps,
        &mut excess,
        &mut active,
        &mut in_active,
        &mut current_arc,
        &mut relabeled,
        &mut touched,
        budget,
        stats,
    )
}

/// FIFO push/relabel discharge of the active set at ε: the shared engine
/// of [`refine`] (which seeds it with a global saturation pass) and the
/// delta-targeted warm phases in [`crate::incremental`] (which seed it
/// from the change feed).
///
/// Every node whose price drops is appended to `relabeled` — the targeted
/// phase loop uses this to grow its dirty region, since relabels are the
/// only way new reduced-cost violations appear. Every node *activated*
/// (entered into the work queue) is appended to `touched` — the warm
/// path's persistent scratch buffers use this for lazy clearing: only
/// entries named in `touched` (plus the caller's own dirty seeds) can
/// have been written, so restoring the all-clear invariant costs
/// O(activations) instead of O(n). Current-arc cursors stay valid across
/// calls that share `state`'s prices: an arc skipped by a cursor can only
/// become admissible when its tail is relabeled, which resets that
/// cursor.
#[allow(clippy::too_many_arguments)] // internal engine; the buffers are the point
pub(crate) fn discharge(
    graph: &mut FlowGraph,
    state: &mut CostScalingState,
    eps: i64,
    excess: &mut [i64],
    active: &mut VecDeque<u32>,
    in_active: &mut [bool],
    current_arc: &mut [usize],
    relabeled: &mut Vec<u32>,
    touched: &mut Vec<u32>,
    budget: &mut Budget,
    stats: &mut SolveStats,
) -> Result<(), RefineStop> {
    let n = graph.node_bound();
    let scale = state.scale;
    let pot = &mut state.potentials;
    // Price floor for infeasibility detection. From-scratch theory bounds
    // the drop per refine by 3·n·ε, but warm starts add two slack terms:
    // fresh nodes enter at price 0 above a landscape that sank over many
    // incremental rounds, and a single relabel may jump by a full scaled
    // arc cost. Truly unroutable excess sinks forever and still crosses
    // any finite floor. Computed lazily on the first relabel so quiescent
    // targeted repairs never pay the O(n + m) scan.
    let mut floor: Option<i64> = None;

    while let Some(ui) = active.pop_front() {
        let u = NodeId::from_index(ui as usize);
        in_active[ui as usize] = false;
        // Discharge u completely.
        while excess[ui as usize] > 0 {
            match budget.tick() {
                Some(BudgetStop::Cancelled) => return Err(RefineStop::Cancelled),
                Some(BudgetStop::Exhausted) => return Err(RefineStop::Exhausted),
                None => {}
            }
            let adj = graph.adj(u);
            if current_arc[ui as usize] < adj.len() {
                let a = adj[current_arc[ui as usize]];
                let r = graph.rescap(a);
                if r > 0 {
                    let v = graph.dst(a);
                    let rc = scale * graph.cost(a) + pot[ui as usize] - pot[v.index()];
                    if rc < 0 {
                        // Push along the admissible arc.
                        let delta = excess[ui as usize].min(r);
                        graph.push_flow(a, delta);
                        excess[ui as usize] -= delta;
                        let was = excess[v.index()];
                        excess[v.index()] += delta;
                        stats.augmentations += 1;
                        if was <= 0 && excess[v.index()] > 0 && !in_active[v.index()] {
                            active.push_back(v.index() as u32);
                            in_active[v.index()] = true;
                            touched.push(v.index() as u32);
                            stats.nodes_touched += 1;
                        }
                        continue;
                    }
                }
                current_arc[ui as usize] += 1;
            } else {
                // Relabel: lower u's price just enough to create an
                // admissible arc.
                let mut best = i64::MIN;
                for &a in graph.adj(u) {
                    if graph.rescap(a) > 0 {
                        let v = graph.dst(a);
                        let candidate = pot[v.index()] - scale * graph.cost(a);
                        if candidate > best {
                            best = candidate;
                        }
                    }
                }
                if best == i64::MIN {
                    // Excess with no residual out-arc can never be routed.
                    return Err(RefineStop::Infeasible);
                }
                pot[ui as usize] = best - eps;
                stats.price_updates += 1;
                current_arc[ui as usize] = 0;
                relabeled.push(ui);
                let floor = *floor.get_or_insert_with(|| {
                    let min_pot = graph.node_ids().map(|u| pot[u.index()]).min().unwrap_or(0);
                    let max_span = graph
                        .node_ids()
                        .map(|u| pot[u.index()])
                        .max()
                        .unwrap_or(0)
                        .saturating_sub(min_pot);
                    let slack = scale.saturating_mul(graph.max_cost() + 1);
                    min_pot
                        .saturating_sub((3 * (n as i64 + 1)).saturating_mul(eps.max(slack)))
                        .saturating_sub(max_span)
                        - 1
                });
                if pot[ui as usize] < floor {
                    return Err(RefineStop::Infeasible);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_eps_optimality, is_optimal};
    use firmament_flow::builder::figure5;
    use firmament_flow::testgen::{layered_instance, scheduling_instance, InstanceSpec};
    use firmament_flow::NodeKind;

    #[test]
    fn solves_figure5_optimally() {
        let (mut g, _, _) = figure5();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, 14);
        assert!(is_optimal(&g));
    }

    #[test]
    fn agrees_with_ssp_on_random_instances() {
        for seed in 0..10 {
            let spec = InstanceSpec {
                tasks: 60,
                machines: 15,
                slots_per_machine: 3,
                ..InstanceSpec::default()
            };
            let mut a = scheduling_instance(seed, &spec);
            let mut b = scheduling_instance(seed, &spec);
            let s1 = solve(&mut a.graph, &SolveOptions::unlimited()).unwrap();
            let s2 = crate::ssp::solve(&mut b.graph, &SolveOptions::unlimited()).unwrap();
            assert_eq!(s1.objective, s2.objective, "seed {seed}");
            assert!(is_optimal(&a.graph), "seed {seed}");
        }
    }

    #[test]
    fn agrees_on_layered_graphs() {
        for seed in 0..5 {
            let mut a = layered_instance(seed, 15, 5, 6);
            let mut b = layered_instance(seed, 15, 5, 6);
            let s1 = solve(&mut a, &SolveOptions::unlimited()).unwrap();
            let s2 = crate::ssp::solve(&mut b, &SolveOptions::unlimited()).unwrap();
            assert_eq!(s1.objective, s2.objective, "seed {seed}");
        }
    }

    #[test]
    fn alpha_factor_variants_agree() {
        for alpha in [2, 4, 9, 16] {
            let mut inst = scheduling_instance(3, &InstanceSpec::default());
            let cfg = CostScalingConfig { alpha };
            let sol = solve_with(&mut inst.graph, &SolveOptions::unlimited(), &cfg).unwrap();
            assert!(is_optimal(&inst.graph), "alpha {alpha}");
            // All α values must find the same optimal objective.
            let mut reference = scheduling_instance(3, &InstanceSpec::default());
            let r = crate::ssp::solve(&mut reference.graph, &SolveOptions::unlimited()).unwrap();
            assert_eq!(sol.objective, r.objective, "alpha {alpha}");
        }
    }

    #[test]
    fn final_prices_certify_eps_optimality() {
        let mut inst = scheduling_instance(5, &InstanceSpec::default());
        let mut state = CostScalingState::default();
        inst.graph.reset_flow();
        state.fit(inst.graph.node_bound());
        let eps0 = state.scale * inst.graph.max_cost();
        run_phases(
            &mut inst.graph,
            &SolveOptions::unlimited(),
            &CostScalingConfig::default(),
            &mut state,
            eps0,
        )
        .unwrap();
        // At termination the flow is 1-optimal in scaled costs.
        let scaled_costs: Vec<i64> = inst
            .graph
            .arc_ids()
            .map(|a| inst.graph.cost(a) * state.scale)
            .collect();
        let _ = scaled_costs;
        // Check via the unscaled ε: rc_scaled >= -1 ⇒ rc >= -1/scale > -1,
        // so integer reduced costs are >= 0 after dividing prices by scale.
        // We verify through the negative-cycle criterion instead.
        assert!(is_optimal(&inst.graph));
        // The scaled prices must certify eps=1 optimality on scaled costs.
        let n = inst.graph.node_bound();
        let mut ok = true;
        for u in inst.graph.node_ids() {
            for &a in inst.graph.adj(u) {
                if inst.graph.rescap(a) > 0 {
                    let v = inst.graph.dst(a);
                    let rc = state.scale * inst.graph.cost(a) + state.potentials[u.index()]
                        - state.potentials[v.index()];
                    if rc < -1 {
                        ok = false;
                    }
                }
            }
        }
        assert!(ok, "scaled prices violate 1-optimality");
        let _ = n;
        let _ = check_eps_optimality;
    }

    #[test]
    fn state_rescaling_is_exact() {
        let mut s = CostScalingState {
            potentials: vec![4, -8, 12],
            scale: 4,
        };
        s.fit(30); // needs scale ≥ 32
        assert_eq!(s.scale, 32);
        assert_eq!(s.potentials[..3], [32, -64, 96]);
        assert_eq!(s.potentials.len(), 30);
    }

    #[test]
    fn zero_cost_graph_reduces_to_max_flow() {
        let mut g = FlowGraph::new();
        let t0 = g.add_node(NodeKind::Task { task: 0 }, 1);
        let t1 = g.add_node(NodeKind::Task { task: 1 }, 1);
        let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        let s = g.add_node(NodeKind::Sink, -2);
        g.add_arc(t0, m, 1, 0).unwrap();
        g.add_arc(t1, m, 1, 0).unwrap();
        g.add_arc(m, s, 2, 0).unwrap();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, 0);
        assert!(firmament_flow::validate::check_feasible(&g).is_empty());
    }

    #[test]
    fn infeasible_instance_detected() {
        let mut g = FlowGraph::new();
        let t = g.add_node(NodeKind::Task { task: 0 }, 2);
        let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        let s = g.add_node(NodeKind::Sink, -2);
        g.add_arc(t, m, 2, 1).unwrap();
        g.add_arc(m, s, 1, 0).unwrap();
        assert!(matches!(
            solve(&mut g, &SolveOptions::unlimited()),
            Err(SolveError::Infeasible)
        ));
    }

    #[test]
    fn early_termination_reports_partial() {
        let spec = InstanceSpec {
            tasks: 100,
            machines: 20,
            ..InstanceSpec::default()
        };
        let mut inst = scheduling_instance(11, &spec);
        let opts = SolveOptions {
            iteration_limit: Some(50),
            ..Default::default()
        };
        let sol = solve(&mut inst.graph, &opts).unwrap();
        assert!(sol.terminated_early);
    }
}
