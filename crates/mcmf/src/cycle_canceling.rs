//! Cycle canceling (Klein \[25\]): the simplest MCMF algorithm.
//!
//! The algorithm first computes a feasible (max-flow) solution, then
//! repeatedly augments flow along negative-cost directed cycles in the
//! residual network until none remain (negative cycle optimality, §4).
//! It always maintains feasibility and works towards optimality (Table 2).

use crate::common::{
    AlgorithmKind, Budget, BudgetStop, Solution, SolveError, SolveOptions, SolveStats,
};
use crate::maxflow::dinic_max_flow;
use firmament_flow::{ArcId, FlowGraph, NodeId, NodeKind};
use std::collections::VecDeque;

/// Solves min-cost max-flow by cycle canceling, leaving the optimal flow in
/// the graph.
///
/// # Examples
///
/// ```
/// use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
/// use firmament_mcmf::{cycle_canceling, SolveOptions};
///
/// let mut inst = scheduling_instance(1, &InstanceSpec::default());
/// let sol = cycle_canceling::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
/// assert!(!sol.terminated_early);
/// ```
pub fn solve(graph: &mut FlowGraph, opts: &SolveOptions) -> Result<Solution, SolveError> {
    let mut budget = Budget::new(opts);
    let mut stats = SolveStats::default();
    let total: i64 = graph.node_ids().map(|v| graph.supply(v)).sum();
    if total != 0 {
        return Err(SolveError::UnbalancedSupply { total });
    }

    // Phase 1: a feasible flow via max flow from a super-source.
    graph.reset_flow();
    let was_tracking = graph.tracks_changes();
    graph.set_change_tracking(false);
    let supplies: Vec<(NodeId, i64)> = graph
        .node_ids()
        .map(|v| (v, graph.supply(v)))
        .filter(|&(_, s)| s != 0)
        .collect();
    let need: i64 = supplies
        .iter()
        .filter(|&&(_, s)| s > 0)
        .map(|&(_, s)| s)
        .sum();
    let ss = graph.add_node(NodeKind::Other { tag: u64::MAX }, 0);
    let tt = graph.add_node(NodeKind::Other { tag: u64::MAX - 1 }, 0);
    let mut helper_arcs = Vec::new();
    for &(v, s) in &supplies {
        let a = if s > 0 {
            graph.add_arc(ss, v, s, 0).expect("supply arc")
        } else {
            graph.add_arc(v, tt, -s, 0).expect("demand arc")
        };
        helper_arcs.push(a);
    }
    let value = dinic_max_flow(graph, ss, tt);
    // Remove the helpers but keep the feasible flow on the real arcs; the
    // helper arcs are saturated, so deleting them leaves exactly the
    // supply/demand imbalance the node supplies `b(i)` account for.
    graph.remove_node(ss).expect("super source");
    graph.remove_node(tt).expect("super sink");
    graph.set_change_tracking(was_tracking);
    if value != need {
        return Err(SolveError::Infeasible);
    }

    // Phase 2: cancel negative cycles until none remain.
    loop {
        match budget.tick() {
            Some(BudgetStop::Cancelled) => return Err(SolveError::Cancelled),
            Some(BudgetStop::Exhausted) => {
                return Ok(finish(graph, stats, budget, true));
            }
            None => {}
        }
        match find_negative_cycle(graph) {
            Some(cycle) => {
                let bottleneck = cycle
                    .iter()
                    .map(|&a| graph.rescap(a))
                    .min()
                    .expect("cycle is non-empty");
                debug_assert!(bottleneck > 0);
                for &a in &cycle {
                    graph.push_flow(a, bottleneck);
                }
                stats.augmentations += 1;
            }
            None => return Ok(finish(graph, stats, budget, false)),
        }
    }
}

fn finish(graph: &FlowGraph, mut stats: SolveStats, budget: Budget, early: bool) -> Solution {
    stats.iterations = budget.iterations;
    Solution {
        algorithm: AlgorithmKind::CycleCanceling,
        objective: graph.objective(),
        terminated_early: early,
        runtime: budget.elapsed(),
        stats,
    }
}

/// Finds one negative-cost cycle in the residual network via SPFA with a
/// relaxation budget, or returns `None` if the flow is optimal.
fn find_negative_cycle(graph: &FlowGraph) -> Option<Vec<ArcId>> {
    let n = graph.node_bound();
    let mut dist = vec![0i64; n];
    let mut pred: Vec<Option<ArcId>> = vec![None; n];
    let mut len = vec![0u32; n];
    let mut in_queue = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for v in graph.node_ids() {
        in_queue[v.index()] = true;
        queue.push_back(v.index() as u32);
    }
    while let Some(ui) = queue.pop_front() {
        in_queue[ui as usize] = false;
        let u = NodeId::from_index(ui as usize);
        if !graph.node_alive(u) {
            continue;
        }
        for &a in graph.adj(u) {
            if graph.rescap(a) <= 0 {
                continue;
            }
            let v = graph.dst(a);
            let nd = dist[ui as usize] + graph.cost(a);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                pred[v.index()] = Some(a);
                len[v.index()] = len[ui as usize] + 1;
                // A shortest path longer than n arcs implies a cycle on the
                // predecessor chain.
                if len[v.index()] as usize > n {
                    return Some(walk_cycle(graph, &pred, v));
                }
                if !in_queue[v.index()] {
                    in_queue[v.index()] = true;
                    queue.push_back(v.index() as u32);
                }
            }
        }
    }
    None
}

fn walk_cycle(graph: &FlowGraph, pred: &[Option<ArcId>], start: NodeId) -> Vec<ArcId> {
    let n = pred.len();
    let mut v = start;
    for _ in 0..n {
        if let Some(a) = pred[v.index()] {
            v = graph.src(a);
        }
    }
    let anchor = v;
    let mut cycle = Vec::new();
    loop {
        let a = pred[v.index()].expect("cycle nodes have predecessors");
        cycle.push(a);
        v = graph.src(a);
        if v == anchor {
            break;
        }
    }
    cycle.reverse();
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_optimal;
    use firmament_flow::builder::figure5;
    use firmament_flow::testgen::{scheduling_instance, InstanceSpec};

    #[test]
    fn solves_figure5() {
        let (mut g, _, _) = figure5();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert!(!sol.terminated_early);
        assert!(is_optimal(&g), "cycle canceling must reach optimality");
        // Fig 5's optimal solution schedules 4 of 5 tasks; recomputing by
        // hand: T00→M0 (2), T02→M1 (1), T10→M2 (4), T11→M3 (2), T01
        // unscheduled (5) = 14.
        assert_eq!(sol.objective, 14);
    }

    #[test]
    fn solves_small_random_instances() {
        for seed in 0..3 {
            let spec = InstanceSpec {
                tasks: 20,
                machines: 8,
                ..InstanceSpec::default()
            };
            let mut inst = scheduling_instance(seed, &spec);
            let sol = solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
            assert!(is_optimal(&inst.graph), "seed {seed}");
            assert_eq!(sol.objective, inst.graph.objective());
        }
    }

    #[test]
    fn unbalanced_supply_rejected() {
        let mut g = FlowGraph::new();
        g.add_node(NodeKind::Task { task: 0 }, 1);
        assert!(matches!(
            solve(&mut g, &SolveOptions::unlimited()),
            Err(SolveError::UnbalancedSupply { total: 1 })
        ));
    }

    #[test]
    fn infeasible_instance_detected() {
        let mut g = FlowGraph::new();
        let t = g.add_node(NodeKind::Task { task: 0 }, 2);
        let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        let s = g.add_node(NodeKind::Sink, -2);
        g.add_arc(t, m, 2, 1).unwrap();
        g.add_arc(m, s, 1, 0).unwrap();
        assert!(matches!(
            solve(&mut g, &SolveOptions::unlimited()),
            Err(SolveError::Infeasible)
        ));
    }

    #[test]
    fn early_termination_keeps_feasibility() {
        // Cycle canceling is feasible at every step (Table 2), so stopping
        // early must still leave a feasible flow.
        let spec = InstanceSpec {
            tasks: 40,
            machines: 10,
            ..InstanceSpec::default()
        };
        let mut inst = scheduling_instance(9, &spec);
        let opts = SolveOptions {
            iteration_limit: Some(2),
            ..Default::default()
        };
        let sol = solve(&mut inst.graph, &opts).unwrap();
        if sol.terminated_early {
            assert!(firmament_flow::validate::check_feasible(&inst.graph).is_empty());
        }
    }
}
