//! The speculative dual-algorithm executor (§6.1).
//!
//! Firmament's MCMF solver always runs relaxation *and* incremental cost
//! scaling concurrently and picks the solution of whichever finishes first.
//! In the common case relaxation wins; having cost scaling as well bounds
//! placement latency in the edge cases where relaxation degenerates (high
//! utilization, §4.3). Running both is cheap — the algorithms are
//! single-threaded — and avoids a brittle choice heuristic that would
//! depend on both scheduling policy and cluster utilization.
//!
//! After each round the loser is cancelled cooperatively; if relaxation
//! won, its solution is handed to incremental cost scaling through price
//! refine (§6.2) so the *next* incremental run can warm-start.

use crate::common::{AlgorithmKind, CancelToken, Solution, SolveError, SolveOptions};
use crate::incremental::{IncrementalConfig, IncrementalCostScaling};
use crate::relaxation::{self, RelaxationConfig};
use firmament_flow::delta::DeltaBatch;
use firmament_flow::FlowGraph;

/// Which algorithms the dual solver may run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Both algorithms, first finisher wins (Firmament's default, §6.1).
    Dual,
    /// Relaxation only (the "Relaxation only" series of Fig 16/18).
    RelaxationOnly,
    /// Cost scaling only — this is the Quincy configuration (§7.1).
    CostScalingOnly,
}

/// Configuration for [`DualSolver`].
#[derive(Debug, Clone)]
pub struct DualConfig {
    /// Which algorithm(s) to run.
    pub kind: SolverKind,
    /// Relaxation tuning (arc prioritization).
    pub relaxation: RelaxationConfig,
    /// Incremental cost scaling tuning (α-factor, price refine on adopt).
    pub incremental: IncrementalConfig,
}

impl Default for DualConfig {
    fn default() -> Self {
        DualConfig {
            kind: SolverKind::Dual,
            relaxation: RelaxationConfig::default(),
            incremental: IncrementalConfig {
                price_refine_on_adopt: true,
                ..Default::default()
            },
        }
    }
}

/// The outcome of a dual solve: the winning algorithm's solution and the
/// graph holding its flow.
#[derive(Debug)]
pub struct DualOutcome {
    /// The winning solution.
    pub solution: Solution,
    /// The graph containing the winning flow (adopt this as the new
    /// authoritative graph; node/arc ids are preserved from the input).
    pub graph: FlowGraph,
    /// Which algorithm finished first.
    pub winner: AlgorithmKind,
    /// Statistics of the incremental cost-scaling run when it completed
    /// (even as the race loser) — the delta-fed warm-start telemetry
    /// (nodes touched, bailouts) surfaced on `RoundOutcome`.
    pub cs_stats: Option<crate::common::SolveStats>,
    /// `true` when a configured dual race was short-circuited because the
    /// round's delta batch was re-price-only and provably quiescent (no
    /// exposed reduced-cost violation): the warm cost-scaling path ran
    /// alone in O(Δ) and no relaxation thread was spawned. Always `false`
    /// for single-algorithm configurations (nothing was skipped).
    pub race_skipped: bool,
}

/// Firmament's MCMF solver: speculative execution of relaxation and
/// incremental cost scaling.
///
/// The solver owns the cost-scaling warm state across rounds. Borrowing
/// callers use [`solve`](Self::solve), which leaves the input graph
/// untouched (it can continue accumulating changes while the solver runs,
/// as in Fig 2b); callers that adopt the output — like the scheduler core
/// — use [`solve_owned`](Self::solve_owned), which moves the graph through
/// the solve instead of copying it every round.
#[derive(Debug)]
pub struct DualSolver {
    config: DualConfig,
    incremental: IncrementalCostScaling,
}

impl Default for DualSolver {
    fn default() -> Self {
        Self::new(DualConfig::default())
    }
}

impl DualSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: DualConfig) -> Self {
        let incremental = IncrementalCostScaling::new(config.incremental.clone());
        DualSolver {
            config,
            incremental,
        }
    }

    /// Returns the configured solver kind.
    pub fn kind(&self) -> SolverKind {
        self.config.kind
    }

    /// Solves the scheduling graph, returning the first-finishing solution.
    ///
    /// `opts` applies to both algorithms (time/iteration budgets are rarely
    /// used here; cancellation is managed internally). The input graph is
    /// left untouched; callers that immediately adopt the output graph
    /// should prefer [`solve_owned`](Self::solve_owned), which avoids one
    /// full graph copy per round.
    pub fn solve(
        &mut self,
        graph: &FlowGraph,
        opts: &SolveOptions,
    ) -> Result<DualOutcome, SolveError> {
        self.solve_owned(graph.clone(), opts).map_err(|(e, _)| e)
    }

    /// Like [`solve`](Self::solve), but takes ownership of the graph:
    /// single-algorithm configurations solve fully in place (zero copies)
    /// and the dual race clones once instead of twice. On failure the
    /// graph is handed back (possibly with partial flow) so the caller can
    /// restore its state.
    #[allow(clippy::result_large_err)] // the Err graph is the point: ownership returns on failure
    pub fn solve_owned(
        &mut self,
        graph: FlowGraph,
        opts: &SolveOptions,
    ) -> Result<DualOutcome, (SolveError, FlowGraph)> {
        self.solve_owned_with_deltas(graph, None, opts)
    }

    /// Like [`solve_owned`](Self::solve_owned), but hands the incremental
    /// cost-scaling side the typed change feed recorded since the last
    /// handoff, so its warm start consumes deltas natively instead of
    /// diffing the whole graph (relaxation ignores the feed).
    #[allow(clippy::result_large_err)] // see solve_owned
    pub fn solve_owned_with_deltas(
        &mut self,
        graph: FlowGraph,
        deltas: Option<&DeltaBatch>,
        opts: &SolveOptions,
    ) -> Result<DualOutcome, (SolveError, FlowGraph)> {
        match self.config.kind {
            SolverKind::RelaxationOnly => {
                let mut g = graph;
                match relaxation::solve_with(&mut g, opts, &self.config.relaxation) {
                    Ok(sol) => Ok(DualOutcome {
                        winner: sol.algorithm,
                        solution: sol,
                        graph: g,
                        cs_stats: None,
                        race_skipped: false,
                    }),
                    Err(e) => Err((e, g)),
                }
            }
            SolverKind::CostScalingOnly => {
                let mut g = graph;
                match self.incremental.solve_with_deltas(&mut g, deltas, opts) {
                    Ok(sol) => Ok(DualOutcome {
                        winner: sol.algorithm,
                        cs_stats: Some(sol.stats.clone()),
                        solution: sol,
                        graph: g,
                        race_skipped: false,
                    }),
                    Err(e) => Err((e, g)),
                }
            }
            SolverKind::Dual => self.solve_dual(graph, deltas, opts),
        }
    }

    #[allow(clippy::result_large_err)] // see solve_owned
    fn solve_dual(
        &mut self,
        graph: FlowGraph,
        deltas: Option<&DeltaBatch>,
        opts: &SolveOptions,
    ) -> Result<DualOutcome, (SolveError, FlowGraph)> {
        // Re-price-only short-circuit (ROADMAP "re-price-only rounds could
        // skip the solver race"): a round whose whole batch is cost drift
        // and exposes no reduced-cost violation — every change a cost rise
        // on a flowless arc, the common convex-ladder shape under rising
        // load — leaves the warm solver's certificate intact. The warm
        // path proves quiescence in O(Δ); spinning up the relaxation race
        // (plus its full graph clone) would only burn a cold solve to
        // reach the same optimum. Falls/flow-carrying rises may expose
        // violations, so those rounds still race.
        if let Some(batch) = deltas {
            if self.incremental.is_warm() && reprice_only_quiescent(&graph, batch) {
                let mut g = graph;
                return match self.incremental.solve_with_deltas(&mut g, deltas, opts) {
                    Ok(sol) => Ok(DualOutcome {
                        winner: sol.algorithm,
                        cs_stats: Some(sol.stats.clone()),
                        solution: sol,
                        graph: g,
                        race_skipped: true,
                    }),
                    Err(e) => Err((e, g)),
                };
            }
        }
        let cancel_relax = CancelToken::new();
        let cancel_cs = CancelToken::new();
        let mut relax_opts = opts.clone();
        relax_opts.cancel = Some(cancel_relax.clone());
        let mut cs_opts = opts.clone();
        cs_opts.cancel = Some(cancel_cs.clone());

        let relax_cfg = self.config.relaxation.clone();
        let incremental = &mut self.incremental;

        let (relax_result, cs_result) = std::thread::scope(|scope| {
            let mut g_relax = graph.clone();
            let mut g_cs = graph;
            let relax_handle = scope.spawn(move || {
                let r = relaxation::solve_with(&mut g_relax, &relax_opts, &relax_cfg);
                (r, g_relax)
            });
            let cs_handle = scope.spawn(move || {
                let r = incremental.solve_with_deltas(&mut g_cs, deltas, &cs_opts);
                (r, g_cs)
            });
            // Whichever thread finishes first cancels the other — but only
            // if it actually produced a solution: a failed finisher (e.g.
            // a spurious infeasibility from a warm start) must not abort
            // the algorithm that can still succeed. We poll with
            // `is_finished`; the inner loops check their token every 256
            // iterations.
            let mut relax_done: Option<(Result<Solution, SolveError>, FlowGraph)> = None;
            let mut cs_done: Option<(Result<Solution, SolveError>, FlowGraph)> = None;
            let mut relax_handle = Some(relax_handle);
            let mut cs_handle = Some(cs_handle);
            loop {
                if relax_done.is_none()
                    && relax_handle
                        .as_ref()
                        .map(|h| h.is_finished())
                        .unwrap_or(false)
                {
                    let r = relax_handle
                        .take()
                        .unwrap()
                        .join()
                        .expect("relaxation thread");
                    if r.0.is_ok() {
                        cancel_cs.cancel();
                    }
                    relax_done = Some(r);
                }
                if cs_done.is_none() && cs_handle.as_ref().map(|h| h.is_finished()).unwrap_or(false)
                {
                    let r = cs_handle
                        .take()
                        .unwrap()
                        .join()
                        .expect("cost-scaling thread");
                    if r.0.is_ok() {
                        cancel_relax.cancel();
                    }
                    cs_done = Some(r);
                }
                if relax_done.is_some() && cs_done.is_some() {
                    break;
                }
                std::thread::yield_now();
            }
            (relax_done.unwrap(), cs_done.unwrap())
        });

        // Prefer whichever produced a real (non-cancelled) solution; if
        // both finished, take the faster one.
        let cs_stats = match &cs_result {
            (Ok(cs), _) => Some(cs.stats.clone()),
            _ => None,
        };
        let outcome = match (relax_result, cs_result) {
            ((Ok(rs), rg), (Ok(cs), cg)) => {
                if rs.runtime <= cs.runtime {
                    DualOutcome {
                        winner: rs.algorithm,
                        solution: rs,
                        graph: rg,
                        cs_stats,
                        race_skipped: false,
                    }
                } else {
                    DualOutcome {
                        winner: cs.algorithm,
                        solution: cs,
                        graph: cg,
                        cs_stats,
                        race_skipped: false,
                    }
                }
            }
            ((Ok(rs), rg), (Err(_), _)) => DualOutcome {
                winner: rs.algorithm,
                solution: rs,
                graph: rg,
                cs_stats,
                race_skipped: false,
            },
            ((Err(_), _), (Ok(cs), cg)) => DualOutcome {
                winner: cs.algorithm,
                solution: cs,
                graph: cg,
                cs_stats,
                race_skipped: false,
            },
            ((Err(re), _), (Err(ce), cg)) => {
                // Both failed: propagate the more informative error and
                // hand a graph back so the caller can restore its state.
                let err = match (&re, &ce) {
                    (SolveError::Cancelled, e) => e.clone(),
                    (e, _) => e.clone(),
                };
                return Err((err, cg));
            }
        };

        // Handoff (§6.2): make sure the incremental solver can warm-start
        // from the winning flow next round.
        match outcome.winner {
            AlgorithmKind::Relaxation => {
                self.incremental.adopt_solution(&outcome.graph);
            }
            // The incremental solver already certifies its own solution —
            // but only the one in *its* clone. Re-adopt to be safe if it
            // lost the race and was cancelled.
            AlgorithmKind::IncrementalCostScaling | AlgorithmKind::CostScaling
                if !self.incremental.is_warm() =>
            {
                self.incremental.adopt_solution(&outcome.graph);
            }
            _ => {}
        }
        Ok(outcome)
    }
}

/// Whether a re-price-only batch provably exposes **no** reduced-cost
/// violation against the warm certificate, without consulting prices:
///
/// - a cost *rise* on a *flowless* arc only grows the forward reduced
///   cost, and the reverse residual has no capacity — nothing to repair;
/// - a cost *fall* may push the forward residual's reduced cost negative;
/// - a rise on a *flow-carrying* arc may do the same to the reverse
///   residual.
///
/// Only the first shape is accepted; it is exactly what convex-ladder
/// upper segments produce as load rises, so pure clock-advance rounds
/// qualify while anything that could move flow still races. (The warm
/// solver reaches the same conclusion from its prices; this check is the
/// cheap, price-free sufficient condition.)
fn reprice_only_quiescent(graph: &FlowGraph, batch: &DeltaBatch) -> bool {
    // The `_ => false` arm is `DeltaBatch::is_reprice_only` folded into
    // the single pass: any structural/capacity/flow delta disqualifies.
    batch.deltas().iter().all(|d| match *d {
        firmament_flow::delta::GraphDelta::CostChanged { arc, old, new } => {
            new >= old && graph.arc_alive(arc) && graph.flow(arc) == 0
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_optimal;
    use firmament_flow::testgen::{scheduling_instance, InstanceSpec};

    #[test]
    fn dual_solve_is_optimal() {
        let inst = scheduling_instance(1, &InstanceSpec::default());
        let mut solver = DualSolver::default();
        let out = solver
            .solve(&inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&out.graph));
        assert!(!out.solution.terminated_early);
    }

    #[test]
    fn all_kinds_agree_on_objective() {
        let inst = scheduling_instance(2, &InstanceSpec::default());
        let mut objectives = Vec::new();
        for kind in [
            SolverKind::Dual,
            SolverKind::RelaxationOnly,
            SolverKind::CostScalingOnly,
        ] {
            let mut solver = DualSolver::new(DualConfig {
                kind,
                ..Default::default()
            });
            let out = solver
                .solve(&inst.graph, &SolveOptions::unlimited())
                .unwrap();
            objectives.push(out.solution.objective);
        }
        assert_eq!(objectives[0], objectives[1]);
        assert_eq!(objectives[1], objectives[2]);
    }

    #[test]
    fn repeated_rounds_with_changes_stay_optimal() {
        let mut inst = scheduling_instance(3, &InstanceSpec::default());
        let mut solver = DualSolver::default();
        for round in 0..4 {
            let out = solver
                .solve(&inst.graph, &SolveOptions::unlimited())
                .unwrap();
            assert!(is_optimal(&out.graph), "round {round}");
            // Adopt the solution and mutate costs for the next round.
            inst.graph = out.graph;
            let arcs: Vec<_> = inst.graph.arc_ids().collect();
            let a = arcs[(round * 7 + 3) % arcs.len()];
            let c = inst.graph.cost(a);
            inst.graph.set_arc_cost(a, (c + 13) % 97 + 1).unwrap();
        }
    }

    #[test]
    fn input_graph_is_untouched() {
        let inst = scheduling_instance(4, &InstanceSpec::default());
        let before: Vec<i64> = inst.graph.arc_ids().map(|a| inst.graph.flow(a)).collect();
        let mut solver = DualSolver::default();
        let _ = solver
            .solve(&inst.graph, &SolveOptions::unlimited())
            .unwrap();
        let after: Vec<i64> = inst.graph.arc_ids().map(|a| inst.graph.flow(a)).collect();
        assert_eq!(before, after);
    }

    /// The re-price-only short-circuit (ROADMAP item): a warm round whose
    /// batch is all flowless cost rises must skip the relaxation race and
    /// run the warm path only — in O(Δ), touching nothing.
    #[test]
    fn reprice_only_round_skips_the_race() {
        let mut inst = scheduling_instance(21, &InstanceSpec::default());
        let mut solver = DualSolver::default();
        let out = solver
            .solve_owned(inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert!(!out.race_skipped, "first (structural) round races");
        inst.graph = out.graph;

        // Pure cost drift: raise every flowless non-sink arc, the shape a
        // convex ladder produces as load rises.
        inst.graph.set_change_tracking(true);
        let arcs: Vec<_> = inst.graph.arc_ids().collect();
        let mut bumped = 0;
        for a in arcs {
            if inst.graph.flow(a) == 0 && inst.graph.dst(a) != inst.sink {
                let c = inst.graph.cost(a);
                inst.graph.set_arc_cost(a, c + 7).unwrap();
                bumped += 1;
            }
        }
        assert!(bumped > 0);
        let batch = DeltaBatch::compact(inst.graph.take_changes());
        assert!(batch.is_reprice_only());
        let before = inst.graph.objective();
        let out = solver
            .solve_owned_with_deltas(inst.graph, Some(&batch), &SolveOptions::unlimited())
            .unwrap();
        assert!(out.race_skipped, "proven-quiescent round must not race");
        assert_eq!(out.winner, AlgorithmKind::IncrementalCostScaling);
        assert_eq!(out.solution.objective, before, "flow untouched");
        assert_eq!(
            out.cs_stats.as_ref().unwrap().nodes_touched,
            0,
            "warm path proves quiescence without repair work"
        );
        assert!(is_optimal(&out.graph));
    }

    /// A fully quiescent round (empty batch) also skips the race.
    #[test]
    fn empty_batch_round_skips_the_race() {
        let inst = scheduling_instance(22, &InstanceSpec::default());
        let mut solver = DualSolver::default();
        let out = solver
            .solve_owned(inst.graph, &SolveOptions::unlimited())
            .unwrap();
        let out = solver
            .solve_owned_with_deltas(
                out.graph,
                Some(&DeltaBatch::empty()),
                &SolveOptions::unlimited(),
            )
            .unwrap();
        assert!(out.race_skipped);
        assert!(is_optimal(&out.graph));
    }

    /// A cost *fall* (or a rise on a flow-carrying arc) may expose a
    /// violation, so those re-price-only rounds still run the full race —
    /// and still land on the re-priced optimum.
    #[test]
    fn exposing_repricings_still_race() {
        let mut inst = scheduling_instance(23, &InstanceSpec::default());
        let mut solver = DualSolver::default();
        let out = solver
            .solve_owned(inst.graph, &SolveOptions::unlimited())
            .unwrap();
        inst.graph = out.graph;
        inst.graph.set_change_tracking(true);
        // Make one flowless arc drastically cheaper: the optimum may move.
        let a = inst
            .graph
            .arc_ids()
            .find(|&a| {
                inst.graph.flow(a) == 0 && inst.graph.dst(a) != inst.sink && inst.graph.cost(a) > 0
            })
            .unwrap();
        inst.graph.set_arc_cost(a, 0).unwrap();
        let batch = DeltaBatch::compact(inst.graph.take_changes());
        assert!(batch.is_reprice_only(), "still a pure re-price batch");
        let out = solver
            .solve_owned_with_deltas(inst.graph, Some(&batch), &SolveOptions::unlimited())
            .unwrap();
        assert!(
            !out.race_skipped,
            "a cost fall can expose a violation — must race"
        );
        assert!(is_optimal(&out.graph));
        let mut fresh = out.graph.clone();
        let scratch = crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(out.solution.objective, scratch.objective);
    }

    #[test]
    fn cost_scaling_only_matches_quincy_semantics() {
        // Quincy = flow scheduling restricted to (incremental) cost scaling.
        let inst = scheduling_instance(5, &InstanceSpec::default());
        let mut solver = DualSolver::new(DualConfig {
            kind: SolverKind::CostScalingOnly,
            ..Default::default()
        });
        let out = solver
            .solve(&inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert_eq!(out.winner, AlgorithmKind::IncrementalCostScaling);
        assert!(is_optimal(&out.graph));
    }
}
