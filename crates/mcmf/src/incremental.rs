//! Incremental cost scaling (§5.2) and the efficient-task-removal heuristic
//! (§5.3.2).
//!
//! Cluster state changes little between scheduling runs, so the solver can
//! reuse its previous flow and prices instead of starting from scratch.
//! Incremental cost scaling keeps the previous prices, repairs the
//! complementary-slackness and feasibility violations that the recorded
//! graph changes introduced, and restarts the ε-scaling loop at an ε
//! proportional to the *largest violation* rather than the largest cost —
//! 25–50 % faster than from-scratch cost scaling (Fig 11).
//!
//! # The delta feed
//!
//! [`IncrementalCostScaling::solve_with_deltas`] consumes the typed
//! [`DeltaBatch`] the graph owner recorded since the last handoff, instead
//! of diffing the whole graph against its warm state:
//!
//! 1. **Targeted price refine on new nodes**: each node added since the
//!    last solve gets the price that makes its residual out-arcs
//!    non-violating (`π(u) = max_a π(dst a) − F·c(a)`). Without this, new
//!    nodes sit at price 0 above a landscape that sank over many rounds,
//!    their arcs report reduced-cost violations close to `F·C`, and the
//!    ε-schedule restarts from the top — the warm start degenerates into a
//!    from-scratch solve (the fig11 pathology).
//! 2. **Dirty-region violation scan**: the starting ε is the largest
//!    complementary-slackness violation over the residual out-arcs of the
//!    *dirty region* (nodes the batch names, endpoints of changed arcs,
//!    and nodes flow moves disturbed) — O(Σ degree) in the change size.
//!    Unchanged arcs elsewhere kept their reduced cost from the previous
//!    1-optimal certificate, so they cannot violate more than 1.
//! 3. **Arc-local pseudoflow repair**: feasibility damage (supply changes,
//!    removed flow-carrying arcs, capacity spills, drains) is computed as
//!    exact excesses by O(degree) local scans of the dirty nodes — never a
//!    full-graph excess pass.
//! 4. **Targeted ε-schedule**: ε shrinks by α per phase from the costliest
//!    change down to 1 exactly as in [`run_phases`] (§6.2), but each
//!    phase's saturation pass visits only arcs adjacent to the dirty
//!    region, which grows with the nodes discharge relabels. Per-round
//!    solver work therefore scales with the delta size, not the graph
//!    size.
//!
//! A **safety valve** bounds warm-start regressions: if the warm attempt
//! exceeds a configurable multiple of the last from-scratch solve's work
//! (iteration count), or hits a spurious warm-start infeasibility, the
//! solver resets its warm state and re-solves cold.

use crate::common::{AlgorithmKind, Budget, Solution, SolveError, SolveOptions, SolveStats};
use crate::cost_scaling::{run_phases, CostScalingConfig, CostScalingState, RefineStop};
use crate::price_refine::price_refine;
use firmament_flow::delta::{DeltaBatch, GraphDelta};
use firmament_flow::{ArcId, FlowGraph, NodeId};
use std::collections::VecDeque;

/// Configuration for incremental cost scaling.
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// Cost-scaling tuning (α-factor).
    pub cost_scaling: CostScalingConfig,
    /// Applies [`price_refine`] to the previous solution's prices before
    /// warm-starting (§6.2). Only has an effect when the previous prices
    /// came from a different algorithm (relaxation); see
    /// [`IncrementalCostScaling::adopt_solution`].
    pub price_refine_on_adopt: bool,
    /// Safety valve: a warm-started solve that exceeds this multiple of
    /// the last from-scratch solve's iteration count is abandoned — warm
    /// state is reset and the solve restarts cold. Bounds warm-start
    /// pathologies to `(k + 1)×` a cold solve. `None` disables the valve.
    pub warm_work_bailout: Option<u64>,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            cost_scaling: CostScalingConfig::default(),
            price_refine_on_adopt: false,
            warm_work_bailout: Some(4),
        }
    }
}

/// Persistent scratch for the delta-fed warm path: the O(n) excess /
/// active-marker / dirty-marker / current-arc-cursor arrays stay allocated
/// across solves, with **lazy clearing** — only the entries actually
/// written during a solve (the dirty seeds plus every node discharge
/// activated, reported via its `touched` list) are reset afterwards. A
/// quiescent round therefore costs zero allocation and zero memset; the
/// arrays are only ever grown, never reallocated per round.
#[derive(Debug, Default)]
struct WarmScratch {
    excess: Vec<i64>,
    in_active: Vec<bool>,
    in_dirty: Vec<bool>,
    current_arc: Vec<usize>,
    active: VecDeque<u32>,
    dirty: Vec<u32>,
    relabeled: Vec<u32>,
    /// Nodes activated by discharge this solve (possibly with duplicates);
    /// with `dirty`, the complete set of written entries.
    touched: Vec<u32>,
    arcbuf: Vec<ArcId>,
}

impl WarmScratch {
    /// Grows the per-node arrays to cover `n` raw node slots. Growth only:
    /// entries past the old length arrive in the all-clear state.
    fn fit(&mut self, n: usize) {
        if self.excess.len() < n {
            self.excess.resize(n, 0);
            self.in_active.resize(n, false);
            self.in_dirty.resize(n, false);
            self.current_arc.resize(n, 0);
        }
    }

    /// Restores the all-clear invariant by resetting exactly the entries
    /// this solve wrote — O(written), not O(n).
    fn clear(&mut self) {
        for i in 0..self.dirty.len() {
            let u = self.dirty[i] as usize;
            self.excess[u] = 0;
            self.in_active[u] = false;
            self.in_dirty[u] = false;
            self.current_arc[u] = 0;
        }
        for i in 0..self.touched.len() {
            let u = self.touched[i] as usize;
            self.excess[u] = 0;
            self.in_active[u] = false;
            self.in_dirty[u] = false;
            self.current_arc[u] = 0;
        }
        self.active.clear();
        self.dirty.clear();
        self.relabeled.clear();
        self.touched.clear();
        self.arcbuf.clear();
    }

    /// Whether the all-clear invariant holds (test oracle for the lazy
    /// clearing).
    #[cfg(test)]
    fn is_clean(&self) -> bool {
        self.active.is_empty()
            && self.dirty.is_empty()
            && self.relabeled.is_empty()
            && self.touched.is_empty()
            && self.excess.iter().all(|&e| e == 0)
            && self.in_active.iter().all(|&b| !b)
            && self.in_dirty.iter().all(|&b| !b)
            && self.current_arc.iter().all(|&c| c == 0)
    }
}

/// A reusable incremental cost-scaling solver.
///
/// Typical use inside Firmament: after each scheduling round, the winning
/// algorithm's flow is adopted via [`adopt_solution`](Self::adopt_solution);
/// on the next round the accumulated graph changes are already applied to
/// the graph and [`solve_with_deltas`](Self::solve_with_deltas) warm-starts
/// from the stored prices, guided by the recorded [`DeltaBatch`].
#[derive(Debug, Default)]
pub struct IncrementalCostScaling {
    config: IncrementalConfig,
    state: CostScalingState,
    /// Whether `state` currently certifies the adopted flow.
    warm: bool,
    /// Iteration count of the last completed from-scratch solve — the
    /// yardstick for the warm-work safety valve.
    last_cold_work: Option<u64>,
    /// Persistent warm-path buffers (lazily cleared between solves).
    scratch: WarmScratch,
}

impl IncrementalCostScaling {
    /// Creates a solver with the given configuration.
    pub fn new(config: IncrementalConfig) -> Self {
        IncrementalCostScaling {
            config,
            state: CostScalingState::default(),
            warm: false,
            last_cold_work: None,
            scratch: WarmScratch::default(),
        }
    }

    /// Returns `true` if the solver holds warm state from a prior solution.
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Read access to the internal prices (for tests and diagnostics).
    pub fn state(&self) -> &CostScalingState {
        &self.state
    }

    /// Adopts an optimal flow produced by another algorithm (typically
    /// relaxation, §6.2): computes prices certifying it so the next
    /// incremental run can warm-start.
    ///
    /// Must be called on the solution graph *before* new cluster changes are
    /// applied; this is what guarantees price refine can find prices that
    /// satisfy complementary slackness without modifying the flow.
    ///
    /// Returns `false` (and goes cold) if the flow is not optimal.
    pub fn adopt_solution(&mut self, solution_graph: &FlowGraph) -> bool {
        self.state.fit(solution_graph.node_bound());
        if self.config.price_refine_on_adopt {
            match price_refine(solution_graph, self.state.scale) {
                Some(prices) => {
                    self.state.potentials = prices;
                    self.warm = true;
                }
                None => {
                    self.warm = false;
                }
            }
        } else {
            // Without price refine we must drop warm state: we have no
            // prices for the foreign flow, so the next run is from scratch.
            self.warm = false;
        }
        self.warm
    }

    /// Marks the internal state as certifying the graph's current flow; used
    /// when this solver itself produced the last solution.
    pub fn mark_warm(&mut self) {
        self.warm = true;
    }

    /// Discards warm state; the next solve runs from scratch.
    pub fn reset(&mut self) {
        self.warm = false;
        self.state = CostScalingState::default();
    }

    /// Solves the graph, warm-starting from the stored prices when possible.
    ///
    /// The caller is expected to have already applied any cluster changes to
    /// `graph` (the flow left over from the previous round, clamped or
    /// disrupted by those changes, is the starting pseudoflow). When cold,
    /// this is identical to from-scratch cost scaling.
    ///
    /// Without a delta feed the warm start falls back to a full-graph
    /// violation scan; callers that track changes should prefer
    /// [`solve_with_deltas`](Self::solve_with_deltas).
    pub fn solve(
        &mut self,
        graph: &mut FlowGraph,
        opts: &SolveOptions,
    ) -> Result<Solution, SolveError> {
        self.solve_with_deltas(graph, None, opts)
    }

    /// Solves the graph, warm-starting natively from the recorded change
    /// feed (see the module docs for the four-step delta path).
    pub fn solve_with_deltas(
        &mut self,
        graph: &mut FlowGraph,
        deltas: Option<&DeltaBatch>,
        opts: &SolveOptions,
    ) -> Result<Solution, SolveError> {
        self.state.fit(graph.node_bound());
        if !self.warm {
            return self.cold_solve(graph, opts);
        }
        // Cap the warm attempt's work at a multiple of the last cold solve
        // so a pathological warm start cannot cost more than (k + 1)× a
        // from-scratch run.
        let valve = self
            .config
            .warm_work_bailout
            .map(|k| k.saturating_mul(self.cold_work_reference(graph)));
        let mut warm_opts = opts.clone();
        warm_opts.iteration_limit = match (opts.iteration_limit, valve) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let attempt = match deltas {
            Some(batch) => self.warm_solve_from_deltas(graph, batch, &warm_opts),
            None => self.warm_solve_diffed(graph, &warm_opts),
        };
        match attempt {
            Ok(sol) if !sol.terminated_early => {
                self.warm = true;
                Ok(sol)
            }
            Ok(sol) => {
                let valve_tripped = match (valve, opts.iteration_limit) {
                    (Some(v), caller) => sol.stats.iterations > v && caller.is_none_or(|c| v < c),
                    (None, _) => false,
                };
                if valve_tripped {
                    // Safety valve: abandon the warm attempt, go cold.
                    self.reset();
                    self.state.fit(graph.node_bound());
                    let mut cold = self.cold_solve(graph, opts)?;
                    cold.stats.bailouts = sol.stats.bailouts + 1;
                    cold.stats.iterations += sol.stats.iterations;
                    Ok(cold)
                } else {
                    // The *caller's* budget ran out: report the partial
                    // solution as any early termination.
                    self.warm = false;
                    Ok(sol)
                }
            }
            Err(SolveError::Infeasible) => {
                // Spurious warm-start infeasibility (e.g. excess stranded
                // behind a changed capacity): retry cold before giving up.
                // The abandoned warm attempt's work is unknown here (the
                // error path drops its budget), so only the bailout is
                // counted; valve trips report the wasted iterations too.
                self.reset();
                self.state.fit(graph.node_bound());
                let mut cold = self.cold_solve(graph, opts)?;
                cold.stats.bailouts += 1;
                Ok(cold)
            }
            Err(e) => {
                self.warm = false;
                Err(e)
            }
        }
    }

    /// From-scratch cost scaling (also the warm-bailout fallback); records
    /// the work yardstick for the safety valve.
    fn cold_solve(
        &mut self,
        graph: &mut FlowGraph,
        opts: &SolveOptions,
    ) -> Result<Solution, SolveError> {
        graph.reset_flow();
        for p in &mut self.state.potentials {
            *p = 0;
        }
        let eps0 = self.state.scale * graph.max_cost();
        let result = run_phases(
            graph,
            opts,
            &self.config.cost_scaling,
            &mut self.state,
            eps0,
        );
        match &result {
            Ok(sol) if !sol.terminated_early => {
                self.warm = true;
                self.last_cold_work = Some(sol.stats.iterations.max(1));
            }
            _ => self.warm = false,
        }
        result.map(|sol| Solution {
            algorithm: AlgorithmKind::IncrementalCostScaling,
            ..sol
        })
    }

    /// Legacy warm path: full-graph violation diff (kept for callers with
    /// no change feed).
    fn warm_solve_diffed(
        &mut self,
        graph: &mut FlowGraph,
        opts: &SolveOptions,
    ) -> Result<Solution, SolveError> {
        // Start at the largest complementary-slackness violation left by
        // the changes (§6.2: "a value of ε equal to the costliest arc graph
        // change").
        let eps0 = max_violation(graph, &self.state.potentials, self.state.scale).max(1);
        let result = run_phases(
            graph,
            opts,
            &self.config.cost_scaling,
            &mut self.state,
            eps0,
        );
        if result.is_err() {
            self.warm = false;
        }
        result.map(|sol| Solution {
            algorithm: AlgorithmKind::IncrementalCostScaling,
            ..sol
        })
    }

    /// Native delta-feed warm start (module docs, steps 1–4). The O(n)
    /// working arrays live in the persistent [`WarmScratch`] and are
    /// lazily cleared afterwards, so quiescent rounds allocate nothing.
    fn warm_solve_from_deltas(
        &mut self,
        graph: &mut FlowGraph,
        batch: &DeltaBatch,
        opts: &SolveOptions,
    ) -> Result<Solution, SolveError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.fit(graph.node_bound());
        let result = self.warm_solve_core(graph, batch, opts, &mut scratch);
        scratch.clear();
        self.scratch = scratch;
        result
    }

    fn warm_solve_core(
        &mut self,
        graph: &mut FlowGraph,
        batch: &DeltaBatch,
        opts: &SolveOptions,
        scratch: &mut WarmScratch,
    ) -> Result<Solution, SolveError> {
        let mut budget = Budget::new(opts);
        let mut stats = SolveStats::default();
        let scale = self.state.scale;

        // The previous solve certified balanced supplies; verify the batch
        // preserves them so the zero-sum excess argument below holds.
        let mut supply_delta = 0i64;
        for d in batch.deltas() {
            match *d {
                GraphDelta::NodeAdded { supply, .. } => supply_delta += supply,
                GraphDelta::NodeRemoved { supply, .. } => supply_delta -= supply,
                GraphDelta::SupplyChanged { old, new, .. } => supply_delta += new - old,
                _ => {}
            }
        }
        if supply_delta != 0 {
            return Err(SolveError::UnbalancedSupply {
                total: supply_delta,
            });
        }

        // Step 1: targeted price refine on new nodes, in reverse addition
        // order so chains (task → fresh aggregate → machine) see their
        // downstream prices before their own are derived. Without this,
        // new nodes at price 0 over a sunken landscape report violations
        // close to F·C and the ε-schedule restarts from the top.
        let new_nodes: Vec<NodeId> = batch
            .deltas()
            .iter()
            .filter_map(|d| match d {
                GraphDelta::NodeAdded { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        for &node in new_nodes.iter().rev() {
            if !graph.node_alive(node) {
                continue;
            }
            let mut bound = i64::MIN;
            for &a in graph.adj(node) {
                if graph.rescap(a) > 0 {
                    let v = graph.dst(a);
                    let candidate = self.state.potentials[v.index()] - scale * graph.cost(a);
                    bound = bound.max(candidate);
                }
            }
            self.state.potentials[node.index()] = if bound == i64::MIN { 0 } else { bound };
            stats.nodes_touched += 1;
        }

        // Step 2: collect the dirty region — every node a delta names,
        // the endpoints of changed arcs that can actually expose a new
        // violation, and every node a flow move disturbed. Any
        // reduced-cost violation the batch introduced sits on a residual
        // out-arc of this region: unlogged flow moves (which can re-open
        // residual capacity on arbitrarily negative saturated arcs) are
        // path-shaped with every path node marked. Unchanged residual
        // arcs elsewhere kept rc ≥ −1 from the previous certificate.
        let dirty = &mut scratch.dirty;
        for d in batch.deltas() {
            match *d {
                GraphDelta::NodeAdded { node, .. }
                | GraphDelta::SupplyChanged { node, .. }
                | GraphDelta::FlowTouched { node } => dirty.push(node.index() as u32),
                GraphDelta::NodeRemoved { .. } => {}
                GraphDelta::ArcRemoved { src, dst, flow, .. } => {
                    if flow > 0 {
                        dirty.push(src.index() as u32);
                        dirty.push(dst.index() as u32);
                    }
                }
                GraphDelta::ArcAdded { src, dst, .. } => {
                    dirty.push(src.index() as u32);
                    dirty.push(dst.index() as u32);
                }
                GraphDelta::CostChanged { arc, old, new } => {
                    // A pure re-price moves no flow, so it can only
                    // *expose* a violation, never create excess — and
                    // only in the direction the change cheapened:
                    //
                    // - cost fell: the forward residual's reduced cost
                    //   dropped — scan the tail;
                    // - cost rose on a flow-carrying arc: the reverse
                    //   residual's reduced cost dropped — scan the head;
                    // - cost rose on a flowless arc: the forward rc only
                    //   grew and the reverse has no residual capacity —
                    //   nothing to repair.
                    //
                    // The last case is the common shape of a convex
                    // bundle re-price (upper ladder segments rising as
                    // load grows while carrying no flow), which makes
                    // per-round re-pricing sweeps nearly free for the
                    // warm start.
                    if graph.arc_alive(arc) {
                        if new < old {
                            dirty.push(graph.src(arc).index() as u32);
                        }
                        if new > old && graph.flow(arc) > 0 {
                            dirty.push(graph.dst(arc).index() as u32);
                        }
                    }
                }
                GraphDelta::CapacityChanged { arc, .. } => {
                    if graph.arc_alive(arc) {
                        dirty.push(graph.src(arc).index() as u32);
                        dirty.push(graph.dst(arc).index() as u32);
                    }
                }
            }
        }
        let in_dirty = &mut scratch.in_dirty;
        dirty.retain(|&u| {
            let keep = graph.node_alive(NodeId::from_index(u as usize)) && !in_dirty[u as usize];
            if keep {
                in_dirty[u as usize] = true;
            }
            keep
        });
        // Deterministic processing order regardless of batch emission
        // order (part of the lexicographic tie-breaking work).
        dirty.sort_unstable();

        // The starting ε: the largest complementary-slackness violation
        // over the dirty region's residual out-arcs — O(Σ degree(dirty)),
        // never a full-graph scan (§6.2: "ε equal to the costliest arc
        // graph change").
        let mut eps0 = 1i64;
        for &ui in dirty.iter() {
            let u = NodeId::from_index(ui as usize);
            for &a in graph.adj(u) {
                if graph.rescap(a) > 0 {
                    let v = graph.dst(a);
                    let rc = scale * graph.cost(a) + self.state.potentials[ui as usize]
                        - self.state.potentials[v.index()];
                    if -rc > eps0 {
                        eps0 = -rc;
                    }
                }
            }
        }

        // Step 3: feasibility seeds. Only delta-touched nodes can carry
        // excess (flow moves outside the log are path-shaped and preserve
        // conservation elsewhere), and their exact excess is one O(degree)
        // local scan each.
        let excess = &mut scratch.excess;
        let mut any_excess = false;
        for &u in dirty.iter() {
            let e = local_excess(graph, NodeId::from_index(u as usize));
            excess[u as usize] = e;
            any_excess |= e != 0;
        }
        if !any_excess && eps0 <= 1 {
            // Quiescent round: nothing to repair, the warm flow is already
            // optimal for the changed graph.
            return Ok(Solution {
                algorithm: AlgorithmKind::IncrementalCostScaling,
                objective: graph.objective(),
                terminated_early: false,
                runtime: budget.elapsed(),
                stats,
            });
        }

        // Step 4: the targeted ε-schedule. Like [`run_phases`], ε shrinks
        // by α per phase from the costliest change down to 1 (§6.2) — but
        // each phase's saturation pass visits only arcs adjacent to the
        // dirty region instead of the whole graph. This is sound because
        // the previous certificate bounds every untouched arc at rc ≥ −1,
        // and new violations can only appear on out-arcs of relabeled
        // nodes, which join the dirty region as discharge reports them.
        let alpha = self.config.cost_scaling.alpha.max(2);
        let mut eps = eps0;
        let active = &mut scratch.active;
        let in_active = &mut scratch.in_active;
        let current_arc = &mut scratch.current_arc;
        let relabeled = &mut scratch.relabeled;
        let touched = &mut scratch.touched;
        let arcbuf = &mut scratch.arcbuf;
        let outcome = loop {
            stats.phases += 1;
            // Saturate violating residual arcs out of dirty nodes, making
            // the pseudoflow 0-optimal on the region discharge will work.
            for &ui in dirty.iter() {
                let u = NodeId::from_index(ui as usize);
                arcbuf.clear();
                arcbuf.extend_from_slice(graph.adj(u));
                for &a in arcbuf.iter() {
                    let r = graph.rescap(a);
                    if r <= 0 {
                        continue;
                    }
                    let v = graph.dst(a);
                    let rc = scale * graph.cost(a) + self.state.potentials[ui as usize]
                        - self.state.potentials[v.index()];
                    if rc < 0 {
                        graph.push_flow(a, r);
                        excess[ui as usize] -= r;
                        excess[v.index()] += r;
                        if excess[v.index()] > 0 && !in_active[v.index()] {
                            active.push_back(v.index() as u32);
                            in_active[v.index()] = true;
                            touched.push(v.index() as u32);
                            stats.nodes_touched += 1;
                        }
                    }
                }
            }
            for &ui in dirty.iter() {
                if excess[ui as usize] > 0 && !in_active[ui as usize] {
                    active.push_back(ui);
                    in_active[ui as usize] = true;
                    stats.nodes_touched += 1;
                }
            }
            relabeled.clear();
            let phase = crate::cost_scaling::discharge(
                graph,
                &mut self.state,
                eps,
                excess,
                active,
                in_active,
                current_arc,
                relabeled,
                touched,
                &mut budget,
                &mut stats,
            );
            if let Err(stop) = phase {
                break Err(stop);
            }
            // Nodes relabeled this phase may now have violating out-arcs;
            // fold them into the dirty region for the next phase.
            for &r in relabeled.iter() {
                if !in_dirty[r as usize] {
                    in_dirty[r as usize] = true;
                    dirty.push(r);
                }
            }
            if eps == 1 {
                break Ok(());
            }
            eps = (eps / alpha).max(1);
        };

        stats.iterations = budget.iterations;
        match outcome {
            Ok(()) => Ok(Solution {
                algorithm: AlgorithmKind::IncrementalCostScaling,
                objective: graph.objective(),
                terminated_early: false,
                runtime: budget.elapsed(),
                stats,
            }),
            Err(RefineStop::Exhausted) => Ok(Solution {
                algorithm: AlgorithmKind::IncrementalCostScaling,
                objective: graph.objective(),
                terminated_early: true,
                runtime: budget.elapsed(),
                stats,
            }),
            Err(RefineStop::Cancelled) => {
                self.warm = false;
                Err(SolveError::Cancelled)
            }
            Err(RefineStop::Infeasible) => {
                self.warm = false;
                Err(SolveError::Infeasible)
            }
        }
    }

    /// The work yardstick the safety valve multiplies: the last completed
    /// from-scratch solve, or (before any cold solve ran) a conservative
    /// size-based estimate of one.
    fn cold_work_reference(&self, graph: &FlowGraph) -> u64 {
        self.last_cold_work.unwrap_or_else(|| {
            let size = (graph.node_bound() + graph.arc_bound()) as u64;
            let phases = 64
                - (self.state.scale.max(1) as u64)
                    .saturating_mul(graph.max_cost().max(1) as u64)
                    .leading_zeros() as u64;
            size.saturating_mul(phases.max(1)).max(1024)
        })
    }
}

/// Per-node excess computed from one adjacency scan — O(degree), used by
/// the targeted repair path on delta-touched nodes only.
fn local_excess(graph: &FlowGraph, node: NodeId) -> i64 {
    let mut e = graph.supply(node);
    for &a in graph.adj(node) {
        if a.is_forward() {
            // Forward arc out of `node`.
            e -= graph.flow(a);
        } else {
            // Reverse residual: the pair's forward arc points into `node`.
            e += graph.flow(a);
        }
    }
    e
}

/// Largest negative reduced cost over residual arcs (in scaled units), i.e.
/// the ε at which the current pseudoflow is still ε-optimal. This is the
/// legacy full-graph diff retained for feeds without a change log; the
/// delta path derives the same quantity from the batch in O(Δ).
fn max_violation(graph: &FlowGraph, potentials: &[i64], scale: i64) -> i64 {
    let mut worst = 0i64;
    for u in graph.node_ids() {
        for &a in graph.adj(u) {
            if graph.rescap(a) <= 0 {
                continue;
            }
            let v = graph.dst(a);
            let rc = scale * graph.cost(a) + potentials[u.index()] - potentials[v.index()];
            if -rc > worst {
                worst = -rc;
            }
        }
    }
    worst
}

/// Efficient task removal (§5.3.2): reconstructs a departing task's unit of
/// flow through the graph and drains it, so the imbalance appears at the
/// sink alone instead of stranding demand at the machine node.
///
/// Call this *before* removing the task node from the graph. Returns the
/// number of flow units drained (0 if the task was unscheduled, 1 if it was
/// placed).
///
/// Without this heuristic, deleting a running task's node leaves its machine
/// with a deficit and the sink with excess, which is expensive for
/// incremental cost scaling to repair; with it, the drained path leaves the
/// graph balanced once the policy shrinks the sink's demand.
pub fn drain_task_flow(graph: &mut FlowGraph, task: NodeId) -> i64 {
    let mut drained = 0i64;
    loop {
        // Find an outgoing arc carrying flow (forward arcs only: flow on a
        // forward arc means its reverse has residual capacity).
        let mut path = Vec::new();
        let mut u = task;
        let mut steps = 0usize;
        let limit = graph.node_count() + 1;
        loop {
            let next = graph
                .adj(u)
                .iter()
                .copied()
                .find(|&a| a.is_forward() && graph.flow(a) > 0 && graph.src(a) == u);
            match next {
                Some(a) => {
                    path.push(a);
                    u = graph.dst(a);
                    steps += 1;
                    if graph
                        .adj(u)
                        .iter()
                        .all(|&b| !(b.is_forward() && graph.src(b) == u && graph.flow(b) > 0))
                    {
                        // Reached a node with no outgoing flow: the sink.
                        break;
                    }
                    if steps > limit {
                        // Cycle of flow (cannot happen in DAG scheduling
                        // graphs); bail out to avoid spinning.
                        return drained;
                    }
                }
                None => break,
            }
        }
        if path.is_empty() {
            return drained;
        }
        // Drain one unit along the discovered path, noting every node on
        // it for the incremental solver's delta feed: conservation breaks
        // only at the endpoints, but draining re-opens residual capacity
        // on each path arc — possibly exposing a reduced-cost violation on
        // a previously saturated arc — so the whole path joins the
        // solver's dirty region.
        graph.note_flow_disturbance(task);
        for &a in &path {
            let dst = graph.dst(a);
            graph.note_flow_disturbance(dst);
            graph.push_flow(a.sister(), 1);
        }
        drained += 1;
        // Task nodes carry one unit of supply, so a single pass suffices;
        // loop again only if more outgoing flow remains (defensive).
        if graph
            .adj(task)
            .iter()
            .all(|&a| !(a.is_forward() && graph.src(a) == task && graph.flow(a) > 0))
        {
            return drained;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_optimal;
    use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
    use firmament_flow::{ArcId, NodeKind};

    fn grow_unscheduled_capacity(inst: &mut firmament_flow::testgen::Instance, by: i64) {
        let arc = inst
            .graph
            .adj(inst.unscheduled)
            .iter()
            .copied()
            .find(|&a| a.is_forward() && inst.graph.dst(a) == inst.sink)
            .unwrap();
        let cap = inst.graph.capacity(arc);
        inst.graph.set_arc_capacity(arc, cap + by).unwrap();
    }

    #[test]
    fn cold_solve_matches_from_scratch() {
        let mut inst = scheduling_instance(1, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        let sol = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&inst.graph));
        let mut fresh = scheduling_instance(1, &InstanceSpec::default());
        let s2 = crate::cost_scaling::solve(&mut fresh.graph, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, s2.objective);
        assert!(inc.is_warm());
    }

    #[test]
    fn warm_resolve_after_cost_changes_matches_scratch() {
        for seed in 0..5 {
            let mut inst = scheduling_instance(seed, &InstanceSpec::default());
            let mut inc = IncrementalCostScaling::default();
            inc.solve(&mut inst.graph, &SolveOptions::unlimited())
                .unwrap();

            let arcs: Vec<ArcId> = inst.graph.arc_ids().collect();
            inst.graph.set_arc_cost(arcs[5], 3).unwrap();
            inst.graph.set_arc_cost(arcs[11], 180).unwrap();

            let warm = inc
                .solve(&mut inst.graph, &SolveOptions::unlimited())
                .unwrap();
            assert!(is_optimal(&inst.graph), "seed {seed}");
            let mut fresh = inst.graph.clone();
            let scratch =
                crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
            assert_eq!(warm.objective, scratch.objective, "seed {seed}");
        }
    }

    #[test]
    fn warm_resolve_after_task_arrival() {
        let mut inst = scheduling_instance(3, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();

        // Submit a new task.
        let t = inst.graph.add_node(NodeKind::Task { task: 777 }, 1);
        inst.graph.add_arc(t, inst.machines[2], 1, 4).unwrap();
        inst.graph.add_arc(t, inst.unscheduled, 1, 150).unwrap();
        let d = inst.graph.supply(inst.sink);
        inst.graph.set_supply(inst.sink, d - 1).unwrap();
        grow_unscheduled_capacity(&mut inst, 1);

        let warm = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&inst.graph));
        let mut fresh = inst.graph.clone();
        let scratch = crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(warm.objective, scratch.objective);
    }

    /// The same scenario as `warm_resolve_after_task_arrival`, but driven
    /// through the recorded delta feed: the solve must go through the
    /// targeted path and still match a from-scratch solve exactly.
    #[test]
    fn delta_fed_warm_resolve_matches_scratch() {
        for seed in 0..8 {
            let mut inst = scheduling_instance(seed, &InstanceSpec::default());
            let mut inc = IncrementalCostScaling::default();
            inc.solve(&mut inst.graph, &SolveOptions::unlimited())
                .unwrap();

            inst.graph.set_change_tracking(true);
            // A task arrives...
            let t = inst.graph.add_node(NodeKind::Task { task: 777 }, 1);
            inst.graph.add_arc(t, inst.machines[2], 1, 4).unwrap();
            inst.graph.add_arc(t, inst.unscheduled, 1, 150).unwrap();
            let d = inst.graph.supply(inst.sink);
            inst.graph.set_supply(inst.sink, d - 1).unwrap();
            grow_unscheduled_capacity(&mut inst, 1);
            // ...and a placed task departs, drained §5.3.2-style.
            let scheduled = inst
                .tasks
                .iter()
                .copied()
                .find(|&t| {
                    inst.graph.adj(t).iter().any(|&a| {
                        a.is_forward()
                            && inst.graph.flow(a) > 0
                            && inst.graph.dst(a) != inst.unscheduled
                    })
                })
                .expect("at least one task scheduled");
            drain_task_flow(&mut inst.graph, scheduled);
            inst.graph.remove_node(scheduled).unwrap();
            let d = inst.graph.supply(inst.sink);
            inst.graph.set_supply(inst.sink, d + 1).unwrap();
            grow_unscheduled_capacity(&mut inst, -1);

            let batch = DeltaBatch::compact(inst.graph.take_changes());
            assert!(!batch.is_empty());
            let warm = inc
                .solve_with_deltas(&mut inst.graph, Some(&batch), &SolveOptions::unlimited())
                .unwrap();
            assert!(is_optimal(&inst.graph), "seed {seed}");
            assert!(inc.is_warm(), "seed {seed}");
            let mut fresh = inst.graph.clone();
            let scratch =
                crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
            assert_eq!(warm.objective, scratch.objective, "seed {seed}");
            assert_eq!(warm.stats.bailouts, 0, "seed {seed}");
        }
    }

    /// A quiescent delta feed (no changes) must not touch the graph at all.
    #[test]
    fn empty_delta_feed_is_free() {
        let mut inst = scheduling_instance(4, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        let before: Vec<i64> = inst.graph.arc_ids().map(|a| inst.graph.flow(a)).collect();
        let batch = DeltaBatch::empty();
        let sol = inc
            .solve_with_deltas(&mut inst.graph, Some(&batch), &SolveOptions::unlimited())
            .unwrap();
        let after: Vec<i64> = inst.graph.arc_ids().map(|a| inst.graph.flow(a)).collect();
        assert_eq!(before, after, "quiescent round must not move flow");
        assert_eq!(sol.stats.nodes_touched, 0);
        assert_eq!(sol.stats.augmentations, 0);
        assert!(is_optimal(&inst.graph));
    }

    /// Per-round solver work must scale with the change size, not the
    /// graph size: one task arriving and one departing on a big graph
    /// touch a bounded neighborhood, not thousands of nodes.
    #[test]
    fn delta_fed_work_scales_with_change_size() {
        let spec = InstanceSpec {
            tasks: 400,
            machines: 60,
            slots_per_machine: 8,
            ..InstanceSpec::default()
        };
        let mut inst = scheduling_instance(2, &spec);
        let mut inc = IncrementalCostScaling::default();
        let cold = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();

        inst.graph.set_change_tracking(true);
        // One task arrives with two preference arcs...
        let t = inst.graph.add_node(NodeKind::Task { task: 9999 }, 1);
        inst.graph.add_arc(t, inst.machines[3], 1, 4).unwrap();
        inst.graph.add_arc(t, inst.unscheduled, 1, 150).unwrap();
        let d = inst.graph.supply(inst.sink);
        inst.graph.set_supply(inst.sink, d - 1).unwrap();
        grow_unscheduled_capacity(&mut inst, 1);
        // ...and one placed task departs (drained §5.3.2-style).
        let scheduled = inst
            .tasks
            .iter()
            .copied()
            .find(|&t| {
                inst.graph.adj(t).iter().any(|&a| {
                    a.is_forward()
                        && inst.graph.flow(a) > 0
                        && inst.graph.dst(a) != inst.unscheduled
                })
            })
            .expect("at least one task scheduled");
        drain_task_flow(&mut inst.graph, scheduled);
        inst.graph.remove_node(scheduled).unwrap();
        let d = inst.graph.supply(inst.sink);
        inst.graph.set_supply(inst.sink, d + 1).unwrap();
        grow_unscheduled_capacity(&mut inst, -1);

        let batch = DeltaBatch::compact(inst.graph.take_changes());
        let warm = inc
            .solve_with_deltas(&mut inst.graph, Some(&batch), &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&inst.graph));
        assert_eq!(warm.stats.bailouts, 0);
        assert!(
            warm.stats.nodes_touched * 20 <= cold.stats.nodes_touched.max(20),
            "two-task change touched {} nodes (cold solve touched {})",
            warm.stats.nodes_touched,
            cold.stats.nodes_touched
        );
        assert!(
            warm.stats.iterations * 20 <= cold.stats.iterations.max(20),
            "warm {} vs cold {} iterations",
            warm.stats.iterations,
            cold.stats.iterations
        );
        let mut fresh = inst.graph.clone();
        let scratch = crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(warm.objective, scratch.objective);
    }

    /// Regression pin for the fig11 warm-start pathology (ROADMAP):
    /// warm-started work must stay within 2× of from-scratch *work*
    /// (iteration counts, not wall clock, so CI stays stable). The root
    /// cause was twofold: new nodes entering at price 0 over a sunken
    /// landscape (violations ≈ F·C restarted the ε-schedule from the
    /// top — fixed by the targeted price init), and §5.3.2 drains
    /// re-opening residual capacity on saturated arcs at nodes no delta
    /// named (fixed by the flow-disturbance markers). The safety valve
    /// bounds any residual pathology to `(k + 1)×` cold.
    #[test]
    fn warm_work_within_twice_scratch_after_removal_drains() {
        for seed in [2, 7, 13] {
            let spec = InstanceSpec {
                tasks: 200,
                machines: 30,
                slots_per_machine: 6,
                ..InstanceSpec::default()
            };
            let mut inst = scheduling_instance(seed, &spec);
            let mut inc = IncrementalCostScaling::default();
            inc.solve(&mut inst.graph, &SolveOptions::unlimited())
                .unwrap();

            inst.graph.set_change_tracking(true);
            // The fig11 burst shape: a batch of placed tasks departs
            // (drained), and a batch of new tasks arrives.
            let victims: Vec<NodeId> = inst
                .tasks
                .iter()
                .copied()
                .filter(|&t| {
                    inst.graph.adj(t).iter().any(|&a| {
                        a.is_forward()
                            && inst.graph.flow(a) > 0
                            && inst.graph.dst(a) != inst.unscheduled
                    })
                })
                .take(8)
                .collect();
            for t in victims {
                drain_task_flow(&mut inst.graph, t);
                inst.graph.remove_node(t).unwrap();
                let d = inst.graph.supply(inst.sink);
                inst.graph.set_supply(inst.sink, d + 1).unwrap();
                grow_unscheduled_capacity(&mut inst, -1);
            }
            for i in 0..5u64 {
                let t = inst.graph.add_node(NodeKind::Task { task: 8000 + i }, 1);
                inst.graph
                    .add_arc(t, inst.machines[i as usize % inst.machines.len()], 1, 4)
                    .unwrap();
                inst.graph.add_arc(t, inst.unscheduled, 1, 150).unwrap();
                let d = inst.graph.supply(inst.sink);
                inst.graph.set_supply(inst.sink, d - 1).unwrap();
                grow_unscheduled_capacity(&mut inst, 1);
            }
            let batch = DeltaBatch::compact(inst.graph.take_changes());

            let mut scratch_graph = inst.graph.clone();
            let scratch =
                crate::cost_scaling::solve(&mut scratch_graph, &SolveOptions::unlimited()).unwrap();
            let warm = inc
                .solve_with_deltas(&mut inst.graph, Some(&batch), &SolveOptions::unlimited())
                .unwrap();
            assert!(is_optimal(&inst.graph), "seed {seed}");
            assert_eq!(warm.objective, scratch.objective, "seed {seed}");
            assert!(
                warm.stats.iterations <= 2 * scratch.stats.iterations,
                "seed {seed}: warm work {} exceeds 2x scratch work {}",
                warm.stats.iterations,
                scratch.stats.iterations
            );
        }
    }

    /// Baseline for the ROADMAP "warm-start cascade on drain-heavy
    /// bursts" gap (discovered during PR 3): when a §5.3.2 drain frees a
    /// slot that a *waiting* task should take, the re-exposed arc violates
    /// by ≈ `F·c_unsched`, the ε-schedule runs near its full depth, and
    /// the coarse-ε discharge disturbs a large region — so warm work on a
    /// drain-then-backfill script is nowhere near the order-of-magnitude
    /// win structural-only rounds see.
    ///
    /// This test *pins the current bounded ratio* (warm ≤ 2× scratch
    /// iterations — the safety valve guarantees ≤ 4× in the worst case)
    /// so the future fix — a bounded cycle-cancel (the repair is usually a
    /// 4-arc augmenting cycle) or a zero-reduced-cost push lookahead —
    /// has a measured baseline to beat. When that lands, tighten the
    /// bound here toward the structural-round ratio (~0.1×).
    #[test]
    fn drain_backfill_cascade_baseline_for_cycle_cancel_fix() {
        for seed in [3, 11, 19] {
            // Oversubscribed: 200 tasks on 180 slots, so ~20 tasks wait on
            // their unscheduled arcs when the instance is solved.
            let spec = InstanceSpec {
                tasks: 200,
                machines: 30,
                slots_per_machine: 6,
                ..InstanceSpec::default()
            };
            let mut inst = scheduling_instance(seed, &spec);
            let mut inc = IncrementalCostScaling::default();
            inc.solve(&mut inst.graph, &SolveOptions::unlimited())
                .unwrap();

            // Drain-then-backfill: placed tasks complete, freeing slots a
            // waiting task should take (a real optimality move worth
            // `c_unsched − c_pref` per backfill).
            inst.graph.set_change_tracking(true);
            let victims: Vec<NodeId> = inst
                .tasks
                .iter()
                .copied()
                .filter(|&t| {
                    inst.graph.adj(t).iter().any(|&a| {
                        a.is_forward()
                            && inst.graph.flow(a) > 0
                            && inst.graph.dst(a) != inst.unscheduled
                    })
                })
                .take(10)
                .collect();
            assert_eq!(victims.len(), 10, "seed {seed}: need placed victims");
            for t in victims {
                drain_task_flow(&mut inst.graph, t);
                inst.graph.remove_node(t).unwrap();
                let d = inst.graph.supply(inst.sink);
                inst.graph.set_supply(inst.sink, d + 1).unwrap();
                grow_unscheduled_capacity(&mut inst, -1);
            }
            let batch = DeltaBatch::compact(inst.graph.take_changes());

            let mut scratch_graph = inst.graph.clone();
            let scratch =
                crate::cost_scaling::solve(&mut scratch_graph, &SolveOptions::unlimited()).unwrap();
            let warm = inc
                .solve_with_deltas(&mut inst.graph, Some(&batch), &SolveOptions::unlimited())
                .unwrap();
            assert!(is_optimal(&inst.graph), "seed {seed}");
            assert_eq!(warm.objective, scratch.objective, "seed {seed}");
            // The backfill actually happened: the freed capacity is used
            // by previously-unscheduled flow (objective strictly better
            // than leaving the drained slots empty would allow is implied
            // by optimality; here we just pin the work ratio).
            assert!(
                warm.stats.iterations <= 2 * scratch.stats.iterations.max(1),
                "seed {seed}: drain-backfill warm work {} exceeds the pinned \
                 2x scratch baseline {} — if this got *better*, tighten the \
                 bound (ROADMAP: warm-start cascade on drain-heavy bursts)",
                warm.stats.iterations,
                scratch.stats.iterations
            );
        }
    }

    /// The safety valve: a warm solve capped at a tiny work multiple must
    /// fall back to a cold solve and still return the optimum.
    #[test]
    fn safety_valve_bails_to_cold() {
        let mut inst = scheduling_instance(6, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        // Make the valve absurdly tight so any non-trivial warm attempt
        // trips it.
        inc.config.warm_work_bailout = Some(0);
        inc.last_cold_work = Some(1);
        // Invalidate many costs so the warm attempt has real work to do.
        let arcs: Vec<ArcId> = inst.graph.arc_ids().collect();
        for (i, &a) in arcs.iter().enumerate().take(20) {
            inst.graph
                .set_arc_cost(a, (i as i64 * 13) % 97 + 1)
                .unwrap();
        }
        let sol = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert_eq!(sol.stats.bailouts, 1, "valve must have tripped");
        assert!(is_optimal(&inst.graph));
        assert!(inc.is_warm(), "cold fallback re-warms on success");
        let mut fresh = inst.graph.clone();
        let scratch = crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, scratch.objective);
    }

    /// The persistent scratch: after every warm solve — busy or quiescent
    /// — the lazily-cleared buffers are back in the all-clear state, and
    /// the allocations persist across rounds (no per-round realloc).
    #[test]
    fn warm_scratch_is_lazily_cleared_and_reused() {
        let mut inst = scheduling_instance(3, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert!(inc.scratch.is_clean(), "initial state is clean");

        // A real change burst through the delta path.
        inst.graph.set_change_tracking(true);
        let t = inst.graph.add_node(NodeKind::Task { task: 4242 }, 1);
        inst.graph.add_arc(t, inst.machines[1], 1, 4).unwrap();
        inst.graph.add_arc(t, inst.unscheduled, 1, 150).unwrap();
        let d = inst.graph.supply(inst.sink);
        inst.graph.set_supply(inst.sink, d - 1).unwrap();
        grow_unscheduled_capacity(&mut inst, 1);
        let batch = DeltaBatch::compact(inst.graph.take_changes());
        inc.solve_with_deltas(&mut inst.graph, Some(&batch), &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&inst.graph));
        assert!(
            inc.scratch.is_clean(),
            "busy round must restore the all-clear invariant"
        );
        let cap = inc.scratch.excess.capacity();
        assert!(cap >= inst.graph.node_bound(), "buffers sized to the graph");

        // Quiescent rounds reuse the same allocations.
        for _ in 0..3 {
            inc.solve_with_deltas(
                &mut inst.graph,
                Some(&DeltaBatch::empty()),
                &SolveOptions::unlimited(),
            )
            .unwrap();
            assert!(inc.scratch.is_clean());
            assert_eq!(
                inc.scratch.excess.capacity(),
                cap,
                "quiescent rounds must not reallocate scratch"
            );
        }
    }

    /// Re-pricing a flowless arc upward — the common convex-bundle shape
    /// (upper ladder segments rising with load) — must be recognized as
    /// violation-free: the warm start does no repair work at all.
    #[test]
    fn flowless_cost_increase_is_free_for_the_warm_start() {
        let mut inst = scheduling_instance(7, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        // Raise the cost of every flowless arc (except unscheduled arcs,
        // to keep the optimum where it is).
        inst.graph.set_change_tracking(true);
        let arcs: Vec<ArcId> = inst.graph.arc_ids().collect();
        let mut bumped = 0;
        for a in arcs {
            if inst.graph.flow(a) == 0 && inst.graph.dst(a) != inst.sink {
                let c = inst.graph.cost(a);
                inst.graph.set_arc_cost(a, c + 5).unwrap();
                bumped += 1;
            }
        }
        assert!(bumped > 0, "instance must have flowless arcs");
        let batch = DeltaBatch::compact(inst.graph.take_changes());
        let before = inst.graph.objective();
        let sol = inc
            .solve_with_deltas(&mut inst.graph, Some(&batch), &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&inst.graph));
        assert_eq!(
            sol.stats.nodes_touched, 0,
            "flowless cost increases must not activate any node"
        );
        assert_eq!(sol.objective, before, "flow untouched");
        // And it really is still the optimum of the re-priced graph.
        let mut fresh = inst.graph.clone();
        let scratch = crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, scratch.objective);
    }

    #[test]
    fn drain_task_flow_balances_graph() {
        let mut inst = scheduling_instance(5, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();

        // Pick a task that is actually scheduled on a machine.
        let scheduled = inst
            .tasks
            .iter()
            .copied()
            .find(|&t| {
                inst.graph.adj(t).iter().any(|&a| {
                    a.is_forward()
                        && inst.graph.flow(a) > 0
                        && inst.graph.dst(a) != inst.unscheduled
                })
            })
            .expect("at least one task scheduled");
        let drained = drain_task_flow(&mut inst.graph, scheduled);
        assert_eq!(drained, 1);
        // Complete the removal the way a policy would: delete the node and
        // shrink the sink's demand.
        inst.graph.remove_node(scheduled).unwrap();
        let d = inst.graph.supply(inst.sink);
        inst.graph.set_supply(inst.sink, d + 1).unwrap();
        // The graph is perfectly balanced: no excesses anywhere.
        let e = inst.graph.excesses();
        assert!(
            e.iter().all(|&x| x == 0),
            "drain left imbalance: {:?}",
            e.iter().filter(|&&x| x != 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn removal_without_drain_leaves_imbalance() {
        // The contrast case motivating the heuristic.
        let mut inst = scheduling_instance(5, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        let scheduled = inst
            .tasks
            .iter()
            .copied()
            .find(|&t| {
                inst.graph.adj(t).iter().any(|&a| {
                    a.is_forward()
                        && inst.graph.flow(a) > 0
                        && inst.graph.dst(a) != inst.unscheduled
                })
            })
            .expect("at least one task scheduled");
        inst.graph.remove_node(scheduled).unwrap();
        let d = inst.graph.supply(inst.sink);
        inst.graph.set_supply(inst.sink, d + 1).unwrap();
        let e = inst.graph.excesses();
        assert!(
            e.iter().any(|&x| x != 0),
            "removing a placed task without draining must unbalance the graph"
        );
    }

    #[test]
    fn incremental_with_task_removal_matches_scratch() {
        let mut inst = scheduling_instance(9, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();

        // Remove three tasks with the drain heuristic.
        let victims: Vec<NodeId> = inst.tasks[0..3].to_vec();
        for t in victims {
            drain_task_flow(&mut inst.graph, t);
            inst.graph.remove_node(t).unwrap();
            let d = inst.graph.supply(inst.sink);
            inst.graph.set_supply(inst.sink, d + 1).unwrap();
        }
        let warm = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&inst.graph));
        let mut fresh = inst.graph.clone();
        let scratch = crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(warm.objective, scratch.objective);
    }

    #[test]
    fn adopt_relaxation_solution_and_resolve() {
        let mut inst = scheduling_instance(12, &InstanceSpec::default());
        crate::relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let mut inc = IncrementalCostScaling::new(IncrementalConfig {
            price_refine_on_adopt: true,
            ..Default::default()
        });
        assert!(inc.adopt_solution(&inst.graph));
        assert!(inc.is_warm());

        // Apply a change, then warm-solve.
        let arcs: Vec<ArcId> = inst.graph.arc_ids().collect();
        inst.graph.set_arc_cost(arcs[9], 2).unwrap();
        let warm = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&inst.graph));
        let mut fresh = inst.graph.clone();
        let scratch = crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(warm.objective, scratch.objective);
    }

    #[test]
    fn adopt_without_price_refine_goes_cold() {
        let mut inst = scheduling_instance(12, &InstanceSpec::default());
        crate::relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let mut inc = IncrementalCostScaling::new(IncrementalConfig {
            price_refine_on_adopt: false,
            ..Default::default()
        });
        assert!(!inc.adopt_solution(&inst.graph));
        assert!(!inc.is_warm());
    }
}
