//! Incremental cost scaling (§5.2) and the efficient-task-removal heuristic
//! (§5.3.2).
//!
//! Cluster state changes little between scheduling runs, so the solver can
//! reuse its previous flow and prices instead of starting from scratch.
//! Incremental cost scaling keeps the previous prices, repairs the
//! complementary-slackness and feasibility violations that the recorded
//! graph changes introduced, and restarts the ε-scaling loop at an ε
//! proportional to the *largest violation* rather than the largest cost —
//! 25–50 % faster than from-scratch cost scaling (Fig 11).

use crate::common::{AlgorithmKind, Solution, SolveError, SolveOptions};
use crate::cost_scaling::{run_phases, CostScalingConfig, CostScalingState};
use crate::price_refine::price_refine;
use firmament_flow::{FlowGraph, NodeId};

/// Configuration for incremental cost scaling.
#[derive(Debug, Clone, Default)]
pub struct IncrementalConfig {
    /// Cost-scaling tuning (α-factor).
    pub cost_scaling: CostScalingConfig,
    /// Applies [`price_refine`] to the previous solution's prices before
    /// warm-starting (§6.2). Only has an effect when the previous prices
    /// came from a different algorithm (relaxation); see
    /// [`IncrementalCostScaling::adopt_solution`].
    pub price_refine_on_adopt: bool,
}

/// A reusable incremental cost-scaling solver.
///
/// Typical use inside Firmament: after each scheduling round, the winning
/// algorithm's flow is adopted via [`adopt_solution`](Self::adopt_solution);
/// on the next round the accumulated graph changes are already applied to
/// the graph and [`solve`](Self::solve) warm-starts from the stored prices.
#[derive(Debug, Default)]
pub struct IncrementalCostScaling {
    config: IncrementalConfig,
    state: CostScalingState,
    /// Whether `state` currently certifies the adopted flow.
    warm: bool,
}

impl IncrementalCostScaling {
    /// Creates a solver with the given configuration.
    pub fn new(config: IncrementalConfig) -> Self {
        IncrementalCostScaling {
            config,
            state: CostScalingState::default(),
            warm: false,
        }
    }

    /// Returns `true` if the solver holds warm state from a prior solution.
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Read access to the internal prices (for tests and diagnostics).
    pub fn state(&self) -> &CostScalingState {
        &self.state
    }

    /// Adopts an optimal flow produced by another algorithm (typically
    /// relaxation, §6.2): computes prices certifying it so the next
    /// incremental run can warm-start.
    ///
    /// Must be called on the solution graph *before* new cluster changes are
    /// applied; this is what guarantees price refine can find prices that
    /// satisfy complementary slackness without modifying the flow.
    ///
    /// Returns `false` (and goes cold) if the flow is not optimal.
    pub fn adopt_solution(&mut self, solution_graph: &FlowGraph) -> bool {
        self.state.fit(solution_graph.node_bound());
        if self.config.price_refine_on_adopt {
            match price_refine(solution_graph, self.state.scale) {
                Some(prices) => {
                    self.state.potentials = prices;
                    self.warm = true;
                }
                None => {
                    self.warm = false;
                }
            }
        } else {
            // Without price refine we must drop warm state: we have no
            // prices for the foreign flow, so the next run is from scratch.
            self.warm = false;
        }
        self.warm
    }

    /// Marks the internal state as certifying the graph's current flow; used
    /// when this solver itself produced the last solution.
    pub fn mark_warm(&mut self) {
        self.warm = true;
    }

    /// Discards warm state; the next solve runs from scratch.
    pub fn reset(&mut self) {
        self.warm = false;
        self.state = CostScalingState::default();
    }

    /// Solves the graph, warm-starting from the stored prices when possible.
    ///
    /// The caller is expected to have already applied any cluster changes to
    /// `graph` (the flow left over from the previous round, clamped or
    /// disrupted by those changes, is the starting pseudoflow). When cold,
    /// this is identical to from-scratch cost scaling.
    pub fn solve(
        &mut self,
        graph: &mut FlowGraph,
        opts: &SolveOptions,
    ) -> Result<Solution, SolveError> {
        self.state.fit(graph.node_bound());
        let scale = self.state.scale;
        let eps0 = if self.warm {
            // Start at the largest complementary-slackness violation left
            // by the changes (§6.2: "a value of ε equal to the costliest
            // arc graph change").
            max_violation(graph, &self.state.potentials, scale).max(1)
        } else {
            graph.reset_flow();
            for p in &mut self.state.potentials {
                *p = 0;
            }
            scale * graph.max_cost()
        };
        let result = run_phases(
            graph,
            opts,
            &self.config.cost_scaling,
            &mut self.state,
            eps0,
        );
        match &result {
            Ok(sol) if !sol.terminated_early => self.warm = true,
            _ => self.warm = false,
        }
        result.map(|sol| Solution {
            algorithm: AlgorithmKind::IncrementalCostScaling,
            ..sol
        })
    }
}

/// Largest negative reduced cost over residual arcs (in scaled units), i.e.
/// the ε at which the current pseudoflow is still ε-optimal.
fn max_violation(graph: &FlowGraph, potentials: &[i64], scale: i64) -> i64 {
    let mut worst = 0i64;
    for u in graph.node_ids() {
        for &a in graph.adj(u) {
            if graph.rescap(a) <= 0 {
                continue;
            }
            let v = graph.dst(a);
            let rc = scale * graph.cost(a) + potentials[u.index()] - potentials[v.index()];
            if -rc > worst {
                worst = -rc;
            }
        }
    }
    worst
}

/// Efficient task removal (§5.3.2): reconstructs a departing task's unit of
/// flow through the graph and drains it, so the imbalance appears at the
/// sink alone instead of stranding demand at the machine node.
///
/// Call this *before* removing the task node from the graph. Returns the
/// number of flow units drained (0 if the task was unscheduled, 1 if it was
/// placed).
///
/// Without this heuristic, deleting a running task's node leaves its machine
/// with a deficit and the sink with excess, which is expensive for
/// incremental cost scaling to repair; with it, the drained path leaves the
/// graph balanced once the policy shrinks the sink's demand.
pub fn drain_task_flow(graph: &mut FlowGraph, task: NodeId) -> i64 {
    let mut drained = 0i64;
    loop {
        // Find an outgoing arc carrying flow (forward arcs only: flow on a
        // forward arc means its reverse has residual capacity).
        let mut path = Vec::new();
        let mut u = task;
        let mut steps = 0usize;
        let limit = graph.node_count() + 1;
        loop {
            let next = graph
                .adj(u)
                .iter()
                .copied()
                .find(|&a| a.is_forward() && graph.flow(a) > 0 && graph.src(a) == u);
            match next {
                Some(a) => {
                    path.push(a);
                    u = graph.dst(a);
                    steps += 1;
                    if graph
                        .adj(u)
                        .iter()
                        .all(|&b| !(b.is_forward() && graph.src(b) == u && graph.flow(b) > 0))
                    {
                        // Reached a node with no outgoing flow: the sink.
                        break;
                    }
                    if steps > limit {
                        // Cycle of flow (cannot happen in DAG scheduling
                        // graphs); bail out to avoid spinning.
                        return drained;
                    }
                }
                None => break,
            }
        }
        if path.is_empty() {
            return drained;
        }
        // Drain one unit along the discovered path.
        for &a in &path {
            graph.push_flow(a.sister(), 1);
        }
        drained += 1;
        // Task nodes carry one unit of supply, so a single pass suffices;
        // loop again only if more outgoing flow remains (defensive).
        if graph
            .adj(task)
            .iter()
            .all(|&a| !(a.is_forward() && graph.src(a) == task && graph.flow(a) > 0))
        {
            return drained;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_optimal;
    use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
    use firmament_flow::{ArcId, NodeKind};

    fn grow_unscheduled_capacity(inst: &mut firmament_flow::testgen::Instance, by: i64) {
        let arc = inst
            .graph
            .adj(inst.unscheduled)
            .iter()
            .copied()
            .find(|&a| a.is_forward() && inst.graph.dst(a) == inst.sink)
            .unwrap();
        let cap = inst.graph.capacity(arc);
        inst.graph.set_arc_capacity(arc, cap + by).unwrap();
    }

    #[test]
    fn cold_solve_matches_from_scratch() {
        let mut inst = scheduling_instance(1, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        let sol = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&inst.graph));
        let mut fresh = scheduling_instance(1, &InstanceSpec::default());
        let s2 = crate::cost_scaling::solve(&mut fresh.graph, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, s2.objective);
        assert!(inc.is_warm());
    }

    #[test]
    fn warm_resolve_after_cost_changes_matches_scratch() {
        for seed in 0..5 {
            let mut inst = scheduling_instance(seed, &InstanceSpec::default());
            let mut inc = IncrementalCostScaling::default();
            inc.solve(&mut inst.graph, &SolveOptions::unlimited())
                .unwrap();

            let arcs: Vec<ArcId> = inst.graph.arc_ids().collect();
            inst.graph.set_arc_cost(arcs[5], 3).unwrap();
            inst.graph.set_arc_cost(arcs[11], 180).unwrap();

            let warm = inc
                .solve(&mut inst.graph, &SolveOptions::unlimited())
                .unwrap();
            assert!(is_optimal(&inst.graph), "seed {seed}");
            let mut fresh = inst.graph.clone();
            let scratch =
                crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
            assert_eq!(warm.objective, scratch.objective, "seed {seed}");
        }
    }

    #[test]
    fn warm_resolve_after_task_arrival() {
        let mut inst = scheduling_instance(3, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();

        // Submit a new task.
        let t = inst.graph.add_node(NodeKind::Task { task: 777 }, 1);
        inst.graph.add_arc(t, inst.machines[2], 1, 4).unwrap();
        inst.graph.add_arc(t, inst.unscheduled, 1, 150).unwrap();
        let d = inst.graph.supply(inst.sink);
        inst.graph.set_supply(inst.sink, d - 1).unwrap();
        grow_unscheduled_capacity(&mut inst, 1);

        let warm = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&inst.graph));
        let mut fresh = inst.graph.clone();
        let scratch = crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(warm.objective, scratch.objective);
    }

    #[test]
    fn drain_task_flow_balances_graph() {
        let mut inst = scheduling_instance(5, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();

        // Pick a task that is actually scheduled on a machine.
        let scheduled = inst
            .tasks
            .iter()
            .copied()
            .find(|&t| {
                inst.graph.adj(t).iter().any(|&a| {
                    a.is_forward()
                        && inst.graph.flow(a) > 0
                        && inst.graph.dst(a) != inst.unscheduled
                })
            })
            .expect("at least one task scheduled");
        let drained = drain_task_flow(&mut inst.graph, scheduled);
        assert_eq!(drained, 1);
        // Complete the removal the way a policy would: delete the node and
        // shrink the sink's demand.
        inst.graph.remove_node(scheduled).unwrap();
        let d = inst.graph.supply(inst.sink);
        inst.graph.set_supply(inst.sink, d + 1).unwrap();
        // The graph is perfectly balanced: no excesses anywhere.
        let e = inst.graph.excesses();
        assert!(
            e.iter().all(|&x| x == 0),
            "drain left imbalance: {:?}",
            e.iter().filter(|&&x| x != 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn removal_without_drain_leaves_imbalance() {
        // The contrast case motivating the heuristic.
        let mut inst = scheduling_instance(5, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        let scheduled = inst
            .tasks
            .iter()
            .copied()
            .find(|&t| {
                inst.graph.adj(t).iter().any(|&a| {
                    a.is_forward()
                        && inst.graph.flow(a) > 0
                        && inst.graph.dst(a) != inst.unscheduled
                })
            })
            .expect("at least one task scheduled");
        inst.graph.remove_node(scheduled).unwrap();
        let d = inst.graph.supply(inst.sink);
        inst.graph.set_supply(inst.sink, d + 1).unwrap();
        let e = inst.graph.excesses();
        assert!(
            e.iter().any(|&x| x != 0),
            "removing a placed task without draining must unbalance the graph"
        );
    }

    #[test]
    fn incremental_with_task_removal_matches_scratch() {
        let mut inst = scheduling_instance(9, &InstanceSpec::default());
        let mut inc = IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();

        // Remove three tasks with the drain heuristic.
        let victims: Vec<NodeId> = inst.tasks[0..3].to_vec();
        for t in victims {
            drain_task_flow(&mut inst.graph, t);
            inst.graph.remove_node(t).unwrap();
            let d = inst.graph.supply(inst.sink);
            inst.graph.set_supply(inst.sink, d + 1).unwrap();
        }
        let warm = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&inst.graph));
        let mut fresh = inst.graph.clone();
        let scratch = crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(warm.objective, scratch.objective);
    }

    #[test]
    fn adopt_relaxation_solution_and_resolve() {
        let mut inst = scheduling_instance(12, &InstanceSpec::default());
        crate::relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let mut inc = IncrementalCostScaling::new(IncrementalConfig {
            price_refine_on_adopt: true,
            ..Default::default()
        });
        assert!(inc.adopt_solution(&inst.graph));
        assert!(inc.is_warm());

        // Apply a change, then warm-solve.
        let arcs: Vec<ArcId> = inst.graph.arc_ids().collect();
        inst.graph.set_arc_cost(arcs[9], 2).unwrap();
        let warm = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        assert!(is_optimal(&inst.graph));
        let mut fresh = inst.graph.clone();
        let scratch = crate::cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(warm.objective, scratch.objective);
    }

    #[test]
    fn adopt_without_price_refine_goes_cold() {
        let mut inst = scheduling_instance(12, &InstanceSpec::default());
        crate::relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let mut inc = IncrementalCostScaling::new(IncrementalConfig {
            price_refine_on_adopt: false,
            ..Default::default()
        });
        assert!(!inc.adopt_solution(&inst.graph));
        assert!(!inc.is_warm());
    }
}
