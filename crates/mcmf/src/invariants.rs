//! Table 1 and Table 2 as code: worst-case complexities and per-iteration
//! preconditions of each MCMF algorithm.
//!
//! The preconditions explain which algorithms incrementalize well (§5.2):
//! cost scaling expects feasibility *and* ε-optimality before each internal
//! iteration, so graph changes that break either force it to redo
//! substantial work; relaxation only needs reduced cost optimality, which a
//! single saturation pass restores.

use crate::common::AlgorithmKind;

/// The per-iteration preconditions of an algorithm (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invariants {
    /// Requires the flow to be feasible before each internal iteration.
    pub feasibility: bool,
    /// Requires reduced cost optimality before each internal iteration.
    pub reduced_cost_optimality: bool,
    /// Requires ε-optimality before each internal iteration.
    pub eps_optimality: bool,
}

/// Returns the Table 2 row for an algorithm.
pub fn invariants(algorithm: AlgorithmKind) -> Invariants {
    match algorithm {
        AlgorithmKind::Relaxation | AlgorithmKind::IncrementalRelaxation => Invariants {
            feasibility: false,
            reduced_cost_optimality: true,
            eps_optimality: false,
        },
        AlgorithmKind::CycleCanceling => Invariants {
            feasibility: true,
            reduced_cost_optimality: false,
            eps_optimality: false,
        },
        AlgorithmKind::CostScaling | AlgorithmKind::IncrementalCostScaling => Invariants {
            feasibility: true,
            reduced_cost_optimality: false,
            eps_optimality: true,
        },
        AlgorithmKind::SuccessiveShortestPath => Invariants {
            feasibility: false,
            reduced_cost_optimality: true,
            eps_optimality: false,
        },
    }
}

/// Worst-case time complexity of an algorithm (Table 1), as a display
/// string in terms of `N` nodes, `M` arcs, largest cost `C`, and largest
/// capacity `U`.
pub fn worst_case_complexity(algorithm: AlgorithmKind) -> &'static str {
    match algorithm {
        AlgorithmKind::Relaxation | AlgorithmKind::IncrementalRelaxation => "O(M^3 C U^2)",
        AlgorithmKind::CycleCanceling => "O(N M^2 C U)",
        AlgorithmKind::CostScaling | AlgorithmKind::IncrementalCostScaling => "O(N^2 M log(N C))",
        AlgorithmKind::SuccessiveShortestPath => "O(N^2 U log(N))",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let relax = invariants(AlgorithmKind::Relaxation);
        assert!(!relax.feasibility && relax.reduced_cost_optimality && !relax.eps_optimality);
        let cc = invariants(AlgorithmKind::CycleCanceling);
        assert!(cc.feasibility && !cc.reduced_cost_optimality && !cc.eps_optimality);
        let cs = invariants(AlgorithmKind::CostScaling);
        assert!(cs.feasibility && !cs.reduced_cost_optimality && cs.eps_optimality);
        let ssp = invariants(AlgorithmKind::SuccessiveShortestPath);
        assert!(!ssp.feasibility && ssp.reduced_cost_optimality && !ssp.eps_optimality);
    }

    #[test]
    fn incremental_variants_share_preconditions() {
        assert_eq!(
            invariants(AlgorithmKind::CostScaling),
            invariants(AlgorithmKind::IncrementalCostScaling)
        );
        assert_eq!(
            invariants(AlgorithmKind::Relaxation),
            invariants(AlgorithmKind::IncrementalRelaxation)
        );
    }

    #[test]
    fn table1_strings() {
        assert_eq!(
            worst_case_complexity(AlgorithmKind::Relaxation),
            "O(M^3 C U^2)"
        );
        assert_eq!(
            worst_case_complexity(AlgorithmKind::SuccessiveShortestPath),
            "O(N^2 U log(N))"
        );
    }
}
