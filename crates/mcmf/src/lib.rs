//! Min-cost max-flow algorithm suite for flow-based cluster scheduling.
//!
//! This crate implements the four MCMF algorithms Firmament studies (§4),
//! their incremental variants (§5.2), the problem-specific heuristics
//! (§5.3), and the speculative dual-algorithm executor (§6.1):
//!
//! | Algorithm | Module | Worst case (Table 1) |
//! |-----------|--------|----------------------|
//! | Cycle canceling | [`cycle_canceling`] | `O(N M² C U)` |
//! | Successive shortest path | [`ssp`] | `O(N² U log N)` |
//! | Relaxation | [`relaxation`] | `O(M³ C U²)` |
//! | Cost scaling | [`cost_scaling`] | `O(N² M log(N C))` |
//!
//! Despite having the worst theoretical complexity, relaxation performs best
//! in practice on scheduling graphs (§4.2) — except under heavy contention
//! or oversubscription, which is why [`dual::DualSolver`] speculatively runs
//! it next to [`incremental::IncrementalCostScaling`] and takes whichever
//! finishes first.
//!
//! All solvers operate in place on a
//! [`FlowGraph`](firmament_flow::FlowGraph) and agree on conventions:
//! reduced cost `c^π(a) = c(a) + π(src) − π(dst)`, prices that only
//! decrease, and optimality certified by the absence of negative-reduced-
//! cost residual arcs.
//!
//! # Examples
//!
//! ```
//! use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
//! use firmament_mcmf::{dual::DualSolver, SolveOptions};
//!
//! let inst = scheduling_instance(7, &InstanceSpec::default());
//! let mut solver = DualSolver::default();
//! let out = solver.solve(&inst.graph, &SolveOptions::unlimited()).unwrap();
//! assert!(firmament_mcmf::verify::is_optimal(&out.graph));
//! println!("{} won in {:?}", out.winner, out.solution.runtime);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod canonical;
pub mod common;
pub mod cost_scaling;
pub mod cycle_canceling;
pub mod dual;
pub mod incremental;
pub mod invariants;
pub mod maxflow;
pub mod price_refine;
pub mod relaxation;
pub mod ssp;
pub mod verify;

pub use canonical::canonicalize_flow;
pub use common::{AlgorithmKind, CancelToken, Solution, SolveError, SolveOptions, SolveStats};
pub use dual::{DualConfig, DualOutcome, DualSolver, SolverKind};
