//! Dinic's blocking-flow max-flow algorithm.
//!
//! Used by [cycle canceling](crate::cycle_canceling) to establish an initial
//! feasible flow, and by tests to check instance feasibility.

use firmament_flow::{ArcId, FlowGraph, NodeId};
use std::collections::VecDeque;

/// Computes a maximum flow from `source` to `sink` on the graph's residual
/// network, mutating flow state in place, and returns the flow value.
///
/// Costs are ignored. Capacities and any pre-existing flow are respected.
pub fn dinic_max_flow(graph: &mut FlowGraph, source: NodeId, sink: NodeId) -> i64 {
    let n = graph.node_bound();
    let mut level = vec![-1i32; n];
    let mut iter = vec![0usize; n];
    let mut total = 0i64;
    loop {
        // BFS to build the level graph.
        for l in level.iter_mut() {
            *l = -1;
        }
        level[source.index()] = 0;
        let mut q = VecDeque::new();
        q.push_back(source);
        while let Some(u) = q.pop_front() {
            for &a in graph.adj(u) {
                let v = graph.dst(a);
                if graph.rescap(a) > 0 && level[v.index()] < 0 {
                    level[v.index()] = level[u.index()] + 1;
                    q.push_back(v);
                }
            }
        }
        if level[sink.index()] < 0 {
            return total;
        }
        for it in iter.iter_mut() {
            *it = 0;
        }
        // Repeated DFS for augmenting paths within the level graph.
        loop {
            let pushed = dfs(graph, source, sink, i64::MAX, &level, &mut iter);
            if pushed == 0 {
                break;
            }
            total += pushed;
        }
    }
}

/// Iterative DFS that finds one augmenting path in the level graph and
/// pushes the bottleneck along it.
fn dfs(
    graph: &mut FlowGraph,
    source: NodeId,
    sink: NodeId,
    limit: i64,
    level: &[i32],
    iter: &mut [usize],
) -> i64 {
    // Explicit stack of (node, arc taken to get here).
    let mut path: Vec<ArcId> = Vec::new();
    let mut u = source;
    loop {
        if u == sink {
            let mut bottleneck = limit;
            for &a in &path {
                bottleneck = bottleneck.min(graph.rescap(a));
            }
            for &a in &path {
                graph.push_flow(a, bottleneck);
            }
            return bottleneck;
        }
        let adj = graph.adj(u);
        let mut advanced = false;
        while iter[u.index()] < adj.len() {
            let a = adj[iter[u.index()]];
            let v = graph.dst(a);
            if graph.rescap(a) > 0 && level[v.index()] == level[u.index()] + 1 {
                path.push(a);
                u = v;
                advanced = true;
                break;
            }
            iter[u.index()] += 1;
        }
        if advanced {
            continue;
        }
        // Dead end: retreat.
        if u == source {
            return 0;
        }
        let a = path.pop().expect("non-source dead end has a path");
        u = graph.src(a);
        iter[u.index()] += 1;
    }
}

/// Returns `true` if all positive supply can be routed to the negative
/// supplies, by running max flow from a temporary super-source to a
/// temporary super-sink. The graph's flow state is reset.
pub fn is_feasible(graph: &mut FlowGraph) -> bool {
    graph.reset_flow();
    let was_tracking = graph.tracks_changes();
    graph.set_change_tracking(false);
    let supplies: Vec<(NodeId, i64)> = graph
        .node_ids()
        .map(|v| (v, graph.supply(v)))
        .filter(|&(_, s)| s != 0)
        .collect();
    let total_pos: i64 = supplies
        .iter()
        .filter(|&&(_, s)| s > 0)
        .map(|&(_, s)| s)
        .sum();
    let ss = graph.add_node(firmament_flow::NodeKind::Other { tag: u64::MAX }, 0);
    let tt = graph.add_node(firmament_flow::NodeKind::Other { tag: u64::MAX - 1 }, 0);
    for &(v, s) in &supplies {
        if s > 0 {
            graph.add_arc(ss, v, s, 0).expect("supply arc");
        } else {
            graph.add_arc(v, tt, -s, 0).expect("demand arc");
        }
    }
    let value = dinic_max_flow(graph, ss, tt);
    graph.remove_node(ss).expect("super source");
    graph.remove_node(tt).expect("super sink");
    graph.reset_flow();
    graph.set_change_tracking(was_tracking);
    value == total_pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
    use firmament_flow::NodeKind;

    #[test]
    fn simple_max_flow() {
        let mut g = FlowGraph::new();
        let s = g.add_node(NodeKind::Other { tag: 0 }, 0);
        let a = g.add_node(NodeKind::Other { tag: 1 }, 0);
        let b = g.add_node(NodeKind::Other { tag: 2 }, 0);
        let t = g.add_node(NodeKind::Other { tag: 3 }, 0);
        g.add_arc(s, a, 3, 0).unwrap();
        g.add_arc(s, b, 2, 0).unwrap();
        g.add_arc(a, t, 2, 0).unwrap();
        g.add_arc(b, t, 3, 0).unwrap();
        g.add_arc(a, b, 5, 0).unwrap();
        assert_eq!(dinic_max_flow(&mut g, s, t), 5);
    }

    #[test]
    fn bottleneck_limits_flow() {
        let mut g = FlowGraph::new();
        let s = g.add_node(NodeKind::Other { tag: 0 }, 0);
        let m = g.add_node(NodeKind::Other { tag: 1 }, 0);
        let t = g.add_node(NodeKind::Other { tag: 2 }, 0);
        g.add_arc(s, m, 10, 0).unwrap();
        g.add_arc(m, t, 4, 0).unwrap();
        assert_eq!(dinic_max_flow(&mut g, s, t), 4);
    }

    #[test]
    fn generated_instances_are_feasible() {
        for seed in 0..5 {
            let mut inst = scheduling_instance(seed, &InstanceSpec::default());
            assert!(is_feasible(&mut inst.graph), "seed {seed}");
        }
    }

    #[test]
    fn infeasible_when_sink_unreachable() {
        let mut g = FlowGraph::new();
        let t = g.add_node(NodeKind::Task { task: 0 }, 2);
        let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        let s = g.add_node(NodeKind::Sink, -2);
        g.add_arc(t, m, 2, 0).unwrap();
        g.add_arc(m, s, 1, 0).unwrap(); // only one slot for two tasks
        assert!(!is_feasible(&mut g));
    }

    #[test]
    fn is_feasible_restores_graph_shape() {
        let mut inst = scheduling_instance(1, &InstanceSpec::default());
        let nodes = inst.graph.node_count();
        let arcs = inst.graph.arc_count();
        let _ = is_feasible(&mut inst.graph);
        assert_eq!(inst.graph.node_count(), nodes);
        assert_eq!(inst.graph.arc_count(), arcs);
        assert_eq!(inst.graph.objective(), 0, "flow reset");
    }
}
