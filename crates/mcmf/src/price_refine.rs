//! Price refine (Goldberg \[17\]): canonical prices for an optimal flow.
//!
//! Given an optimal flow, price refine computes *minimal-magnitude* node
//! prices that satisfy complementary slackness without modifying the flow.
//! Firmament applies it when handing the relaxation algorithm's solution to
//! incremental cost scaling (§6.2): relaxation converges on potentials that
//! fit cost scaling's complementary slackness requirement poorly, and
//! re-pricing speeds up the subsequent incremental run by ~4× (Fig 13).
//!
//! Crucially, Firmament applies price refine on the *previous* solution
//! before applying the latest cluster changes — the previous solution is
//! optimal, so canonical prices always exist — and then lets incremental
//! cost scaling start at an ε equal to the costliest arc change.

use firmament_flow::{FlowGraph, NodeId};
use std::collections::VecDeque;

/// Computes canonical prices (shortest-path distances over the residual
/// network, negated into price space) certifying that the current flow is
/// optimal, *in scaled cost units* (`scale · c(a)`).
///
/// Returns `None` if the flow is not optimal (a negative-cost residual cycle
/// exists), in which case prices cannot be assigned without changing flow.
pub fn price_refine(graph: &FlowGraph, scale: i64) -> Option<Vec<i64>> {
    let n = graph.node_bound();
    let mut dist = vec![0i64; n];
    let mut in_queue = vec![false; n];
    let mut len = vec![0u32; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for v in graph.node_ids() {
        in_queue[v.index()] = true;
        queue.push_back(v.index() as u32);
    }
    while let Some(ui) = queue.pop_front() {
        in_queue[ui as usize] = false;
        let u = NodeId::from_index(ui as usize);
        if !graph.node_alive(u) {
            continue;
        }
        for &a in graph.adj(u) {
            if graph.rescap(a) <= 0 {
                continue;
            }
            let v = graph.dst(a);
            let nd = dist[ui as usize] + scale * graph.cost(a);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                len[v.index()] = len[ui as usize] + 1;
                if len[v.index()] as usize > n {
                    // Negative cycle: the flow is not optimal.
                    return None;
                }
                if !in_queue[v.index()] {
                    in_queue[v.index()] = true;
                    queue.push_back(v.index() as u32);
                }
            }
        }
    }
    // π(i) = dist(i) yields rc(a) = scale·c(a) + dist(u) − dist(v) ≥ 0 by
    // the shortest-path triangle inequality, i.e. complementary slackness.
    Some(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::SolveOptions;
    use firmament_flow::testgen::{scheduling_instance, InstanceSpec};

    #[test]
    fn refined_prices_certify_optimality() {
        let mut inst = scheduling_instance(2, &InstanceSpec::default());
        crate::relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let prices = price_refine(&inst.graph, 1).expect("flow is optimal");
        assert!(crate::verify::check_reduced_cost_optimality(&inst.graph, &prices).is_ok());
    }

    #[test]
    fn refined_prices_are_smaller_than_relaxations() {
        // The whole point of price refine: relaxation's potentials work but
        // are unnecessarily large; canonical prices are bounded by the
        // longest shortest path.
        let mut inst = scheduling_instance(4, &InstanceSpec::default());
        let mut state = crate::relaxation::RelaxationState::default();
        inst.graph.reset_flow();
        let cfg = crate::relaxation::RelaxationConfig::default();
        crate::relaxation::solve_incremental(
            &mut inst.graph,
            &SolveOptions::unlimited(),
            &cfg,
            &mut state,
        )
        .unwrap();
        let refined = price_refine(&inst.graph, 1).expect("optimal");
        let max_refined = refined.iter().map(|p| p.abs()).max().unwrap_or(0);
        let max_cost = inst.graph.max_cost();
        // Canonical prices are bounded by n · C in the worst case, but on
        // scheduling graphs the longest residual shortest path is a few
        // hops, so prices stay within a small multiple of C.
        assert!(
            max_refined <= 4 * max_cost,
            "refined prices too large: {max_refined} vs C={max_cost}"
        );
    }

    #[test]
    fn non_optimal_flow_is_rejected() {
        let mut inst = scheduling_instance(6, &InstanceSpec::default());
        // Force a deliberately bad (but feasible) flow: schedule every task
        // through the unscheduled aggregator at high cost.
        let g = &mut inst.graph;
        let tasks = inst.tasks.clone();
        for t in tasks {
            let to_unsched = g
                .adj(t)
                .iter()
                .copied()
                .find(|&a| g.dst(a) == inst.unscheduled)
                .unwrap();
            g.push_flow(to_unsched, 1);
        }
        let unsched_sink = g
            .adj(inst.unscheduled)
            .iter()
            .copied()
            .find(|&a| g.dst(a) == inst.sink && g.capacity(a) > 0 && a.is_forward())
            .unwrap();
        g.push_flow(unsched_sink, inst.tasks.len() as i64);
        assert!(
            firmament_flow::validate::check_feasible(g).is_empty(),
            "constructed flow must be feasible"
        );
        assert!(price_refine(g, 1).is_none(), "flow is clearly suboptimal");
    }

    #[test]
    fn scaled_prices_certify_scaled_optimality() {
        let mut inst = scheduling_instance(8, &InstanceSpec::default());
        crate::relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let scale = 64;
        let prices = price_refine(&inst.graph, scale).expect("optimal");
        for u in inst.graph.node_ids() {
            for &a in inst.graph.adj(u) {
                if inst.graph.rescap(a) > 0 {
                    let v = inst.graph.dst(a);
                    let rc = scale * inst.graph.cost(a) + prices[u.index()] - prices[v.index()];
                    assert!(rc >= 0, "scaled reduced cost {rc} < 0");
                }
            }
        }
    }
}
