//! Relaxation (Bertsekas–Tseng [4; 5]): dual-ascent MCMF.
//!
//! Relaxation maintains reduced cost optimality at every step and works
//! towards feasibility (Table 2). For each node with excess it grows a tree
//! (cut) `S` of *balanced* residual arcs (zero reduced cost) looking for a
//! deficit node; when the cut's dual-ascent slope becomes positive it
//! instead performs a price update on all of `S`. This decoupling of
//! feasibility improvements from cost reductions is why relaxation does
//! minimal work when scheduling choices are uncontested (§4.2): most tasks'
//! flow routes to the sink in a single short scan.
//!
//! Sign conventions match [`crate::cost_scaling`]: reduced costs are
//! `c^π(a) = c(a) + π(src) − π(dst)`, reduced cost optimality means no
//! residual arc has negative reduced cost, and a dual ascent *lowers* the
//! prices of the cut `S` (the mirror image of the paper's Eq. 4 convention,
//! chosen so both algorithms share price semantics).
//!
//! The arc prioritization heuristic (§5.3.1) biases the cut scan towards
//! arcs that lead to demand nodes, turning the breadth-first frontier into
//! a hybrid traversal that finds augmenting paths sooner on contended
//! graphs; Fig 12a measures its benefit at ~45 %.

use crate::common::{
    AlgorithmKind, Budget, BudgetStop, Solution, SolveError, SolveOptions, SolveStats,
};
use firmament_flow::{ArcId, FlowGraph, NodeId};
use std::collections::VecDeque;

/// Tuning parameters for the relaxation algorithm.
#[derive(Debug, Clone)]
pub struct RelaxationConfig {
    /// Enables the arc prioritization heuristic (§5.3.1). Firmament enables
    /// it by default; disable to reproduce the "No AP" bar of Fig 12a.
    pub arc_prioritization: bool,
}

impl Default for RelaxationConfig {
    fn default() -> Self {
        RelaxationConfig {
            arc_prioritization: true,
        }
    }
}

/// Persistent relaxation state for incremental re-optimization (§5.2).
#[derive(Debug, Clone, Default)]
pub struct RelaxationState {
    /// Node prices, indexed by raw node index (unscaled cost units).
    pub potentials: Vec<i64>,
}

/// Solves min-cost max-flow by relaxation from scratch, leaving the optimal
/// flow in the graph.
///
/// # Examples
///
/// ```
/// use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
/// use firmament_mcmf::{relaxation, SolveOptions};
///
/// let mut inst = scheduling_instance(1, &InstanceSpec::default());
/// let sol = relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
/// assert!(firmament_mcmf::verify::is_optimal(&inst.graph));
/// # let _ = sol;
/// ```
pub fn solve(graph: &mut FlowGraph, opts: &SolveOptions) -> Result<Solution, SolveError> {
    solve_with(graph, opts, &RelaxationConfig::default())
}

/// Solves from scratch with explicit configuration.
pub fn solve_with(
    graph: &mut FlowGraph,
    opts: &SolveOptions,
    config: &RelaxationConfig,
) -> Result<Solution, SolveError> {
    graph.reset_flow();
    let mut state = RelaxationState::default();
    let mut sol = solve_warm(graph, opts, config, &mut state)?;
    sol.algorithm = AlgorithmKind::Relaxation;
    Ok(sol)
}

/// Incremental relaxation: reuses the prices in `state` and the flow already
/// present in the graph (§5.2).
///
/// The function first restores reduced cost optimality — graph changes may
/// have left residual arcs with negative reduced cost — by saturating every
/// such arc (which also cancels flow on arcs whose reverse became
/// admissible), then runs the main loop to restore feasibility.
pub fn solve_incremental(
    graph: &mut FlowGraph,
    opts: &SolveOptions,
    config: &RelaxationConfig,
    state: &mut RelaxationState,
) -> Result<Solution, SolveError> {
    let mut sol = solve_warm(graph, opts, config, state)?;
    sol.algorithm = AlgorithmKind::IncrementalRelaxation;
    Ok(sol)
}

/// Shared engine: treats the current flow as a starting pseudoflow, repairs
/// complementary slackness, and drives all excess to the deficits.
fn solve_warm(
    graph: &mut FlowGraph,
    opts: &SolveOptions,
    config: &RelaxationConfig,
    state: &mut RelaxationState,
) -> Result<Solution, SolveError> {
    let mut budget = Budget::new(opts);
    let mut stats = SolveStats::default();
    let total: i64 = graph.node_ids().map(|v| graph.supply(v)).sum();
    if total != 0 {
        return Err(SolveError::UnbalancedSupply { total });
    }
    let n = graph.node_bound();
    state.potentials.resize(n, 0);
    let pot = &mut state.potentials;

    // Restore complementary slackness: saturate every residual arc with
    // negative reduced cost. (Saturating the reverse arc of a flow-carrying
    // arc whose reduced cost turned positive cancels that flow.)
    let nodes: Vec<NodeId> = graph.node_ids().collect();
    for &u in &nodes {
        let arcs: Vec<ArcId> = graph.adj(u).to_vec();
        for a in arcs {
            let r = graph.rescap(a);
            if r <= 0 {
                continue;
            }
            let rc = graph.cost(a) + pot[u.index()] - pot[graph.dst(a).index()];
            if rc < 0 {
                graph.push_flow(a, r);
            }
        }
    }

    let mut excess = graph.excesses();
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut in_queue = vec![false; n];
    for &u in &nodes {
        if excess[u.index()] > 0 {
            queue.push_back(u.index() as u32);
            in_queue[u.index()] = true;
        }
    }

    // Epoch-stamped membership for the cut S, rebuilt every iteration
    // without clearing.
    let mut stamp = vec![0u64; n];
    let mut epoch = 0u64;
    let mut pred: Vec<ArcId> = vec![ArcId::from_index(0); n];
    let mut members: Vec<NodeId> = Vec::new();
    let mut frontier: VecDeque<ArcId> = VecDeque::new();

    'outer: while let Some(si) = queue.pop_front() {
        in_queue[si as usize] = false;
        if excess[si as usize] <= 0 {
            continue;
        }
        let s = NodeId::from_index(si as usize);
        match budget.tick() {
            Some(BudgetStop::Cancelled) => return Err(SolveError::Cancelled),
            Some(BudgetStop::Exhausted) => {
                stats.iterations = budget.iterations;
                return Ok(Solution {
                    algorithm: AlgorithmKind::Relaxation,
                    objective: graph.objective(),
                    terminated_early: true,
                    runtime: budget.elapsed(),
                    stats,
                });
            }
            None => {}
        }

        // Every iteration (single- or multi-node) uses a fresh epoch; `s`
        // is always the first member of the cut.
        epoch += 1;
        members.clear();
        frontier.clear();
        stamp[si as usize] = epoch;
        members.push(s);

        // --- Single-node fast path -----------------------------------
        // slope({s}) = e(s) − Σ rescap over balanced out-arcs. If positive,
        // a price update on {s} alone improves the dual.
        let mut balanced_out = 0i64;
        for &a in graph.adj(s) {
            if graph.rescap(a) > 0 {
                let rc = graph.cost(a) + pot[si as usize] - pot[graph.dst(a).index()];
                if rc == 0 {
                    balanced_out += graph.rescap(a);
                }
            }
        }
        if excess[si as usize] > balanced_out {
            price_update(
                graph,
                pot,
                &mut excess,
                &members,
                &stamp,
                epoch,
                &mut queue,
                &mut in_queue,
                &mut stats,
            )?;
            requeue(s, &excess, &mut queue, &mut in_queue);
            continue;
        }

        // --- Multi-node iteration: grow the cut S --------------------
        let mut slope = excess[si as usize];
        slope -= queue_balanced_out_arcs(
            graph,
            pot,
            s,
            &stamp,
            epoch,
            &excess,
            &mut frontier,
            config.arc_prioritization,
        );

        loop {
            if slope > 0 {
                price_update(
                    graph,
                    pot,
                    &mut excess,
                    &members,
                    &stamp,
                    epoch,
                    &mut queue,
                    &mut in_queue,
                    &mut stats,
                )?;
                requeue(s, &excess, &mut queue, &mut in_queue);
                continue 'outer;
            }
            let Some(a) = frontier.pop_front() else {
                // No balanced arcs cross the cut: the exact slope is e(S),
                // which is positive (s has excess, other members are
                // non-negative), so a price update is always possible.
                price_update(
                    graph,
                    pot,
                    &mut excess,
                    &members,
                    &stamp,
                    epoch,
                    &mut queue,
                    &mut in_queue,
                    &mut stats,
                )?;
                requeue(s, &excess, &mut queue, &mut in_queue);
                continue 'outer;
            };
            let j = graph.dst(a);
            if stamp[j.index()] == epoch {
                // The arc became internal when j joined S; undo its
                // contribution to the slope.
                slope += graph.rescap(a);
                continue;
            }
            if excess[j.index()] < 0 {
                // Deficit found: augment along the tree path s → … → j.
                augment(
                    graph,
                    &pred,
                    &stamp,
                    epoch,
                    s,
                    j,
                    a,
                    &mut excess,
                    &mut stats,
                );
                requeue(s, &excess, &mut queue, &mut in_queue);
                continue 'outer;
            }
            // Extend the cut to j.
            stamp[j.index()] = epoch;
            pred[j.index()] = a;
            members.push(j);
            slope += graph.rescap(a) + excess[j.index()];
            slope -= queue_balanced_out_arcs(
                graph,
                pot,
                j,
                &stamp,
                epoch,
                &excess,
                &mut frontier,
                config.arc_prioritization,
            );
        }
    }
    stats.iterations = budget.iterations;
    Ok(Solution {
        algorithm: AlgorithmKind::Relaxation,
        objective: graph.objective(),
        terminated_early: false,
        runtime: budget.elapsed(),
        stats,
    })
}

/// Pushes all balanced residual out-arcs of `u` that cross the cut onto the
/// frontier and returns the total residual capacity queued.
///
/// With arc prioritization, arcs leading directly to demand nodes go to the
/// *front* of the frontier (depth-first bias towards augmenting paths);
/// everything else is appended (breadth-first otherwise).
#[allow(clippy::too_many_arguments)]
fn queue_balanced_out_arcs(
    graph: &FlowGraph,
    pot: &[i64],
    u: NodeId,
    stamp: &[u64],
    epoch: u64,
    excess: &[i64],
    frontier: &mut VecDeque<ArcId>,
    prioritize: bool,
) -> i64 {
    let mut queued = 0i64;
    for &a in graph.adj(u) {
        let r = graph.rescap(a);
        if r <= 0 {
            continue;
        }
        let v = graph.dst(a);
        if stamp[v.index()] == epoch {
            continue;
        }
        let rc = graph.cost(a) + pot[u.index()] - pot[v.index()];
        if rc != 0 {
            continue;
        }
        queued += r;
        if prioritize && excess[v.index()] < 0 {
            frontier.push_front(a);
        } else {
            frontier.push_back(a);
        }
    }
    queued
}

/// Dual ascent on the cut `S`: saturates every balanced residual arc leaving
/// the cut, then lowers all member prices by the minimum positive reduced
/// cost among the remaining outgoing residual arcs.
#[allow(clippy::too_many_arguments)]
fn price_update(
    graph: &mut FlowGraph,
    pot: &mut [i64],
    excess: &mut [i64],
    members: &[NodeId],
    stamp: &[u64],
    epoch: u64,
    queue: &mut VecDeque<u32>,
    in_queue: &mut [bool],
    stats: &mut SolveStats,
) -> Result<(), SolveError> {
    let in_cut = |v: NodeId| stamp[v.index()] == epoch;
    let mut theta = i64::MAX;
    for &i in members {
        let arcs: Vec<ArcId> = graph.adj(i).to_vec();
        for a in arcs {
            let r = graph.rescap(a);
            if r <= 0 {
                continue;
            }
            let v = graph.dst(a);
            if in_cut(v) {
                continue;
            }
            let rc = graph.cost(a) + pot[i.index()] - pot[v.index()];
            if rc == 0 {
                // Lowering π(i) will turn this arc's reduced cost negative,
                // so complementary slackness forces saturation.
                graph.push_flow(a, r);
                excess[i.index()] -= r;
                let was = excess[v.index()];
                excess[v.index()] += r;
                if was <= 0 && excess[v.index()] > 0 && !in_queue[v.index()] {
                    queue.push_back(v.index() as u32);
                    in_queue[v.index()] = true;
                }
            } else if rc > 0 && rc < theta {
                theta = rc;
            }
        }
    }
    if theta == i64::MAX {
        // The cut cannot reach the rest of the graph at any price: the
        // remaining excess is unroutable.
        return Err(SolveError::Infeasible);
    }
    for &i in members {
        pot[i.index()] -= theta;
    }
    stats.price_updates += 1;
    Ok(())
}

/// Augments along the tree path `s → … → src(a)` plus the closing arc `a`
/// into the deficit node `j`.
#[allow(clippy::too_many_arguments)]
fn augment(
    graph: &mut FlowGraph,
    pred: &[ArcId],
    stamp: &[u64],
    epoch: u64,
    s: NodeId,
    j: NodeId,
    a: ArcId,
    excess: &mut [i64],
    stats: &mut SolveStats,
) {
    debug_assert_eq!(stamp[graph.src(a).index()], epoch);
    let mut bottleneck = graph.rescap(a);
    let mut v = graph.src(a);
    while v != s {
        let p = pred[v.index()];
        bottleneck = bottleneck.min(graph.rescap(p));
        v = graph.src(p);
    }
    let delta = bottleneck.min(excess[s.index()]).min(-excess[j.index()]);
    debug_assert!(delta > 0);
    graph.push_flow(a, delta);
    let mut v = graph.src(a);
    while v != s {
        let p = pred[v.index()];
        graph.push_flow(p, delta);
        v = graph.src(p);
    }
    excess[s.index()] -= delta;
    excess[j.index()] += delta;
    stats.augmentations += 1;
}

fn requeue(s: NodeId, excess: &[i64], queue: &mut VecDeque<u32>, in_queue: &mut [bool]) {
    if excess[s.index()] > 0 && !in_queue[s.index()] {
        queue.push_back(s.index() as u32);
        in_queue[s.index()] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_reduced_cost_optimality, is_optimal};
    use firmament_flow::builder::figure5;
    use firmament_flow::testgen::{layered_instance, scheduling_instance, InstanceSpec};
    use firmament_flow::NodeKind;

    #[test]
    fn solves_figure5_optimally() {
        let (mut g, _, _) = figure5();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, 14);
        assert!(is_optimal(&g));
    }

    #[test]
    fn agrees_with_ssp_on_random_instances() {
        for seed in 0..10 {
            let spec = InstanceSpec {
                tasks: 60,
                machines: 15,
                slots_per_machine: 3,
                ..InstanceSpec::default()
            };
            let mut a = scheduling_instance(seed, &spec);
            let mut b = scheduling_instance(seed, &spec);
            let s1 = solve(&mut a.graph, &SolveOptions::unlimited()).unwrap();
            let s2 = crate::ssp::solve(&mut b.graph, &SolveOptions::unlimited()).unwrap();
            assert_eq!(s1.objective, s2.objective, "seed {seed}");
            assert!(is_optimal(&a.graph), "seed {seed}");
        }
    }

    #[test]
    fn agrees_on_layered_graphs() {
        for seed in 0..5 {
            let mut a = layered_instance(seed, 15, 5, 6);
            let mut b = layered_instance(seed, 15, 5, 6);
            let s1 = solve(&mut a, &SolveOptions::unlimited()).unwrap();
            let s2 = crate::ssp::solve(&mut b, &SolveOptions::unlimited()).unwrap();
            assert_eq!(s1.objective, s2.objective, "seed {seed}");
        }
    }

    #[test]
    fn final_potentials_satisfy_reduced_cost_optimality() {
        let mut inst = scheduling_instance(7, &InstanceSpec::default());
        let mut state = RelaxationState::default();
        inst.graph.reset_flow();
        solve_warm(
            &mut inst.graph,
            &SolveOptions::unlimited(),
            &RelaxationConfig::default(),
            &mut state,
        )
        .unwrap();
        assert!(check_reduced_cost_optimality(&inst.graph, &state.potentials).is_ok());
    }

    #[test]
    fn no_arc_prioritization_still_optimal() {
        let cfg = RelaxationConfig {
            arc_prioritization: false,
        };
        for seed in 0..5 {
            let mut a = scheduling_instance(seed, &InstanceSpec::default());
            let mut b = scheduling_instance(seed, &InstanceSpec::default());
            let s1 = solve_with(&mut a.graph, &SolveOptions::unlimited(), &cfg).unwrap();
            let s2 = solve(&mut b.graph, &SolveOptions::unlimited()).unwrap();
            assert_eq!(s1.objective, s2.objective, "seed {seed}");
        }
    }

    #[test]
    fn incremental_matches_from_scratch_after_changes() {
        for seed in 0..5 {
            let spec = InstanceSpec {
                tasks: 40,
                machines: 12,
                ..InstanceSpec::default()
            };
            let mut inst = scheduling_instance(seed, &spec);
            let mut state = RelaxationState::default();
            inst.graph.reset_flow();
            solve_warm(
                &mut inst.graph,
                &SolveOptions::unlimited(),
                &RelaxationConfig::default(),
                &mut state,
            )
            .unwrap();

            // Perturb: change some arc costs and add a new task.
            let arcs: Vec<ArcId> = inst.graph.arc_ids().collect();
            inst.graph.set_arc_cost(arcs[3], 1).unwrap();
            inst.graph.set_arc_cost(arcs[7], 200).unwrap();
            let t = inst.graph.add_node(NodeKind::Task { task: 999 }, 1);
            inst.graph.add_arc(t, inst.machines[0], 1, 5).unwrap();
            inst.graph.add_arc(t, inst.unscheduled, 1, 150).unwrap();
            let sink_supply = inst.graph.supply(inst.sink);
            inst.graph.set_supply(inst.sink, sink_supply - 1).unwrap();
            // Unscheduled aggregator capacity must grow for the new task.
            let unsched_arc = inst
                .graph
                .adj(inst.unscheduled)
                .iter()
                .copied()
                .find(|&a| inst.graph.dst(a) == inst.sink && a.is_forward())
                .unwrap();
            let cap = inst.graph.capacity(unsched_arc);
            inst.graph.set_arc_capacity(unsched_arc, cap + 1).unwrap();

            let inc = solve_incremental(
                &mut inst.graph,
                &SolveOptions::unlimited(),
                &RelaxationConfig::default(),
                &mut state,
            )
            .unwrap();
            assert!(is_optimal(&inst.graph), "seed {seed}");

            // Compare against a from-scratch solve on the mutated graph.
            let mut fresh = inst.graph.clone();
            let scratch = solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
            assert_eq!(inc.objective, scratch.objective, "seed {seed}");
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut g = FlowGraph::new();
        let t = g.add_node(NodeKind::Task { task: 0 }, 2);
        let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        let s = g.add_node(NodeKind::Sink, -2);
        g.add_arc(t, m, 2, 1).unwrap();
        g.add_arc(m, s, 1, 0).unwrap();
        assert!(matches!(
            solve(&mut g, &SolveOptions::unlimited()),
            Err(SolveError::Infeasible)
        ));
    }

    #[test]
    fn contended_aggregator_graph_solves() {
        // Load-spreading shape: all tasks fan through one aggregator, which
        // is the contended case where relaxation struggles (§4.3, Fig 9).
        let mut g = FlowGraph::new();
        let sink = g.add_node(NodeKind::Sink, -30);
        let x = g.add_node(NodeKind::ClusterAggregator, 0);
        let mut machines = Vec::new();
        for m in 0..10 {
            let node = g.add_node(NodeKind::Machine { machine: m }, 0);
            g.add_arc(node, sink, 5, 0).unwrap();
            g.add_arc(x, node, 5, (m as i64) + 1).unwrap();
            machines.push(node);
        }
        for t in 0..30 {
            let node = g.add_node(NodeKind::Task { task: t }, 1);
            g.add_arc(node, x, 1, 1).unwrap();
        }
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert!(is_optimal(&g));
        // 30 tasks over machines costing 1..=10 with 5 slots each: the
        // cheapest 6 machines fill up: 5*(1+2+3+4+5+6) + 30*1 (task→X).
        assert_eq!(sol.objective, 5 * 21 + 30);
    }
}
