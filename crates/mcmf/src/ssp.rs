//! Successive shortest path (Ahuja–Magnanti–Orlin [2, p. 320]).
//!
//! The algorithm maintains reduced cost optimality at every step and works
//! towards feasibility (Table 2): it repeatedly selects a source node with
//! positive excess and sends flow along a shortest path (in reduced costs)
//! to a node with deficit, updating node potentials after each Dijkstra.

use crate::common::{
    AlgorithmKind, Budget, BudgetStop, Solution, SolveError, SolveOptions, SolveStats,
};
use firmament_flow::{ArcId, FlowGraph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Solves min-cost max-flow by successive shortest paths, leaving the
/// optimal flow in the graph.
///
/// Negative-cost arcs are handled by saturating them up front, which makes
/// every remaining residual arc non-negative so that `π = 0` is a valid
/// initial potential assignment.
///
/// # Examples
///
/// ```
/// use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
/// use firmament_mcmf::{ssp, SolveOptions};
///
/// let mut inst = scheduling_instance(1, &InstanceSpec::default());
/// let sol = ssp::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
/// assert!(firmament_mcmf::verify::is_optimal(&inst.graph));
/// # let _ = sol;
/// ```
pub fn solve(graph: &mut FlowGraph, opts: &SolveOptions) -> Result<Solution, SolveError> {
    let mut budget = Budget::new(opts);
    let mut stats = SolveStats::default();
    let total: i64 = graph.node_ids().map(|v| graph.supply(v)).sum();
    if total != 0 {
        return Err(SolveError::UnbalancedSupply { total });
    }
    graph.reset_flow();
    // Saturate negative arcs so the residual network has no negative costs.
    for a in graph.arc_ids().collect::<Vec<_>>() {
        if graph.cost(a) < 0 {
            let r = graph.rescap(a);
            if r > 0 {
                graph.push_flow(a, r);
            }
        }
    }
    let n = graph.node_bound();
    let mut pot = vec![0i64; n];
    let mut excess = graph.excesses();
    let mut sources: Vec<NodeId> = graph
        .node_ids()
        .filter(|&v| excess[v.index()] > 0)
        .collect();

    // Scratch space reused across Dijkstra runs.
    let mut dist = vec![i64::MAX; n];
    let mut pred: Vec<Option<ArcId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut touched: Vec<u32> = Vec::new();

    while let Some(&s) = sources.last() {
        if excess[s.index()] <= 0 {
            sources.pop();
            continue;
        }
        match budget.tick() {
            Some(BudgetStop::Cancelled) => return Err(SolveError::Cancelled),
            Some(BudgetStop::Exhausted) => {
                stats.iterations = budget.iterations;
                return Ok(Solution {
                    algorithm: AlgorithmKind::SuccessiveShortestPath,
                    objective: graph.objective(),
                    terminated_early: true,
                    runtime: budget.elapsed(),
                    stats,
                });
            }
            None => {}
        }

        // Dijkstra over reduced costs from s to the nearest deficit node.
        for &t in &touched {
            dist[t as usize] = i64::MAX;
            pred[t as usize] = None;
            visited[t as usize] = false;
        }
        touched.clear();
        dist[s.index()] = 0;
        touched.push(s.index() as u32);
        let mut heap: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();
        heap.push(Reverse((0, s.index() as u32)));
        let mut target: Option<NodeId> = None;
        while let Some(Reverse((d, ui))) = heap.pop() {
            let u = NodeId::from_index(ui as usize);
            if visited[ui as usize] || d > dist[ui as usize] {
                continue;
            }
            visited[ui as usize] = true;
            if excess[ui as usize] < 0 {
                target = Some(u);
                break;
            }
            for &a in graph.adj(u) {
                if graph.rescap(a) <= 0 {
                    continue;
                }
                let v = graph.dst(a);
                let rc = graph.cost(a) + pot[ui as usize] - pot[v.index()];
                debug_assert!(rc >= 0, "reduced cost {rc} negative during SSP");
                let nd = d + rc;
                if nd < dist[v.index()] {
                    if dist[v.index()] == i64::MAX {
                        touched.push(v.index() as u32);
                    }
                    dist[v.index()] = nd;
                    pred[v.index()] = Some(a);
                    heap.push(Reverse((nd, v.index() as u32)));
                }
            }
        }
        let Some(t) = target else {
            return Err(SolveError::Infeasible);
        };
        let dt = dist[t.index()];
        // Potential update preserves reduced cost optimality: every node
        // moves by Δ(x) = min(d(x), d(t)) — unreached nodes by d(t) — so
        // that rc'(u,v) = rc(u,v) + Δ(u) − Δ(v) stays non-negative and
        // turns zero along the shortest path.
        for v in graph.node_ids() {
            pot[v.index()] += dist[v.index()].min(dt);
        }
        // Augment along the shortest path.
        let mut bottleneck = excess[s.index()].min(-excess[t.index()]);
        let mut v = t;
        while v != s {
            let a = pred[v.index()].expect("path to source");
            bottleneck = bottleneck.min(graph.rescap(a));
            v = graph.src(a);
        }
        debug_assert!(bottleneck > 0);
        let mut v = t;
        while v != s {
            let a = pred[v.index()].expect("path to source");
            graph.push_flow(a, bottleneck);
            v = graph.src(a);
        }
        excess[s.index()] -= bottleneck;
        excess[t.index()] += bottleneck;
        stats.augmentations += 1;
    }
    stats.iterations = budget.iterations;
    Ok(Solution {
        algorithm: AlgorithmKind::SuccessiveShortestPath,
        objective: graph.objective(),
        terminated_early: false,
        runtime: budget.elapsed(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_optimal;
    use firmament_flow::builder::figure5;
    use firmament_flow::testgen::{layered_instance, scheduling_instance, InstanceSpec};
    use firmament_flow::NodeKind;

    #[test]
    fn solves_figure5_optimally() {
        let (mut g, _, _) = figure5();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, 14);
        assert!(is_optimal(&g));
    }

    #[test]
    fn agrees_with_cycle_canceling_on_random_instances() {
        for seed in 0..8 {
            let spec = InstanceSpec {
                tasks: 30,
                machines: 10,
                ..InstanceSpec::default()
            };
            let mut a = scheduling_instance(seed, &spec);
            let mut b = scheduling_instance(seed, &spec);
            let s1 = solve(&mut a.graph, &SolveOptions::unlimited()).unwrap();
            let s2 =
                crate::cycle_canceling::solve(&mut b.graph, &SolveOptions::unlimited()).unwrap();
            assert_eq!(s1.objective, s2.objective, "seed {seed}");
            assert!(is_optimal(&a.graph));
        }
    }

    #[test]
    fn handles_layered_graphs() {
        for seed in 0..4 {
            let mut g = layered_instance(seed, 12, 4, 5);
            let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
            assert!(is_optimal(&g), "seed {seed}");
            assert!(sol.objective >= 0);
        }
    }

    #[test]
    fn handles_negative_arc_costs() {
        let mut g = FlowGraph::new();
        let t = g.add_node(NodeKind::Task { task: 0 }, 1);
        let m = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        let m2 = g.add_node(NodeKind::Machine { machine: 1 }, 0);
        let s = g.add_node(NodeKind::Sink, -1);
        // A negative-cost arc models a strong preference (e.g. a running
        // task's accumulated work in the Quincy cost model).
        g.add_arc(t, m, 1, -5).unwrap();
        g.add_arc(t, m2, 1, 1).unwrap();
        g.add_arc(m, s, 1, 2).unwrap();
        g.add_arc(m2, s, 1, 0).unwrap();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, -3);
        assert!(is_optimal(&g));
    }

    #[test]
    fn multi_unit_supplies() {
        let mut g = FlowGraph::new();
        let a = g.add_node(NodeKind::Other { tag: 0 }, 3);
        let b = g.add_node(NodeKind::Other { tag: 1 }, 2);
        let s = g.add_node(NodeKind::Sink, -5);
        g.add_arc(a, s, 3, 2).unwrap();
        g.add_arc(b, a, 2, 1).unwrap();
        g.add_arc(b, s, 2, 5).unwrap();
        // b's cheapest route is via a, but a's sink arc only has 3 slots.
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert!(is_optimal(&g));
        assert_eq!(sol.objective, 3 * 2 + 2 * 5);
    }

    #[test]
    fn infeasible_detected() {
        let mut g = FlowGraph::new();
        let t = g.add_node(NodeKind::Task { task: 0 }, 2);
        let s = g.add_node(NodeKind::Sink, -2);
        g.add_arc(t, s, 1, 1).unwrap();
        assert!(matches!(
            solve(&mut g, &SolveOptions::unlimited()),
            Err(SolveError::Infeasible)
        ));
    }
}
