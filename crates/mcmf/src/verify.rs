//! Optimality verification for min-cost max-flow solutions.
//!
//! Implements the three equivalent optimality conditions of §4: negative
//! cycle optimality, reduced cost optimality, and complementary slackness
//! (with its ε-relaxation used by cost scaling).

use firmament_flow::validate::check_feasible;
use firmament_flow::{ArcId, FlowGraph};

/// Result of [`find_potentials`]: either certifying potentials or a witness
/// that the flow is not optimal.
#[derive(Debug, Clone)]
pub enum OptimalityCheck {
    /// The flow is optimal; the potentials satisfy reduced-cost optimality
    /// (no residual arc has negative reduced cost).
    Optimal {
        /// Certifying node potentials, indexed by raw node index.
        potentials: Vec<i64>,
    },
    /// A negative-cost cycle exists in the residual network (condition 1
    /// fails), so the flow is not optimal.
    NegativeCycle {
        /// Residual arcs forming the cycle, in order.
        cycle: Vec<ArcId>,
    },
}

/// Runs Bellman–Ford on the residual network to either compute certifying
/// potentials or find a negative-cost residual cycle.
///
/// A virtual source with zero-cost arcs to every node initializes distances,
/// so disconnected components are handled uniformly.
pub fn find_potentials(graph: &FlowGraph) -> OptimalityCheck {
    let n = graph.node_bound();
    let mut dist = vec![0i64; n];
    let mut pred: Vec<Option<ArcId>> = vec![None; n];
    let mut in_queue = vec![false; n];
    let mut queue: std::collections::VecDeque<u32> = graph
        .node_ids()
        .map(|v| {
            in_queue[v.index()] = true;
            v.index() as u32
        })
        .collect();
    let mut relaxations = 0u64;
    // SPFA with a relaxation budget: more than n*m relaxations implies a
    // negative cycle somewhere along the predecessor chain.
    let budget = (n as u64 + 1) * (graph.arc_count() as u64 * 2 + 1);
    while let Some(ui) = queue.pop_front() {
        in_queue[ui as usize] = false;
        let u = firmament_flow::NodeId::from_index(ui as usize);
        if !graph.node_alive(u) {
            continue;
        }
        for &a in graph.adj(u) {
            if graph.rescap(a) <= 0 {
                continue;
            }
            let v = graph.dst(a);
            let nd = dist[ui as usize] + graph.cost(a);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                pred[v.index()] = Some(a);
                relaxations += 1;
                if relaxations > budget {
                    return OptimalityCheck::NegativeCycle {
                        cycle: extract_cycle(graph, &pred, v),
                    };
                }
                if !in_queue[v.index()] {
                    in_queue[v.index()] = true;
                    queue.push_back(v.index() as u32);
                }
            }
        }
    }
    // Potentials: π(i) = dist(i) gives rc(a) = c(a) + π(u) − π(v)
    //                           = c(a) + dist(u) − dist(v) ≥ 0
    // by the shortest-path relaxation property d(v) ≤ d(u) + c(a).
    OptimalityCheck::Optimal { potentials: dist }
}

/// Walks predecessor arcs from `start` to extract a residual cycle.
fn extract_cycle(
    graph: &FlowGraph,
    pred: &[Option<ArcId>],
    start: firmament_flow::NodeId,
) -> Vec<ArcId> {
    let n = pred.len();
    // Walk back n steps to guarantee we are inside the cycle.
    let mut v = start;
    for _ in 0..n {
        if let Some(a) = pred[v.index()] {
            v = graph.src(a);
        }
    }
    let mut cycle = Vec::new();
    let anchor = v;
    loop {
        let a = pred[v.index()].expect("cycle nodes have predecessors");
        cycle.push(a);
        v = graph.src(a);
        if v == anchor {
            break;
        }
    }
    cycle.reverse();
    cycle
}

/// Returns `true` if the flow currently in the graph is a feasible,
/// minimum-cost flow.
pub fn is_optimal(graph: &FlowGraph) -> bool {
    if !check_feasible(graph).is_empty() {
        return false;
    }
    matches!(find_potentials(graph), OptimalityCheck::Optimal { .. })
}

/// Checks reduced-cost optimality for given potentials: no residual arc may
/// have `c^π_ij < 0` (optimality condition 2 of §4).
pub fn check_reduced_cost_optimality(graph: &FlowGraph, potentials: &[i64]) -> Result<(), ArcId> {
    check_eps_optimality(graph, potentials, 0)
}

/// Checks ε-optimality: every residual arc must have `c^π_ij ≥ −ε`
/// (the relaxed complementary slackness of cost scaling, §4).
///
/// Returns the first violating residual arc on failure.
pub fn check_eps_optimality(graph: &FlowGraph, potentials: &[i64], eps: i64) -> Result<(), ArcId> {
    for u in graph.node_ids() {
        for &a in graph.adj(u) {
            if graph.rescap(a) <= 0 {
                continue;
            }
            let v = graph.dst(a);
            let rc = graph.cost(a) + potentials[u.index()] - potentials[v.index()];
            if rc < -eps {
                return Err(a);
            }
        }
    }
    Ok(())
}

/// Computes the reduced cost of a residual arc for given potentials.
#[inline]
pub fn reduced_cost(graph: &FlowGraph, potentials: &[i64], arc: ArcId) -> i64 {
    graph.cost(arc) + potentials[graph.src(arc).index()] - potentials[graph.dst(arc).index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_flow::{FlowGraph, NodeKind};

    /// Two tasks, two machines; optimal assignment is obvious.
    fn two_by_two() -> (FlowGraph, Vec<ArcId>) {
        let mut g = FlowGraph::new();
        let t0 = g.add_node(NodeKind::Task { task: 0 }, 1);
        let t1 = g.add_node(NodeKind::Task { task: 1 }, 1);
        let m0 = g.add_node(NodeKind::Machine { machine: 0 }, 0);
        let m1 = g.add_node(NodeKind::Machine { machine: 1 }, 0);
        let s = g.add_node(NodeKind::Sink, -2);
        let a = vec![
            g.add_arc(t0, m0, 1, 1).unwrap(),
            g.add_arc(t0, m1, 1, 5).unwrap(),
            g.add_arc(t1, m0, 1, 6).unwrap(),
            g.add_arc(t1, m1, 1, 2).unwrap(),
            g.add_arc(m0, s, 1, 0).unwrap(),
            g.add_arc(m1, s, 1, 0).unwrap(),
        ];
        (g, a)
    }

    #[test]
    fn optimal_flow_is_certified() {
        let (mut g, a) = two_by_two();
        g.push_flow(a[0], 1);
        g.push_flow(a[3], 1);
        g.push_flow(a[4], 1);
        g.push_flow(a[5], 1);
        assert!(is_optimal(&g));
        match find_potentials(&g) {
            OptimalityCheck::Optimal { potentials } => {
                assert!(check_reduced_cost_optimality(&g, &potentials).is_ok());
            }
            OptimalityCheck::NegativeCycle { .. } => panic!("flow is optimal"),
        }
    }

    #[test]
    fn suboptimal_flow_yields_negative_cycle() {
        let (mut g, a) = two_by_two();
        // The bad assignment: t0→m1 (5), t1→m0 (6), total 11 instead of 3.
        g.push_flow(a[1], 1);
        g.push_flow(a[2], 1);
        g.push_flow(a[4], 1);
        g.push_flow(a[5], 1);
        match find_potentials(&g) {
            OptimalityCheck::NegativeCycle { cycle } => {
                assert!(!cycle.is_empty());
                // The cycle's total cost must be negative.
                let total: i64 = cycle.iter().map(|&x| g.cost(x)).sum();
                assert!(total < 0, "cycle cost {total}");
            }
            OptimalityCheck::Optimal { .. } => panic!("flow is suboptimal"),
        }
        assert!(!is_optimal(&g));
    }

    #[test]
    fn infeasible_flow_is_not_optimal() {
        let (g, _) = two_by_two();
        // No flow at all: infeasible, hence not optimal.
        assert!(!is_optimal(&g));
    }

    #[test]
    fn eps_optimality_tolerates_small_violations() {
        let (mut g, a) = two_by_two();
        g.push_flow(a[1], 1); // rc of a[1].sister() will be -5 with π = 0
        let pot = vec![0i64; g.node_bound()];
        assert!(check_eps_optimality(&g, &pot, 5).is_ok());
        assert!(check_eps_optimality(&g, &pot, 4).is_err());
    }

    #[test]
    fn reduced_cost_formula() {
        let (g, a) = two_by_two();
        let mut pot = vec![0i64; g.node_bound()];
        pot[g.src(a[0]).index()] = 3;
        pot[g.dst(a[0]).index()] = 1;
        assert_eq!(reduced_cost(&g, &pot, a[0]), 1 + 3 - 1);
    }
}
