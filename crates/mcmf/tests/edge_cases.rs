//! Edge-case tests for the MCMF suite: degenerate graphs, parallel arcs,
//! zero capacities, large supplies, and repeated warm rounds — the inputs
//! a production scheduler will eventually feed its solver.

use firmament_flow::{FlowGraph, NodeKind};
use firmament_mcmf::incremental::IncrementalCostScaling;
use firmament_mcmf::verify::is_optimal;
use firmament_mcmf::{cost_scaling, cycle_canceling, relaxation, ssp, SolveError, SolveOptions};

type Solver = fn(&mut FlowGraph, &SolveOptions) -> Result<firmament_mcmf::Solution, SolveError>;

const SOLVERS: [(&str, Solver); 4] = [
    ("cycle_canceling", cycle_canceling::solve as Solver),
    ("ssp", ssp::solve as Solver),
    ("cost_scaling", cost_scaling::solve as Solver),
    ("relaxation", relaxation::solve as Solver),
];

#[test]
fn empty_graph_is_trivially_optimal() {
    for (name, solve) in SOLVERS {
        let mut g = FlowGraph::new();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap_or_else(|e| {
            panic!("{name} failed on empty graph: {e}");
        });
        assert_eq!(sol.objective, 0, "{name}");
    }
}

#[test]
fn zero_supply_graph_needs_no_flow() {
    for (name, solve) in SOLVERS {
        let mut g = FlowGraph::new();
        let a = g.add_node(NodeKind::Other { tag: 0 }, 0);
        let b = g.add_node(NodeKind::Other { tag: 1 }, 0);
        g.add_arc(a, b, 5, 3).unwrap();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, 0, "{name}");
    }
}

#[test]
fn parallel_arcs_cheapest_first() {
    for (name, solve) in SOLVERS {
        let mut g = FlowGraph::new();
        let s = g.add_node(NodeKind::Task { task: 0 }, 2);
        let t = g.add_node(NodeKind::Sink, -2);
        // Three parallel arcs with different costs; optimal uses the two
        // cheapest.
        g.add_arc(s, t, 1, 10).unwrap();
        g.add_arc(s, t, 1, 1).unwrap();
        g.add_arc(s, t, 1, 5).unwrap();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, 6, "{name}");
        assert!(is_optimal(&g), "{name}");
    }
}

#[test]
fn zero_capacity_arcs_are_ignored() {
    for (name, solve) in SOLVERS {
        let mut g = FlowGraph::new();
        let s = g.add_node(NodeKind::Task { task: 0 }, 1);
        let t = g.add_node(NodeKind::Sink, -1);
        g.add_arc(s, t, 0, 0).unwrap(); // free but useless
        g.add_arc(s, t, 1, 7).unwrap();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, 7, "{name}");
    }
}

#[test]
fn large_supplies_route_in_bulk() {
    for (name, solve) in SOLVERS {
        let mut g = FlowGraph::new();
        let s = g.add_node(NodeKind::Other { tag: 0 }, 10_000);
        let m = g.add_node(NodeKind::Other { tag: 1 }, 0);
        let t = g.add_node(NodeKind::Sink, -10_000);
        g.add_arc(s, m, 10_000, 1).unwrap();
        g.add_arc(m, t, 10_000, 2).unwrap();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, 30_000, "{name}");
    }
}

#[test]
fn all_solvers_reject_unbalanced_supplies() {
    for (name, solve) in SOLVERS {
        let mut g = FlowGraph::new();
        g.add_node(NodeKind::Task { task: 0 }, 3);
        g.add_node(NodeKind::Sink, -1);
        assert!(
            matches!(
                solve(&mut g, &SolveOptions::unlimited()),
                Err(SolveError::UnbalancedSupply { total: 2 })
            ),
            "{name}"
        );
    }
}

#[test]
fn disconnected_demand_is_infeasible_everywhere() {
    for (name, solve) in SOLVERS {
        let mut g = FlowGraph::new();
        let s = g.add_node(NodeKind::Task { task: 0 }, 1);
        let island = g.add_node(NodeKind::Sink, -1);
        let other = g.add_node(NodeKind::Other { tag: 0 }, 0);
        g.add_arc(s, other, 1, 1).unwrap(); // never reaches the island
        let _ = island;
        assert!(
            matches!(
                solve(&mut g, &SolveOptions::unlimited()),
                Err(SolveError::Infeasible)
            ),
            "{name}"
        );
    }
}

#[test]
fn negative_cost_chain_is_exploited() {
    // A negative-cost detour must be taken even though a direct arc exists.
    for (name, solve) in SOLVERS {
        let mut g = FlowGraph::new();
        let s = g.add_node(NodeKind::Task { task: 0 }, 1);
        let a = g.add_node(NodeKind::Other { tag: 0 }, 0);
        let t = g.add_node(NodeKind::Sink, -1);
        g.add_arc(s, t, 1, 0).unwrap();
        g.add_arc(s, a, 1, -4).unwrap();
        g.add_arc(a, t, 1, 1).unwrap();
        let sol = solve(&mut g, &SolveOptions::unlimited()).unwrap();
        assert_eq!(sol.objective, -3, "{name}");
        assert!(is_optimal(&g), "{name}");
    }
}

#[test]
fn warm_solver_survives_total_workload_turnover() {
    // Every original task leaves and a fresh set arrives: the warm state
    // must still produce the optimum of the brand-new problem.
    let mut g = FlowGraph::new();
    let sink = g.add_node(NodeKind::Sink, 0);
    let m0 = g.add_node(NodeKind::Machine { machine: 0 }, 0);
    let m1 = g.add_node(NodeKind::Machine { machine: 1 }, 0);
    g.add_arc(m0, sink, 2, 0).unwrap();
    g.add_arc(m1, sink, 2, 0).unwrap();
    let mut tasks = Vec::new();
    for i in 0..4u64 {
        let t = g.add_node(NodeKind::Task { task: i }, 1);
        g.add_arc(t, m0, 1, 1 + i as i64).unwrap();
        g.add_arc(t, m1, 1, 5 - i as i64).unwrap();
        tasks.push(t);
    }
    g.set_supply(sink, -4).unwrap();
    let mut inc = IncrementalCostScaling::default();
    inc.solve(&mut g, &SolveOptions::unlimited()).unwrap();
    assert!(is_optimal(&g));

    // Full turnover.
    for t in tasks {
        firmament_mcmf::incremental::drain_task_flow(&mut g, t);
        g.remove_node(t).unwrap();
    }
    g.set_supply(sink, 0).unwrap();
    for i in 10..13u64 {
        let t = g.add_node(NodeKind::Task { task: i }, 1);
        g.add_arc(t, m0, 1, (i % 3) as i64 + 1).unwrap();
        g.add_arc(t, m1, 1, 7).unwrap();
    }
    g.set_supply(sink, -3).unwrap();
    let warm = inc.solve(&mut g, &SolveOptions::unlimited()).unwrap();
    assert!(is_optimal(&g));
    let mut fresh = g.clone();
    let scratch = cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
    assert_eq!(warm.objective, scratch.objective);
}

#[test]
fn ten_consecutive_warm_rounds_stay_exact() {
    use firmament_flow::testgen::{scheduling_instance, InstanceSpec};
    let mut inst = scheduling_instance(42, &InstanceSpec::default());
    let mut inc = IncrementalCostScaling::default();
    inc.solve(&mut inst.graph, &SolveOptions::unlimited())
        .unwrap();
    for round in 0..10 {
        let arcs: Vec<_> = inst.graph.arc_ids().collect();
        let a = arcs[(round * 13 + 5) % arcs.len()];
        let c = inst.graph.cost(a);
        inst.graph.set_arc_cost(a, (c * 3 + 7) % 120 + 1).unwrap();
        let warm = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        let mut fresh = inst.graph.clone();
        let scratch = cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(warm.objective, scratch.objective, "round {round}");
        assert!(is_optimal(&inst.graph), "round {round}");
    }
}
