//! The declarative cost-model API (§3.3), mirroring Firmament's
//! `CostModelInterface`.
//!
//! A cost model *declares* the policy-specific part of the scheduling flow
//! network — which aggregator nodes exist, which arcs connect tasks to
//! them, and what the costs and capacities are — as pure functions of
//! [`ClusterState`]. It never touches the graph itself: the
//! `FlowGraphManager` in `firmament-core` owns the network, translates
//! cluster events into graph deltas, and queries the cost model for the
//! numbers. This split is Firmament's core generalization over Quincy
//! (whose single policy was welded to its graph code): new policies are a
//! few dozen lines of cost arithmetic instead of hundreds of lines of
//! graph bookkeeping.
//!
//! # Writing a cost model
//!
//! A policy answers four questions:
//!
//! 1. **Where may a waiting task send its flow?** [`CostModel::task_arcs`]
//!    returns `(target, bundle)` pairs: targets are machines (preference
//!    arcs) or policy-defined [`AggregateId`]s (equivalence classes —
//!    Quincy's rack/cluster aggregators, the network-aware policy's
//!    request classes).
//! 2. **How do aggregates reach machines?** [`CostModel::aggregate_arc`]
//!    declares the arc bundle (capacities + costs) from an aggregate to a
//!    machine, or `None` for no arc. Re-evaluated whenever a machine is
//!    *dirty* (touched by an event since the last refresh; see
//!    [`CostModel::dynamic_aggregate_arcs`] for monitoring-driven arcs).
//! 3. **What does leaving the task unscheduled cost?**
//!    [`CostModel::task_unscheduled_cost`] — typically grows with wait
//!    time so starving tasks eventually win contended slots.
//! 4. **What does a running task's arc cost?**
//!    [`CostModel::running_arc_cost`] — usually 0 (data already local).
//!
//! Multi-level topologies (cluster → rack → machine, rack → machine →
//! socket, …) add a fifth, optional question: **how do aggregates reach
//! other aggregates?** [`CostModel::aggregate_to_aggregate`] declares the
//! EC→EC edges of the hierarchy — a DAG pointing down toward machines,
//! with per-edge capacities that bound what each subtree can absorb.
//!
//! # Convex arc bundles
//!
//! Every arc hook declares an [`ArcBundle`]: a piecewise-linear **convex
//! cost ladder** — ordered [`ArcSpec`] segments whose costs must be
//! non-decreasing. The manager materializes one parallel graph arc per
//! segment, so the min-cost solver fills cheap segments first and the
//! marginal cost of each extra unit rises *within a single solver round*.
//! This is Quincy's original convexity trick: a load-based policy that
//! prices "the j-th extra task on this machine" at an increasing cost
//! spreads a burst in one round, where a single uniform-cost arc only
//! spreads across rounds (the solver sees no within-round gradient).
//!
//! Single-arc policies keep writing one line via the convenience
//! constructors ([`ArcBundle::single`], [`ArcBundle::cost`]); ladder
//! policies use [`ArcBundle::ladder`] or build segments explicitly. The
//! manager validates convexity and rejects decreasing-cost ladders with
//! `PolicyError::NonConvexBundle` — a non-convex "ladder" would let the
//! solver fill expensive segments before cheap ones, silently corrupting
//! the declared cost function.
//!
//! Segment slots have **stable identity**: re-pricing segment `j` of an
//! existing bundle is a pure cost change on the same graph arc (a cheap
//! `CostChanged` delta for the incremental solver), never a structural
//! rebuild. Growing a bundle appends segments; shrinking parks the tail
//! at capacity 0 (static models) so it can revive later.
//!
//! # Examples
//!
//! A complete trivial policy — spread over whichever machine has the most
//! free slots, with a convex ladder so the spreading happens within one
//! solver round:
//!
//! ```
//! use firmament_cluster::{ClusterState, Job, Machine, Task};
//! use firmament_policies::{AggregateId, ArcBundle, ArcTarget, CostModel};
//!
//! struct FreeSlots;
//! const CLUSTER: AggregateId = 0;
//!
//! impl CostModel for FreeSlots {
//!     fn name(&self) -> &'static str {
//!         "free-slots"
//!     }
//!     fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
//!         100_000
//!     }
//!     fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, ArcBundle)> {
//!         vec![(ArcTarget::Aggregate(CLUSTER), ArcBundle::cost(0))]
//!     }
//!     fn aggregate_arc(
//!         &self,
//!         _: &ClusterState,
//!         _: AggregateId,
//!         machine: &Machine,
//!     ) -> Option<ArcBundle> {
//!         // One capacity-1 segment per slot, priced by standing load:
//!         // the j-th extra task costs more than the (j-1)-th.
//!         let running = machine.running.len() as i64;
//!         Some(ArcBundle::ladder(
//!             (0..machine.slots as i64).map(|j| running + j),
//!         ))
//!     }
//! }
//! ```

use firmament_cluster::{ClusterState, Job, Machine, MachineId, RackId, Task};
use firmament_flow::NodeKind;
use std::collections::BTreeMap;

/// Identifier of a policy-defined aggregator node (an *equivalence class*
/// in real Firmament's terminology). The namespace is private to each cost
/// model; the graph manager only uses it as an opaque key.
///
/// Aggregates are materialized on demand — the first time a model names an
/// id in [`CostModel::task_arcs`] or
/// [`CostModel::aggregate_to_aggregate`] — and **garbage-collected** when
/// no task can reach them any more (every incoming arc gone or parked at
/// capacity 0, no residual solver flow). Per-job or otherwise
/// churn-keyed aggregates are therefore safe: the graph stays proportional
/// to *live* work. An id collected this round is transparently
/// rematerialized if the model names it again later.
pub type AggregateId = u64;

/// Where a declared task arc points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArcTarget {
    /// A policy-defined aggregator (created on demand by the manager).
    Aggregate(AggregateId),
    /// A direct machine preference arc.
    Machine(MachineId),
}

/// Capacity and cost of one segment of a declared arc bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcSpec {
    /// Maximum flow (task count) the segment admits. Values ≤ 0 mean "no
    /// capacity" (the segment's arc is parked at 0).
    pub capacity: i64,
    /// Cost per unit of flow through this segment.
    pub cost: i64,
}

/// A piecewise-linear convex cost ladder: the unit of arc declaration for
/// every [`CostModel`] hook.
///
/// A bundle is an ordered list of [`ArcSpec`] segments with
/// **non-decreasing cost** (validated by the graph manager; decreasing
/// ladders are rejected with `PolicyError::NonConvexBundle`). The manager
/// materializes one parallel arc per segment with stable per-segment slot
/// identity: re-pricing a segment later is a pure cost change on the same
/// graph arc, never a structural rebuild.
///
/// Convexity is what makes load costs bite *within* one solver round: the
/// solver fills the cheap segments of every machine before anyone's
/// expensive ones, so a burst of identical tasks spreads in a single
/// solve instead of drifting toward balance across rounds.
///
/// # Examples
///
/// ```
/// use firmament_policies::{ArcBundle, ArcSpec};
///
/// // Single-segment bundles migrate pre-bundle policies mechanically:
/// let plain = ArcBundle::single(4, 10);
/// assert_eq!(plain.total_capacity(), 4);
///
/// // A per-unit ladder: the j-th unit costs `j` (convex).
/// let ladder = ArcBundle::ladder(0..4);
/// assert_eq!(ladder.segments().len(), 4);
/// assert!(ladder.is_convex());
///
/// // Decreasing costs are not convex; the manager rejects this bundle.
/// let bad = ArcBundle::from_segments(vec![
///     ArcSpec { capacity: 1, cost: 5 },
///     ArcSpec { capacity: 1, cost: 3 },
/// ]);
/// assert!(!bad.is_convex());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArcBundle {
    segments: Vec<ArcSpec>,
}

impl ArcBundle {
    /// A single-segment bundle — the mechanical migration of a pre-bundle
    /// `(capacity, cost)` arc.
    pub fn single(capacity: i64, cost: i64) -> Self {
        ArcBundle {
            segments: vec![ArcSpec { capacity, cost }],
        }
    }

    /// A single capacity-1 segment: the shape of a waiting-task preference
    /// arc (tasks carry one unit of supply).
    pub fn cost(cost: i64) -> Self {
        ArcBundle::single(1, cost)
    }

    /// A bundle from explicit segments. Costs should be non-decreasing;
    /// the manager validates this at declaration time.
    pub fn from_segments(segments: Vec<ArcSpec>) -> Self {
        ArcBundle { segments }
    }

    /// A per-unit ladder: one capacity-1 segment per cost in order. The
    /// canonical convex expansion — unit `j` costs `unit_costs[j]`.
    pub fn ladder(unit_costs: impl IntoIterator<Item = i64>) -> Self {
        ArcBundle {
            segments: unit_costs
                .into_iter()
                .map(|cost| ArcSpec { capacity: 1, cost })
                .collect(),
        }
    }

    /// The capacity-bucketed compression of a per-slot convex ladder:
    /// `O(log slots)` segments with **geometrically growing capacities**
    /// (1, 1, 2, 4, 8, …, last bucket truncated), each priced at the
    /// rounded *mean* of the per-slot marginal costs it covers.
    ///
    /// This is the classic convex-cost-to-arcs compression: a per-slot
    /// ladder multiplies aggregate → machine arcs by the slot count
    /// (12 500 machines × 12 slots = 150 000 parallel arcs for
    /// load-spreading alone), while the bucketed form holds the arc count
    /// at `⌈log₂ slots⌉ + 1` segments per machine (12 slots → 5) and
    /// still realizes the declared convex cost:
    ///
    /// - **Convexity is preserved**: `marginal_cost` must be
    ///   non-decreasing over `0..slots` (the per-slot convexity contract);
    ///   bucket means of a non-decreasing sequence are non-decreasing, and
    ///   round-half-up is monotone, so the bucketed ladder always passes
    ///   the manager's `NonConvexBundle` validation.
    /// - **Cost fidelity**: for any load ending on a bucket boundary, the
    ///   bucketed total equals the per-slot total up to mean-rounding —
    ///   strictly less than 1 cost unit per task. Inside a bucket the
    ///   deviation is bounded by the bucket's marginal spread, i.e. one
    ///   ladder step per task for linearly rising marginals (the
    ///   `scale_regression` suite pins both bounds against the per-slot
    ///   optimum on exact instances).
    /// - **Spreading granularity**: with equal machines, a one-round burst
    ///   still fills every machine's cheap buckets before anyone's
    ///   expensive ones; balance is exact whenever the per-machine fair
    ///   share lands on a bucket boundary (1, 2, 4, 8, …, slots) and
    ///   bucket-granular otherwise — the deliberate trade for O(log)
    ///   arcs.
    ///
    /// The segment *count* depends only on `slots`, never on the costs, so
    /// re-pricing a bucketed bundle under load drift patches the same
    /// slots in place (pure `CostChanged` deltas) — the bundle's stable
    /// slot identity is exactly that of the per-slot form.
    ///
    /// # Examples
    ///
    /// ```
    /// use firmament_policies::ArcBundle;
    ///
    /// // The linear load ladder 10·j over 12 slots compresses 12 → 5
    /// // segments with capacities 1, 1, 2, 4, 4.
    /// let b = ArcBundle::bucketed(12, |j| 10 * j);
    /// assert_eq!(b.segments().len(), 5);
    /// assert_eq!(b.total_capacity(), 12);
    /// assert!(b.is_convex());
    /// let caps: Vec<i64> = b.segments().iter().map(|s| s.capacity).collect();
    /// assert_eq!(caps, vec![1, 1, 2, 4, 4]);
    /// // Bucket [4, 8) is priced at the mean of 40, 50, 60, 70.
    /// assert_eq!(b.segments()[3].cost, 55);
    /// ```
    pub fn bucketed(slots: i64, marginal_cost: impl Fn(i64) -> i64) -> Self {
        let mut segments = Vec::new();
        let mut lo = 0i64;
        let mut cap = 1i64;
        while lo < slots {
            let width = cap.min(slots - lo);
            let sum: i64 = (lo..lo + width).map(&marginal_cost).sum();
            // Round-half-up mean; monotone in the exact mean, so convexity
            // of the marginals carries over to the bucket costs.
            let cost = (2 * sum + width).div_euclid(2 * width);
            segments.push(ArcSpec {
                capacity: width,
                cost,
            });
            lo += width;
            if segments.len() >= 2 {
                cap *= 2;
            }
        }
        ArcBundle { segments }
    }

    /// The ordered segments.
    pub fn segments(&self) -> &[ArcSpec] {
        &self.segments
    }

    /// Total capacity across segments (negative segment capacities count
    /// as 0, matching how the manager parks them).
    pub fn total_capacity(&self) -> i64 {
        self.segments.iter().map(|s| s.capacity.max(0)).sum()
    }

    /// `true` if the bundle declares no segments (equivalent to declaring
    /// no arc at all).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Whether segment costs are non-decreasing — the convexity contract
    /// every declared bundle must satisfy.
    pub fn is_convex(&self) -> bool {
        self.segments.windows(2).all(|w| w[0].cost <= w[1].cost)
    }

    /// The first decreasing-cost step, if any: `(prev, next)` costs of the
    /// offending adjacent pair. Used by the manager to build the typed
    /// `PolicyError::NonConvexBundle`.
    pub fn convexity_violation(&self) -> Option<(i64, i64)> {
        self.segments
            .windows(2)
            .find(|w| w[0].cost > w[1].cost)
            .map(|w| (w[0].cost, w[1].cost))
    }
}

impl From<ArcSpec> for ArcBundle {
    fn from(spec: ArcSpec) -> Self {
        ArcBundle {
            segments: vec![spec],
        }
    }
}

/// How a load-based cost model materializes its convex per-slot cost
/// ladders — the graph-size knob for full-scale clusters.
///
/// The shipped load-based models ([`LoadSpreadingCostModel`],
/// [`OctopusCostModel`], [`HierarchicalTopologyCostModel`]) declare one
/// rising marginal cost per machine slot. `PerSlot` materializes exactly
/// that — one capacity-1 arc per slot, slot-exact spreading, `O(m·s)`
/// aggregate → machine arcs. `Bucketed` compresses each ladder via
/// [`ArcBundle::bucketed`] into `O(log s)` geometric-capacity segments —
/// `O(m·log s)` arcs, within one ladder step per task of the per-slot
/// optimum, bucket-granular spreading. At the paper's 12 500-machine ×
/// 12-slot scale that is 62 500 ladder arcs instead of 150 000.
///
/// [`LoadSpreadingCostModel`]: crate::LoadSpreadingCostModel
/// [`OctopusCostModel`]: crate::OctopusCostModel
/// [`HierarchicalTopologyCostModel`]: crate::HierarchicalTopologyCostModel
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BundleShape {
    /// One capacity-1 segment per slot: slot-exact within-round spreading
    /// at `O(slots)` arcs per bundle (the default).
    #[default]
    PerSlot,
    /// Geometric capacity buckets ([`ArcBundle::bucketed`]): `O(log slots)`
    /// arcs per bundle, placement quality within ~1 ladder step per task.
    Bucketed,
}

impl BundleShape {
    /// Materializes a convex ladder over `slots` units with the given
    /// per-unit marginal cost, in this shape. The single constructor the
    /// load-based models route their ladders through, so a shape knob is
    /// one field instead of per-hook branching.
    pub fn ladder(self, slots: i64, marginal_cost: impl Fn(i64) -> i64) -> ArcBundle {
        match self {
            BundleShape::PerSlot => ArcBundle::ladder((0..slots.max(0)).map(marginal_cost)),
            BundleShape::Bucketed => ArcBundle::bucketed(slots.max(0), marginal_cost),
        }
    }

    /// Upper bound on the number of segments [`ladder`](Self::ladder)
    /// produces for `slots` units: `slots` for `PerSlot`,
    /// `⌈log₂ slots⌉ + 1` for `Bucketed`. The quantity the
    /// `scale_regression` suite asserts per machine.
    pub fn max_segments(self, slots: i64) -> usize {
        let slots = slots.max(0);
        match self {
            BundleShape::PerSlot => slots as usize,
            BundleShape::Bucketed => {
                if slots <= 1 {
                    slots as usize
                } else {
                    // ⌈log₂ slots⌉ + 1, computed without floats.
                    let ceil_log2 = 64 - (slots - 1).leading_zeros() as usize;
                    (ceil_log2 + 1).min(slots as usize)
                }
            }
        }
    }
}

/// A scheduling policy, expressed as pure cost/structure declarations over
/// cluster state (Firmament's cost-model interface, §3.3).
///
/// Implementations must be deterministic functions of `ClusterState` and
/// their own configuration: the `FlowGraphManager` caches the declared
/// structure and only re-queries the parts invalidated by events (the
/// two-pass update of §6.3), so hidden mutable state would desynchronize
/// the network from the policy's intent.
pub trait CostModel {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Cost of leaving `task` unscheduled right now (its arc to the job's
    /// unscheduled aggregator `U_j`). Re-evaluated for every waiting task
    /// whenever virtual time advances.
    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64;

    /// The arc set of a *waiting* task: `(target, bundle)` pairs. Called
    /// when the task is submitted, preempted, or displaced by a machine
    /// failure. The unscheduled arc is implicit and must not be declared
    /// here. Most bundles here are [`ArcBundle::cost`] (capacity 1 —
    /// tasks carry one unit of supply); multi-segment task bundles are
    /// legal but only their cheapest reachable segment can ever carry the
    /// task's single unit.
    ///
    /// Between structural events, the declared costs are **frozen** by
    /// default; models whose preference costs drift with time or load
    /// (decaying locality, rising contention) opt into re-pricing with
    /// [`dynamic_task_arcs`](CostModel::dynamic_task_arcs).
    fn task_arcs(&self, state: &ClusterState, task: &Task) -> Vec<(ArcTarget, ArcBundle)>;

    /// The arc bundle an aggregate offers toward a machine, or `None` for
    /// no arc. Queried for every (aggregate, machine) pair when either
    /// side is created; after that, the contract depends on
    /// [`dynamic_aggregate_arcs`]:
    ///
    /// - **static structure** (default): `None` at creation means the
    ///   pair is never connected and is not revisited. Existing bundles
    ///   are re-synced when their machine is dirtied by an event:
    ///   per-segment costs/capacities are re-priced in place, extra
    ///   declared segments are appended, and segments the model stops
    ///   declaring (or `None`) are parked at capacity 0 (they can revive
    ///   on a later refresh).
    /// - **dynamic** (`true`): the full pair set is re-queried every
    ///   round and bundles are added/removed to match — the Fig 6c
    ///   regime. A bundle with no positive-capacity segment is removed.
    ///
    /// [`dynamic_aggregate_arcs`]: CostModel::dynamic_aggregate_arcs
    fn aggregate_arc(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcBundle>;

    /// The arc bundles an aggregate offers toward *other aggregates* — the
    /// EC→EC edges that build multi-level equivalence-class hierarchies
    /// (e.g. cluster → rack → machine, or rack → machine → socket in real
    /// Firmament). Returns `(child, bundle)` pairs; flow entering
    /// `aggregate` can continue through each child toward the machines
    /// below it. The default (no EC→EC arcs) keeps the flat one-level
    /// topology.
    ///
    /// # Semantics
    ///
    /// - **Direction**: arcs always point *down* the hierarchy, from
    ///   `aggregate` toward aggregates closer to the machines. Flow must
    ///   eventually reach machine nodes via [`aggregate_arc`], so at least
    ///   one aggregate on every path has machine arcs.
    /// - **Cycles are an error**: the declared EC→EC relation must be a
    ///   DAG. The manager materializes children recursively and fails with
    ///   `PolicyError::AggregateCycle` if an aggregate (transitively)
    ///   declares itself as a descendant.
    /// - **Capacity propagation**: each bundle's total capacity bounds the
    ///   flow the parent may send through the child, exactly like an
    ///   aggregate → machine bundle. Declare the child subtree's real
    ///   capacity (e.g. the total slots of a rack) so upper levels cannot
    ///   oversubscribe lower ones. A convex ladder here prices congestion
    ///   *per subtree* — e.g. "the second half of this rack costs extra" —
    ///   which spreads load across subtrees within one round.
    /// - **Refresh**: unlike the static-structure contract of
    ///   [`aggregate_arc`], EC→EC arc *sets* are re-synchronized whenever
    ///   the source aggregate is dirty — a machine below it was touched by
    ///   an event, the machine set changed, or a descendant aggregate was
    ///   dirtied (dirtiness propagates up the hierarchy). Newly declared
    ///   pairs are materialized on the spot; pairs the model stops
    ///   returning are parked at capacity 0 (static models) or removed
    ///   (models with [`dynamic_aggregate_arcs`]). This lets hierarchies
    ///   grow when e.g. a machine in a brand-new rack arrives.
    ///
    /// [`aggregate_arc`]: CostModel::aggregate_arc
    /// [`dynamic_aggregate_arcs`]: CostModel::dynamic_aggregate_arcs
    fn aggregate_to_aggregate(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
    ) -> Vec<(AggregateId, ArcBundle)> {
        let _ = (state, aggregate);
        Vec::new()
    }

    /// The [`NodeKind`] to use for an aggregate's graph node. Purely
    /// descriptive (DIMACS export, debugging); defaults to an opaque tag.
    fn aggregate_kind(&self, aggregate: AggregateId) -> NodeKind {
        NodeKind::Other { tag: aggregate }
    }

    /// Cost of the running arc (task → the machine it occupies). Defaults
    /// to 0: keeping a placed task where it is costs nothing.
    fn running_arc_cost(&self, state: &ClusterState, task: &Task, machine: MachineId) -> i64 {
        let _ = (state, task, machine);
        0
    }

    /// Whether aggregate → machine arcs depend on *observed* signals (e.g.
    /// monitored bandwidth) rather than only on scheduler-visible events.
    /// When `true` the manager re-evaluates [`aggregate_arc`] for every
    /// machine each round — the "dynamically adapted" arcs of Fig 6c.
    /// Event-driven models keep the default `false` and benefit from
    /// dirty-node-only refreshes.
    ///
    /// [`aggregate_arc`]: CostModel::aggregate_arc
    fn dynamic_aggregate_arcs(&self) -> bool {
        false
    }

    /// Whether waiting tasks' declared preference bundles must be
    /// **re-priced** between structural events — the task-side mirror of
    /// [`dynamic_aggregate_arcs`](CostModel::dynamic_aggregate_arcs).
    ///
    /// When `true`, the §6.3 refresh re-queries [`task_arcs`] for every
    /// waiting task in its dirty-task set (every waiting task when the
    /// virtual clock advanced, exactly like unscheduled-cost re-pricing)
    /// and re-syncs the declared bundles onto the cached arc slots:
    /// per-segment costs and capacities are patched in place (cheap
    /// `CostChanged`/`CapacityChanged` deltas for the warm solver),
    /// grown bundles append segments, shrunk bundles park the tail — and
    /// only a change to the *target set itself* falls back to a full arc
    /// rebuild. This is the Execution-Templates pattern: cache the
    /// expensive structural decision, patch the parameters.
    ///
    /// The default `false` keeps preference costs frozen at declaration
    /// (cheapest for models whose task costs never drift, e.g. pure
    /// locality with immutable block placement).
    ///
    /// [`task_arcs`]: CostModel::task_arcs
    fn dynamic_task_arcs(&self) -> bool {
        false
    }

    /// Whether a waiting task's declared arc set can only depend on the
    /// machine set through **direct machine targets** — i.e. adding or
    /// removing machine `m` can change `task_arcs` output only for tasks
    /// that *already declare* `ArcTarget::Machine(m)`.
    ///
    /// When `true`, machine add/remove events re-derive arc sets only for
    /// waiting tasks whose declared targets reference the touched machine
    /// id, instead of every waiting task (the dirty-set narrowing of
    /// §6.3). Models that route all tasks through fixed aggregates —
    /// load-spreading, Octopus, hierarchies keyed by task attributes —
    /// satisfy this trivially and save an O(waiting tasks) re-query per
    /// machine event.
    ///
    /// **Contract for machine-preference models opting in**: declare
    /// machine targets *unconditionally*, independent of whether the
    /// machine is currently in the cluster. The manager parks references
    /// to absent machines (empty slot vectors) and uses them to find the
    /// referencing tasks when the machine arrives; a model that instead
    /// filters its declarations by `state.machines.contains_key(..)`
    /// leaves the manager no reference to follow, and the new machine's
    /// preference arcs are silently never materialized. (Tasks displaced
    /// by a machine *removal* are always re-derived regardless of
    /// narrowing — they have no cached declaration.)
    ///
    /// Keep the default `false` when aggregate *targets or costs* react
    /// to the machine set (Quincy: a rack-preference arc disappears when
    /// the rack's block holders die with a machine). An unsound `true`
    /// shows up as an incremental-vs-rebuild divergence in the
    /// differential fuzz suite.
    fn task_arcs_machine_local(&self) -> bool {
        false
    }

    /// Minimum number of `job`'s tasks that must schedule together (gang
    /// constraint). The manager enforces it by capping the `U_j → S` arc
    /// at `incomplete_tasks − minimum`, which forces at least `minimum`
    /// units of the job's flow through machines. 0 (the default) disables
    /// the constraint. Declaring a minimum above the cluster's free
    /// capacity makes the network infeasible — gang demands must be
    /// admission-controlled by the caller.
    fn job_gang_minimum(&self, state: &ClusterState, job: &Job) -> i64 {
        let _ = (state, job);
        0
    }
}

impl<T: CostModel + ?Sized> CostModel for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        (**self).task_unscheduled_cost(state, task)
    }

    fn task_arcs(&self, state: &ClusterState, task: &Task) -> Vec<(ArcTarget, ArcBundle)> {
        (**self).task_arcs(state, task)
    }

    fn aggregate_arc(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcBundle> {
        (**self).aggregate_arc(state, aggregate, machine)
    }

    fn aggregate_to_aggregate(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
    ) -> Vec<(AggregateId, ArcBundle)> {
        (**self).aggregate_to_aggregate(state, aggregate)
    }

    fn aggregate_kind(&self, aggregate: AggregateId) -> NodeKind {
        (**self).aggregate_kind(aggregate)
    }

    fn running_arc_cost(&self, state: &ClusterState, task: &Task, machine: MachineId) -> i64 {
        (**self).running_arc_cost(state, task, machine)
    }

    fn dynamic_aggregate_arcs(&self) -> bool {
        (**self).dynamic_aggregate_arcs()
    }

    fn dynamic_task_arcs(&self) -> bool {
        (**self).dynamic_task_arcs()
    }

    fn task_arcs_machine_local(&self) -> bool {
        (**self).task_arcs_machine_local()
    }

    fn job_gang_minimum(&self, state: &ClusterState, job: &Job) -> i64 {
        (**self).job_gang_minimum(state, job)
    }
}

/// Per-rack capacity summary in a single pass over the machines: sorted
/// `(rack, total slots, running tasks)` triples for every rack that
/// currently has at least one machine.
///
/// The shared building block for EC→EC hierarchy models that fan a
/// cluster root out to rack aggregates (Quincy's `X → R_r`, the
/// hierarchical topology model): declare one
/// [`CostModel::aggregate_to_aggregate`] bundle per entry, with the slot
/// total as the capacity so upper levels cannot oversubscribe the rack.
pub fn rack_capacities(state: &ClusterState) -> Vec<(RackId, i64, i64)> {
    let mut racks: BTreeMap<RackId, (i64, i64)> = BTreeMap::new();
    for m in state.machines.values() {
        let entry = racks.entry(m.rack).or_insert((0, 0));
        entry.0 += m.slots as i64;
        entry.1 += m.running.len() as i64;
    }
    racks
        .into_iter()
        .map(|(rack, (slots, running))| (rack, slots, running))
        .collect()
}

/// Linear wait-time cost growth shared by the built-in models: the base
/// unscheduled cost plus `per_sec` for every second the task has waited.
pub(crate) fn wait_scaled_cost(state: &ClusterState, task: &Task, base: i64, per_sec: i64) -> i64 {
    let wait_sec = state.now.saturating_sub(task.submit_time) / 1_000_000;
    base + per_sec * wait_sec as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::Task;

    #[test]
    fn wait_cost_grows_linearly() {
        let mut state = ClusterState::default();
        let t = Task::new(0, 0, 0, 1_000_000);
        assert_eq!(wait_scaled_cost(&state, &t, 100, 7), 100);
        state.now = 30 * 1_000_000;
        assert_eq!(wait_scaled_cost(&state, &t, 100, 7), 100 + 30 * 7);
    }

    #[test]
    fn bundle_constructors() {
        let s = ArcBundle::single(4, 7);
        assert_eq!(
            s.segments(),
            &[ArcSpec {
                capacity: 4,
                cost: 7
            }]
        );
        assert_eq!(s.total_capacity(), 4);
        assert!(s.is_convex());

        let c = ArcBundle::cost(9);
        assert_eq!(
            c.segments(),
            &[ArcSpec {
                capacity: 1,
                cost: 9
            }]
        );

        let l = ArcBundle::ladder([0, 3, 3, 8]);
        assert_eq!(l.segments().len(), 4);
        assert_eq!(l.total_capacity(), 4);
        assert!(l.is_convex());
        assert!(l.convexity_violation().is_none());
    }

    #[test]
    fn convexity_detects_decreasing_steps() {
        let bad = ArcBundle::ladder([5, 4]);
        assert!(!bad.is_convex());
        assert_eq!(bad.convexity_violation(), Some((5, 4)));
        // Equal costs are convex (flat segments are fine).
        assert!(ArcBundle::ladder([2, 2, 2]).is_convex());
        // Empty and single-segment bundles are trivially convex.
        assert!(ArcBundle::from_segments(Vec::new()).is_convex());
        assert!(ArcBundle::single(10, -5).is_convex());
    }

    #[test]
    fn bucketed_capacities_grow_geometrically() {
        for slots in 1..=64i64 {
            let b = ArcBundle::bucketed(slots, |j| j);
            assert_eq!(b.total_capacity(), slots, "capacity preserved");
            assert!(b.is_convex(), "slots {slots}");
            assert!(
                b.segments().len() <= BundleShape::Bucketed.max_segments(slots),
                "slots {slots}: {} segments exceed the ⌈log₂⌉+1 bound {}",
                b.segments().len(),
                BundleShape::Bucketed.max_segments(slots)
            );
            // Capacities are 1, 1, 2, 4, … with only the last truncated.
            let caps: Vec<i64> = b.segments().iter().map(|s| s.capacity).collect();
            for (i, w) in caps.iter().enumerate() {
                let full = if i < 2 { 1i64 } else { 1 << (i - 1) };
                if i + 1 < caps.len() {
                    assert_eq!(*w, full, "slots {slots} bucket {i}");
                } else {
                    assert!(*w <= full, "slots {slots} last bucket over-wide");
                }
            }
        }
        // The acceptance example: 12 slots → 5 segments instead of 12.
        assert_eq!(ArcBundle::bucketed(12, |j| 10 * j).segments().len(), 5);
    }

    #[test]
    fn bucketed_prices_boundary_loads_within_rounding() {
        // At every bucket boundary, the bucketed prefix total equals the
        // per-slot prefix total up to strictly-less-than-1-per-task mean
        // rounding (exact for these linear marginals, whose bucket sums
        // divide evenly or round by < width/2).
        let f = |j: i64| 7 * j + 3;
        let slots = 32i64;
        let b = ArcBundle::bucketed(slots, f);
        let mut boundary = 0i64;
        let mut bucketed_total = 0i64;
        for seg in b.segments() {
            boundary += seg.capacity;
            bucketed_total += seg.capacity * seg.cost;
            let per_slot_total: i64 = (0..boundary).map(f).sum();
            assert!(
                (bucketed_total - per_slot_total).abs() < boundary,
                "boundary {boundary}: bucketed {bucketed_total} vs per-slot {per_slot_total}"
            );
        }
    }

    #[test]
    fn bucketed_handles_degenerate_slot_counts() {
        assert!(ArcBundle::bucketed(0, |_| 1).is_empty());
        let one = ArcBundle::bucketed(1, |j| 10 * j);
        assert_eq!(
            one.segments(),
            &[ArcSpec {
                capacity: 1,
                cost: 0
            }]
        );
        // Flat marginals stay flat (convex, equal-cost buckets).
        let flat = ArcBundle::bucketed(8, |_| 5);
        assert!(flat.is_convex());
        assert!(flat.segments().iter().all(|s| s.cost == 5));
    }

    #[test]
    fn shape_ladder_dispatches_and_bounds() {
        let per_slot = BundleShape::PerSlot.ladder(6, |j| j);
        assert_eq!(per_slot.segments().len(), 6);
        assert_eq!(per_slot, ArcBundle::ladder(0..6));
        let bucketed = BundleShape::Bucketed.ladder(6, |j| j);
        assert_eq!(bucketed, ArcBundle::bucketed(6, |j| j));
        assert!(bucketed.segments().len() < per_slot.segments().len());
        assert_eq!(BundleShape::PerSlot.max_segments(12), 12);
        assert_eq!(BundleShape::Bucketed.max_segments(12), 5);
        assert_eq!(BundleShape::Bucketed.max_segments(1), 1);
        assert_eq!(BundleShape::Bucketed.max_segments(0), 0);
        assert_eq!(BundleShape::default(), BundleShape::PerSlot);
    }

    #[test]
    fn negative_capacity_segments_count_as_zero() {
        let b = ArcBundle::from_segments(vec![
            ArcSpec {
                capacity: -3,
                cost: 0,
            },
            ArcSpec {
                capacity: 2,
                cost: 1,
            },
        ]);
        assert_eq!(b.total_capacity(), 2);
    }
}
