//! The declarative cost-model API (§3.3), mirroring Firmament's
//! `CostModelInterface`.
//!
//! A cost model *declares* the policy-specific part of the scheduling flow
//! network — which aggregator nodes exist, which arcs connect tasks to
//! them, and what the costs and capacities are — as pure functions of
//! [`ClusterState`]. It never touches the graph itself: the
//! `FlowGraphManager` in `firmament-core` owns the network, translates
//! cluster events into graph deltas, and queries the cost model for the
//! numbers. This split is Firmament's core generalization over Quincy
//! (whose single policy was welded to its graph code): new policies are a
//! few dozen lines of cost arithmetic instead of hundreds of lines of
//! graph bookkeeping.
//!
//! # Writing a cost model
//!
//! A policy answers four questions:
//!
//! 1. **Where may a waiting task send its flow?** [`CostModel::task_arcs`]
//!    returns `(target, cost)` pairs: targets are machines (preference
//!    arcs) or policy-defined [`AggregateId`]s (equivalence classes —
//!    Quincy's rack/cluster aggregators, the network-aware policy's
//!    request classes).
//! 2. **How do aggregates reach machines?** [`CostModel::aggregate_arc`]
//!    declares the arc (capacity + cost) from an aggregate to a machine,
//!    or `None` for no arc. Re-evaluated whenever a machine is *dirty*
//!    (touched by an event since the last refresh; see
//!    [`CostModel::dynamic_aggregate_arcs`] for monitoring-driven arcs).
//! 3. **What does leaving the task unscheduled cost?**
//!    [`CostModel::task_unscheduled_cost`] — typically grows with wait
//!    time so starving tasks eventually win contended slots.
//! 4. **What does a running task's arc cost?**
//!    [`CostModel::running_arc_cost`] — usually 0 (data already local).
//!
//! Multi-level topologies (cluster → rack → machine, rack → machine →
//! socket, …) add a fifth, optional question: **how do aggregates reach
//! other aggregates?** [`CostModel::aggregate_to_aggregate`] declares the
//! EC→EC edges of the hierarchy — a DAG pointing down toward machines,
//! with per-edge capacities that bound what each subtree can absorb.
//!
//! # Examples
//!
//! A complete trivial policy — spread over whichever machine has the most
//! free slots:
//!
//! ```
//! use firmament_cluster::{ClusterState, Job, Machine, Task};
//! use firmament_policies::{AggregateId, ArcSpec, ArcTarget, CostModel};
//!
//! struct FreeSlots;
//! const CLUSTER: AggregateId = 0;
//!
//! impl CostModel for FreeSlots {
//!     fn name(&self) -> &'static str {
//!         "free-slots"
//!     }
//!     fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
//!         100_000
//!     }
//!     fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(ArcTarget, i64)> {
//!         vec![(ArcTarget::Aggregate(CLUSTER), 0)]
//!     }
//!     fn aggregate_arc(
//!         &self,
//!         _: &ClusterState,
//!         _: AggregateId,
//!         machine: &Machine,
//!     ) -> Option<ArcSpec> {
//!         Some(ArcSpec {
//!             capacity: machine.slots as i64,
//!             cost: (machine.slots - machine.free_slots()) as i64,
//!         })
//!     }
//! }
//! ```

use firmament_cluster::{ClusterState, Job, Machine, MachineId, RackId, Task};
use firmament_flow::NodeKind;
use std::collections::BTreeMap;

/// Identifier of a policy-defined aggregator node (an *equivalence class*
/// in real Firmament's terminology). The namespace is private to each cost
/// model; the graph manager only uses it as an opaque key.
///
/// Aggregates are materialized on demand — the first time a model names an
/// id in [`CostModel::task_arcs`] or
/// [`CostModel::aggregate_to_aggregate`] — and **garbage-collected** when
/// no task can reach them any more (every incoming arc gone or parked at
/// capacity 0, no residual solver flow). Per-job or otherwise
/// churn-keyed aggregates are therefore safe: the graph stays proportional
/// to *live* work. An id collected this round is transparently
/// rematerialized if the model names it again later.
pub type AggregateId = u64;

/// Where a declared task arc points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArcTarget {
    /// A policy-defined aggregator (created on demand by the manager).
    Aggregate(AggregateId),
    /// A direct machine preference arc.
    Machine(MachineId),
}

/// Capacity and cost of a declared aggregate → machine arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcSpec {
    /// Maximum flow (task count) the arc admits. Values ≤ 0 mean "no arc".
    pub capacity: i64,
    /// Cost per unit of flow.
    pub cost: i64,
}

/// A scheduling policy, expressed as pure cost/structure declarations over
/// cluster state (Firmament's cost-model interface, §3.3).
///
/// Implementations must be deterministic functions of `ClusterState` and
/// their own configuration: the `FlowGraphManager` caches the declared
/// structure and only re-queries the parts invalidated by events (the
/// two-pass update of §6.3), so hidden mutable state would desynchronize
/// the network from the policy's intent.
pub trait CostModel {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Cost of leaving `task` unscheduled right now (its arc to the job's
    /// unscheduled aggregator `U_j`). Re-evaluated for every waiting task
    /// whenever virtual time advances.
    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64;

    /// The arc set of a *waiting* task: `(target, cost)` pairs with
    /// implicit capacity 1. Called when the task is submitted, preempted,
    /// or displaced by a machine failure. The unscheduled arc is implicit
    /// and must not be declared here.
    fn task_arcs(&self, state: &ClusterState, task: &Task) -> Vec<(ArcTarget, i64)>;

    /// The arc an aggregate offers toward a machine, or `None` for no arc.
    /// Queried for every (aggregate, machine) pair when either side is
    /// created; after that, the contract depends on
    /// [`dynamic_aggregate_arcs`]:
    ///
    /// - **static structure** (default): `None` at creation means the
    ///   pair is never connected and is not revisited. Existing arcs are
    ///   re-priced when their machine is dirtied by an event; returning
    ///   `None` or a non-positive capacity then parks the arc at
    ///   capacity 0 (it can revive on a later refresh).
    /// - **dynamic** (`true`): the full pair set is re-queried every
    ///   round and arcs are added/removed to match — the Fig 6c regime.
    ///
    /// [`dynamic_aggregate_arcs`]: CostModel::dynamic_aggregate_arcs
    fn aggregate_arc(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcSpec>;

    /// The arcs an aggregate offers toward *other aggregates* — the EC→EC
    /// edges that build multi-level equivalence-class hierarchies (e.g.
    /// cluster → rack → machine, or rack → machine → socket in real
    /// Firmament). Returns `(child, spec)` pairs; flow entering `aggregate`
    /// can continue through each child toward the machines below it. The
    /// default (no EC→EC arcs) keeps the flat one-level topology.
    ///
    /// # Semantics
    ///
    /// - **Direction**: arcs always point *down* the hierarchy, from
    ///   `aggregate` toward aggregates closer to the machines. Flow must
    ///   eventually reach machine nodes via [`aggregate_arc`], so at least
    ///   one aggregate on every path has machine arcs.
    /// - **Cycles are an error**: the declared EC→EC relation must be a
    ///   DAG. The manager materializes children recursively and fails with
    ///   `PolicyError::AggregateCycle` if an aggregate (transitively)
    ///   declares itself as a descendant.
    /// - **Capacity propagation**: each spec's capacity bounds the flow the
    ///   parent may send through the child, exactly like an
    ///   aggregate → machine arc. Declare the child subtree's real capacity
    ///   (e.g. the total slots of a rack) so upper levels cannot
    ///   oversubscribe lower ones.
    /// - **Refresh**: unlike the static-structure contract of
    ///   [`aggregate_arc`], EC→EC arc *sets* are re-synchronized whenever
    ///   the source aggregate is dirty — a machine below it was touched by
    ///   an event, the machine set changed, or a descendant aggregate was
    ///   dirtied (dirtiness propagates up the hierarchy). Newly declared
    ///   pairs are materialized on the spot; pairs the model stops
    ///   returning are parked at capacity 0 (static models) or removed
    ///   (models with [`dynamic_aggregate_arcs`]). This lets hierarchies
    ///   grow when e.g. a machine in a brand-new rack arrives.
    ///
    /// [`aggregate_arc`]: CostModel::aggregate_arc
    /// [`dynamic_aggregate_arcs`]: CostModel::dynamic_aggregate_arcs
    fn aggregate_to_aggregate(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
    ) -> Vec<(AggregateId, ArcSpec)> {
        let _ = (state, aggregate);
        Vec::new()
    }

    /// The [`NodeKind`] to use for an aggregate's graph node. Purely
    /// descriptive (DIMACS export, debugging); defaults to an opaque tag.
    fn aggregate_kind(&self, aggregate: AggregateId) -> NodeKind {
        NodeKind::Other { tag: aggregate }
    }

    /// Cost of the running arc (task → the machine it occupies). Defaults
    /// to 0: keeping a placed task where it is costs nothing.
    fn running_arc_cost(&self, state: &ClusterState, task: &Task, machine: MachineId) -> i64 {
        let _ = (state, task, machine);
        0
    }

    /// Whether aggregate → machine arcs depend on *observed* signals (e.g.
    /// monitored bandwidth) rather than only on scheduler-visible events.
    /// When `true` the manager re-evaluates [`aggregate_arc`] for every
    /// machine each round — the "dynamically adapted" arcs of Fig 6c.
    /// Event-driven models keep the default `false` and benefit from
    /// dirty-node-only refreshes.
    ///
    /// [`aggregate_arc`]: CostModel::aggregate_arc
    fn dynamic_aggregate_arcs(&self) -> bool {
        false
    }

    /// Minimum number of `job`'s tasks that must schedule together (gang
    /// constraint). The manager enforces it by capping the `U_j → S` arc
    /// at `incomplete_tasks − minimum`, which forces at least `minimum`
    /// units of the job's flow through machines. 0 (the default) disables
    /// the constraint. Declaring a minimum above the cluster's free
    /// capacity makes the network infeasible — gang demands must be
    /// admission-controlled by the caller.
    fn job_gang_minimum(&self, state: &ClusterState, job: &Job) -> i64 {
        let _ = (state, job);
        0
    }
}

impl<T: CostModel + ?Sized> CostModel for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        (**self).task_unscheduled_cost(state, task)
    }

    fn task_arcs(&self, state: &ClusterState, task: &Task) -> Vec<(ArcTarget, i64)> {
        (**self).task_arcs(state, task)
    }

    fn aggregate_arc(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcSpec> {
        (**self).aggregate_arc(state, aggregate, machine)
    }

    fn aggregate_to_aggregate(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
    ) -> Vec<(AggregateId, ArcSpec)> {
        (**self).aggregate_to_aggregate(state, aggregate)
    }

    fn aggregate_kind(&self, aggregate: AggregateId) -> NodeKind {
        (**self).aggregate_kind(aggregate)
    }

    fn running_arc_cost(&self, state: &ClusterState, task: &Task, machine: MachineId) -> i64 {
        (**self).running_arc_cost(state, task, machine)
    }

    fn dynamic_aggregate_arcs(&self) -> bool {
        (**self).dynamic_aggregate_arcs()
    }

    fn job_gang_minimum(&self, state: &ClusterState, job: &Job) -> i64 {
        (**self).job_gang_minimum(state, job)
    }
}

/// Per-rack capacity summary in a single pass over the machines: sorted
/// `(rack, total slots, running tasks)` triples for every rack that
/// currently has at least one machine.
///
/// The shared building block for EC→EC hierarchy models that fan a
/// cluster root out to rack aggregates (Quincy's `X → R_r`, the
/// hierarchical topology model): declare one
/// [`CostModel::aggregate_to_aggregate`] arc per entry, with the slot
/// total as the capacity so upper levels cannot oversubscribe the rack.
pub fn rack_capacities(state: &ClusterState) -> Vec<(RackId, i64, i64)> {
    let mut racks: BTreeMap<RackId, (i64, i64)> = BTreeMap::new();
    for m in state.machines.values() {
        let entry = racks.entry(m.rack).or_insert((0, 0));
        entry.0 += m.slots as i64;
        entry.1 += m.running.len() as i64;
    }
    racks
        .into_iter()
        .map(|(rack, (slots, running))| (rack, slots, running))
        .collect()
}

/// Linear wait-time cost growth shared by the built-in models: the base
/// unscheduled cost plus `per_sec` for every second the task has waited.
pub(crate) fn wait_scaled_cost(state: &ClusterState, task: &Task, base: i64, per_sec: i64) -> i64 {
    let wait_sec = state.now.saturating_sub(task.submit_time) / 1_000_000;
    base + per_sec * wait_sec as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::Task;

    #[test]
    fn wait_cost_grows_linearly() {
        let mut state = ClusterState::default();
        let t = Task::new(0, 0, 0, 1_000_000);
        assert_eq!(wait_scaled_cost(&state, &t, 100, 7), 100);
        state.now = 30 * 1_000_000;
        assert_eq!(wait_scaled_cost(&state, &t, 100, 7), 100 + 30 * 7);
    }
}
