//! A cluster → rack → machine topology cost model built on EC→EC arcs.
//!
//! Real Firmament routes task flow through *hierarchies* of equivalence
//! classes (rack → machine → socket in its CoCo and net-bw models); Quincy
//! (SOSP 2009) did the same with its cluster aggregate `X` feeding rack
//! aggregates `R_r`. This model is the reproduction's reference hierarchy:
//! tasks enter at a single cluster root, the root fans out to one
//! aggregate per rack via [`CostModel::aggregate_to_aggregate`] arcs, and
//! each rack aggregate fans out to its machines. No task or cluster arc
//! points at a machine directly, so placements are extracted through two
//! aggregator hops.
//!
//! Costs implement topology-aware load balancing at both levels: the
//! cluster → rack arc prices the rack's standing load (spreading jobs
//! across racks), and the rack → machine arc prices the machine's running
//! task count (spreading within the rack). Capacities propagate real
//! subtree capacity — a rack arc admits exactly the slots beneath it — so
//! upper levels can never oversubscribe lower ones.
//!
//! Compared to the flat equivalent (every task with per-machine arcs, or a
//! single aggregate with `M` arcs *per task class*), the hierarchy keeps
//! the graph at `O(tasks + racks + machines)` arcs, which is what lets
//! topology-aware policies scale (§3.3, Fig 6).

use crate::cost_model::{
    rack_capacities, wait_scaled_cost, AggregateId, ArcBundle, ArcTarget, BundleShape, CostModel,
};
use firmament_cluster::{ClusterState, Machine, RackId, Task};
use firmament_flow::NodeKind;

/// The cluster-root aggregate.
const ROOT_AGG: AggregateId = 0;

/// Aggregate id of rack `r` (offset past the root).
fn rack_agg(rack: RackId) -> AggregateId {
    1 + rack as AggregateId
}

/// Rack of a (non-root) aggregate id.
fn agg_rack(agg: AggregateId) -> RackId {
    (agg - 1) as RackId
}

/// Tuning parameters for [`HierarchicalTopologyCostModel`].
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Cost per running task in a rack on the cluster → rack arc
    /// (cross-rack spreading pressure).
    pub rack_load_cost: i64,
    /// Cost per running task on a machine on the rack → machine arc
    /// (within-rack spreading pressure).
    pub machine_load_cost: i64,
    /// Base cost of leaving a task unscheduled.
    pub base_unscheduled_cost: i64,
    /// Unscheduled-cost growth per second of waiting.
    pub wait_cost_per_sec: i64,
    /// How the rack → machine load ladders are materialized: per-slot arcs
    /// or capacity-bucketed `O(log slots)` segments (full-scale clusters).
    pub shape: BundleShape,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            rack_load_cost: 5,
            machine_load_cost: 10,
            base_unscheduled_cost: 100_000,
            wait_cost_per_sec: 100,
            shape: BundleShape::PerSlot,
        }
    }
}

/// The cluster → rack → machine hierarchy cost model.
///
/// # Examples
///
/// The declared structure is strictly hierarchical — the root only reaches
/// racks, racks only reach their machines:
///
/// ```
/// use firmament_cluster::{ClusterState, TopologySpec};
/// use firmament_policies::{CostModel, HierarchicalTopologyCostModel};
///
/// let state = ClusterState::with_topology(&TopologySpec {
///     machines: 4,
///     machines_per_rack: 2,
///     slots_per_machine: 3,
/// });
/// let model = HierarchicalTopologyCostModel::new();
/// // Root → one arc per rack, capacity = the rack's total slots.
/// let children = model.aggregate_to_aggregate(&state, 0);
/// assert_eq!(children.len(), 2);
/// assert!(children.iter().all(|(_, bundle)| bundle.total_capacity() == 6));
/// // Root → machine arcs do not exist.
/// for machine in state.machines.values() {
///     assert!(model.aggregate_arc(&state, 0, machine).is_none());
/// }
/// ```
#[derive(Debug, Default)]
pub struct HierarchicalTopologyCostModel {
    /// Policy tuning.
    pub config: TopologyConfig,
}

impl HierarchicalTopologyCostModel {
    /// Creates the cost model with default tuning.
    pub fn new() -> Self {
        HierarchicalTopologyCostModel::default()
    }

    /// Creates the cost model with explicit tuning.
    pub fn with_config(config: TopologyConfig) -> Self {
        HierarchicalTopologyCostModel { config }
    }

    /// Default tuning with capacity-bucketed rack → machine ladders
    /// ([`BundleShape::Bucketed`]): `O(log slots)` arcs per machine.
    pub fn bucketed() -> Self {
        HierarchicalTopologyCostModel::with_config(TopologyConfig {
            shape: BundleShape::Bucketed,
            ..TopologyConfig::default()
        })
    }
}

impl CostModel for HierarchicalTopologyCostModel {
    fn name(&self) -> &'static str {
        "hierarchical-topology"
    }

    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        wait_scaled_cost(
            state,
            task,
            self.config.base_unscheduled_cost,
            self.config.wait_cost_per_sec,
        )
    }

    /// Every task enters the hierarchy at the cluster root; the topology
    /// below decides the rack and machine.
    fn task_arcs(&self, _state: &ClusterState, _task: &Task) -> Vec<(ArcTarget, ArcBundle)> {
        vec![(ArcTarget::Aggregate(ROOT_AGG), ArcBundle::cost(1))]
    }

    /// Rack aggregates reach exactly their machines; the root reaches no
    /// machine directly (strict hierarchy). The within-rack level is a
    /// convex per-slot ladder, so a burst spreads across a rack's machines
    /// in a single round.
    fn aggregate_arc(
        &self,
        _state: &ClusterState,
        aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcBundle> {
        (aggregate != ROOT_AGG && agg_rack(aggregate) == machine.rack).then(|| {
            let running = machine.running.len() as i64;
            self.config.shape.ladder(machine.slots as i64, |j| {
                self.config.machine_load_cost * (running + j)
            })
        })
    }

    /// The EC→EC level: root → one arc per rack present in the cluster,
    /// with the rack's aggregate slot capacity and a cost tracking the
    /// rack's standing load. Kept single-segment: a per-slot ladder here
    /// would cost O(rack slots) arcs per rack; the within-round spreading
    /// lives on the rack → machine ladders below.
    fn aggregate_to_aggregate(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
    ) -> Vec<(AggregateId, ArcBundle)> {
        if aggregate != ROOT_AGG {
            return Vec::new();
        }
        rack_capacities(state)
            .into_iter()
            .map(|(rack, slots, running)| {
                (
                    rack_agg(rack),
                    ArcBundle::single(slots, self.config.rack_load_cost * running),
                )
            })
            .collect()
    }

    fn aggregate_kind(&self, aggregate: AggregateId) -> NodeKind {
        if aggregate == ROOT_AGG {
            NodeKind::ClusterAggregator
        } else {
            NodeKind::RackAggregator {
                rack: agg_rack(aggregate),
            }
        }
    }

    fn task_arcs_machine_local(&self) -> bool {
        // Tasks always enter at the fixed cluster root; machine churn
        // reshapes the hierarchy below, never the task arc sets.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::TopologySpec;

    fn setup() -> (ClusterState, HierarchicalTopologyCostModel) {
        let state = ClusterState::with_topology(&TopologySpec {
            machines: 6,
            machines_per_rack: 3,
            slots_per_machine: 2,
        });
        (state, HierarchicalTopologyCostModel::new())
    }

    #[test]
    fn tasks_enter_at_the_root_only() {
        let (state, model) = setup();
        let t = Task::new(0, 0, 0, 1_000_000);
        let arcs = model.task_arcs(&state, &t);
        assert_eq!(
            arcs,
            vec![(ArcTarget::Aggregate(ROOT_AGG), ArcBundle::cost(1))]
        );
    }

    #[test]
    fn root_reaches_racks_with_subtree_capacity() {
        let (state, model) = setup();
        let children = model.aggregate_to_aggregate(&state, ROOT_AGG);
        assert_eq!(children.len(), 2, "two racks");
        for (agg, bundle) in &children {
            assert_ne!(*agg, ROOT_AGG);
            assert_eq!(bundle.total_capacity(), 6, "3 machines × 2 slots per rack");
        }
        // Racks are leaves of the EC→EC relation.
        assert!(model.aggregate_to_aggregate(&state, rack_agg(0)).is_empty());
    }

    #[test]
    fn rack_to_machine_arcs_are_convex_ladders() {
        let (mut state, model) = setup();
        // One task already running on machine 0.
        state.tasks.insert(9, Task::new(9, 0, 0, 1_000_000));
        state.machines.get_mut(&0).unwrap().add_task(9);
        let b = model
            .aggregate_arc(&state, rack_agg(0), &state.machines[&0])
            .unwrap();
        assert!(b.is_convex());
        let costs: Vec<i64> = b.segments().iter().map(|s| s.cost).collect();
        let step = model.config.machine_load_cost;
        assert_eq!(
            costs,
            vec![step, 2 * step],
            "ladder starts at standing load"
        );
    }

    #[test]
    fn strict_hierarchy_has_no_root_machine_arcs() {
        let (state, model) = setup();
        for m in state.machines.values() {
            assert!(model.aggregate_arc(&state, ROOT_AGG, m).is_none());
            assert!(model.aggregate_arc(&state, rack_agg(m.rack), m).is_some());
            let other = rack_agg(1 - m.rack);
            assert!(model.aggregate_arc(&state, other, m).is_none());
        }
    }

    #[test]
    fn rack_load_prices_cross_rack_spreading() {
        let (mut state, model) = setup();
        // Two tasks running in rack 0.
        for (task, machine) in [(1u64, 0u64), (2, 1)] {
            state.tasks.insert(task, Task::new(task, 0, 0, 1_000_000));
            state.machines.get_mut(&machine).unwrap().add_task(task);
        }
        let children = model.aggregate_to_aggregate(&state, ROOT_AGG);
        let cost = |agg: AggregateId| {
            children
                .iter()
                .find(|(a, _)| *a == agg)
                .unwrap()
                .1
                .segments()[0]
                .cost
        };
        assert_eq!(cost(rack_agg(0)), 2 * model.config.rack_load_cost);
        assert_eq!(cost(rack_agg(1)), 0);
    }
}
