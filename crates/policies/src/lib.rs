//! Scheduling policies: cluster state → flow network (§3.3).
//!
//! Firmament generalizes flow-based scheduling over Quincy's single policy
//! via the [`SchedulingPolicy`] API. This crate ships the paper's three
//! illustrative policies:
//!
//! - [`LoadSpreadingPolicy`] (Fig 6a): balance task counts through a single
//!   cluster aggregator — deliberately contention-heavy, used to expose
//!   MCMF edge cases;
//! - [`QuincyPolicy`] (Fig 6b): Quincy's locality-oriented batch policy
//!   with rack/cluster aggregators and data-locality preference arcs;
//! - [`NetworkAwarePolicy`] (Fig 6c): request aggregators and dynamic arcs
//!   to machines with spare network bandwidth.
//!
//! # Examples
//!
//! ```
//! use firmament_cluster::{ClusterEvent, ClusterState, TopologySpec};
//! use firmament_policies::{LoadSpreadingPolicy, SchedulingPolicy};
//!
//! let state = ClusterState::with_topology(&TopologySpec::default());
//! let mut policy = LoadSpreadingPolicy::new();
//! for m in state.machines.values() {
//!     policy
//!         .apply_event(&state, &ClusterEvent::MachineAdded { machine: m.clone() })
//!         .unwrap();
//! }
//! assert!(policy.base().graph.node_count() > 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod load_spreading;
pub mod network_aware;
pub mod policy;
pub mod quincy;

pub use load_spreading::LoadSpreadingPolicy;
pub use network_aware::NetworkAwarePolicy;
pub use policy::{GraphBase, SchedulingPolicy};
pub use quincy::{QuincyConfig, QuincyPolicy};

use firmament_cluster::{MachineId, TaskId};

/// Errors raised while translating cluster state into the flow network.
#[derive(Debug)]
pub enum PolicyError {
    /// A task referenced by an event has no node in the graph.
    UnknownTask(TaskId),
    /// A machine referenced by an event has no node in the graph.
    UnknownMachine(MachineId),
    /// A task was added twice.
    DuplicateTask(TaskId),
    /// A machine was added twice.
    DuplicateMachine(MachineId),
    /// An underlying graph mutation failed.
    Graph(firmament_flow::GraphError),
}

impl From<firmament_flow::GraphError> for PolicyError {
    fn from(e: firmament_flow::GraphError) -> Self {
        PolicyError::Graph(e)
    }
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::UnknownTask(t) => write!(f, "unknown task {t}"),
            PolicyError::UnknownMachine(m) => write!(f, "unknown machine {m}"),
            PolicyError::DuplicateTask(t) => write!(f, "duplicate task {t}"),
            PolicyError::DuplicateMachine(m) => write!(f, "duplicate machine {m}"),
            PolicyError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for PolicyError {}
