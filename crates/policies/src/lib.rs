//! Scheduling policies as declarative cost models (§3.3).
//!
//! Firmament generalizes flow-based scheduling over Quincy's single policy
//! via the [`CostModel`] API: a policy *declares* per-arc costs and arc
//! structure as pure functions of cluster state, while the
//! `FlowGraphManager` in `firmament-core` owns the flow network and
//! translates cluster events into graph deltas. This crate ships the
//! paper's three illustrative policies plus an Octopus-style fourth:
//!
//! - [`LoadSpreadingCostModel`] (Fig 6a): balance task counts through a
//!   single cluster aggregator — deliberately contention-heavy, used to
//!   expose MCMF edge cases;
//! - [`QuincyCostModel`] (Fig 6b): Quincy's locality-oriented batch policy
//!   with rack/cluster aggregators and data-locality preference arcs;
//! - [`NetworkAwareCostModel`] (Fig 6c): request aggregators and dynamic
//!   arcs to machines with spare network bandwidth;
//! - [`OctopusCostModel`]: idle-preferring placement via quadratic load
//!   costs (after real Firmament's Octopus model);
//! - [`HierarchicalTopologyCostModel`]: a cluster → rack → machine
//!   hierarchy built on EC→EC arcs
//!   ([`CostModel::aggregate_to_aggregate`]), the reference for
//!   multi-level equivalence-class topologies.
//!
//! # Examples
//!
//! Cost models are pure — they can be queried without any graph:
//!
//! ```
//! use firmament_cluster::{ClusterState, Task, TopologySpec};
//! use firmament_policies::{ArcTarget, CostModel, LoadSpreadingCostModel};
//!
//! let state = ClusterState::with_topology(&TopologySpec::default());
//! let model = LoadSpreadingCostModel::new();
//! let task = Task::new(0, 0, 0, 1_000_000);
//! let arcs = model.task_arcs(&state, &task);
//! assert!(matches!(arcs[0].0, ArcTarget::Aggregate(_)));
//! for machine in state.machines.values() {
//!     let bundle = model.aggregate_arc(&state, 0, machine).unwrap();
//!     assert!(bundle.is_convex(), "segment costs never decrease");
//!     assert_eq!(
//!         bundle.segments()[0].cost,
//!         0,
//!         "an idle machine's first slot is free"
//!     );
//! }
//! ```
//!
//! To actually schedule, hand a model to `firmament_core::Firmament`,
//! which pairs it with a `FlowGraphManager` and the MCMF solvers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost_model;
pub mod hierarchy;
pub mod load_spreading;
pub mod network_aware;
pub mod octopus;
pub mod quincy;

pub use cost_model::{
    rack_capacities, AggregateId, ArcBundle, ArcSpec, ArcTarget, BundleShape, CostModel,
};
pub use hierarchy::{HierarchicalTopologyCostModel, TopologyConfig};
pub use load_spreading::LoadSpreadingCostModel;
pub use network_aware::NetworkAwareCostModel;
pub use octopus::{OctopusConfig, OctopusCostModel};
pub use quincy::{QuincyConfig, QuincyCostModel};

/// Deprecated name of [`LoadSpreadingCostModel`] from the pre-split
/// `SchedulingPolicy` API.
#[deprecated(since = "0.2.0", note = "renamed to LoadSpreadingCostModel")]
pub type LoadSpreadingPolicy = LoadSpreadingCostModel;

/// Deprecated name of [`QuincyCostModel`] from the pre-split
/// `SchedulingPolicy` API.
#[deprecated(since = "0.2.0", note = "renamed to QuincyCostModel")]
pub type QuincyPolicy = QuincyCostModel;

/// Deprecated name of [`NetworkAwareCostModel`] from the pre-split
/// `SchedulingPolicy` API.
#[deprecated(since = "0.2.0", note = "renamed to NetworkAwareCostModel")]
pub type NetworkAwarePolicy = NetworkAwareCostModel;

use firmament_cluster::{MachineId, TaskId};

/// Errors raised while translating cluster state into the flow network
/// (by the `FlowGraphManager`; cost models themselves are pure and
/// infallible).
#[derive(Debug)]
pub enum PolicyError {
    /// A task referenced by an event has no node in the graph.
    UnknownTask(TaskId),
    /// A machine referenced by an event has no node in the graph.
    UnknownMachine(MachineId),
    /// A task was added twice.
    DuplicateTask(TaskId),
    /// A machine was added twice.
    DuplicateMachine(MachineId),
    /// A cost model declared a cyclic EC→EC hierarchy: the named aggregate
    /// is (transitively) its own descendant via
    /// [`CostModel::aggregate_to_aggregate`]. The cycle-closing arc is
    /// never installed — the flow network stays a DAG — but the error is
    /// a *model bug* and persistent: every retry re-queries the same
    /// declaration and fails again until the model is fixed.
    AggregateCycle(AggregateId),
    /// A cost model declared a non-convex [`ArcBundle`]: segment costs
    /// must be non-decreasing, but an adjacent pair stepped from `prev`
    /// down to `next`. A decreasing ladder would let the min-cost solver
    /// fill expensive segments before cheap ones, silently corrupting the
    /// declared cost function — so the manager rejects it at declaration
    /// time. Like [`AggregateCycle`](Self::AggregateCycle), this is a
    /// persistent model bug, not a transient condition.
    NonConvexBundle {
        /// Which [`CostModel`] hook declared the bundle
        /// (`"task_arcs"`, `"aggregate_arc"`, or `"aggregate_to_aggregate"`).
        hook: &'static str,
        /// Cost of the earlier segment of the offending pair.
        prev: i64,
        /// Cost of the later (cheaper — that's the bug) segment.
        next: i64,
    },
    /// An underlying graph mutation failed.
    Graph(firmament_flow::GraphError),
}

impl From<firmament_flow::GraphError> for PolicyError {
    fn from(e: firmament_flow::GraphError) -> Self {
        PolicyError::Graph(e)
    }
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::UnknownTask(t) => write!(f, "unknown task {t}"),
            PolicyError::UnknownMachine(m) => write!(f, "unknown machine {m}"),
            PolicyError::DuplicateTask(t) => write!(f, "duplicate task {t}"),
            PolicyError::DuplicateMachine(m) => write!(f, "duplicate machine {m}"),
            PolicyError::AggregateCycle(a) => {
                write!(f, "aggregate {a} is part of an EC\u{2192}EC cycle")
            }
            PolicyError::NonConvexBundle { hook, prev, next } => {
                write!(
                    f,
                    "non-convex arc bundle from {hook}: segment cost falls {prev} \u{2192} {next}"
                )
            }
            PolicyError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for PolicyError {}
