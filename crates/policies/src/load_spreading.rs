//! The load-spreading cost model (Fig 6a).
//!
//! All tasks have arcs to a single cluster-wide aggregator `X`; the cost on
//! the arc from `X` to each machine is proportional to the number of tasks
//! already running there, so the task count on a machine only increases
//! once all other machines have at least as many tasks (as in Docker
//! SwarmKit). The policy deliberately creates contention at `X` — the
//! paper uses it to expose relaxation's edge cases (§4.3, Fig 9).
//!
//! Expressed on the [`CostModel`] API, the whole policy is three cost
//! functions: compare with the ~170 lines of graph bookkeeping the
//! pre-split `SchedulingPolicy` version needed.

use crate::cost_model::{wait_scaled_cost, AggregateId, ArcSpec, ArcTarget, CostModel};
use firmament_cluster::{ClusterState, Machine, Task};
use firmament_flow::NodeKind;

/// Cost per already-running task on a machine.
pub const COST_PER_TASK: i64 = 10;
/// Cost of leaving a task unscheduled (must exceed any placement cost so
/// tasks schedule whenever a slot exists).
const UNSCHEDULED_COST: i64 = 100_000;
/// Cost increment per second of task wait time.
const WAIT_COST_PER_SEC: i64 = 100;
/// The single cluster-wide aggregate `X`.
const CLUSTER_AGG: AggregateId = 0;

/// The load-spreading cost model.
#[derive(Debug, Default)]
pub struct LoadSpreadingCostModel;

impl LoadSpreadingCostModel {
    /// Creates the cost model.
    pub fn new() -> Self {
        LoadSpreadingCostModel
    }
}

impl CostModel for LoadSpreadingCostModel {
    fn name(&self) -> &'static str {
        "load-spreading"
    }

    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        // Grows with wait time so long-waiting tasks win contended slots.
        wait_scaled_cost(state, task, UNSCHEDULED_COST, WAIT_COST_PER_SEC)
    }

    fn task_arcs(&self, _state: &ClusterState, _task: &Task) -> Vec<(ArcTarget, i64)> {
        vec![(ArcTarget::Aggregate(CLUSTER_AGG), 1)]
    }

    fn aggregate_arc(
        &self,
        _state: &ClusterState,
        _aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcSpec> {
        // X → machine cost tracks the current per-machine task count.
        Some(ArcSpec {
            capacity: machine.slots as i64,
            cost: COST_PER_TASK * machine.running.len() as i64,
        })
    }

    fn aggregate_kind(&self, _aggregate: AggregateId) -> NodeKind {
        NodeKind::ClusterAggregator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{Machine, TopologySpec};

    #[test]
    fn single_aggregate_with_unit_cost() {
        let state = ClusterState::with_topology(&TopologySpec::default());
        let t = Task::new(0, 0, 0, 1_000_000);
        let arcs = LoadSpreadingCostModel::new().task_arcs(&state, &t);
        assert_eq!(arcs, vec![(ArcTarget::Aggregate(CLUSTER_AGG), 1)]);
    }

    #[test]
    fn machine_cost_tracks_running_count() {
        let state = ClusterState::default();
        let mut m = Machine::new(0, 0, 4);
        let model = LoadSpreadingCostModel::new();
        let idle = model.aggregate_arc(&state, CLUSTER_AGG, &m).unwrap();
        assert_eq!(idle.cost, 0);
        assert_eq!(idle.capacity, 4);
        m.add_task(7);
        m.add_task(8);
        let busy = model.aggregate_arc(&state, CLUSTER_AGG, &m).unwrap();
        assert_eq!(busy.cost, 2 * COST_PER_TASK);
    }

    #[test]
    fn unscheduled_cost_grows_with_wait() {
        let mut state = ClusterState::default();
        let t = Task::new(0, 0, 0, 1_000_000);
        let model = LoadSpreadingCostModel::new();
        let fresh = model.task_unscheduled_cost(&state, &t);
        state.now = 30 * 1_000_000;
        let waited = model.task_unscheduled_cost(&state, &t);
        assert_eq!(waited - fresh, 30 * WAIT_COST_PER_SEC);
    }
}
