//! The load-spreading cost model (Fig 6a).
//!
//! All tasks have arcs to a single cluster-wide aggregator `X`; the cost of
//! running tasks on a machine grows with the number of tasks there, so task
//! counts stay balanced (as in Docker SwarmKit). The policy deliberately
//! creates contention at `X` — the paper uses it to expose relaxation's
//! edge cases (§4.3, Fig 9).
//!
//! # Convex vs uniform
//!
//! The default model declares a **convex ladder** per machine: one
//! capacity-1 segment per slot, the `j`-th priced at
//! `COST_PER_TASK × (running + j)`. The marginal cost of each extra task
//! on a machine rises within the declared bundle, so a burst of identical
//! tasks spreads evenly in a *single* solver round — Quincy's original
//! convex-cost trick.
//!
//! [`LoadSpreadingCostModel::uniform`] keeps the pre-bundle behavior for
//! comparison: a single segment priced at `COST_PER_TASK × running` for
//! the machine's whole capacity. Uniform costs give the solver no
//! within-round gradient (every slot of a machine costs the same), so a
//! burst packs onto whichever machines the solver happens to saturate and
//! only drifts toward balance across rounds as the running counts —
//! and with them the re-priced arcs — catch up. The `convex_spreading`
//! bench bin demonstrates the difference.

use crate::cost_model::{
    wait_scaled_cost, AggregateId, ArcBundle, ArcTarget, BundleShape, CostModel,
};
use firmament_cluster::{ClusterState, Machine, Task};
use firmament_flow::NodeKind;

/// Cost per already-running task on a machine.
pub const COST_PER_TASK: i64 = 10;
/// Cost of leaving a task unscheduled (must exceed any placement cost so
/// tasks schedule whenever a slot exists).
const UNSCHEDULED_COST: i64 = 100_000;
/// Cost increment per second of task wait time.
const WAIT_COST_PER_SEC: i64 = 100;
/// The single cluster-wide aggregate `X`.
const CLUSTER_AGG: AggregateId = 0;

/// The load-spreading cost model.
#[derive(Debug, Default)]
pub struct LoadSpreadingCostModel {
    /// `false` keeps the legacy single-segment (uniform-cost) arcs whose
    /// spreading only bites across rounds.
    convex: bool,
    /// How the convex ladder is materialized: per-slot arcs (slot-exact
    /// spreading) or capacity-bucketed `O(log slots)` segments (the
    /// full-cluster-scale shape). Ignored by the uniform variant.
    shape: BundleShape,
}

impl LoadSpreadingCostModel {
    /// Creates the cost model with convex per-slot ladders (one-round
    /// spreading) — the default.
    pub fn new() -> Self {
        LoadSpreadingCostModel {
            convex: true,
            shape: BundleShape::PerSlot,
        }
    }

    /// Creates the cost model with convex ladders in the given
    /// [`BundleShape`] — `Bucketed` holds aggregate → machine arcs at
    /// `O(machines · log slots)` for full-scale clusters.
    pub fn with_shape(shape: BundleShape) -> Self {
        LoadSpreadingCostModel {
            convex: true,
            shape,
        }
    }

    /// Shorthand for [`with_shape`](Self::with_shape)`(BundleShape::Bucketed)`.
    pub fn bucketed() -> Self {
        Self::with_shape(BundleShape::Bucketed)
    }

    /// Creates the pre-bundle uniform-cost variant: a single segment per
    /// machine priced at `COST_PER_TASK × running`. Kept as the contrast
    /// baseline for the `convex_spreading` bench — uniform costs pack a
    /// burst instead of spreading it within the round.
    pub fn uniform() -> Self {
        LoadSpreadingCostModel {
            convex: false,
            shape: BundleShape::PerSlot,
        }
    }

    /// The ladder shape this model materializes.
    pub fn shape(&self) -> BundleShape {
        self.shape
    }

    /// The per-slot marginal cost of the `j`-th additional task on a
    /// machine already running `running` tasks — the ladder both shapes
    /// realize (exactly for `PerSlot`, bucket-mean for `Bucketed`).
    /// Public so quality harnesses can evaluate placements under the true
    /// convex cost.
    pub fn marginal_cost(running: i64, j: i64) -> i64 {
        COST_PER_TASK * (running + j)
    }
}

impl CostModel for LoadSpreadingCostModel {
    fn name(&self) -> &'static str {
        match (self.convex, self.shape) {
            (true, BundleShape::PerSlot) => "load-spreading",
            (true, BundleShape::Bucketed) => "load-spreading-bucketed",
            (false, _) => "load-spreading-uniform",
        }
    }

    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        // Grows with wait time so long-waiting tasks win contended slots.
        wait_scaled_cost(state, task, UNSCHEDULED_COST, WAIT_COST_PER_SEC)
    }

    fn task_arcs(&self, _state: &ClusterState, _task: &Task) -> Vec<(ArcTarget, ArcBundle)> {
        vec![(ArcTarget::Aggregate(CLUSTER_AGG), ArcBundle::cost(1))]
    }

    fn aggregate_arc(
        &self,
        _state: &ClusterState,
        _aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcBundle> {
        let running = machine.running.len() as i64;
        let slots = machine.slots as i64;
        if self.convex {
            // The j-th additional task on this machine costs as if the
            // machine already ran `running + j` tasks — the convex
            // expansion of the linear load cost, so balance is optimal
            // within a single solve. The shape knob decides whether that
            // ladder is one arc per slot or O(log slots) capacity buckets.
            Some(
                self.shape
                    .ladder(slots, |j| Self::marginal_cost(running, j)),
            )
        } else {
            // Uniform: every unit through X → machine costs the same.
            Some(ArcBundle::single(slots, COST_PER_TASK * running))
        }
    }

    fn aggregate_kind(&self, _aggregate: AggregateId) -> NodeKind {
        NodeKind::ClusterAggregator
    }

    fn task_arcs_machine_local(&self) -> bool {
        // Task arcs are a constant single aggregate target: machine-set
        // changes can never alter them, so machine events skip the
        // per-waiting-task re-query entirely.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{Machine, TopologySpec};

    #[test]
    fn single_aggregate_with_unit_cost() {
        let state = ClusterState::with_topology(&TopologySpec::default());
        let t = Task::new(0, 0, 0, 1_000_000);
        let arcs = LoadSpreadingCostModel::new().task_arcs(&state, &t);
        assert_eq!(
            arcs,
            vec![(ArcTarget::Aggregate(CLUSTER_AGG), ArcBundle::cost(1))]
        );
    }

    #[test]
    fn convex_ladder_prices_marginal_load() {
        let state = ClusterState::default();
        let mut m = Machine::new(0, 0, 4);
        let model = LoadSpreadingCostModel::new();
        let idle = model.aggregate_arc(&state, CLUSTER_AGG, &m).unwrap();
        assert!(idle.is_convex());
        assert_eq!(idle.total_capacity(), 4);
        let costs: Vec<i64> = idle.segments().iter().map(|s| s.cost).collect();
        assert_eq!(costs, vec![0, 10, 20, 30], "j-th extra task costs 10·j");
        m.add_task(7);
        m.add_task(8);
        let busy = model.aggregate_arc(&state, CLUSTER_AGG, &m).unwrap();
        let costs: Vec<i64> = busy.segments().iter().map(|s| s.cost).collect();
        assert_eq!(
            costs,
            vec![20, 30, 40, 50],
            "ladder starts at the standing load"
        );
    }

    #[test]
    fn bucketed_shape_compresses_the_same_ladder() {
        let state = ClusterState::default();
        let mut m = Machine::new(0, 0, 12);
        let per_slot = LoadSpreadingCostModel::new()
            .aggregate_arc(&state, CLUSTER_AGG, &m)
            .unwrap();
        let bucketed = LoadSpreadingCostModel::bucketed()
            .aggregate_arc(&state, CLUSTER_AGG, &m)
            .unwrap();
        assert_eq!(per_slot.segments().len(), 12);
        assert_eq!(bucketed.segments().len(), 5, "12 slots → 5 buckets");
        assert_eq!(bucketed.total_capacity(), 12);
        assert!(bucketed.is_convex());
        // Both realize the same marginal ladder: full-ladder totals match
        // exactly (linear marginals have integral bucket means).
        let total =
            |b: &ArcBundle| -> i64 { b.segments().iter().map(|s| s.capacity * s.cost).sum() };
        assert_eq!(total(&per_slot), total(&bucketed));
        // Standing load shifts the bucketed ladder like the per-slot one.
        m.add_task(7);
        let busy = LoadSpreadingCostModel::bucketed()
            .aggregate_arc(&state, CLUSTER_AGG, &m)
            .unwrap();
        assert_eq!(busy.segments()[0].cost, COST_PER_TASK);
        assert_eq!(
            busy.segments().len(),
            5,
            "segment count tracks slots, not load — re-pricing is slot-stable"
        );
    }

    #[test]
    fn uniform_variant_keeps_single_segment() {
        let state = ClusterState::default();
        let mut m = Machine::new(0, 0, 4);
        m.add_task(7);
        m.add_task(8);
        let model = LoadSpreadingCostModel::uniform();
        let b = model.aggregate_arc(&state, CLUSTER_AGG, &m).unwrap();
        assert_eq!(b.segments().len(), 1);
        assert_eq!(b.segments()[0].capacity, 4);
        assert_eq!(b.segments()[0].cost, 2 * COST_PER_TASK);
    }

    #[test]
    fn unscheduled_cost_grows_with_wait() {
        let mut state = ClusterState::default();
        let t = Task::new(0, 0, 0, 1_000_000);
        let model = LoadSpreadingCostModel::new();
        let fresh = model.task_unscheduled_cost(&state, &t);
        state.now = 30 * 1_000_000;
        let waited = model.task_unscheduled_cost(&state, &t);
        assert_eq!(waited - fresh, 30 * WAIT_COST_PER_SEC);
    }
}
