//! The load-spreading policy (Fig 6a).
//!
//! All tasks have arcs to a single cluster-wide aggregator `X`; the cost on
//! the arc from `X` to each machine is proportional to the number of tasks
//! already running there, so the task count on a machine only increases
//! once all other machines have at least as many tasks (as in Docker
//! SwarmKit). The policy deliberately creates contention at `X` — the
//! paper uses it to expose relaxation's edge cases (§4.3, Fig 9).

use crate::policy::{GraphBase, SchedulingPolicy};
use crate::PolicyError;
use firmament_cluster::{ClusterEvent, ClusterState, TaskState};
use firmament_flow::{NodeId, NodeKind};

/// Cost per already-running task on a machine.
const COST_PER_TASK: i64 = 10;
/// Cost of leaving a task unscheduled (must exceed any placement cost so
/// tasks schedule whenever a slot exists).
const UNSCHEDULED_COST: i64 = 100_000;
/// Cost increment per second of task wait time.
const WAIT_COST_PER_SEC: i64 = 100;

/// The load-spreading policy.
#[derive(Debug)]
pub struct LoadSpreadingPolicy {
    base: GraphBase,
    cluster_agg: NodeId,
}

impl Default for LoadSpreadingPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl LoadSpreadingPolicy {
    /// Creates the policy with an empty flow network.
    pub fn new() -> Self {
        let mut base = GraphBase::new();
        let cluster_agg = base.graph.add_node(NodeKind::ClusterAggregator, 0);
        LoadSpreadingPolicy { base, cluster_agg }
    }

    /// The cluster aggregator node `X`.
    pub fn cluster_aggregator(&self) -> NodeId {
        self.cluster_agg
    }
}

impl SchedulingPolicy for LoadSpreadingPolicy {
    fn name(&self) -> &'static str {
        "load-spreading"
    }

    fn base(&self) -> &GraphBase {
        &self.base
    }

    fn base_mut(&mut self) -> &mut GraphBase {
        &mut self.base
    }

    fn apply_event(
        &mut self,
        state: &ClusterState,
        event: &ClusterEvent,
    ) -> Result<(), PolicyError> {
        match event {
            ClusterEvent::Tick { .. } => {}
            ClusterEvent::MachineAdded { machine } => {
                let m = self.base.add_machine(machine.id, machine.slots as i64)?;
                self.base
                    .graph
                    .add_arc(self.cluster_agg, m, machine.slots as i64, 0)?;
            }
            ClusterEvent::MachineRemoved { machine, .. } => {
                self.base.remove_machine(*machine)?;
                // Tasks displaced by the failure are back in the waiting
                // pool; restore their arc to the cluster aggregator (the
                // running arc vanished with the machine node).
                for t in state.waiting_tasks() {
                    if let Some(n) = self.base.task_node(t.id) {
                        if self.base.find_arc(n, self.cluster_agg).is_none() {
                            self.base.graph.add_arc(n, self.cluster_agg, 1, 1)?;
                        }
                    }
                }
            }
            ClusterEvent::JobSubmitted { job, tasks } => {
                for t in tasks {
                    let n = self.base.add_task(t.id, job.id, UNSCHEDULED_COST)?;
                    self.base.graph.add_arc(n, self.cluster_agg, 1, 1)?;
                }
            }
            ClusterEvent::TaskPlaced { task, machine, .. } => {
                // A running task keeps a zero-cost arc to its machine plus
                // its unscheduled (preemption) arc; the X arc goes away so
                // migrations always go through explicit preemption.
                let t = self
                    .base
                    .task_node(*task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let m = self
                    .base
                    .machine_node(*machine)
                    .ok_or(PolicyError::UnknownMachine(*machine))?;
                let job = state.tasks[task].job;
                let u = self.base.unsched_nodes[&job];
                self.base
                    .retain_out_arcs(t, move |_, dst| dst == u)?;
                self.base.graph.add_arc(t, m, 1, 0)?;
            }
            ClusterEvent::TaskPreempted { task, .. } => {
                let t = self
                    .base
                    .task_node(*task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let job = state.tasks[task].job;
                let u = self.base.unsched_nodes[&job];
                self.base.retain_out_arcs(t, move |_, dst| dst == u)?;
                self.base.graph.add_arc(t, self.cluster_agg, 1, 1)?;
            }
            ClusterEvent::TaskCompleted { task, .. } => {
                let job = state.tasks[task].job;
                self.base.remove_task(*task, job)?;
            }
        }
        Ok(())
    }

    fn refresh_costs(&mut self, state: &ClusterState) -> Result<(), PolicyError> {
        // X → machine costs track the current per-machine task count.
        let arcs: Vec<_> = self
            .base
            .graph
            .adj(self.cluster_agg)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .collect();
        for a in arcs {
            let dst = self.base.graph.dst(a);
            if let NodeKind::Machine { machine } = self.base.graph.kind(dst) {
                if let Some(m) = state.machines.get(&machine) {
                    let cost = COST_PER_TASK * m.running.len() as i64;
                    self.base.graph.set_arc_cost(a, cost)?;
                    self.base.graph.set_arc_capacity(a, m.slots as i64)?;
                }
            }
        }
        // Unscheduled costs grow with wait time so long-waiting tasks win
        // contended slots.
        for t in state.tasks.values() {
            if matches!(t.state, TaskState::Waiting | TaskState::Preempted) {
                if let Some(n) = self.base.task_node(t.id) {
                    if let Some(&u) = self.base.unsched_nodes.get(&t.job) {
                        if let Some(a) = self.base.find_arc(n, u) {
                            let wait_sec = (state.now.saturating_sub(t.submit_time)) / 1_000_000;
                            let cost = UNSCHEDULED_COST + WAIT_COST_PER_SEC * wait_sec as i64;
                            self.base.graph.set_arc_cost(a, cost)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{ClusterState, Job, JobClass, Task, TopologySpec};

    fn setup(machines: usize, slots: u32) -> (ClusterState, LoadSpreadingPolicy) {
        let state = ClusterState::with_topology(&TopologySpec {
            machines,
            machines_per_rack: 20,
            slots_per_machine: slots,
        });
        let mut policy = LoadSpreadingPolicy::new();
        for m in state.machines.values() {
            policy
                .apply_event(
                    &state,
                    &ClusterEvent::MachineAdded { machine: m.clone() },
                )
                .unwrap();
        }
        (state, policy)
    }

    fn submit(state: &mut ClusterState, policy: &mut LoadSpreadingPolicy, job: u64, n: usize) {
        let j = Job::new(job, JobClass::Batch, 0, state.now);
        let tasks: Vec<Task> = (0..n)
            .map(|i| Task::new(job * 1000 + i as u64, job, state.now, 10_000_000))
            .collect();
        let ev = ClusterEvent::JobSubmitted {
            job: j,
            tasks: tasks.clone(),
        };
        state.apply(&ev);
        policy.apply_event(state, &ev).unwrap();
    }

    #[test]
    fn builds_figure6a_shape() {
        let (mut state, mut policy) = setup(4, 2);
        submit(&mut state, &mut policy, 0, 3);
        policy.refresh_costs(&state).unwrap();
        let g = &policy.base().graph;
        // sink + X + 4 machines + 3 tasks + 1 unscheduled agg = 10 nodes.
        assert_eq!(g.node_count(), 10);
        // machine-sink (4) + X-machine (4) + task-X (3) + task-U (3) + U-S.
        assert_eq!(g.arc_count(), 15);
        assert_eq!(g.total_supply(), 3);
    }

    #[test]
    fn solver_spreads_load() {
        let (mut state, mut policy) = setup(3, 4);
        submit(&mut state, &mut policy, 0, 3);
        policy.refresh_costs(&state).unwrap();
        let mut g = policy.base().graph.clone();
        firmament_mcmf_solve(&mut g);
        // Each machine should receive exactly one task (costs are equal, so
        // any split works; capacity spreads because X→machine costs equal).
        let placed: i64 = state
            .machines
            .keys()
            .map(|&m| {
                let mn = policy.base().machine_node(m).unwrap();
                let sink_arc = policy.base().machine_sink_arcs[&m];
                let _ = mn;
                g.flow(sink_arc)
            })
            .sum();
        assert_eq!(placed, 3);
    }

    // Minimal local solver shim to keep this crate independent of
    // firmament-mcmf: successive saturation via the builder is impossible,
    // so tests that need real solving live in the integration tests. Here
    // we emulate "solve" by a trivial greedy routing over zero-cost paths.
    fn firmament_mcmf_solve(g: &mut firmament_flow::FlowGraph) {
        // Route each task greedily: task → X → machine with rescap → sink,
        // or task → U → sink. Good enough for shape assertions.
        let tasks: Vec<_> = g
            .node_ids()
            .filter(|&n| g.kind(n).is_task())
            .collect();
        for t in tasks {
            let path = find_path(g, t);
            for a in path {
                g.push_flow(a, 1);
            }
        }
    }

    fn find_path(g: &firmament_flow::FlowGraph, from: NodeId) -> Vec<firmament_flow::ArcId> {
        // BFS over residual arcs to the sink.
        let mut pred: std::collections::HashMap<NodeId, firmament_flow::ArcId> =
            std::collections::HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            if g.kind(u).is_sink() {
                let mut path = Vec::new();
                let mut v = u;
                while v != from {
                    let a = pred[&v];
                    path.push(a);
                    v = g.src(a);
                }
                path.reverse();
                return path;
            }
            for &a in g.adj(u) {
                if g.rescap(a) > 0 {
                    let v = g.dst(a);
                    // The shim prefers real placements: never route through
                    // an unscheduled aggregator.
                    if v != from && !g.kind(v).is_unscheduled() && !pred.contains_key(&v) {
                        pred.insert(v, a);
                        queue.push_back(v);
                    }
                }
            }
        }
        Vec::new()
    }

    #[test]
    fn task_lifecycle_updates_arcs() {
        let (mut state, mut policy) = setup(2, 2);
        submit(&mut state, &mut policy, 0, 1);
        let tid = 0u64;
        let ev = ClusterEvent::TaskPlaced {
            task: tid,
            machine: 0,
            now: 100,
        };
        state.apply(&ev);
        policy.apply_event(&state, &ev).unwrap();
        let t = policy.base().task_node(tid).unwrap();
        let g = &policy.base().graph;
        let out: Vec<_> = g
            .adj(t)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .map(|a| g.kind(g.dst(a)))
            .collect();
        assert_eq!(out.len(), 2, "running arc + unscheduled arc");
        assert!(out.iter().any(|k| k.is_machine()));
        assert!(out.iter().any(|k| k.is_unscheduled()));

        let ev = ClusterEvent::TaskPreempted { task: tid, now: 200 };
        state.apply(&ev);
        policy.apply_event(&state, &ev).unwrap();
        let g = &policy.base().graph;
        let out: Vec<_> = g
            .adj(t)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .map(|a| g.kind(g.dst(a)))
            .collect();
        assert!(out.iter().any(|k| matches!(k, NodeKind::ClusterAggregator)));

        let ev = ClusterEvent::TaskPlaced {
            task: tid,
            machine: 1,
            now: 300,
        };
        state.apply(&ev);
        policy.apply_event(&state, &ev).unwrap();
        let ev = ClusterEvent::TaskCompleted { task: tid, now: 400 };
        state.apply(&ev);
        policy.apply_event(&state, &ev).unwrap();
        assert!(policy.base().task_node(tid).is_none());
        assert_eq!(policy.base().graph.total_supply(), 0);
    }

    #[test]
    fn refresh_costs_tracks_running_counts() {
        let (mut state, mut policy) = setup(2, 2);
        submit(&mut state, &mut policy, 0, 2);
        for (tid, m) in [(0u64, 0u64), (1, 0)] {
            let ev = ClusterEvent::TaskPlaced {
                task: tid,
                machine: m,
                now: 0,
            };
            state.apply(&ev);
            policy.apply_event(&state, &ev).unwrap();
        }
        policy.refresh_costs(&state).unwrap();
        let x = policy.cluster_aggregator();
        let g = &policy.base().graph;
        let mut costs: Vec<(u64, i64)> = g
            .adj(x)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .filter_map(|a| match g.kind(g.dst(a)) {
                NodeKind::Machine { machine } => Some((machine, g.cost(a))),
                _ => None,
            })
            .collect();
        costs.sort();
        assert_eq!(costs, vec![(0, 2 * COST_PER_TASK), (1, 0)]);
    }
}
