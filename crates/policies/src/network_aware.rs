//! The network-aware cost model (Fig 6c): avoid overcommitting machine
//! links.
//!
//! Each task connects to a request aggregator (`RA`) for its network
//! bandwidth request class. The `RA`s have one arc per machine with
//! sufficient spare bandwidth, with capacity for as many tasks as fit; the
//! arcs are dynamically adapted as observed bandwidth use changes, and their
//! costs — the sum of the request and the machine's current bandwidth use —
//! incentivize balanced utilization. The paper's local-testbed experiment
//! (§7.5, Fig 19) uses this policy to cut tail task response times by
//! 3.4–6.2× versus load-spreading and random placement.
//!
//! Because the arcs react to *monitored* bandwidth (which changes without
//! scheduler events), the model sets
//! [`dynamic_aggregate_arcs`](CostModel::dynamic_aggregate_arcs) so the
//! graph manager re-evaluates every machine each round.

use crate::cost_model::{wait_scaled_cost, AggregateId, ArcBundle, ArcTarget, CostModel};
use firmament_cluster::{ClusterState, Machine, Task};
use firmament_flow::NodeKind;

/// Bandwidth bucket width in Mbit/s for request-aggregator classes.
const CLASS_WIDTH_MBPS: u64 = 500;
/// Cost of leaving a task unscheduled.
const UNSCHEDULED_COST: i64 = 1_000_000;
/// Cost increment per second of wait.
const WAIT_COST_PER_SEC: i64 = 1_000;

/// The network-aware scheduling cost model.
#[derive(Debug, Default)]
pub struct NetworkAwareCostModel;

impl NetworkAwareCostModel {
    /// Creates the cost model.
    pub fn new() -> Self {
        NetworkAwareCostModel
    }

    /// The request class for a bandwidth request in Mbit/s.
    pub fn class_of(request_mbps: u64) -> u32 {
        (request_mbps / CLASS_WIDTH_MBPS.max(1)) as u32
    }

    /// Representative bandwidth request of a class (its upper bound).
    fn class_request(class: u32) -> u64 {
        (class as u64 + 1) * CLASS_WIDTH_MBPS
    }

    /// Current bandwidth use of a machine: background traffic plus the
    /// requests of all tasks running on it.
    fn machine_used_mbps(state: &ClusterState, machine: &Machine) -> u64 {
        let task_bw: u64 = machine
            .running
            .iter()
            .filter_map(|t| state.tasks.get(t))
            .map(|t| t.request.net_mbps)
            .sum();
        machine.background_mbps + task_bw
    }
}

impl CostModel for NetworkAwareCostModel {
    fn name(&self) -> &'static str {
        "network-aware"
    }

    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        wait_scaled_cost(state, task, UNSCHEDULED_COST, WAIT_COST_PER_SEC)
    }

    fn task_arcs(&self, _state: &ClusterState, task: &Task) -> Vec<(ArcTarget, ArcBundle)> {
        let class = Self::class_of(task.request.net_mbps);
        vec![(
            ArcTarget::Aggregate(class as AggregateId),
            ArcBundle::cost(1),
        )]
    }

    /// The "dynamically adapted" arcs of Fig 6c: capacity is how many
    /// class-sized requests fit in the machine's spare bandwidth (slot
    /// limited), cost is request + current use — machines with lightly
    /// loaded links are cheaper. A convex ladder: each admitted request
    /// raises the link's projected use by a class width, so later units
    /// pay the bandwidth they will find, not the bandwidth the first unit
    /// found — which spreads a burst of same-class tasks across links
    /// within one round.
    fn aggregate_arc(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcBundle> {
        let request = Self::class_request(aggregate as u32);
        let used = Self::machine_used_mbps(state, machine);
        let spare = machine.link_mbps.saturating_sub(used);
        let fits_bw = (spare / request.max(1)) as i64;
        let capacity = fits_bw.min(machine.free_slots() as i64);
        (capacity > 0).then(|| {
            ArcBundle::ladder(
                (0..capacity).map(|j| (request + used + j as u64 * request) as i64 / 10),
            )
        })
    }

    fn aggregate_kind(&self, aggregate: AggregateId) -> NodeKind {
        NodeKind::RequestAggregator {
            class: aggregate as u32,
        }
    }

    fn dynamic_aggregate_arcs(&self) -> bool {
        true
    }

    fn task_arcs_machine_local(&self) -> bool {
        // A task's arc set is a single request-class aggregate derived
        // from its own bandwidth request — machine churn cannot change it.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{ResourceVector, TopologySpec};

    fn setup() -> ClusterState {
        ClusterState::with_topology(&TopologySpec {
            machines: 4,
            machines_per_rack: 4,
            slots_per_machine: 2,
        })
    }

    #[test]
    fn request_classes_bucket_bandwidth() {
        assert_eq!(NetworkAwareCostModel::class_of(100), 0);
        assert_eq!(NetworkAwareCostModel::class_of(499), 0);
        assert_eq!(NetworkAwareCostModel::class_of(500), 1);
        assert_eq!(NetworkAwareCostModel::class_of(4000), 8);
    }

    #[test]
    fn tasks_route_through_their_request_class() {
        let state = setup();
        let mut t = Task::new(1, 0, 0, 5_000_000);
        t.request = ResourceVector::new(1000, 1024, 4000);
        let arcs = NetworkAwareCostModel::new().task_arcs(&state, &t);
        assert_eq!(arcs, vec![(ArcTarget::Aggregate(8), ArcBundle::cost(1))]);
    }

    #[test]
    fn no_arc_to_machines_without_spare_bandwidth() {
        let mut state = setup();
        state.machines.get_mut(&0).unwrap().background_mbps = 10_000;
        let model = NetworkAwareCostModel::new();
        let class = NetworkAwareCostModel::class_of(4000) as AggregateId;
        assert!(model
            .aggregate_arc(&state, class, &state.machines[&0])
            .is_none());
        assert!(model
            .aggregate_arc(&state, class, &state.machines[&1])
            .is_some());
    }

    #[test]
    fn costs_favor_lightly_loaded_links() {
        let mut state = setup();
        state.machines.get_mut(&0).unwrap().background_mbps = 6_000;
        state.machines.get_mut(&1).unwrap().background_mbps = 1_000;
        let model = NetworkAwareCostModel::new();
        let class = NetworkAwareCostModel::class_of(1000) as AggregateId;
        let c0 = model
            .aggregate_arc(&state, class, &state.machines[&0])
            .unwrap()
            .segments()[0]
            .cost;
        let c1 = model
            .aggregate_arc(&state, class, &state.machines[&1])
            .unwrap()
            .segments()[0]
            .cost;
        assert!(
            c1 < c0,
            "machine 1 (1 Gbps used) must be cheaper than machine 0 (6 Gbps used)"
        );
    }

    #[test]
    fn slot_limit_caps_arc_capacity() {
        let state = setup();
        let model = NetworkAwareCostModel::new();
        let class = NetworkAwareCostModel::class_of(100) as AggregateId;
        let bundle = model
            .aggregate_arc(&state, class, &state.machines[&0])
            .unwrap();
        // 10 Gbps / 500 Mbps class request would allow 20 tasks, but there
        // are only 2 slots.
        assert_eq!(bundle.total_capacity(), 2);
        assert!(
            bundle.is_convex() && bundle.segments()[1].cost > bundle.segments()[0].cost,
            "later units pay for the bandwidth earlier units consume"
        );
    }
}
