//! The network-aware policy (Fig 6c): avoid overcommitting machine links.
//!
//! Each task connects to a request aggregator (`RA`) for its network
//! bandwidth request class. The `RA`s have one arc per machine with
//! sufficient spare bandwidth, with capacity for as many tasks as fit; the
//! arcs are dynamically adapted as observed bandwidth use changes, and their
//! costs — the sum of the request and the machine's current bandwidth use —
//! incentivize balanced utilization. The paper's local-testbed experiment
//! (§7.5, Fig 19) uses this policy to cut tail task response times by
//! 3.4–6.2× versus load-spreading and random placement.

use crate::policy::{GraphBase, SchedulingPolicy};
use crate::PolicyError;
use firmament_cluster::{ClusterEvent, ClusterState, TaskState};
use firmament_flow::{ArcId, NodeId, NodeKind};
use std::collections::HashMap;

/// Bandwidth bucket width in Mbit/s for request-aggregator classes.
const CLASS_WIDTH_MBPS: u64 = 500;
/// Cost of leaving a task unscheduled.
const UNSCHEDULED_COST: i64 = 1_000_000;
/// Cost increment per second of wait.
const WAIT_COST_PER_SEC: i64 = 1_000;

/// The network-aware scheduling policy.
#[derive(Debug)]
pub struct NetworkAwarePolicy {
    base: GraphBase,
    /// Request class (bucketed Mbit/s) → aggregator node.
    request_aggs: HashMap<u32, NodeId>,
    /// (class, machine) → RA→machine arc.
    ra_machine_arcs: HashMap<(u32, u64), ArcId>,
}

impl Default for NetworkAwarePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkAwarePolicy {
    /// Creates the policy with an empty flow network.
    pub fn new() -> Self {
        NetworkAwarePolicy {
            base: GraphBase::new(),
            request_aggs: HashMap::new(),
            ra_machine_arcs: HashMap::new(),
        }
    }

    /// The request class for a bandwidth request in Mbit/s.
    pub fn class_of(request_mbps: u64) -> u32 {
        (request_mbps / CLASS_WIDTH_MBPS.max(1)) as u32
    }

    /// Representative bandwidth request of a class (its upper bound).
    fn class_request(class: u32) -> u64 {
        (class as u64 + 1) * CLASS_WIDTH_MBPS
    }

    fn ensure_request_agg(&mut self, class: u32) -> NodeId {
        if let Some(&n) = self.request_aggs.get(&class) {
            return n;
        }
        let n = self
            .base
            .graph
            .add_node(NodeKind::RequestAggregator { class }, 0);
        self.request_aggs.insert(class, n);
        n
    }

    /// Current bandwidth use of a machine: background traffic plus the
    /// requests of all tasks running on it.
    fn machine_used_mbps(state: &ClusterState, machine: u64) -> u64 {
        let m = &state.machines[&machine];
        let task_bw: u64 = m
            .running
            .iter()
            .filter_map(|t| state.tasks.get(t))
            .map(|t| t.request.net_mbps)
            .sum();
        m.background_mbps + task_bw
    }

    /// Rebuilds the dynamic RA→machine arcs from current bandwidth state
    /// (the "dynamically adapted" arcs of Fig 6c).
    fn rebuild_request_arcs(&mut self, state: &ClusterState) -> Result<(), PolicyError> {
        let classes: Vec<u32> = self.request_aggs.keys().copied().collect();
        let machines: Vec<u64> = self.base.machine_nodes.keys().copied().collect();
        for class in classes {
            let request = Self::class_request(class);
            let ra = self.request_aggs[&class];
            for &mid in &machines {
                let m = &state.machines[&mid];
                let used = Self::machine_used_mbps(state, mid);
                let spare = m.link_mbps.saturating_sub(used);
                let fits_bw = (spare / request.max(1)) as i64;
                let cap = fits_bw.min(m.free_slots() as i64);
                let key = (class, mid);
                let cost = (request + used) as i64 / 10;
                match self.ra_machine_arcs.get(&key) {
                    Some(&arc) => {
                        if cap <= 0 {
                            self.base.graph.remove_arc(arc)?;
                            self.ra_machine_arcs.remove(&key);
                        } else {
                            self.base.graph.set_arc_capacity(arc, cap)?;
                            self.base.graph.set_arc_cost(arc, cost)?;
                        }
                    }
                    None => {
                        if cap > 0 {
                            let mn = self.base.machine_node(mid).expect("machine node");
                            let arc = self.base.graph.add_arc(ra, mn, cap, cost)?;
                            self.ra_machine_arcs.insert(key, arc);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl SchedulingPolicy for NetworkAwarePolicy {
    fn name(&self) -> &'static str {
        "network-aware"
    }

    fn base(&self) -> &GraphBase {
        &self.base
    }

    fn base_mut(&mut self) -> &mut GraphBase {
        &mut self.base
    }

    fn apply_event(
        &mut self,
        state: &ClusterState,
        event: &ClusterEvent,
    ) -> Result<(), PolicyError> {
        match event {
            ClusterEvent::Tick { .. } => {}
            ClusterEvent::MachineAdded { machine } => {
                self.base.add_machine(machine.id, machine.slots as i64)?;
            }
            ClusterEvent::MachineRemoved { machine, .. } => {
                self.ra_machine_arcs.retain(|&(_, m), _| m != *machine);
                self.base.remove_machine(*machine)?;
                // Displaced tasks need their request-aggregator arc back.
                let displaced: Vec<(u64, u64)> = state
                    .waiting_tasks()
                    .map(|t| (t.id, t.request.net_mbps))
                    .collect();
                for (tid, bw) in displaced {
                    if let Some(n) = self.base.task_node(tid) {
                        let class = Self::class_of(bw);
                        let ra = self.ensure_request_agg(class);
                        if self.base.find_arc(n, ra).is_none() {
                            self.base.graph.add_arc(n, ra, 1, 1)?;
                        }
                    }
                }
            }
            ClusterEvent::JobSubmitted { job, tasks } => {
                for task in tasks {
                    let n = self.base.add_task(task.id, job.id, UNSCHEDULED_COST)?;
                    let class = Self::class_of(task.request.net_mbps);
                    let ra = self.ensure_request_agg(class);
                    self.base.graph.add_arc(n, ra, 1, 1)?;
                }
            }
            ClusterEvent::TaskPlaced { task, machine, .. } => {
                let t = self
                    .base
                    .task_node(*task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let m = self
                    .base
                    .machine_node(*machine)
                    .ok_or(PolicyError::UnknownMachine(*machine))?;
                let job = state.tasks[task].job;
                let u = self.base.unsched_nodes[&job];
                self.base.retain_out_arcs(t, move |_, dst| dst == u)?;
                self.base.graph.add_arc(t, m, 1, 0)?;
            }
            ClusterEvent::TaskPreempted { task, .. } => {
                let t = self
                    .base
                    .task_node(*task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let job = state.tasks[task].job;
                let u = self.base.unsched_nodes[&job];
                self.base.retain_out_arcs(t, move |_, dst| dst == u)?;
                let class = Self::class_of(state.tasks[task].request.net_mbps);
                let ra = self.ensure_request_agg(class);
                self.base.graph.add_arc(t, ra, 1, 1)?;
            }
            ClusterEvent::TaskCompleted { task, .. } => {
                let job = state.tasks[task].job;
                self.base.remove_task(*task, job)?;
            }
        }
        Ok(())
    }

    fn refresh_costs(&mut self, state: &ClusterState) -> Result<(), PolicyError> {
        self.rebuild_request_arcs(state)?;
        for t in state.tasks.values() {
            if matches!(t.state, TaskState::Waiting | TaskState::Preempted) {
                if let Some(n) = self.base.task_node(t.id) {
                    if let Some(&u) = self.base.unsched_nodes.get(&t.job) {
                        if let Some(a) = self.base.find_arc(n, u) {
                            let wait_sec = (state.now.saturating_sub(t.submit_time)) / 1_000_000;
                            let cost = UNSCHEDULED_COST + WAIT_COST_PER_SEC * wait_sec as i64;
                            self.base.graph.set_arc_cost(a, cost)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{ClusterState, Job, JobClass, ResourceVector, Task, TopologySpec};

    fn setup() -> (ClusterState, NetworkAwarePolicy) {
        let state = ClusterState::with_topology(&TopologySpec {
            machines: 4,
            machines_per_rack: 4,
            slots_per_machine: 2,
        });
        let mut policy = NetworkAwarePolicy::new();
        for m in state.machines.values() {
            policy
                .apply_event(&state, &ClusterEvent::MachineAdded { machine: m.clone() })
                .unwrap();
        }
        (state, policy)
    }

    fn submit_task(state: &mut ClusterState, policy: &mut NetworkAwarePolicy, id: u64, bw: u64) {
        let mut t = Task::new(id, 0, state.now, 5_000_000);
        t.request = ResourceVector::new(1000, 1024, bw);
        let ev = ClusterEvent::JobSubmitted {
            job: Job::new(0, JobClass::Batch, 0, state.now),
            tasks: vec![t],
        };
        state.apply(&ev);
        policy.apply_event(state, &ev).unwrap();
    }

    #[test]
    fn request_classes_bucket_bandwidth() {
        assert_eq!(NetworkAwarePolicy::class_of(100), 0);
        assert_eq!(NetworkAwarePolicy::class_of(499), 0);
        assert_eq!(NetworkAwarePolicy::class_of(500), 1);
        assert_eq!(NetworkAwarePolicy::class_of(4000), 8);
    }

    #[test]
    fn arcs_only_to_machines_with_spare_bandwidth() {
        let (mut state, mut policy) = setup();
        // Machine 0 is saturated by background traffic.
        state.machines.get_mut(&0).unwrap().background_mbps = 10_000;
        submit_task(&mut state, &mut policy, 1, 4000);
        policy.refresh_costs(&state).unwrap();
        let class = NetworkAwarePolicy::class_of(4000);
        assert!(!policy.ra_machine_arcs.contains_key(&(class, 0)));
        assert!(policy.ra_machine_arcs.contains_key(&(class, 1)));
        assert!(policy.ra_machine_arcs.contains_key(&(class, 2)));
    }

    #[test]
    fn costs_favor_lightly_loaded_links() {
        let (mut state, mut policy) = setup();
        state.machines.get_mut(&0).unwrap().background_mbps = 6_000;
        state.machines.get_mut(&1).unwrap().background_mbps = 1_000;
        submit_task(&mut state, &mut policy, 1, 1000);
        policy.refresh_costs(&state).unwrap();
        let class = NetworkAwarePolicy::class_of(1000);
        let g = &policy.base().graph;
        let c0 = g.cost(policy.ra_machine_arcs[&(class, 0)]);
        let c1 = g.cost(policy.ra_machine_arcs[&(class, 1)]);
        assert!(
            c1 < c0,
            "machine 1 (1 Gbps used) must be cheaper than machine 0 (6 Gbps used)"
        );
    }

    #[test]
    fn arcs_adapt_when_bandwidth_frees_up() {
        let (mut state, mut policy) = setup();
        state.machines.get_mut(&0).unwrap().background_mbps = 10_000;
        submit_task(&mut state, &mut policy, 1, 2000);
        policy.refresh_costs(&state).unwrap();
        let class = NetworkAwarePolicy::class_of(2000);
        assert!(!policy.ra_machine_arcs.contains_key(&(class, 0)));
        // Background traffic stops; the arc must reappear.
        state.machines.get_mut(&0).unwrap().background_mbps = 0;
        policy.refresh_costs(&state).unwrap();
        assert!(policy.ra_machine_arcs.contains_key(&(class, 0)));
    }

    #[test]
    fn slot_limit_caps_arc_capacity() {
        let (mut state, mut policy) = setup();
        submit_task(&mut state, &mut policy, 1, 100);
        policy.refresh_costs(&state).unwrap();
        let class = NetworkAwarePolicy::class_of(100);
        let g = &policy.base().graph;
        let cap = g.capacity(policy.ra_machine_arcs[&(class, 0)]);
        // 10 Gbps / 500 Mbps class request would allow 20 tasks, but there
        // are only 2 slots.
        assert_eq!(cap, 2);
    }
}
