//! An Octopus-style idle-preferring cost model (after real Firmament's
//! `OctopusCostModel`).
//!
//! All tasks route through a single cluster aggregator, but — unlike
//! [load spreading](crate::LoadSpreadingCostModel), whose per-machine cost
//! is *linear* in the running-task count — the cost here grows
//! **quadratically** with standing load. Under Firmament's continuous
//! rescheduling, every arrival is routed to an idle machine as long as one
//! exists, and heavily loaded machines become rapidly unattractive as
//! their load rises: a strong bias toward tail-latency-friendly,
//! interference-free placements.
//!
//! The quadratic is declared as a genuine convex ladder: the segment for
//! the `j`-th extra task is priced at the quadratic's **marginal** cost
//! `scale · ((l+1)² − l²)` at load `l = running + j`, so the sum of the
//! first `k` segments is exactly the quadratic load penalty of adding `k`
//! tasks. The min-cost solver therefore *realizes* the quadratic within a
//! single round — a burst fills every machine's cheap low-load segments
//! before anyone's expensive high-load ones — instead of approximating it
//! across rounds.
//!
//! The model exists mostly to demonstrate the [`CostModel`] API's
//! leverage: a genuinely different placement behavior in ~40 lines of
//! cost arithmetic, with zero graph bookkeeping.

use crate::cost_model::{
    wait_scaled_cost, AggregateId, ArcBundle, ArcTarget, BundleShape, CostModel,
};
use firmament_cluster::{ClusterState, Machine, Task};
use firmament_flow::NodeKind;

/// The single cluster-wide aggregate.
const CLUSTER_AGG: AggregateId = 0;

/// Tuning parameters for the Octopus cost model.
#[derive(Debug, Clone)]
pub struct OctopusConfig {
    /// Multiplier on the quadratic load penalty.
    pub load_cost_scale: i64,
    /// Cost of leaving a task unscheduled.
    pub base_unscheduled_cost: i64,
    /// Unscheduled-cost growth per second of waiting.
    pub wait_cost_per_sec: i64,
    /// How the quadratic marginal ladder is materialized: per-slot arcs or
    /// capacity-bucketed `O(log slots)` segments (full-scale clusters).
    pub shape: BundleShape,
}

impl Default for OctopusConfig {
    fn default() -> Self {
        OctopusConfig {
            load_cost_scale: 10,
            base_unscheduled_cost: 1_000_000,
            wait_cost_per_sec: 1_000,
            shape: BundleShape::PerSlot,
        }
    }
}

/// The Octopus-style idle-preferring cost model.
#[derive(Debug, Default)]
pub struct OctopusCostModel {
    /// Policy tuning.
    pub config: OctopusConfig,
}

impl OctopusCostModel {
    /// Creates the cost model with default tuning.
    pub fn new() -> Self {
        OctopusCostModel::default()
    }

    /// Creates the cost model with explicit tuning.
    pub fn with_config(config: OctopusConfig) -> Self {
        OctopusCostModel { config }
    }

    /// Default tuning with capacity-bucketed ladders
    /// ([`BundleShape::Bucketed`]): `O(log slots)` arcs per machine.
    pub fn bucketed() -> Self {
        OctopusCostModel::with_config(OctopusConfig {
            shape: BundleShape::Bucketed,
            ..OctopusConfig::default()
        })
    }

    /// Marginal cost of taking a machine from load `l` to `l + 1`:
    /// `scale · ((l+1)² − l²) = scale · (2l + 1)`.
    fn marginal(&self, load: i64) -> i64 {
        self.config.load_cost_scale * (2 * load + 1)
    }
}

impl CostModel for OctopusCostModel {
    fn name(&self) -> &'static str {
        "octopus"
    }

    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        wait_scaled_cost(
            state,
            task,
            self.config.base_unscheduled_cost,
            self.config.wait_cost_per_sec,
        )
    }

    fn task_arcs(&self, _state: &ClusterState, _task: &Task) -> Vec<(ArcTarget, ArcBundle)> {
        vec![(ArcTarget::Aggregate(CLUSTER_AGG), ArcBundle::cost(0))]
    }

    fn aggregate_arc(
        &self,
        _state: &ClusterState,
        _aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcBundle> {
        let load = machine.running.len() as i64;
        // The quadratic's convex expansion: segment j prices the marginal
        // cost of co-locating at load `running + j`, which rises with
        // every task already there, so idle machines win first — within
        // one solver round. The shape knob trades slot-exactness for
        // O(log slots) arcs at scale.
        Some(
            self.config
                .shape
                .ladder(machine.slots as i64, |j| self.marginal(load + j)),
        )
    }

    fn aggregate_kind(&self, _aggregate: AggregateId) -> NodeKind {
        NodeKind::ClusterAggregator
    }

    fn task_arcs_machine_local(&self) -> bool {
        // A constant aggregate target: machine-set changes never alter
        // waiting-task arc sets.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::Machine;

    #[test]
    fn ladder_realizes_the_quadratic_and_is_superlinear() {
        let state = ClusterState::default();
        let model = OctopusCostModel::new();
        let m = Machine::new(0, 0, 4);
        let bundle = model.aggregate_arc(&state, CLUSTER_AGG, &m).unwrap();
        assert!(bundle.is_convex());
        let costs: Vec<i64> = bundle.segments().iter().map(|s| s.cost).collect();
        // Marginals of 10·l²: 10, 30, 50, 70 — strictly rising.
        assert_eq!(costs, vec![10, 30, 50, 70]);
        // Prefix sums recover the quadratic exactly.
        let quad = |k: i64| model.config.load_cost_scale * k * k;
        let mut sum = 0;
        for (k, c) in costs.iter().enumerate() {
            sum += c;
            assert_eq!(sum, quad(k as i64 + 1));
        }
        assert!(costs[1] - costs[0] > 0, "marginal cost must rise");
        assert_eq!(
            costs[2] - costs[1],
            costs[1] - costs[0],
            "quadratic marginals rise linearly"
        );
    }

    #[test]
    fn bucketed_shape_compresses_the_quadratic_ladder() {
        let state = ClusterState::default();
        let model = OctopusCostModel::bucketed();
        let m = Machine::new(0, 0, 12);
        let bundle = model.aggregate_arc(&state, CLUSTER_AGG, &m).unwrap();
        assert_eq!(bundle.segments().len(), 5, "12 slots → 5 buckets");
        assert_eq!(bundle.total_capacity(), 12);
        assert!(bundle.is_convex());
        // Bucket sums still recover the quadratic at bucket boundaries
        // (quadratic marginal sums over power-of-two buckets divide
        // evenly: Σ 10·(2l+1) over l = lo..hi is 10·(hi² − lo²)).
        let quad = |k: i64| model.config.load_cost_scale * k * k;
        let mut boundary = 0i64;
        let mut total = 0i64;
        for s in bundle.segments() {
            boundary += s.capacity;
            total += s.capacity * s.cost;
            assert_eq!(total, quad(boundary), "boundary {boundary}");
        }
    }

    #[test]
    fn standing_load_shifts_the_ladder_up() {
        let state = ClusterState::default();
        let model = OctopusCostModel::new();
        let mut m = Machine::new(0, 0, 4);
        m.add_task(1);
        m.add_task(2);
        let bundle = model.aggregate_arc(&state, CLUSTER_AGG, &m).unwrap();
        let costs: Vec<i64> = bundle.segments().iter().map(|s| s.cost).collect();
        // At load 2 the next marginals are 10·(2l+1) for l = 2, 3, 4, 5.
        assert_eq!(costs, vec![50, 70, 90, 110]);
    }

    #[test]
    fn tasks_route_through_the_cluster_aggregate_for_free() {
        let state = ClusterState::default();
        let t = Task::new(0, 0, 0, 1_000_000);
        let arcs = OctopusCostModel::new().task_arcs(&state, &t);
        assert_eq!(
            arcs,
            vec![(ArcTarget::Aggregate(CLUSTER_AGG), ArcBundle::cost(0))]
        );
    }
}
