//! An Octopus-style idle-preferring cost model (after real Firmament's
//! `OctopusCostModel`).
//!
//! All tasks route through a single cluster aggregator, but — unlike
//! [load spreading](crate::LoadSpreadingCostModel), whose per-machine cost
//! is *linear* in the running-task count — the cost here grows
//! **quadratically** with standing load. Under Firmament's continuous
//! rescheduling, every arrival is routed to an idle machine as long as one
//! exists, and heavily loaded machines become rapidly unattractive as
//! their load rises: a strong bias toward tail-latency-friendly,
//! interference-free placements.
//!
//! The model exists mostly to demonstrate the [`CostModel`] API's
//! leverage: a genuinely different placement behavior in ~40 lines of
//! cost arithmetic, with zero graph bookkeeping.

use crate::cost_model::{wait_scaled_cost, AggregateId, ArcSpec, ArcTarget, CostModel};
use firmament_cluster::{ClusterState, Machine, Task};
use firmament_flow::NodeKind;

/// The single cluster-wide aggregate.
const CLUSTER_AGG: AggregateId = 0;

/// Tuning parameters for the Octopus cost model.
#[derive(Debug, Clone)]
pub struct OctopusConfig {
    /// Multiplier on the quadratic load penalty.
    pub load_cost_scale: i64,
    /// Cost of leaving a task unscheduled.
    pub base_unscheduled_cost: i64,
    /// Unscheduled-cost growth per second of waiting.
    pub wait_cost_per_sec: i64,
}

impl Default for OctopusConfig {
    fn default() -> Self {
        OctopusConfig {
            load_cost_scale: 10,
            base_unscheduled_cost: 1_000_000,
            wait_cost_per_sec: 1_000,
        }
    }
}

/// The Octopus-style idle-preferring cost model.
#[derive(Debug, Default)]
pub struct OctopusCostModel {
    /// Policy tuning.
    pub config: OctopusConfig,
}

impl OctopusCostModel {
    /// Creates the cost model with default tuning.
    pub fn new() -> Self {
        OctopusCostModel::default()
    }

    /// Creates the cost model with explicit tuning.
    pub fn with_config(config: OctopusConfig) -> Self {
        OctopusCostModel { config }
    }
}

impl CostModel for OctopusCostModel {
    fn name(&self) -> &'static str {
        "octopus"
    }

    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        wait_scaled_cost(
            state,
            task,
            self.config.base_unscheduled_cost,
            self.config.wait_cost_per_sec,
        )
    }

    fn task_arcs(&self, _state: &ClusterState, _task: &Task) -> Vec<(ArcTarget, i64)> {
        vec![(ArcTarget::Aggregate(CLUSTER_AGG), 0)]
    }

    fn aggregate_arc(
        &self,
        _state: &ClusterState,
        _aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcSpec> {
        let load = machine.running.len() as i64;
        Some(ArcSpec {
            capacity: machine.slots as i64,
            // Quadratic: the marginal cost of co-locating rises with every
            // task already there, so idle machines win first.
            cost: self.config.load_cost_scale * load * load,
        })
    }

    fn aggregate_kind(&self, _aggregate: AggregateId) -> NodeKind {
        NodeKind::ClusterAggregator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::Machine;

    #[test]
    fn idle_machines_are_free_and_load_cost_is_superlinear() {
        let state = ClusterState::default();
        let model = OctopusCostModel::new();
        let mut m = Machine::new(0, 0, 4);
        let cost_at = |m: &Machine| model.aggregate_arc(&state, CLUSTER_AGG, m).unwrap().cost;
        assert_eq!(cost_at(&m), 0, "idle machine costs nothing");
        m.add_task(1);
        let one = cost_at(&m);
        m.add_task(2);
        let two = cost_at(&m);
        m.add_task(3);
        let three = cost_at(&m);
        assert!(two - one > one, "marginal cost must rise");
        assert!(three - two > two - one, "and keep rising");
    }

    #[test]
    fn tasks_route_through_the_cluster_aggregate_for_free() {
        let state = ClusterState::default();
        let t = Task::new(0, 0, 0, 1_000_000);
        let arcs = OctopusCostModel::new().task_arcs(&state, &t);
        assert_eq!(arcs, vec![(ArcTarget::Aggregate(CLUSTER_AGG), 0)]);
    }
}
