//! The scheduling-policy API (§3.3) and shared graph-management machinery.
//!
//! A scheduling policy translates cluster state into the flow network the
//! MCMF solver optimizes: it decides which aggregator nodes exist, which
//! arcs connect tasks to them, and what the costs and capacities are.
//! Firmament generalizes flow-based scheduling over Quincy's single policy
//! through exactly this API.

use crate::PolicyError;
use firmament_cluster::{ClusterEvent, ClusterState, JobId, MachineId, TaskId};
use firmament_flow::{ArcId, FlowGraph, NodeId, NodeKind};
use std::collections::HashMap;

/// A scheduling policy: owns the flow network and keeps it in sync with
/// cluster state.
pub trait SchedulingPolicy {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Shared node bookkeeping and the flow network itself.
    fn base(&self) -> &GraphBase;

    /// Mutable access to the bookkeeping (used by the scheduler core for
    /// flow adoption and the task-removal drain).
    fn base_mut(&mut self) -> &mut GraphBase;

    /// Applies one cluster event to the flow network (node/arc structure).
    fn apply_event(&mut self, state: &ClusterState, event: &ClusterEvent)
        -> Result<(), PolicyError>;

    /// Refreshes all state-dependent costs and capacities; called once
    /// before every solver run (the second traversal of Firmament's
    /// two-pass update, §6.3).
    fn refresh_costs(&mut self, state: &ClusterState) -> Result<(), PolicyError>;
}

impl<T: SchedulingPolicy + ?Sized> SchedulingPolicy for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn base(&self) -> &GraphBase {
        (**self).base()
    }

    fn base_mut(&mut self) -> &mut GraphBase {
        (**self).base_mut()
    }

    fn apply_event(
        &mut self,
        state: &ClusterState,
        event: &ClusterEvent,
    ) -> Result<(), PolicyError> {
        (**self).apply_event(state, event)
    }

    fn refresh_costs(&mut self, state: &ClusterState) -> Result<(), PolicyError> {
        (**self).refresh_costs(state)
    }
}

/// Node bookkeeping shared by every policy: the sink, per-task and
/// per-machine nodes, per-job unscheduled aggregators, and the arcs whose
/// capacities track cluster quantities.
#[derive(Debug, Default)]
pub struct GraphBase {
    /// The flow network.
    pub graph: FlowGraph,
    /// The sink node `S`.
    pub sink: Option<NodeId>,
    /// Task → node.
    pub task_nodes: HashMap<TaskId, NodeId>,
    /// Machine → node.
    pub machine_nodes: HashMap<MachineId, NodeId>,
    /// Machine → its arc to the sink (capacity = slots).
    pub machine_sink_arcs: HashMap<MachineId, ArcId>,
    /// Job → unscheduled aggregator `U_j`.
    pub unsched_nodes: HashMap<JobId, NodeId>,
    /// Job → the `U_j → S` arc (capacity = incomplete tasks of the job).
    pub unsched_sink_arcs: HashMap<JobId, ArcId>,
}

impl GraphBase {
    /// Creates an empty base with a sink node.
    pub fn new() -> Self {
        let mut base = GraphBase::default();
        let sink = base.graph.add_node(NodeKind::Sink, 0);
        base.sink = Some(sink);
        base
    }

    /// The sink node.
    ///
    /// # Panics
    ///
    /// Panics if called before [`GraphBase::new`] created the sink.
    pub fn sink(&self) -> NodeId {
        self.sink.expect("GraphBase::new creates the sink")
    }

    /// Adds a machine node with a `slots`-capacity arc to the sink.
    pub fn add_machine(&mut self, machine: MachineId, slots: i64) -> Result<NodeId, PolicyError> {
        if self.machine_nodes.contains_key(&machine) {
            return Err(PolicyError::DuplicateMachine(machine));
        }
        let n = self.graph.add_node(NodeKind::Machine { machine }, 0);
        let arc = self.graph.add_arc(n, self.sink(), slots, 0)?;
        self.machine_nodes.insert(machine, n);
        self.machine_sink_arcs.insert(machine, arc);
        Ok(n)
    }

    /// Removes a machine node and its arcs.
    pub fn remove_machine(&mut self, machine: MachineId) -> Result<(), PolicyError> {
        let n = self
            .machine_nodes
            .remove(&machine)
            .ok_or(PolicyError::UnknownMachine(machine))?;
        self.machine_sink_arcs.remove(&machine);
        self.graph.remove_node(n)?;
        Ok(())
    }

    /// Adds a task node with one unit of supply and an arc to its job's
    /// unscheduled aggregator; grows the sink demand and the `U_j → S`
    /// capacity accordingly.
    pub fn add_task(
        &mut self,
        task: TaskId,
        job: JobId,
        unsched_cost: i64,
    ) -> Result<NodeId, PolicyError> {
        if self.task_nodes.contains_key(&task) {
            return Err(PolicyError::DuplicateTask(task));
        }
        let n = self.graph.add_node(NodeKind::Task { task }, 1);
        let u = self.ensure_unscheduled(job)?;
        self.graph.add_arc(n, u, 1, unsched_cost)?;
        self.task_nodes.insert(task, n);
        let sink = self.sink();
        let d = self.graph.supply(sink);
        self.graph.set_supply(sink, d - 1)?;
        let ua = self.unsched_sink_arcs[&job];
        let cap = self.graph.capacity(ua);
        self.graph.set_arc_capacity(ua, cap + 1)?;
        Ok(n)
    }

    /// Removes a task node (after completion or failure), shrinking the sink
    /// demand and the job's unscheduled capacity.
    ///
    /// The caller (scheduler core) is responsible for draining the task's
    /// flow first when it wants the efficient-task-removal heuristic
    /// (§5.3.2).
    pub fn remove_task(&mut self, task: TaskId, job: JobId) -> Result<(), PolicyError> {
        let n = self
            .task_nodes
            .remove(&task)
            .ok_or(PolicyError::UnknownTask(task))?;
        self.graph.remove_node(n)?;
        let sink = self.sink();
        let d = self.graph.supply(sink);
        self.graph.set_supply(sink, d + 1)?;
        if let Some(&ua) = self.unsched_sink_arcs.get(&job) {
            let cap = self.graph.capacity(ua);
            self.graph.set_arc_capacity(ua, (cap - 1).max(0))?;
        }
        Ok(())
    }

    /// Returns (creating if needed) the unscheduled aggregator for a job.
    pub fn ensure_unscheduled(&mut self, job: JobId) -> Result<NodeId, PolicyError> {
        if let Some(&n) = self.unsched_nodes.get(&job) {
            return Ok(n);
        }
        let n = self
            .graph
            .add_node(NodeKind::UnscheduledAggregator { job }, 0);
        let arc = self.graph.add_arc(n, self.sink(), 0, 0)?;
        self.unsched_nodes.insert(job, n);
        self.unsched_sink_arcs.insert(job, arc);
        Ok(n)
    }

    /// Node for a task, if present.
    pub fn task_node(&self, task: TaskId) -> Option<NodeId> {
        self.task_nodes.get(&task).copied()
    }

    /// Node for a machine, if present.
    pub fn machine_node(&self, machine: MachineId) -> Option<NodeId> {
        self.machine_nodes.get(&machine).copied()
    }

    /// Finds the arc from `src` to `dst` if one exists (forward direction).
    pub fn find_arc(&self, src: NodeId, dst: NodeId) -> Option<ArcId> {
        self.graph
            .adj(src)
            .iter()
            .copied()
            .find(|&a| a.is_forward() && self.graph.dst(a) == dst)
    }

    /// Removes every outgoing forward arc of `node` except those whose
    /// destination satisfies `keep`; used when a task transitions between
    /// waiting and running arc sets.
    pub fn retain_out_arcs(
        &mut self,
        node: NodeId,
        keep: impl Fn(&FlowGraph, NodeId) -> bool,
    ) -> Result<(), PolicyError> {
        let to_remove: Vec<ArcId> = self
            .graph
            .adj(node)
            .iter()
            .copied()
            .filter(|&a| a.is_forward() && !keep(&self.graph, self.graph.dst(a)))
            .collect();
        for a in to_remove {
            self.graph.remove_arc(a)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_bookkeeping_roundtrip() {
        let mut b = GraphBase::new();
        let m = b.add_machine(0, 4).unwrap();
        let t = b.add_task(10, 0, 50).unwrap();
        assert_eq!(b.graph.supply(b.sink()), -1);
        assert_eq!(b.machine_node(0), Some(m));
        assert_eq!(b.task_node(10), Some(t));
        // Unscheduled agg exists with capacity 1.
        let ua = b.unsched_sink_arcs[&0];
        assert_eq!(b.graph.capacity(ua), 1);

        b.remove_task(10, 0).unwrap();
        assert_eq!(b.graph.supply(b.sink()), 0);
        assert_eq!(b.graph.capacity(ua), 0);
        assert!(b.task_node(10).is_none());
        b.remove_machine(0).unwrap();
        assert!(b.machine_node(0).is_none());
    }

    #[test]
    fn duplicate_rejected() {
        let mut b = GraphBase::new();
        b.add_machine(0, 1).unwrap();
        assert!(matches!(
            b.add_machine(0, 1),
            Err(PolicyError::DuplicateMachine(0))
        ));
        b.add_task(5, 0, 10).unwrap();
        assert!(matches!(
            b.add_task(5, 0, 10),
            Err(PolicyError::DuplicateTask(5))
        ));
    }

    #[test]
    fn unscheduled_shared_per_job() {
        let mut b = GraphBase::new();
        b.add_task(1, 7, 10).unwrap();
        b.add_task(2, 7, 10).unwrap();
        assert_eq!(b.unsched_nodes.len(), 1);
        let ua = b.unsched_sink_arcs[&7];
        assert_eq!(b.graph.capacity(ua), 2);
    }

    #[test]
    fn retain_out_arcs_filters() {
        let mut b = GraphBase::new();
        let m0 = b.add_machine(0, 1).unwrap();
        let m1 = b.add_machine(1, 1).unwrap();
        let t = b.add_task(3, 0, 10).unwrap();
        b.graph.add_arc(t, m0, 1, 5).unwrap();
        b.graph.add_arc(t, m1, 1, 6).unwrap();
        // Keep only the arc to m0 and the unscheduled arc.
        let u = b.unsched_nodes[&0];
        b.retain_out_arcs(t, move |_, dst| dst == m0 || dst == u)
            .unwrap();
        let dsts: Vec<NodeId> = b
            .graph
            .adj(t)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .map(|a| b.graph.dst(a))
            .collect();
        assert_eq!(dsts.len(), 2);
        assert!(dsts.contains(&m0));
        assert!(!dsts.contains(&m1));
    }
}
