//! The Quincy cost model (Fig 6b): locality-oriented batch scheduling.
//!
//! Quincy's original policy [22, §4.2] uses rack aggregators `R_r` and a
//! cluster aggregator `X` to express data locality: tasks get low-cost
//! preference arcs to machines and racks holding at least a threshold
//! fraction of their input data, and fall back to scheduling anywhere via
//! `X`. Costs approximate the bytes that would have to be fetched remotely;
//! the unscheduled cost grows with wait time so starving tasks eventually
//! win contended slots.
//!
//! The preference threshold (paper default 14 % of input data local; Fig 15
//! explores 2 %) controls the number of preference arcs and hence the
//! graph's size — the knob that separates Firmament from Quincy at scale.
//!
//! # Convex spread ladders
//!
//! Quincy's original formulation relied on convex costs so that load
//! spreads *within* one solver round. This reproduction declares the
//! distribution arcs — `X → R_r` and `R_r → machine` — as two-segment
//! convex ladders: the first half of each capacity is free, the second
//! half costs [`QuincyConfig::convex_spread_cost`]. The spread cost is
//! deliberately tiny next to fetch costs (units of GB ≈ hundreds), so
//! data locality still dominates every placement decision; the ladder
//! only breaks ties among equally-local options toward emptier racks and
//! machines — and does so in a single solve instead of across rounds.

use crate::cost_model::{
    rack_capacities, wait_scaled_cost, AggregateId, ArcBundle, ArcSpec, ArcTarget, CostModel,
};
use firmament_cluster::{ClusterState, Machine, RackId, Task};
use firmament_flow::NodeKind;

/// Tuning parameters for the Quincy cost model.
#[derive(Debug, Clone)]
pub struct QuincyConfig {
    /// Fraction of a task's input that must be on a machine for it to get a
    /// machine preference arc (paper: 0.14; Fig 15 also uses 0.02).
    pub machine_pref_threshold: f64,
    /// Fraction of input in a rack for a rack preference arc.
    pub rack_pref_threshold: f64,
    /// Maximum preference arcs per task (Quincy capped at ~10).
    pub max_prefs_per_task: usize,
    /// Cost units per GB fetched across racks.
    pub cost_per_gb_cross_rack: i64,
    /// Cost units per GB fetched within a rack.
    pub cost_per_gb_in_rack: i64,
    /// Base unscheduled cost and its growth per second of waiting.
    pub wait_cost_per_sec: i64,
    /// Cost offset that makes leaving a task unscheduled expensive.
    pub base_unscheduled_cost: i64,
    /// Premium on the upper half of each distribution arc's capacity
    /// (`X → R_r` and `R_r → machine`): Quincy's convexity trick, scaled
    /// to tie-breaking size so locality still dominates. 0 restores
    /// uniform (single-segment) distribution arcs.
    pub convex_spread_cost: i64,
}

impl Default for QuincyConfig {
    fn default() -> Self {
        QuincyConfig {
            machine_pref_threshold: 0.14,
            rack_pref_threshold: 0.14,
            max_prefs_per_task: 10,
            cost_per_gb_cross_rack: 100,
            cost_per_gb_in_rack: 50,
            wait_cost_per_sec: 50,
            base_unscheduled_cost: 20_000,
            convex_spread_cost: 2,
        }
    }
}

/// The cluster-wide aggregate `X`.
const CLUSTER_AGG: AggregateId = 0;

/// Aggregate id of rack `r` (offset past the cluster aggregate).
fn rack_agg(rack: RackId) -> AggregateId {
    1 + rack as AggregateId
}

/// A two-segment convex ladder over `capacity`: the first (larger) half
/// free, the rest at `premium`. Collapses to a single free segment when
/// the capacity is too small to split or the premium is 0.
fn spread_ladder(capacity: i64, premium: i64) -> ArcBundle {
    let cheap = capacity - capacity / 2;
    let rest = capacity - cheap;
    if rest <= 0 || premium <= 0 {
        return ArcBundle::single(capacity, 0);
    }
    ArcBundle::from_segments(vec![
        ArcSpec {
            capacity: cheap,
            cost: 0,
        },
        ArcSpec {
            capacity: rest,
            cost: premium,
        },
    ])
}

/// The Quincy scheduling cost model.
#[derive(Debug)]
pub struct QuincyCostModel {
    /// Policy tuning; mutable so experiments can sweep the thresholds.
    pub config: QuincyConfig,
}

impl QuincyCostModel {
    /// Creates the cost model with the given configuration.
    pub fn new(config: QuincyConfig) -> Self {
        QuincyCostModel { config }
    }

    /// Cost of running `task` with `local_fraction` of its input on the
    /// target (cross-rack fetch for the remainder).
    fn fetch_cost(&self, task: &Task, local_fraction: f64, in_rack: bool) -> i64 {
        let remote_gb = (1.0 - local_fraction).max(0.0) * task.input_bytes as f64 / 1e9;
        let per_gb = if in_rack {
            self.config.cost_per_gb_in_rack
        } else {
            self.config.cost_per_gb_cross_rack
        };
        (remote_gb * per_gb as f64).round() as i64
    }
}

impl CostModel for QuincyCostModel {
    fn name(&self) -> &'static str {
        "quincy"
    }

    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        // The Quincy trade-off between wait time and data locality.
        wait_scaled_cost(
            state,
            task,
            self.config.base_unscheduled_cost,
            self.config.wait_cost_per_sec,
        )
    }

    /// The waiting-task arc set: a fallback arc to `X` (worst case:
    /// everything fetched cross-rack) plus budget-limited preference arcs
    /// to machines and racks above the locality thresholds. All bundles
    /// are single capacity-1 segments — a task carries one unit of flow,
    /// so the convexity lives on the shared distribution arcs, not here.
    fn task_arcs(&self, state: &ClusterState, task: &Task) -> Vec<(ArcTarget, ArcBundle)> {
        let x_cost = self.fetch_cost(task, 0.0, false) + 1;
        let mut arcs = vec![(ArcTarget::Aggregate(CLUSTER_AGG), ArcBundle::cost(x_cost))];
        let mut budget = self.config.max_prefs_per_task;
        let machine_prefs = state
            .blocks
            .machines_above_threshold(&task.input_blocks, self.config.machine_pref_threshold);
        for (m, frac) in machine_prefs {
            if budget == 0 {
                break;
            }
            if state.machines.contains_key(&m) {
                arcs.push((
                    ArcTarget::Machine(m),
                    ArcBundle::cost(self.fetch_cost(task, frac, true)),
                ));
                budget -= 1;
            }
        }
        let rack_prefs = state
            .blocks
            .racks_above_threshold(&task.input_blocks, self.config.rack_pref_threshold);
        for (r, frac) in rack_prefs {
            if budget == 0 {
                break;
            }
            // The non-rack-local remainder crosses racks; the rack-local
            // part still pays a cheap in-rack fetch.
            let cost =
                self.fetch_cost(task, frac, false) + self.fetch_cost(task, 1.0 - frac, true) / 2;
            arcs.push((
                ArcTarget::Aggregate(rack_agg(r)),
                ArcBundle::cost(cost.max(1)),
            ));
            budget -= 1;
        }
        arcs
    }

    /// Rack aggregates reach exactly their machines, through a convex
    /// spread ladder over the machine's slots. The cluster aggregate `X`
    /// reaches no machine directly — its flow descends through the rack
    /// level (see [`aggregate_to_aggregate`]), matching Quincy's original
    /// `X → R_r → machine` shape and keeping the graph at
    /// `O(racks + machines)` aggregate arcs instead of `O(2 × machines)`.
    ///
    /// [`aggregate_to_aggregate`]: QuincyCostModel::aggregate_to_aggregate
    fn aggregate_arc(
        &self,
        _state: &ClusterState,
        aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcBundle> {
        (aggregate == rack_agg(machine.rack))
            .then(|| spread_ladder(machine.slots as i64, self.config.convex_spread_cost))
    }

    /// The EC→EC level of Quincy's network: `X` fans out to every rack
    /// aggregate with the rack's total slot capacity — as a convex spread
    /// ladder, so a wildcard burst splits across racks in one round (the
    /// wildcard *fetch* cost is priced on the task → `X` arc, not here).
    fn aggregate_to_aggregate(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
    ) -> Vec<(AggregateId, ArcBundle)> {
        if aggregate != CLUSTER_AGG {
            return Vec::new();
        }
        rack_capacities(state)
            .into_iter()
            .map(|(rack, slots, _)| {
                (
                    rack_agg(rack),
                    spread_ladder(slots, self.config.convex_spread_cost),
                )
            })
            .collect()
    }

    fn aggregate_kind(&self, aggregate: AggregateId) -> NodeKind {
        if aggregate == CLUSTER_AGG {
            NodeKind::ClusterAggregator
        } else {
            NodeKind::RackAggregator {
                rack: (aggregate - 1) as RackId,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{ClusterState, TopologySpec};

    fn setup() -> (ClusterState, QuincyCostModel) {
        let state = ClusterState::with_topology(&TopologySpec {
            machines: 6,
            machines_per_rack: 3,
            slots_per_machine: 2,
        });
        (state, QuincyCostModel::new(QuincyConfig::default()))
    }

    fn make_task(state: &mut ClusterState, id: u64, holders: Vec<u64>) -> Task {
        let mut t = Task::new(id, 0, state.now, 4_000_000);
        let b = state.blocks.place_block(holders);
        t.input_blocks = vec![b];
        t.input_bytes = 2_000_000_000; // 2 GB
        t
    }

    #[test]
    fn preference_arcs_follow_locality() {
        let (mut state, model) = setup();
        let t = make_task(&mut state, 1, vec![0, 1, 4]);
        let arcs = model.task_arcs(&state, &t);
        // X + machine prefs (0, 1, 4) + rack prefs (0, 1).
        assert!(arcs.contains(&(ArcTarget::Aggregate(CLUSTER_AGG), ArcBundle::cost(201))));
        let machine_prefs = arcs
            .iter()
            .filter(|(t, _)| matches!(t, ArcTarget::Machine(_)))
            .count();
        assert_eq!(machine_prefs, 3);
        let rack_prefs = arcs
            .iter()
            .filter(|(t, _)| matches!(t, ArcTarget::Aggregate(a) if *a != CLUSTER_AGG))
            .count();
        assert_eq!(rack_prefs, 2);
    }

    #[test]
    fn local_machine_is_cheapest() {
        let (mut state, model) = setup();
        let t = make_task(&mut state, 1, vec![2, 2, 2]); // all data on machine 2
        let arcs = model.task_arcs(&state, &t);
        let machine_cost = arcs
            .iter()
            .find_map(|(tg, b)| matches!(tg, ArcTarget::Machine(2)).then(|| b.segments()[0].cost));
        let x_cost = arcs.iter().find_map(|(tg, b)| {
            matches!(tg, ArcTarget::Aggregate(CLUSTER_AGG)).then(|| b.segments()[0].cost)
        });
        assert_eq!(machine_cost, Some(0), "fully local data costs nothing");
        assert!(x_cost.unwrap() > 0, "cluster fallback pays full fetch");
    }

    #[test]
    fn pref_arc_budget_respected() {
        let (mut state, mut model) = setup();
        model.config.max_prefs_per_task = 2;
        let t = make_task(&mut state, 1, vec![0, 1, 2]);
        let arcs = model.task_arcs(&state, &t);
        let prefs = arcs
            .iter()
            .filter(|(tg, _)| !matches!(tg, ArcTarget::Aggregate(CLUSTER_AGG)))
            .count();
        assert!(prefs <= 2);
    }

    #[test]
    fn lower_threshold_creates_more_arcs() {
        let count_arcs = |threshold: f64| {
            let (mut state, mut model) = setup();
            model.config.machine_pref_threshold = threshold;
            model.config.rack_pref_threshold = threshold;
            model.config.max_prefs_per_task = 100;
            // Input spread thinly across many machines.
            let mut t = Task::new(1, 0, 0, 1_000_000);
            for m in 0..6u64 {
                let b = state.blocks.place_block(vec![m]);
                t.input_blocks.push(b);
            }
            t.input_bytes = 6_000_000_000;
            model.task_arcs(&state, &t).len()
        };
        // Each machine holds 1/6 ≈ 0.167 of the input.
        let high = count_arcs(0.5); // no machine qualifies
        let low = count_arcs(0.02); // every machine qualifies
        assert!(
            low > high,
            "2% threshold must create more arcs than 50% ({low} vs {high})"
        );
    }

    #[test]
    fn rack_aggregates_connect_only_their_machines() {
        let (state, model) = setup();
        let m0 = &state.machines[&0]; // rack 0
        let m4 = &state.machines[&4]; // rack 1
        assert!(model.aggregate_arc(&state, rack_agg(0), m0).is_some());
        assert!(model.aggregate_arc(&state, rack_agg(0), m4).is_none());
        // X reaches machines only through the rack level.
        assert!(model.aggregate_arc(&state, CLUSTER_AGG, m0).is_none());
        assert!(model.aggregate_arc(&state, CLUSTER_AGG, m4).is_none());
    }

    #[test]
    fn distribution_arcs_are_convex_spread_ladders() {
        let (state, model) = setup();
        let m0 = &state.machines[&0];
        let b = model.aggregate_arc(&state, rack_agg(0), m0).unwrap();
        assert!(b.is_convex());
        assert_eq!(b.total_capacity(), 2, "machine capacity preserved");
        assert_eq!(b.segments()[0].cost, 0, "first slot free");
        assert_eq!(
            b.segments().last().unwrap().cost,
            QuincyConfig::default().convex_spread_cost,
            "second slot pays the spread premium"
        );
        // The premium stays tie-break-sized: far below any fetch cost.
        assert!(b.segments().last().unwrap().cost < QuincyConfig::default().cost_per_gb_in_rack);
    }

    #[test]
    fn zero_premium_restores_uniform_arcs() {
        let (state, mut model) = setup();
        model.config.convex_spread_cost = 0;
        let m0 = &state.machines[&0];
        let b = model.aggregate_arc(&state, rack_agg(0), m0).unwrap();
        assert_eq!(b.segments().len(), 1);
        assert_eq!(b.segments()[0].capacity, 2);
        assert_eq!(b.segments()[0].cost, 0);
    }

    #[test]
    fn cluster_aggregate_fans_out_to_racks_with_subtree_capacity() {
        let (state, model) = setup();
        let children = model.aggregate_to_aggregate(&state, CLUSTER_AGG);
        assert_eq!(children.len(), 2, "two racks of three machines");
        for (agg, bundle) in &children {
            assert_ne!(*agg, CLUSTER_AGG);
            assert!(bundle.is_convex());
            assert_eq!(bundle.total_capacity(), 6, "3 machines × 2 slots per rack");
            assert_eq!(
                bundle.segments()[0].cost,
                0,
                "fallback fetch priced on the task→X arc, not here"
            );
        }
        // Rack aggregates are EC→EC leaves.
        assert!(model.aggregate_to_aggregate(&state, rack_agg(0)).is_empty());
    }

    #[test]
    fn wait_time_raises_unscheduled_cost() {
        let (mut state, model) = setup();
        let t = make_task(&mut state, 1, vec![0]);
        let before = model.task_unscheduled_cost(&state, &t);
        state.now = 30 * 1_000_000;
        let after = model.task_unscheduled_cost(&state, &t);
        assert_eq!(
            after - before,
            30 * QuincyConfig::default().wait_cost_per_sec
        );
    }
}
