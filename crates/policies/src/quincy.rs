//! The Quincy policy (Fig 6b): locality-oriented batch scheduling.
//!
//! Quincy's original policy [22, §4.2] uses rack aggregators `R_r` and a
//! cluster aggregator `X` to express data locality: tasks get low-cost
//! preference arcs to machines and racks holding at least a threshold
//! fraction of their input data, and fall back to scheduling anywhere via
//! `X`. Costs approximate the bytes that would have to be fetched remotely;
//! the unscheduled cost grows with wait time so starving tasks eventually
//! win contended slots.
//!
//! The preference threshold (paper default 14 % of input data local; Fig 15
//! explores 2 %) controls the number of preference arcs and hence the
//! graph's size — the knob that separates Firmament from Quincy at scale.

use crate::policy::{GraphBase, SchedulingPolicy};
use crate::PolicyError;
use firmament_cluster::{ClusterEvent, ClusterState, RackId, Task, TaskState};
use firmament_flow::{NodeId, NodeKind};
use std::collections::HashMap;

/// Tuning parameters for the Quincy policy.
#[derive(Debug, Clone)]
pub struct QuincyConfig {
    /// Fraction of a task's input that must be on a machine for it to get a
    /// machine preference arc (paper: 0.14; Fig 15 also uses 0.02).
    pub machine_pref_threshold: f64,
    /// Fraction of input in a rack for a rack preference arc.
    pub rack_pref_threshold: f64,
    /// Maximum preference arcs per task (Quincy capped at ~10).
    pub max_prefs_per_task: usize,
    /// Cost units per GB fetched across racks.
    pub cost_per_gb_cross_rack: i64,
    /// Cost units per GB fetched within a rack.
    pub cost_per_gb_in_rack: i64,
    /// Base unscheduled cost and its growth per second of waiting.
    pub wait_cost_per_sec: i64,
    /// Cost offset that makes leaving a task unscheduled expensive.
    pub base_unscheduled_cost: i64,
}

impl Default for QuincyConfig {
    fn default() -> Self {
        QuincyConfig {
            machine_pref_threshold: 0.14,
            rack_pref_threshold: 0.14,
            max_prefs_per_task: 10,
            cost_per_gb_cross_rack: 100,
            cost_per_gb_in_rack: 50,
            wait_cost_per_sec: 50,
            base_unscheduled_cost: 20_000,
        }
    }
}

/// The Quincy scheduling policy.
#[derive(Debug)]
pub struct QuincyPolicy {
    base: GraphBase,
    /// Policy tuning; mutable so experiments can sweep the thresholds.
    pub config: QuincyConfig,
    cluster_agg: NodeId,
    rack_nodes: HashMap<RackId, NodeId>,
}

impl QuincyPolicy {
    /// Creates the policy with the given configuration.
    pub fn new(config: QuincyConfig) -> Self {
        let mut base = GraphBase::new();
        let cluster_agg = base.graph.add_node(NodeKind::ClusterAggregator, 0);
        QuincyPolicy {
            base,
            config,
            cluster_agg,
            rack_nodes: HashMap::new(),
        }
    }

    /// The cluster aggregator node `X`.
    pub fn cluster_aggregator(&self) -> NodeId {
        self.cluster_agg
    }

    /// The rack aggregator for `rack`, if it exists.
    pub fn rack_node(&self, rack: RackId) -> Option<NodeId> {
        self.rack_nodes.get(&rack).copied()
    }

    fn ensure_rack(&mut self, rack: RackId) -> Result<NodeId, PolicyError> {
        if let Some(&n) = self.rack_nodes.get(&rack) {
            return Ok(n);
        }
        let n = self.base.graph.add_node(NodeKind::RackAggregator { rack }, 0);
        self.rack_nodes.insert(rack, n);
        Ok(n)
    }

    /// Cost of running `task` with `local_fraction` of its input on the
    /// target (cross-rack fetch for the remainder).
    fn fetch_cost(&self, task: &Task, local_fraction: f64, in_rack: bool) -> i64 {
        let remote_gb = (1.0 - local_fraction).max(0.0) * task.input_bytes as f64 / 1e9;
        let per_gb = if in_rack {
            self.config.cost_per_gb_in_rack
        } else {
            self.config.cost_per_gb_cross_rack
        };
        (remote_gb * per_gb as f64).round() as i64
    }

    /// Builds the waiting-task arc set: preference arcs to machines/racks
    /// above the threshold, a fallback arc to `X`, and the unscheduled arc
    /// (which [`GraphBase::add_task`] already created).
    fn add_waiting_arcs(&mut self, state: &ClusterState, task: &Task) -> Result<(), PolicyError> {
        let t = self
            .base
            .task_node(task.id)
            .ok_or(PolicyError::UnknownTask(task.id))?;
        // Worst case: everything fetched cross-rack.
        let x_cost = self.fetch_cost(task, 0.0, false) + 1;
        self.base.graph.add_arc(t, self.cluster_agg, 1, x_cost)?;
        let mut budget = self.config.max_prefs_per_task;
        let machine_prefs = state
            .blocks
            .machines_above_threshold(&task.input_blocks, self.config.machine_pref_threshold);
        for (m, frac) in machine_prefs {
            if budget == 0 {
                break;
            }
            if let Some(mn) = self.base.machine_node(m) {
                let cost = self.fetch_cost(task, frac, true);
                self.base.graph.add_arc(t, mn, 1, cost)?;
                budget -= 1;
            }
        }
        let rack_prefs = state
            .blocks
            .racks_above_threshold(&task.input_blocks, self.config.rack_pref_threshold);
        for (r, frac) in rack_prefs {
            if budget == 0 {
                break;
            }
            if let Some(rn) = self.rack_nodes.get(&r).copied() {
                // The non-rack-local remainder crosses racks; the
                // rack-local part still pays a cheap in-rack fetch.
                let cost = self.fetch_cost(task, frac, false)
                    + self.fetch_cost(task, 1.0 - frac, true) / 2;
                self.base.graph.add_arc(t, rn, 1, cost.max(1))?;
                budget -= 1;
            }
        }
        Ok(())
    }
}

impl SchedulingPolicy for QuincyPolicy {
    fn name(&self) -> &'static str {
        "quincy"
    }

    fn base(&self) -> &GraphBase {
        &self.base
    }

    fn base_mut(&mut self) -> &mut GraphBase {
        &mut self.base
    }

    fn apply_event(
        &mut self,
        state: &ClusterState,
        event: &ClusterEvent,
    ) -> Result<(), PolicyError> {
        match event {
            ClusterEvent::Tick { .. } => {}
            ClusterEvent::MachineAdded { machine } => {
                let m = self.base.add_machine(machine.id, machine.slots as i64)?;
                let r = self.ensure_rack(machine.rack)?;
                self.base.graph.add_arc(r, m, machine.slots as i64, 0)?;
                self.base
                    .graph
                    .add_arc(self.cluster_agg, m, machine.slots as i64, 0)?;
            }
            ClusterEvent::MachineRemoved { machine, .. } => {
                self.base.remove_machine(*machine)?;
                // Displaced tasks wait again: rebuild their preference and
                // fallback arcs (their running arc died with the machine).
                let displaced: Vec<Task> = state
                    .waiting_tasks()
                    .filter(|t| {
                        self.base
                            .task_node(t.id)
                            .map(|n| self.base.find_arc(n, self.cluster_agg).is_none())
                            .unwrap_or(false)
                    })
                    .cloned()
                    .collect();
                for t in displaced {
                    self.add_waiting_arcs(state, &t)?;
                }
            }
            ClusterEvent::JobSubmitted { job, tasks } => {
                for task in tasks {
                    self.base.add_task(task.id, job.id, self.config.base_unscheduled_cost)?;
                    self.add_waiting_arcs(state, task)?;
                }
            }
            ClusterEvent::TaskPlaced { task, machine, .. } => {
                // Quincy keeps exactly two arcs for a running task: the arc
                // to its machine (cost 0: data already local) and the
                // preemption arc to U_j.
                let t = self
                    .base
                    .task_node(*task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let m = self
                    .base
                    .machine_node(*machine)
                    .ok_or(PolicyError::UnknownMachine(*machine))?;
                let job = state.tasks[task].job;
                let u = self.base.unsched_nodes[&job];
                self.base.retain_out_arcs(t, move |_, dst| dst == u)?;
                self.base.graph.add_arc(t, m, 1, 0)?;
            }
            ClusterEvent::TaskPreempted { task, .. } => {
                let t = self
                    .base
                    .task_node(*task)
                    .ok_or(PolicyError::UnknownTask(*task))?;
                let job = state.tasks[task].job;
                let u = self.base.unsched_nodes[&job];
                self.base.retain_out_arcs(t, move |_, dst| dst == u)?;
                let task_data = state.tasks[task].clone();
                self.add_waiting_arcs(state, &task_data)?;
            }
            ClusterEvent::TaskCompleted { task, .. } => {
                let job = state.tasks[task].job;
                self.base.remove_task(*task, job)?;
            }
        }
        Ok(())
    }

    fn refresh_costs(&mut self, state: &ClusterState) -> Result<(), PolicyError> {
        // Unscheduled costs grow with wait time (the Quincy trade-off
        // between wait time and data locality).
        for t in state.tasks.values() {
            if matches!(t.state, TaskState::Waiting | TaskState::Preempted) {
                if let Some(n) = self.base.task_node(t.id) {
                    if let Some(&u) = self.base.unsched_nodes.get(&t.job) {
                        if let Some(a) = self.base.find_arc(n, u) {
                            let wait_sec = (state.now.saturating_sub(t.submit_time)) / 1_000_000;
                            let cost = self.config.base_unscheduled_cost
                                + self.config.wait_cost_per_sec * wait_sec as i64;
                            self.base.graph.set_arc_cost(a, cost)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::{ClusterState, Job, JobClass, Task, TopologySpec};

    fn setup() -> (ClusterState, QuincyPolicy) {
        let state = ClusterState::with_topology(&TopologySpec {
            machines: 6,
            machines_per_rack: 3,
            slots_per_machine: 2,
        });
        let mut policy = QuincyPolicy::new(QuincyConfig::default());
        for m in state.machines.values() {
            policy
                .apply_event(&state, &ClusterEvent::MachineAdded { machine: m.clone() })
                .unwrap();
        }
        (state, policy)
    }

    fn make_task(state: &mut ClusterState, id: u64, holders: Vec<u64>) -> Task {
        let mut t = Task::new(id, 0, state.now, 4_000_000);
        let b = state.blocks.place_block(holders);
        t.input_blocks = vec![b];
        t.input_bytes = 2_000_000_000; // 2 GB
        t
    }

    fn submit(state: &mut ClusterState, policy: &mut QuincyPolicy, tasks: Vec<Task>) {
        let job = Job::new(0, JobClass::Batch, 0, state.now);
        let ev = ClusterEvent::JobSubmitted { job, tasks };
        state.apply(&ev);
        policy.apply_event(state, &ev).unwrap();
    }

    #[test]
    fn rack_aggregators_created() {
        let (_, policy) = setup();
        assert_eq!(policy.rack_nodes.len(), 2);
        assert!(policy.rack_node(0).is_some());
        assert!(policy.rack_node(1).is_some());
    }

    #[test]
    fn preference_arcs_follow_locality() {
        let (mut state, mut policy) = setup();
        let t = make_task(&mut state, 1, vec![0, 1, 4]);
        submit(&mut state, &mut policy, vec![t]);
        let tn = policy.base().task_node(1).unwrap();
        let g = &policy.base().graph;
        let dsts: Vec<NodeKind> = g
            .adj(tn)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .map(|a| g.kind(g.dst(a)))
            .collect();
        // Unscheduled + X + machine prefs (0, 1, 4) + rack prefs (0, 1).
        assert!(dsts.iter().any(|k| k.is_unscheduled()));
        assert!(dsts
            .iter()
            .any(|k| matches!(k, NodeKind::ClusterAggregator)));
        let machine_prefs = dsts.iter().filter(|k| k.is_machine()).count();
        assert_eq!(machine_prefs, 3);
        let rack_prefs = dsts
            .iter()
            .filter(|k| matches!(k, NodeKind::RackAggregator { .. }))
            .count();
        assert_eq!(rack_prefs, 2);
    }

    #[test]
    fn local_machine_is_cheapest() {
        let (mut state, mut policy) = setup();
        let t = make_task(&mut state, 1, vec![2, 2, 2]); // all data on machine 2
        submit(&mut state, &mut policy, vec![t]);
        let tn = policy.base().task_node(1).unwrap();
        let g = &policy.base().graph;
        let mut machine_cost = None;
        let mut x_cost = None;
        for &a in g.adj(tn) {
            if !a.is_forward() {
                continue;
            }
            match g.kind(g.dst(a)) {
                NodeKind::Machine { machine: 2 } => machine_cost = Some(g.cost(a)),
                NodeKind::ClusterAggregator => x_cost = Some(g.cost(a)),
                _ => {}
            }
        }
        assert_eq!(machine_cost, Some(0), "fully local data costs nothing");
        assert!(x_cost.unwrap() > 0, "cluster fallback pays full fetch");
    }

    #[test]
    fn pref_arc_budget_respected() {
        let (mut state, mut policy) = setup();
        policy.config.max_prefs_per_task = 2;
        let t = make_task(&mut state, 1, vec![0, 1, 2]);
        submit(&mut state, &mut policy, vec![t]);
        let tn = policy.base().task_node(1).unwrap();
        let g = &policy.base().graph;
        let prefs = g
            .adj(tn)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .filter(|&a| {
                matches!(
                    g.kind(g.dst(a)),
                    NodeKind::Machine { .. } | NodeKind::RackAggregator { .. }
                )
            })
            .count();
        assert!(prefs <= 2);
    }

    #[test]
    fn lower_threshold_creates_more_arcs() {
        let count_arcs = |threshold: f64| {
            let (mut state, mut policy) = setup();
            policy.config.machine_pref_threshold = threshold;
            policy.config.rack_pref_threshold = threshold;
            policy.config.max_prefs_per_task = 100;
            // Input spread thinly across many machines.
            let mut t = Task::new(1, 0, 0, 1_000_000);
            for m in 0..6u64 {
                let b = state.blocks.place_block(vec![m]);
                t.input_blocks.push(b);
            }
            t.input_bytes = 6_000_000_000;
            submit(&mut state, &mut policy, vec![t]);
            policy.base().graph.arc_count()
        };
        // Each machine holds 1/6 ≈ 0.167 of the input.
        let high = count_arcs(0.5); // no machine qualifies
        let low = count_arcs(0.02); // every machine qualifies
        assert!(
            low > high,
            "2% threshold must create more arcs than 50% ({low} vs {high})"
        );
    }

    #[test]
    fn running_task_keeps_two_arcs() {
        let (mut state, mut policy) = setup();
        let t = make_task(&mut state, 1, vec![0]);
        submit(&mut state, &mut policy, vec![t]);
        let ev = ClusterEvent::TaskPlaced {
            task: 1,
            machine: 0,
            now: 50,
        };
        state.apply(&ev);
        policy.apply_event(&state, &ev).unwrap();
        let tn = policy.base().task_node(1).unwrap();
        let g = &policy.base().graph;
        let out = g
            .adj(tn)
            .iter()
            .copied()
            .filter(|&a| a.is_forward())
            .count();
        assert_eq!(out, 2);
    }

    #[test]
    fn wait_time_raises_unscheduled_cost() {
        let (mut state, mut policy) = setup();
        let t = make_task(&mut state, 1, vec![0]);
        submit(&mut state, &mut policy, vec![t]);
        policy.refresh_costs(&state).unwrap();
        let tn = policy.base().task_node(1).unwrap();
        let u = policy.base().unsched_nodes[&0];
        let a = policy.base().find_arc(tn, u).unwrap();
        let before = policy.base().graph.cost(a);
        state.apply(&ClusterEvent::Tick {
            now: 30 * 1_000_000,
        });
        policy.refresh_costs(&state).unwrap();
        let after = policy.base().graph.cost(a);
        assert!(after > before, "waiting must raise the unscheduled cost");
        assert_eq!(
            after - before,
            30 * QuincyConfig::default().wait_cost_per_sec
        );
    }
}
