//! Sampling distributions for synthetic workload generation.
//!
//! Implemented in-crate on top of the deterministic
//! [`XorShift64`] generator so traces
//! are reproducible across platforms without extra dependencies.

use firmament_flow::testgen::XorShift64;

/// Samples an exponential distribution with the given mean.
pub fn exponential(rng: &mut XorShift64, mean: f64) -> f64 {
    let u = rng.unit_f64().max(1e-12);
    -mean * u.ln()
}

/// Samples a log-normal distribution parameterized by its *median*
/// (`exp(μ)`) and shape `sigma`, via the Box–Muller transform.
pub fn log_normal(rng: &mut XorShift64, median: f64, sigma: f64) -> f64 {
    let z = standard_normal(rng);
    median * (sigma * z).exp()
}

/// Samples a standard normal via Box–Muller.
pub fn standard_normal(rng: &mut XorShift64) -> f64 {
    let u1 = rng.unit_f64().max(1e-12);
    let u2 = rng.unit_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a bounded Pareto distribution on `[lo, hi]` with tail index
/// `alpha`, via inverse-CDF.
pub fn bounded_pareto(rng: &mut XorShift64, alpha: f64, lo: f64, hi: f64) -> f64 {
    let u = rng.unit_f64();
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    ((-(u * (ha - la) - ha) / (ha * la)).powf(-1.0 / alpha)).clamp(lo, hi)
}

/// Samples a uniform value in `[lo, hi)`.
pub fn uniform(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.unit_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> XorShift64 {
        XorShift64::new(20260608)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn log_normal_median_converges() {
        let mut r = rng();
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 420.0, 1.68)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        assert!(
            (median / 420.0 - 1.0).abs() < 0.1,
            "median {median} (expected ≈420)"
        );
        // Heavy tail: p99 must far exceed the median.
        let p99 = xs[(n as f64 * 0.99) as usize];
        assert!(p99 > 10.0 * median, "p99 {p99} vs median {median}");
    }

    #[test]
    fn bounded_pareto_within_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = bounded_pareto(&mut r, 1.1, 1.0, 20_000.0);
            assert!((1.0..=20_000.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // For α = 0.7 on [1, 20000], P(X > 1000) ≈ 0.8% analytically.
        let mut r = rng();
        let n = 50_000;
        let big = (0..n)
            .filter(|_| bounded_pareto(&mut r, 0.7, 1.0, 20_000.0) > 1000.0)
            .count();
        let frac = big as f64 / n as f64;
        assert!(
            (0.004..0.02).contains(&frac),
            "tail fraction {frac}, expected ≈0.008"
        );
    }

    #[test]
    fn uniform_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = uniform(&mut r, 3.0, 7.0);
            assert!((3.0..7.0).contains(&x));
        }
    }
}
