//! The discrete-event cluster simulator ("Fauxmaster"-style, §7.1).
//!
//! Like the paper's simulator, this driver runs Firmament's *real* code and
//! scheduling logic against simulated machines: the MCMF solver executes
//! for real and its measured wall-clock runtime is charged to the virtual
//! clock, reproducing the Fig 2b semantics — while the solver runs, new
//! events accumulate and are only considered by the *next* run, so task
//! placement latency includes solver wait time.
//!
//! Queue-based baseline schedulers (Fig 2a) are driven task-by-task with a
//! fixed per-decision latency instead.

use crate::metrics::Samples;
use crate::trace::{GoogleTraceGenerator, JobArrival, TraceSpec};
use firmament_baselines::QueueScheduler;
use firmament_cluster::{
    ClusterEvent, ClusterState, JobClass, TaskId, TaskState, Time, TopologySpec,
};
use firmament_core::{Firmament, SchedulingAction};
use firmament_mcmf::AlgorithmKind;
use firmament_policies::CostModel;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster topology.
    pub topology: TopologySpec,
    /// Workload generation parameters.
    pub trace: TraceSpec,
    /// Simulated duration after warmup, in seconds.
    pub duration_s: f64,
    /// Multiplier applied to measured solver runtime when charging the
    /// virtual clock (1.0 = faithful; lower values model faster hardware).
    pub runtime_scale: f64,
    /// Per-task decision latency of queue-based schedulers, in µs.
    pub queue_task_latency_us: u64,
    /// Pre-populate the cluster to the target utilization before measuring.
    pub warmup: bool,
    /// Mean time between machine failures across the whole cluster, in
    /// seconds (0 disables failure injection). A failed machine loses its
    /// tasks (they requeue) and rejoins after `repair_s`.
    pub mtbf_s: f64,
    /// Machine repair time in seconds.
    pub repair_s: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            topology: TopologySpec {
                machines: 100,
                machines_per_rack: 40,
                slots_per_machine: 12,
            },
            trace: TraceSpec::default(),
            duration_s: 60.0,
            runtime_scale: 1.0,
            queue_task_latency_us: 1_000,
            warmup: true,
            mtbf_s: 0.0,
            repair_s: 5.0,
        }
    }
}

/// Aggregated simulation results.
#[derive(Debug, Default)]
pub struct SimReport {
    /// Per-task placement latency (submission → placement), seconds.
    pub placement_latency: Samples,
    /// Per-round solver algorithm runtime, seconds.
    pub algorithm_runtime: Samples,
    /// Batch task response times (submission → completion), seconds.
    pub task_response: Samples,
    /// Batch job response times (submission → last task completion),
    /// seconds.
    pub job_response: Samples,
    /// `(virtual time s, algorithm runtime s)` per round, for timelines
    /// (Fig 16).
    pub runtime_timeline: Vec<(f64, f64)>,
    /// Tasks placed at least once.
    pub placed_tasks: u64,
    /// Batch tasks that completed.
    pub completed_tasks: u64,
    /// Preemption actions applied.
    pub preemptions: u64,
    /// Scheduling rounds run (flow scheduler only).
    pub rounds: u64,
    /// Wins per algorithm in the speculative race.
    pub algorithm_wins: HashMap<String, u64>,
    /// Slot utilization at the end of the run.
    pub final_utilization: f64,
}

enum EventKind {
    Arrival(Box<JobArrival>),
    MachineFailure,
    MachineRepair {
        machine: firmament_cluster::Machine,
    },
    Completion {
        task: TaskId,
        placed_at: Time,
    },
    SolverDone {
        actions: Vec<SchedulingAction>,
        runtime_s: f64,
        winner: AlgorithmKind,
    },
}

/// Runs the simulation with Firmament (flow-based scheduling).
pub fn run_flow_sim<C: CostModel>(config: &SimConfig, mut firmament: Firmament<C>) -> SimReport {
    let mut sim = Sim::new(config);
    // Register machines with the policy.
    let mut machines: Vec<_> = sim.state.machines.values().cloned().collect();
    machines.sort_by_key(|m| m.id);
    for m in machines {
        firmament
            .handle_event(&sim.state, &ClusterEvent::MachineAdded { machine: m })
            .expect("machine registration");
    }
    let mut solver_busy = false;
    let mut pending_changes = sim.bootstrap(|state, ev| {
        firmament.handle_event(state, ev).expect("policy event");
    });
    if pending_changes {
        // Schedule the warmup workload immediately at t = 0.
        let outcome = firmament.schedule(&sim.state).expect("solver");
        let runtime_s = outcome.algorithm_runtime.as_secs_f64() * sim.runtime_scale;
        let done_at = ((runtime_s * 1e6) as Time).max(1);
        sim.push(
            done_at,
            EventKind::SolverDone {
                actions: outcome.actions,
                runtime_s: outcome.algorithm_runtime.as_secs_f64(),
                winner: outcome.winner,
            },
        );
        solver_busy = true;
        pending_changes = false;
    }

    while let Some((now, kind)) = sim.pop() {
        match kind {
            EventKind::Arrival(a) => {
                sim.apply_arrival(&a, |state, ev| {
                    firmament.handle_event(state, ev).expect("policy event");
                });
                pending_changes = true;
            }
            EventKind::Completion { task, placed_at } => {
                if sim.complete_if_current(task, placed_at, |state, ev| {
                    firmament.handle_event(state, ev).expect("policy event");
                }) {
                    pending_changes = true;
                }
            }
            EventKind::MachineFailure => {
                if sim.fail_random_machine(|state, ev| {
                    firmament.handle_event(state, ev).expect("policy event");
                }) {
                    pending_changes = true;
                }
            }
            EventKind::MachineRepair { machine } => {
                sim.repair_machine(machine, |state, ev| {
                    firmament.handle_event(state, ev).expect("policy event");
                });
                pending_changes = true;
            }
            EventKind::SolverDone {
                actions,
                runtime_s,
                winner,
            } => {
                solver_busy = false;
                sim.report.rounds += 1;
                sim.report.algorithm_runtime.push(runtime_s);
                sim.report
                    .runtime_timeline
                    .push((now as f64 / 1e6, runtime_s));
                *sim.report
                    .algorithm_wins
                    .entry(winner.to_string())
                    .or_insert(0) += 1;
                sim.apply_actions(&actions, |state, ev| {
                    firmament.handle_event(state, ev).expect("policy event");
                });
            }
        }
        if pending_changes && !solver_busy && sim.within_horizon(now) {
            // Start the next solver run on the current snapshot.
            let outcome = firmament.schedule(&sim.state).expect("solver");
            let runtime_s = outcome.algorithm_runtime.as_secs_f64() * sim.runtime_scale;
            let done_at = now + ((runtime_s * 1e6) as Time).max(1);
            sim.push(
                done_at,
                EventKind::SolverDone {
                    actions: outcome.actions,
                    runtime_s: outcome.algorithm_runtime.as_secs_f64(),
                    winner: outcome.winner,
                },
            );
            solver_busy = true;
            pending_changes = false;
        }
    }
    sim.finish()
}

/// Runs the simulation with a queue-based baseline scheduler.
pub fn run_queue_sim(config: &SimConfig, mut scheduler: Box<dyn QueueScheduler>) -> SimReport {
    let mut sim = Sim::new(config);
    let mut wait_queue: VecDeque<TaskId> = VecDeque::new();
    let decision_us = config.queue_task_latency_us;
    let mut place_now = |sim: &mut Sim, queue: &mut VecDeque<TaskId>, now: Time| {
        // Try to place as many queued tasks as fit, task by task.
        let mut requeue = VecDeque::new();
        while let Some(task) = queue.pop_front() {
            let Some(t) = sim.state.tasks.get(&task) else {
                continue;
            };
            if !matches!(t.state, TaskState::Waiting | TaskState::Preempted) {
                continue;
            }
            let t = t.clone();
            match scheduler.place(&sim.state, &t) {
                Some(machine) => {
                    let at = now + decision_us;
                    sim.place_task(task, machine, at, |_, _| {});
                }
                None => requeue.push_back(task),
            }
        }
        *queue = requeue;
    };

    let pending = sim.bootstrap(|_, _| {});
    if pending {
        let mut all: VecDeque<TaskId> = sim
            .state
            .waiting_tasks()
            .map(|t| t.id)
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        let now = sim.state.now;
        place_now(&mut sim, &mut all, now);
        wait_queue = all;
    }

    while let Some((now, kind)) = sim.pop() {
        match kind {
            EventKind::Arrival(a) => {
                sim.apply_arrival(&a, |_, _| {});
                for t in &a.tasks {
                    wait_queue.push_back(t.id);
                }
                place_now(&mut sim, &mut wait_queue, now);
            }
            EventKind::Completion { task, placed_at } => {
                if sim.complete_if_current(task, placed_at, |_, _| {}) {
                    place_now(&mut sim, &mut wait_queue, now);
                }
            }
            EventKind::MachineFailure => {
                if sim.fail_random_machine(|_, _| {}) {
                    // Displaced tasks rejoin the wait queue.
                    let waiting: Vec<TaskId> = sim
                        .state
                        .waiting_tasks()
                        .map(|t| t.id)
                        .filter(|t| !wait_queue.contains(t))
                        .collect();
                    wait_queue.extend(waiting);
                }
            }
            EventKind::MachineRepair { machine } => {
                sim.repair_machine(machine, |_, _| {});
                place_now(&mut sim, &mut wait_queue, now);
            }
            EventKind::SolverDone { .. } => unreachable!("queue sims run no solver"),
        }
    }
    sim.finish()
}

/// Shared simulation plumbing.
struct Sim {
    state: ClusterState,
    generator: GoogleTraceGenerator,
    fault_rng: firmament_flow::testgen::XorShift64,
    mtbf_us: f64,
    repair_us: u64,
    pub failures_injected: u64,
    events: BinaryHeap<Reverse<(Time, u64)>>,
    payloads: HashMap<(Time, u64), EventKind>,
    seq: u64,
    horizon: Time,
    runtime_scale: f64,
    warmup: bool,
    job_remaining: HashMap<u64, usize>,
    report: SimReport,
}

impl Sim {
    fn new(config: &SimConfig) -> Self {
        let state = ClusterState::with_topology(&config.topology);
        let generator = GoogleTraceGenerator::new(config.trace.clone());
        Sim {
            state,
            generator,
            fault_rng: firmament_flow::testgen::XorShift64::new(config.trace.seed ^ 0xFA17),
            mtbf_us: config.mtbf_s * 1e6,
            repair_us: (config.repair_s * 1e6) as Time,
            failures_injected: 0,
            events: BinaryHeap::new(),
            payloads: HashMap::new(),
            seq: 0,
            horizon: (config.duration_s * 1e6) as Time,
            runtime_scale: config.runtime_scale,
            warmup: config.warmup,
            job_remaining: HashMap::new(),
            report: SimReport::default(),
        }
    }

    fn within_horizon(&self, now: Time) -> bool {
        now <= self.horizon
    }

    fn push(&mut self, at: Time, kind: EventKind) {
        let key = (at, self.seq);
        self.seq += 1;
        self.events.push(Reverse(key));
        self.payloads.insert(key, kind);
    }

    fn pop(&mut self) -> Option<(Time, EventKind)> {
        let Reverse(key) = self.events.pop()?;
        let kind = self.payloads.remove(&key).expect("payload exists");
        self.state.now = self.state.now.max(key.0);
        Some((key.0, kind))
    }

    /// Seeds the warmup workload and the first arrival; returns whether any
    /// work is pending.
    fn bootstrap(&mut self, mut on_event: impl FnMut(&ClusterState, &ClusterEvent)) -> bool {
        let mut pending = false;
        if self.warmup {
            let mut state = std::mem::take(&mut self.state);
            let warm = self.generator.warmup(&mut state);
            self.state = state;
            for a in warm {
                self.submit(&a, &mut on_event);
                pending = true;
            }
        }
        let mut state = std::mem::take(&mut self.state);
        let first = self.generator.next_arrival(&mut state);
        self.state = state;
        if first.time <= self.horizon {
            self.push(first.time, EventKind::Arrival(Box::new(first)));
        }
        if self.mtbf_us > 0.0 {
            let at = (crate::distributions::exponential(&mut self.fault_rng, self.mtbf_us)) as Time;
            if at <= self.horizon {
                self.push(at, EventKind::MachineFailure);
            }
        }
        pending
    }

    /// Fails a uniformly random machine (fail-stop: its tasks requeue with
    /// progress lost) and schedules its repair plus the next failure.
    /// Returns `false` if no machine was available to fail.
    fn fail_random_machine(
        &mut self,
        mut on_event: impl FnMut(&ClusterState, &ClusterEvent),
    ) -> bool {
        // Chain the next failure first.
        if self.mtbf_us > 0.0 {
            let at = self.state.now
                + (crate::distributions::exponential(&mut self.fault_rng, self.mtbf_us)) as Time;
            if at <= self.horizon {
                self.push(at, EventKind::MachineFailure);
            }
        }
        let mut ids: Vec<_> = self.state.machines.keys().copied().collect();
        if ids.len() <= 1 {
            return false;
        }
        ids.sort_unstable();
        let victim = ids[self.fault_rng.below(ids.len() as u64) as usize];
        let machine = self.state.machines[&victim].clone();
        let now = self.state.now;
        let ev = ClusterEvent::MachineRemoved {
            machine: victim,
            now,
        };
        self.state.apply(&ev);
        on_event(&self.state, &ev);
        self.failures_injected += 1;
        let mut repaired = machine;
        repaired.running.clear();
        repaired.background_mbps = 0;
        self.push(
            now + self.repair_us,
            EventKind::MachineRepair { machine: repaired },
        );
        true
    }

    /// Rejoins a repaired machine.
    fn repair_machine(
        &mut self,
        machine: firmament_cluster::Machine,
        mut on_event: impl FnMut(&ClusterState, &ClusterEvent),
    ) {
        if self.state.machines.contains_key(&machine.id) {
            return;
        }
        let ev = ClusterEvent::MachineAdded { machine };
        self.state.apply(&ev);
        on_event(&self.state, &ev);
    }

    /// Submits a job without scheduling the next arrival (used for warmup).
    fn submit(
        &mut self,
        arrival: &JobArrival,
        mut on_event: impl FnMut(&ClusterState, &ClusterEvent),
    ) {
        let ev = ClusterEvent::JobSubmitted {
            job: arrival.job.clone(),
            tasks: arrival.tasks.clone(),
        };
        self.state.apply(&ev);
        on_event(&self.state, &ev);
        if arrival.job.class == JobClass::Batch {
            self.job_remaining
                .insert(arrival.job.id, arrival.tasks.len());
        }
    }

    /// Submits a job and chains the next trace arrival.
    fn apply_arrival(
        &mut self,
        arrival: &JobArrival,
        on_event: impl FnMut(&ClusterState, &ClusterEvent),
    ) {
        self.submit(arrival, on_event);
        let mut state = std::mem::take(&mut self.state);
        let next = self.generator.next_arrival(&mut state);
        self.state = state;
        if next.time <= self.horizon {
            self.push(next.time, EventKind::Arrival(Box::new(next)));
        }
    }

    /// Applies solver actions, validating them against current state (the
    /// solver ran on a snapshot; tasks may have finished since).
    fn apply_actions(
        &mut self,
        actions: &[SchedulingAction],
        mut on_event: impl FnMut(&ClusterState, &ClusterEvent),
    ) {
        let now = self.state.now;
        for action in actions {
            match action {
                SchedulingAction::Preempt { task } => {
                    if self
                        .state
                        .tasks
                        .get(task)
                        .map(|t| t.state == TaskState::Running)
                        .unwrap_or(false)
                    {
                        let ev = ClusterEvent::TaskPreempted { task: *task, now };
                        self.state.apply(&ev);
                        on_event(&self.state, &ev);
                        self.report.preemptions += 1;
                    }
                }
                SchedulingAction::Place { task, machine } => {
                    let valid = self
                        .state
                        .tasks
                        .get(task)
                        .map(|t| matches!(t.state, TaskState::Waiting | TaskState::Preempted))
                        .unwrap_or(false)
                        && self
                            .state
                            .machines
                            .get(machine)
                            .map(|m| m.has_free_slot())
                            .unwrap_or(false);
                    if valid {
                        self.place_task(*task, *machine, now, &mut on_event);
                    }
                }
            }
        }
    }

    fn place_task(
        &mut self,
        task: TaskId,
        machine: u64,
        at: Time,
        mut on_event: impl FnMut(&ClusterState, &ClusterEvent),
    ) {
        let first_placement = self.state.tasks[&task].state == TaskState::Waiting
            && self.state.tasks[&task].executed == 0;
        let ev = ClusterEvent::TaskPlaced {
            task,
            machine,
            now: at,
        };
        self.state.apply(&ev);
        on_event(&self.state, &ev);
        self.report.placed_tasks += 1;
        let t = &self.state.tasks[&task];
        if first_placement {
            let latency = (at - t.submit_time) as f64 / 1e6;
            self.report.placement_latency.push(latency);
        }
        if t.duration != Time::MAX {
            let remaining = t.remaining();
            self.push(
                at + remaining,
                EventKind::Completion {
                    task,
                    placed_at: at,
                },
            );
        }
    }

    /// Completes a task if the completion event is not stale (the task was
    /// not preempted/migrated since it was scheduled). Returns `true` if
    /// state changed.
    fn complete_if_current(
        &mut self,
        task: TaskId,
        placed_at: Time,
        mut on_event: impl FnMut(&ClusterState, &ClusterEvent),
    ) -> bool {
        let current = self
            .state
            .tasks
            .get(&task)
            .map(|t| t.state == TaskState::Running && t.placed_at == Some(placed_at))
            .unwrap_or(false);
        if !current {
            return false;
        }
        let now = self.state.now;
        let ev = ClusterEvent::TaskCompleted { task, now };
        self.state.apply(&ev);
        on_event(&self.state, &ev);
        self.report.completed_tasks += 1;
        let t = &self.state.tasks[&task];
        self.report
            .task_response
            .push(t.response_time(now) as f64 / 1e6);
        let job = t.job;
        if let Some(r) = self.job_remaining.get_mut(&job) {
            *r -= 1;
            if *r == 0 {
                self.job_remaining.remove(&job);
                if let Some(j) = self.state.jobs.get(&job) {
                    self.report
                        .job_response
                        .push((now - j.submit_time) as f64 / 1e6);
                }
            }
        }
        true
    }

    fn finish(mut self) -> SimReport {
        self.report.final_utilization = self.state.slot_utilization();
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_baselines::SwarmKitScheduler;
    use firmament_policies::LoadSpreadingCostModel;

    fn small_config() -> SimConfig {
        SimConfig {
            topology: TopologySpec {
                machines: 20,
                machines_per_rack: 20,
                slots_per_machine: 4,
            },
            trace: TraceSpec {
                machines: 20,
                slots_per_machine: 4,
                target_utilization: 0.5,
                service_job_fraction: 0.0,
                median_task_duration_s: 3.0,
                duration_sigma: 0.5,
                speedup: 1.0,
                seed: 77,
                fixed: None,
                job_size_scale: 1.0,
            },
            duration_s: 12.0,
            runtime_scale: 1.0,
            queue_task_latency_us: 500,
            warmup: true,
            mtbf_s: 0.0,
            repair_s: 5.0,
        }
    }

    #[test]
    fn flow_sim_places_and_completes_tasks() {
        let config = small_config();
        let report = run_flow_sim(&config, Firmament::new(LoadSpreadingCostModel::new()));
        assert!(report.rounds > 0, "solver must run");
        assert!(report.placed_tasks > 0, "tasks must be placed");
        assert!(report.completed_tasks > 0, "tasks must complete");
        assert!(!report.placement_latency.is_empty());
        assert!(!report.algorithm_runtime.is_empty());
    }

    #[test]
    fn queue_sim_places_and_completes_tasks() {
        let config = small_config();
        let report = run_queue_sim(&config, Box::new(SwarmKitScheduler));
        assert!(report.placed_tasks > 0);
        assert!(report.completed_tasks > 0);
        assert_eq!(report.rounds, 0, "queue schedulers run no solver");
    }

    #[test]
    fn placement_latency_is_nonnegative_and_bounded() {
        let config = small_config();
        let mut report = run_flow_sim(&config, Firmament::new(LoadSpreadingCostModel::new()));
        let min = report.placement_latency.min();
        let max = report.placement_latency.max();
        assert!(min >= 0.0);
        assert!(
            max < config.duration_s,
            "latency {max}s cannot exceed the sim horizon"
        );
    }

    #[test]
    fn utilization_stays_plausible() {
        let config = small_config();
        let report = run_flow_sim(&config, Firmament::new(LoadSpreadingCostModel::new()));
        assert!(report.final_utilization <= 1.0);
    }

    #[test]
    fn failure_injection_requeues_and_recovers() {
        let mut config = small_config();
        config.mtbf_s = 2.0; // frequent failures
        config.repair_s = 1.0;
        let report = run_flow_sim(&config, Firmament::new(LoadSpreadingCostModel::new()));
        // Work still completes despite churn.
        assert!(report.completed_tasks > 0);
        // Slot accounting stayed sane throughout (placements never exceed
        // submissions times possible re-placements).
        assert!(report.placed_tasks >= report.completed_tasks);
    }

    #[test]
    fn failure_injection_works_for_queue_schedulers() {
        let mut config = small_config();
        config.mtbf_s = 2.0;
        config.repair_s = 1.0;
        let report = run_queue_sim(&config, Box::new(SwarmKitScheduler));
        assert!(report.completed_tasks > 0);
    }

    #[test]
    fn deterministic_given_seed_for_queue_sim() {
        // Queue sims have no wall-clock dependence, so they are exactly
        // reproducible.
        let config = small_config();
        let r1 = run_queue_sim(&config, Box::new(SwarmKitScheduler));
        let r2 = run_queue_sim(&config, Box::new(SwarmKitScheduler));
        assert_eq!(r1.placed_tasks, r2.placed_tasks);
        assert_eq!(r1.completed_tasks, r2.completed_tasks);
    }
}
