//! Discrete-event cluster simulation for Firmament experiments (§7.1).
//!
//! Three pieces:
//!
//! - [`trace`]: a synthetic Google-trace workload generator (heavy-tailed
//!   job sizes, log-normal durations, service/batch classes, block
//!   placement for locality) with a speedup knob (Fig 18);
//! - [`driver`]: the "Fauxmaster"-style simulator that runs Firmament's
//!   real scheduling code against simulated machines, charging measured
//!   solver runtime to the virtual clock (Fig 2b semantics) — and drives
//!   queue-based baselines task-by-task (Fig 2a);
//! - [`testbed`]: a flow-level network-contention model of the paper's
//!   40-machine local cluster for the placement-quality experiment
//!   (Fig 19).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod driver;
pub mod metrics;
pub mod testbed;
pub mod trace;

pub use driver::{run_flow_sim, run_queue_sim, SimConfig, SimReport};
pub use metrics::Samples;
pub use testbed::{run_testbed, TestbedConfig, TestbedScheduler};
pub use trace::{GoogleTraceGenerator, JobArrival, TraceSpec};
