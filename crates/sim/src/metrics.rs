//! Percentile and CDF helpers for experiment reporting.

/// A collection of samples with percentile queries.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The p-th percentile (p in 0..=100), by nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if no samples were recorded.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.values.is_empty(), "no samples");
        self.ensure_sorted();
        let n = self.values.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.values[rank.clamp(1, n) - 1]
    }

    /// Minimum sample.
    pub fn min(&mut self) -> f64 {
        self.percentile(0.0001)
    }

    /// Maximum sample.
    pub fn max(&mut self) -> f64 {
        self.percentile(100.0)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Evenly-spaced CDF points `(value, cumulative_fraction)` for plotting.
    pub fn cdf_points(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.values.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.values.len();
        (1..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
                (self.values[idx], q)
            })
            .collect()
    }

    /// All samples, sorted ascending.
    pub fn sorted_values(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Samples::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.percentile(50.0), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn cdf_points_monotone() {
        let mut s = Samples::new();
        for i in 0..100 {
            s.push(i as f64);
        }
        let pts = s.cdf_points(10);
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_percentile_panics() {
        Samples::new().percentile(50.0);
    }
}
