//! Network-contention testbed simulator (§7.5, Fig 19 substitution).
//!
//! The paper's placement-quality experiment ran on a 40-machine cluster
//! with 10 Gbps full-bisection Ethernet: short batch analytics tasks read
//! 4–8 GB inputs from HDFS while background iperf and nginx traffic loads
//! the network. Task response time is dominated by network contention —
//! which is precisely what the network-aware policy avoids.
//!
//! We reproduce that environment with a flow-level network model: every
//! remote input read is a flow crossing its source's egress link and its
//! destination's ingress link; flows share links max–min fairly
//! (waterfilling), while background traffic occupies a fixed, higher-
//! priority share (the JUMP-style service class of \[20\]). Full-bisection
//! bandwidth means only edge links contend, exactly as on the testbed.

use crate::distributions::{exponential, uniform};
use crate::metrics::Samples;
use firmament_baselines::QueueScheduler;
use firmament_cluster::{
    ClusterEvent, ClusterState, Job, JobClass, MachineId, ResourceVector, Task, TaskId, Time,
    TopologySpec,
};
use firmament_core::{Firmament, SchedulingAction};
use firmament_flow::testgen::XorShift64;
use firmament_policies::NetworkAwareCostModel;
use std::collections::HashMap;

/// One gigabyte, in bytes.
pub const GB: f64 = 1e9;

/// Which scheduler drives the testbed.
pub enum TestbedScheduler {
    /// Firmament with the network-aware policy (the real scheduler code).
    Firmament,
    /// A queue-based baseline.
    Baseline(Box<dyn QueueScheduler>),
    /// Ideal isolation: every task gets the full link (the "Idle" line).
    Idle,
}

/// Testbed configuration.
pub struct TestbedConfig {
    /// Number of machines (paper: 40).
    pub machines: usize,
    /// Concurrent task slots per machine.
    pub slots_per_machine: u32,
    /// Link speed in Mbit/s (paper: 10 Gbps).
    pub link_mbps: u64,
    /// Number of short batch tasks to run.
    pub tasks: usize,
    /// Mean task interarrival time in seconds.
    pub mean_interarrival_s: f64,
    /// Input size range in GB (paper: 4–8 GB).
    pub input_gb: (f64, f64),
    /// Pure compute time range in seconds (paper: tasks take 3.5–5 s on an
    /// idle cluster).
    pub compute_s: (f64, f64),
    /// Enables the Fig 19b background workload: 14 iperf clients at 4 Gbps
    /// and 7 HTTP clients against 3 nginx servers.
    pub background: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            machines: 40,
            slots_per_machine: 4,
            link_mbps: 10_000,
            tasks: 200,
            mean_interarrival_s: 0.35,
            input_gb: (4.0, 8.0),
            compute_s: (3.5, 5.0),
            background: false,
            seed: 1,
        }
    }
}

/// A running transfer: `remaining_mb` megabits from `src`'s egress to
/// `dst`'s ingress.
#[derive(Debug, Clone)]
struct NetFlow {
    task: TaskId,
    src: MachineId,
    dst: MachineId,
    remaining_mbit: f64,
    rate_mbps: f64,
}

/// Runs the testbed experiment and returns task response time samples in
/// seconds.
pub fn run_testbed(config: &TestbedConfig, scheduler: TestbedScheduler) -> Samples {
    let mut rng = XorShift64::new(config.seed);
    let mut state = ClusterState::with_topology(&TopologySpec {
        machines: config.machines,
        machines_per_rack: 20,
        slots_per_machine: config.slots_per_machine,
    });
    // Background reservations (Fig 19b): iperf clients 0..14 stream 4 Gbps
    // each to servers 14..21 (two clients per server); 7 HTTP clients pull
    // 500 Mbps from 3 nginx servers 21..24.
    let mut egress_reserved = vec![0f64; config.machines];
    let mut ingress_reserved = vec![0f64; config.machines];
    if config.background {
        #[allow(clippy::needless_range_loop)] // client index pairs with a derived server index
        for c in 0..14usize.min(config.machines) {
            let server = 14 + (c / 2);
            if server < config.machines {
                egress_reserved[c] += 4_000.0;
                ingress_reserved[server] += 4_000.0;
            }
        }
        for c in 0..7usize {
            let client = (24 + c) % config.machines;
            let server = 21 + (c % 3);
            if server < config.machines {
                egress_reserved[server] += 500.0;
                ingress_reserved[client] += 500.0;
            }
        }
        // Make the load visible to the schedulers (monitoring data).
        for (m, machine) in state.machines.iter_mut() {
            machine.background_mbps =
                (egress_reserved[*m as usize] + ingress_reserved[*m as usize]) as u64;
        }
    }

    let idle = matches!(scheduler, TestbedScheduler::Idle);
    let (mut firmament, mut baseline) = match scheduler {
        TestbedScheduler::Firmament => {
            let mut f = Firmament::new(NetworkAwareCostModel::new());
            let mut machines: Vec<_> = state.machines.values().cloned().collect();
            machines.sort_by_key(|m| m.id);
            for m in machines {
                f.handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
                    .expect("machine registration");
            }
            (Some(f), None)
        }
        TestbedScheduler::Baseline(b) => (None, Some(b)),
        TestbedScheduler::Idle => (None, None),
    };

    let mut responses = Samples::new();
    let mut flows: Vec<NetFlow> = Vec::new();
    // task → (submit_s, compute_end_s, transfer_done).
    let mut running: HashMap<TaskId, (f64, f64, bool)> = HashMap::new();
    let mut now_s = 0.0f64;
    let mut next_arrival_s = 0.0f64;
    let mut submitted = 0usize;
    let mut waiting: Vec<Task> = Vec::new();

    loop {
        // Next event: arrival, flow completion, or compute completion.
        let next_flow_s = flows
            .iter()
            .filter(|f| f.rate_mbps > 0.0)
            .map(|f| now_s + f.remaining_mbit / f.rate_mbps)
            .fold(f64::INFINITY, f64::min);
        let next_compute_s = running
            .iter()
            .filter(|(_, (_, _, transfer_done))| *transfer_done)
            .map(|(_, (_, end, _))| *end)
            .filter(|&e| e > now_s)
            .fold(f64::INFINITY, f64::min);
        let next_arrival = if submitted < config.tasks {
            next_arrival_s
        } else {
            f64::INFINITY
        };
        let next = next_arrival.min(next_flow_s).min(next_compute_s);
        if !next.is_finite() {
            break;
        }
        // Progress all flows to `next`.
        let dt = (next - now_s).max(0.0);
        for f in &mut flows {
            f.remaining_mbit = (f.remaining_mbit - f.rate_mbps * dt).max(0.0);
        }
        now_s = next;
        state.now = (now_s * 1e6) as Time;

        // Handle flow completions.
        let done: Vec<TaskId> = flows
            .iter()
            .filter(|f| f.remaining_mbit <= 1e-6)
            .map(|f| f.task)
            .collect();
        flows.retain(|f| f.remaining_mbit > 1e-6);
        for task in done {
            let finished_now = if let Some((_, compute_end, transfer_done)) = running.get_mut(&task)
            {
                *transfer_done = true;
                *compute_end <= now_s
            } else {
                false
            };
            if finished_now {
                // Compute already finished; the task is done now.
                let submit = running[&task].0;
                finish_task(
                    &mut state,
                    &mut firmament,
                    &mut responses,
                    &mut running,
                    task,
                    submit,
                    now_s,
                );
            }
        }
        // Handle compute completions (transfer already done).
        let compute_done: Vec<TaskId> = running
            .iter()
            .filter(|(_, (_, end, td))| *td && *end <= now_s + 1e-9)
            .map(|(t, _)| *t)
            .collect();
        for task in compute_done {
            let (submit, _, _) = running[&task];
            finish_task(
                &mut state,
                &mut firmament,
                &mut responses,
                &mut running,
                task,
                submit,
                now_s,
            );
        }

        // Handle arrival.
        if submitted < config.tasks && (now_s - next_arrival_s).abs() < 1e-9 {
            let id = submitted as TaskId;
            let compute = uniform(&mut rng, config.compute_s.0, config.compute_s.1);
            let input_bytes = uniform(&mut rng, config.input_gb.0, config.input_gb.1) * GB;
            let mut t = Task::new(id, id, state.now, (compute * 1e6) as Time);
            t.request = ResourceVector::new(2000, 4096, 2_500);
            t.input_bytes = input_bytes as u64;
            // Three HDFS replicas.
            let mut holders = Vec::new();
            while holders.len() < 3 {
                let m = rng.below(config.machines as u64);
                if !holders.contains(&m) {
                    holders.push(m);
                }
            }
            t.input_blocks = vec![state.blocks.place_block(holders)];
            let ev = ClusterEvent::JobSubmitted {
                job: Job::new(id, JobClass::Batch, 0, state.now),
                tasks: vec![t.clone()],
            };
            state.apply(&ev);
            if let Some(f) = firmament.as_mut() {
                f.handle_event(&state, &ev).expect("policy event");
            }
            waiting.push(t);
            submitted += 1;
            next_arrival_s = now_s + exponential(&mut rng, config.mean_interarrival_s);
        }

        // Try to place waiting tasks.
        let mut still_waiting = Vec::new();
        for t in waiting.drain(..) {
            let machine = if idle {
                // Isolation: any machine with a free slot (no contention in
                // this mode anyway).
                state
                    .machines
                    .values()
                    .filter(|m| m.has_free_slot())
                    .map(|m| m.id)
                    .min()
            } else if let Some(f) = firmament.as_mut() {
                let outcome = f.schedule(&state).expect("solver");
                outcome.actions.iter().find_map(|a| match a {
                    SchedulingAction::Place { task, machine } if *task == t.id => Some(*machine),
                    _ => None,
                })
            } else {
                baseline.as_mut().expect("baseline").place(&state, &t)
            };
            match machine {
                Some(m) => {
                    let ev = ClusterEvent::TaskPlaced {
                        task: t.id,
                        machine: m,
                        now: state.now,
                    };
                    state.apply(&ev);
                    if let Some(f) = firmament.as_mut() {
                        f.handle_event(&state, &ev).expect("policy event");
                    }
                    let compute_end = now_s + state.tasks[&t.id].duration as f64 / 1e6;
                    let holders = state.blocks.holders(t.input_blocks[0]).to_vec();
                    let local = holders.contains(&m);
                    if local || idle {
                        // Local read (or isolation): response is bounded by
                        // max(compute, full-rate transfer).
                        let rate = if idle {
                            config.link_mbps as f64
                        } else {
                            f64::INFINITY
                        };
                        let transfer_s = t.input_bytes as f64 * 8.0 / 1e6 / rate;
                        let end = compute_end.max(now_s + transfer_s);
                        running.insert(t.id, (t.submit_time as f64 / 1e6, end, true));
                    } else {
                        // Remote read: pick the least-loaded replica holder
                        // as the source.
                        let src = holders
                            .iter()
                            .copied()
                            .min_by_key(|h| flows.iter().filter(|f| f.src == *h).count())
                            .expect("replicas exist");
                        flows.push(NetFlow {
                            task: t.id,
                            src,
                            dst: m,
                            remaining_mbit: t.input_bytes as f64 * 8.0 / 1e6,
                            rate_mbps: 0.0,
                        });
                        running.insert(t.id, (t.submit_time as f64 / 1e6, compute_end, false));
                    }
                }
                None => still_waiting.push(t),
            }
        }
        waiting = still_waiting;

        // Recompute max–min fair rates (waterfilling over edge links).
        waterfill(
            &mut flows,
            config.machines,
            config.link_mbps as f64,
            &egress_reserved,
            &ingress_reserved,
        );
    }
    responses
}

#[allow(clippy::too_many_arguments)]
fn finish_task(
    state: &mut ClusterState,
    firmament: &mut Option<Firmament<NetworkAwareCostModel>>,
    responses: &mut Samples,
    running: &mut HashMap<TaskId, (f64, f64, bool)>,
    task: TaskId,
    submit_s: f64,
    now_s: f64,
) {
    running.remove(&task);
    let ev = ClusterEvent::TaskCompleted {
        task,
        now: (now_s * 1e6) as Time,
    };
    state.apply(&ev);
    if let Some(f) = firmament.as_mut() {
        f.handle_event(state, &ev).expect("policy event");
    }
    responses.push(now_s - submit_s);
}

/// Max–min fair rate allocation: repeatedly saturate the most contended
/// link and freeze the flows crossing it at its fair share.
fn waterfill(
    flows: &mut [NetFlow],
    machines: usize,
    link_mbps: f64,
    egress_reserved: &[f64],
    ingress_reserved: &[f64],
) {
    let n = flows.len();
    let mut fixed = vec![false; n];
    let mut egress_cap: Vec<f64> = (0..machines)
        .map(|m| (link_mbps - egress_reserved[m]).max(0.0))
        .collect();
    let mut ingress_cap: Vec<f64> = (0..machines)
        .map(|m| (link_mbps - ingress_reserved[m]).max(0.0))
        .collect();
    loop {
        // Count unfixed flows per link.
        let mut egress_count = vec![0usize; machines];
        let mut ingress_count = vec![0usize; machines];
        for (i, f) in flows.iter().enumerate() {
            if !fixed[i] {
                egress_count[f.src as usize] += 1;
                ingress_count[f.dst as usize] += 1;
            }
        }
        // The bottleneck link has the smallest per-flow share.
        let mut best_share = f64::INFINITY;
        for m in 0..machines {
            if egress_count[m] > 0 {
                best_share = best_share.min(egress_cap[m] / egress_count[m] as f64);
            }
            if ingress_count[m] > 0 {
                best_share = best_share.min(ingress_cap[m] / ingress_count[m] as f64);
            }
        }
        if !best_share.is_finite() {
            break;
        }
        // Freeze flows crossing any bottleneck link at `best_share`.
        let mut froze = false;
        for m in 0..machines {
            let egress_bn = egress_count[m] > 0
                && (egress_cap[m] / egress_count[m] as f64 - best_share).abs() < 1e-9;
            let ingress_bn = ingress_count[m] > 0
                && (ingress_cap[m] / ingress_count[m] as f64 - best_share).abs() < 1e-9;
            if !egress_bn && !ingress_bn {
                continue;
            }
            for (i, f) in flows.iter_mut().enumerate() {
                if fixed[i] {
                    continue;
                }
                if (egress_bn && f.src as usize == m) || (ingress_bn && f.dst as usize == m) {
                    f.rate_mbps = best_share;
                    fixed[i] = true;
                    froze = true;
                    egress_cap[f.src as usize] = (egress_cap[f.src as usize] - best_share).max(0.0);
                    ingress_cap[f.dst as usize] =
                        (ingress_cap[f.dst as usize] - best_share).max(0.0);
                }
            }
        }
        if !froze {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_baselines::{SparrowScheduler, SwarmKitScheduler};

    fn quick_config(background: bool) -> TestbedConfig {
        TestbedConfig {
            tasks: 40,
            mean_interarrival_s: 0.3,
            background,
            seed: 9,
            ..TestbedConfig::default()
        }
    }

    #[test]
    fn waterfill_single_bottleneck() {
        let mut flows = vec![
            NetFlow {
                task: 0,
                src: 0,
                dst: 1,
                remaining_mbit: 100.0,
                rate_mbps: 0.0,
            },
            NetFlow {
                task: 1,
                src: 0,
                dst: 2,
                remaining_mbit: 100.0,
                rate_mbps: 0.0,
            },
        ];
        waterfill(&mut flows, 3, 10_000.0, &[0.0; 3], &[0.0; 3]);
        // Both flows share machine 0's egress.
        assert!((flows[0].rate_mbps - 5_000.0).abs() < 1.0);
        assert!((flows[1].rate_mbps - 5_000.0).abs() < 1.0);
    }

    #[test]
    fn waterfill_respects_reservations() {
        let mut flows = vec![NetFlow {
            task: 0,
            src: 0,
            dst: 1,
            remaining_mbit: 100.0,
            rate_mbps: 0.0,
        }];
        let mut egress = vec![0.0; 2];
        egress[0] = 8_000.0; // background eats 8 of 10 Gbps
        waterfill(&mut flows, 2, 10_000.0, &egress, &[0.0; 2]);
        assert!((flows[0].rate_mbps - 2_000.0).abs() < 1.0);
    }

    #[test]
    fn idle_baseline_fastest() {
        let cfg = quick_config(false);
        let mut idle = run_testbed(&cfg, TestbedScheduler::Idle);
        let mut sparrow = run_testbed(
            &cfg,
            TestbedScheduler::Baseline(Box::new(SparrowScheduler::new(3))),
        );
        assert_eq!(idle.len(), cfg.tasks);
        assert_eq!(sparrow.len(), cfg.tasks);
        assert!(
            idle.percentile(99.0) <= sparrow.percentile(99.0) + 1e-9,
            "isolation must not be slower than contended random placement"
        );
    }

    #[test]
    fn firmament_improves_tail_under_background_load() {
        let cfg = quick_config(true);
        let mut firm = run_testbed(&cfg, TestbedScheduler::Firmament);
        let mut swarm = run_testbed(
            &cfg,
            TestbedScheduler::Baseline(Box::new(SwarmKitScheduler)),
        );
        let f99 = firm.percentile(99.0);
        let s99 = swarm.percentile(99.0);
        assert!(
            f99 <= s99,
            "network-aware p99 ({f99:.1}s) must beat SwarmKit ({s99:.1}s)"
        );
    }

    #[test]
    fn all_tasks_eventually_finish() {
        let cfg = quick_config(true);
        let mut r = run_testbed(
            &cfg,
            TestbedScheduler::Baseline(Box::new(SwarmKitScheduler)),
        );
        assert_eq!(r.len(), cfg.tasks);
        assert!(r.min() > 0.0);
    }
}
