//! Synthetic Google-trace workload generation (§7.1 substitution).
//!
//! The paper replays the public 12,500-machine Google trace \[30\], augmented
//! with locality preferences and Omega-style job classification. The trace
//! itself is not redistributable, so this module synthesizes a workload
//! with the same structural properties the solver observes:
//!
//! - Poisson job arrivals sized so the steady state matches the paper
//!   (~150,000 tasks in ~1,800 jobs on 12,500 machines at 90 % of slots);
//! - heavy-tailed job sizes (1.2 % of jobs have >1,000 tasks, some >20,000
//!   — bounded Pareto);
//! - log-normal batch task durations (median ≈7 min with a long tail,
//!   consistent with the 200× speedup yielding a 2.1 s median, §7.4);
//! - long-running service jobs classified by priority (Omega \[32, §2.1\]);
//! - task input sizes derived from runtime using typical industry
//!   distributions \[8\], placed as 3-way-replicated blocks for locality.

use crate::distributions::{bounded_pareto, exponential, log_normal, uniform};
use firmament_cluster::{ClusterState, Job, JobClass, ResourceVector, Task, Time};
use firmament_flow::testgen::XorShift64;

/// Parameters of the synthetic Google-like trace.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Number of machines (the paper's full scale: 12,500).
    pub machines: usize,
    /// Slots per machine (~12 tasks/machine in the steady state).
    pub slots_per_machine: u32,
    /// Target steady-state slot utilization (paper: 0.5–0.97 depending on
    /// the experiment).
    pub target_utilization: f64,
    /// Fraction of *jobs* that are long-running services.
    pub service_job_fraction: f64,
    /// Median batch task duration in seconds.
    pub median_task_duration_s: f64,
    /// Log-normal shape for batch durations.
    pub duration_sigma: f64,
    /// Trace speedup factor (Fig 18): divides durations and interarrivals.
    pub speedup: f64,
    /// RNG seed.
    pub seed: u64,
    /// Overrides the Google-like job model with fixed-size, fixed-duration
    /// jobs (the Fig 17 breaking-point workload: 10-task jobs of short,
    /// identical tasks at 80 % load).
    pub fixed: Option<FixedWorkload>,
    /// Multiplier on sampled job sizes (default 1.0). Scaled-down clusters
    /// set this to `machines / 12_500` so that jobs keep the same size
    /// *relative to the cluster* as in the full-scale trace.
    pub job_size_scale: f64,
}

/// A uniform workload of identical jobs (Fig 17).
#[derive(Debug, Clone, Copy)]
pub struct FixedWorkload {
    /// Tasks per job (Fig 17: 10).
    pub tasks_per_job: usize,
    /// Task duration in seconds.
    pub duration_s: f64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            machines: 1250,
            slots_per_machine: 12,
            target_utilization: 0.9,
            service_job_fraction: 0.1,
            median_task_duration_s: 420.0,
            duration_sigma: 1.68,
            speedup: 1.0,
            seed: 42,
            fixed: None,
            job_size_scale: 1.0,
        }
    }
}

/// A job arrival produced by the generator.
#[derive(Debug, Clone)]
pub struct JobArrival {
    /// Arrival time (µs).
    pub time: Time,
    /// The job.
    pub job: Job,
    /// Its tasks (durations, inputs, and requests filled in).
    pub tasks: Vec<Task>,
}

/// Generates job arrivals with Google-trace-like structure.
#[derive(Debug)]
pub struct GoogleTraceGenerator {
    spec: TraceSpec,
    rng: XorShift64,
    next_job: u64,
    next_task: u64,
    clock_us: f64,
    /// Mean job interarrival time in µs (after speedup).
    interarrival_us: f64,
}

impl GoogleTraceGenerator {
    /// Creates a generator whose arrival rate sustains the target
    /// utilization in the steady state (Little's law over task-seconds).
    pub fn new(spec: TraceSpec) -> Self {
        let slots = (spec.machines as f64) * spec.slots_per_machine as f64;
        // Mean batch duration for a log-normal: median · exp(σ²/2).
        let (mean_dur, mean_tasks_per_job) = match spec.fixed {
            Some(f) => (f.duration_s, f.tasks_per_job as f64),
            None => (
                spec.median_task_duration_s * (spec.duration_sigma.powi(2) / 2.0).exp(),
                (Self::mean_job_size() * spec.job_size_scale).max(1.0),
            ),
        };
        // tasks/s needed: target busy slots ÷ mean task residence time.
        let tasks_per_sec = spec.target_utilization * slots / mean_dur;
        let jobs_per_sec = tasks_per_sec / mean_tasks_per_job;
        let interarrival_us = 1e6 / jobs_per_sec / spec.speedup.max(1e-9);
        GoogleTraceGenerator {
            rng: XorShift64::new(spec.seed),
            spec,
            next_job: 0,
            next_task: 0,
            clock_us: 0.0,
            interarrival_us,
        }
    }

    /// The expected job size under the size distribution below (~83 tasks,
    /// matching 150k tasks / 1.8k jobs).
    fn mean_job_size() -> f64 {
        83.0
    }

    /// Samples the number of tasks in a job: mostly small jobs, with 1.2 %
    /// above 1,000 tasks and a maximum above 20,000 (§4.3).
    fn sample_job_size(rng: &mut XorShift64) -> usize {
        let u = rng.unit_f64();
        if u < 0.55 {
            // Small interactive jobs.
            1 + rng.below(9) as usize
        } else if u < 0.92 {
            // Medium batch jobs.
            10 + rng.below(190) as usize
        } else if u < 0.988 {
            // Large batch jobs.
            200 + rng.below(800) as usize
        } else {
            // The >1,000-task tail (1.2 % of jobs), up to >20,000.
            bounded_pareto(rng, 1.05, 1_000.0, 22_000.0) as usize
        }
    }

    /// Samples a batch task duration in µs (after speedup).
    fn sample_duration_us(&mut self) -> Time {
        let s = log_normal(
            &mut self.rng,
            self.spec.median_task_duration_s,
            self.spec.duration_sigma,
        )
        .clamp(1.0, 30.0 * 86_400.0);
        (s * 1e6 / self.spec.speedup) as Time
    }

    /// Estimates a task's input bytes from its runtime: longer tasks read
    /// more data, log-normal around ~64 MB/s of runtime [8].
    fn sample_input_bytes(&mut self, duration_us: Time) -> u64 {
        let dur_s = (duration_us as f64 / 1e6) * self.spec.speedup;
        let mb = (dur_s * uniform(&mut self.rng, 16.0, 128.0)).clamp(64.0, 512_000.0);
        (mb * 1e6) as u64
    }

    /// Produces the next job arrival.
    pub fn next_arrival(&mut self, state: &mut ClusterState) -> JobArrival {
        self.clock_us += exponential(&mut self.rng, self.interarrival_us);
        let time = self.clock_us as Time;
        self.generate_job_at(time, state)
    }

    /// Generates a job arriving at `time`, registering its input blocks in
    /// the cluster's block store.
    pub fn generate_job_at(&mut self, time: Time, state: &mut ClusterState) -> JobArrival {
        if let Some(fixed) = self.spec.fixed {
            return self.generate_fixed_job_at(time, fixed);
        }
        let is_service = self.rng.unit_f64() < self.spec.service_job_fraction;
        let (class, priority) = if is_service {
            (JobClass::Service, 9)
        } else {
            (JobClass::Batch, 2)
        };
        let job_id = self.next_job;
        self.next_job += 1;
        let size =
            ((Self::sample_job_size(&mut self.rng) as f64 * self.spec.job_size_scale).round()
                as usize)
                .max(1);
        let mut job = Job::new(job_id, class, priority, time);
        let mut tasks = Vec::with_capacity(size);
        // Sorted so seeded runs pick identical block holders across
        // processes (HashMap iteration order is per-process random).
        let mut machine_ids: Vec<u64> = state.machines.keys().copied().collect();
        machine_ids.sort_unstable();
        for _ in 0..size {
            let id = self.next_task;
            self.next_task += 1;
            let duration = if is_service {
                Time::MAX
            } else {
                self.sample_duration_us()
            };
            let mut t = Task::new(id, job_id, time, duration);
            t.request = ResourceVector::new(
                (uniform(&mut self.rng, 100.0, 2_000.0)) as u64,
                (uniform(&mut self.rng, 256.0, 8_192.0)) as u64,
                (uniform(&mut self.rng, 10.0, 1_000.0)) as u64,
            );
            if !is_service && !machine_ids.is_empty() {
                t.input_bytes = self.sample_input_bytes(duration);
                let n_blocks =
                    (t.input_bytes / firmament_cluster::blocks::BLOCK_BYTES).clamp(1, 24);
                for _ in 0..n_blocks {
                    let mut holders = Vec::with_capacity(3);
                    for _ in 0..3 {
                        let m = machine_ids[self.rng.below(machine_ids.len() as u64) as usize];
                        if !holders.contains(&m) {
                            holders.push(m);
                        }
                    }
                    t.input_blocks.push(state.blocks.place_block(holders));
                }
            }
            job.tasks.push(id);
            tasks.push(t);
        }
        JobArrival { time, job, tasks }
    }

    /// Generates one fixed-size, fixed-duration job (Fig 17 workload).
    fn generate_fixed_job_at(&mut self, time: Time, fixed: FixedWorkload) -> JobArrival {
        let job_id = self.next_job;
        self.next_job += 1;
        let mut job = Job::new(job_id, JobClass::Batch, 2, time);
        let mut tasks = Vec::with_capacity(fixed.tasks_per_job);
        for _ in 0..fixed.tasks_per_job {
            let id = self.next_task;
            self.next_task += 1;
            let t = Task::new(id, job_id, time, (fixed.duration_s * 1e6) as Time);
            job.tasks.push(id);
            tasks.push(t);
        }
        JobArrival { time, job, tasks }
    }

    /// Generates one identical-task burst job arriving at `time`: `tasks`
    /// tasks of `duration_us` each, no inputs, no locality. The workload
    /// knob for scale sweeps (the `scale_regression` testbed) that want
    /// the `k·m`-burst spreading shape on top of — or instead of — the
    /// Google-like background trace, reproducibly across shapes and
    /// policies.
    pub fn burst_job_at(&mut self, time: Time, tasks: usize, duration_us: Time) -> JobArrival {
        let job_id = self.next_job;
        self.next_job += 1;
        let mut job = Job::new(job_id, JobClass::Batch, 2, time);
        let mut ts = Vec::with_capacity(tasks);
        for _ in 0..tasks {
            let id = self.next_task;
            self.next_task += 1;
            let t = Task::new(id, job_id, time, duration_us);
            job.tasks.push(id);
            ts.push(t);
        }
        JobArrival {
            time,
            job,
            tasks: ts,
        }
    }

    /// Generates the initial resident workload that brings the cluster to
    /// the target utilization at t = 0, with residual durations. Returns
    /// the arrivals (all at time 0).
    pub fn warmup(&mut self, state: &mut ClusterState) -> Vec<JobArrival> {
        let slots = state.total_slots() as f64;
        let target = (slots * self.spec.target_utilization) as usize;
        let mut arrivals = Vec::new();
        let mut total = 0usize;
        while total < target {
            let a = self.generate_job_at(0, state);
            total += a.tasks.len();
            arrivals.push(a);
        }
        arrivals
    }

    /// The spec this generator was built with.
    pub fn spec(&self) -> &TraceSpec {
        &self.spec
    }

    /// Mean job interarrival time in µs (after speedup).
    pub fn interarrival_us(&self) -> f64 {
        self.interarrival_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmament_cluster::TopologySpec;

    fn state(machines: usize) -> ClusterState {
        ClusterState::with_topology(&TopologySpec {
            machines,
            machines_per_rack: 40,
            slots_per_machine: 12,
        })
    }

    #[test]
    fn job_size_distribution_has_expected_tail() {
        let mut rng = XorShift64::new(1);
        let n = 50_000;
        let sizes: Vec<usize> = (0..n)
            .map(|_| GoogleTraceGenerator::sample_job_size(&mut rng))
            .collect();
        let over_1000 = sizes.iter().filter(|&&s| s > 1_000).count() as f64 / n as f64;
        assert!(
            (0.005..0.02).contains(&over_1000),
            "P(>1000 tasks) = {over_1000}, paper says 1.2%"
        );
        assert!(
            sizes.iter().any(|&s| s > 20_000),
            "some jobs must exceed 20,000 tasks"
        );
        let mean = sizes.iter().sum::<usize>() as f64 / n as f64;
        assert!(
            (40.0..160.0).contains(&mean),
            "mean job size {mean} should be near 83"
        );
    }

    #[test]
    fn warmup_reaches_target_utilization() {
        let mut s = state(100);
        let mut generator = GoogleTraceGenerator::new(TraceSpec {
            machines: 100,
            target_utilization: 0.5,
            seed: 3,
            ..TraceSpec::default()
        });
        let arrivals = generator.warmup(&mut s);
        let tasks: usize = arrivals.iter().map(|a| a.tasks.len()).sum();
        let slots = s.total_slots() as usize;
        assert!(tasks >= slots / 2, "{tasks} tasks for {slots} slots");
        assert!(tasks < slots, "warmup must not oversubscribe ({tasks})");
    }

    #[test]
    fn speedup_shrinks_durations_and_interarrivals() {
        let mut s1 = state(50);
        let mut s2 = state(50);
        let g1 = GoogleTraceGenerator::new(TraceSpec {
            machines: 50,
            speedup: 1.0,
            seed: 9,
            ..TraceSpec::default()
        });
        let g200 = GoogleTraceGenerator::new(TraceSpec {
            machines: 50,
            speedup: 200.0,
            seed: 9,
            ..TraceSpec::default()
        });
        assert!((g1.interarrival_us() / g200.interarrival_us() - 200.0).abs() < 1.0);
        let mut g1 = g1;
        let mut g200 = g200;
        let a1 = g1.generate_job_at(0, &mut s1);
        let a200 = g200.generate_job_at(0, &mut s2);
        // Same seed → same structure; durations scale by 200.
        let d1: Vec<_> = a1.tasks.iter().map(|t| t.duration).collect();
        let d200: Vec<_> = a200.tasks.iter().map(|t| t.duration).collect();
        assert_eq!(d1.len(), d200.len());
        for (x, y) in d1.iter().zip(&d200) {
            if *x != Time::MAX {
                let ratio = *x as f64 / (*y).max(1) as f64;
                assert!((150.0..260.0).contains(&ratio), "ratio {ratio}");
            }
        }
    }

    #[test]
    fn service_jobs_never_finish() {
        let mut s = state(50);
        let mut g = GoogleTraceGenerator::new(TraceSpec {
            machines: 50,
            service_job_fraction: 1.0,
            seed: 5,
            ..TraceSpec::default()
        });
        let a = g.generate_job_at(0, &mut s);
        assert_eq!(a.job.class, JobClass::Service);
        assert!(a.tasks.iter().all(|t| t.duration == Time::MAX));
    }

    #[test]
    fn batch_tasks_have_inputs_with_replicas() {
        let mut s = state(50);
        let mut g = GoogleTraceGenerator::new(TraceSpec {
            machines: 50,
            service_job_fraction: 0.0,
            seed: 6,
            ..TraceSpec::default()
        });
        let a = g.generate_job_at(0, &mut s);
        for t in &a.tasks {
            assert!(!t.input_blocks.is_empty());
            assert!(t.input_bytes > 0);
            for b in &t.input_blocks {
                assert!(!s.blocks.holders(*b).is_empty());
            }
        }
    }

    #[test]
    fn burst_jobs_are_uniform_and_inputless() {
        let mut g = GoogleTraceGenerator::new(TraceSpec {
            machines: 10,
            seed: 13,
            ..TraceSpec::default()
        });
        let a = g.burst_job_at(5, 24, 60_000_000);
        assert_eq!(a.tasks.len(), 24);
        assert_eq!(a.time, 5);
        assert!(a
            .tasks
            .iter()
            .all(|t| t.duration == 60_000_000 && t.input_blocks.is_empty()));
        // Ids keep flowing from the shared counters.
        let b = g.burst_job_at(9, 2, 1_000_000);
        assert!(b.job.id > a.job.id);
        assert!(b.tasks[0].id >= 24);
    }

    #[test]
    fn arrivals_are_monotone_in_time() {
        let mut s = state(20);
        let mut g = GoogleTraceGenerator::new(TraceSpec {
            machines: 20,
            seed: 11,
            ..TraceSpec::default()
        });
        let mut last = 0;
        for _ in 0..20 {
            let a = g.next_arrival(&mut s);
            assert!(a.time >= last);
            last = a.time;
        }
    }
}
