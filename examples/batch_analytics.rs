//! Batch analytics with data locality: the Quincy policy.
//!
//! Reproduces the paper's motivating scenario: batch jobs reading
//! HDFS-style replicated inputs, scheduled with locality preference arcs.
//! Shows how the preference threshold (Fig 15) trades graph size against
//! input data locality.
//!
//! Run with: `cargo run --release --example batch_analytics`

use firmament::cluster::{ClusterEvent, ClusterState, Job, JobClass, Task, TopologySpec};
use firmament::core::{extract_placements, Firmament, Placement};
use firmament::policies::{QuincyConfig, QuincyCostModel};

fn run(threshold: f64) -> (usize, f64) {
    let mut state = ClusterState::with_topology(&TopologySpec {
        machines: 60,
        machines_per_rack: 20,
        slots_per_machine: 4,
    });
    let cfg = QuincyConfig {
        machine_pref_threshold: threshold,
        rack_pref_threshold: threshold,
        max_prefs_per_task: 32,
        ..QuincyConfig::default()
    };
    let mut scheduler = Firmament::new(QuincyCostModel::new(cfg));
    let mut machines: Vec<_> = state.machines.values().cloned().collect();
    machines.sort_by_key(|m| m.id);
    for m in machines {
        scheduler
            .handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
            .expect("register machine");
    }

    // 40 analytics tasks, each reading three 128 MiB blocks.
    let job = Job::new(0, JobClass::Batch, 2, 0);
    let mut machine_ids: Vec<u64> = state.machines.keys().copied().collect();
    machine_ids.sort_unstable();
    let mut tasks = Vec::new();
    for i in 0..40u64 {
        let mut t = Task::new(i, 0, 0, 30_000_000);
        t.input_bytes = 3 * 128 * 1024 * 1024;
        for b in 0..3u64 {
            let holders: Vec<u64> = (0..3)
                .map(|r| machine_ids[((i * 7 + b * 13 + r * 17) % 60) as usize])
                .collect();
            t.input_blocks.push(state.blocks.place_block(holders));
        }
        tasks.push(t);
    }
    let ev = ClusterEvent::JobSubmitted { job, tasks };
    state.apply(&ev);
    scheduler.handle_event(&state, &ev).expect("submit");

    let outcome = scheduler.schedule(&state).expect("round");
    let placements = extract_placements(scheduler.graph());
    let mut local = 0.0f64;
    let mut total = 0.0f64;
    for (task, p) in &placements {
        if let (Placement::OnMachine(m), Some(t)) = (p, state.tasks.get(task)) {
            total += t.input_bytes as f64;
            local += t.input_bytes as f64 * state.blocks.machine_locality(&t.input_blocks, *m);
        }
    }
    let arcs = scheduler.graph().arc_count();
    let _ = outcome;
    (arcs, if total > 0.0 { local / total } else { 0.0 })
}

fn main() {
    println!("threshold  graph_arcs  machine_local_input");
    for threshold in [0.5, 0.14, 0.02] {
        let (arcs, locality) = run(threshold);
        println!("{threshold:>9}  {arcs:>10}  {:>18.1}%", locality * 100.0);
    }
    println!("\nLower thresholds add preference arcs and raise data locality —");
    println!("the Fig 15 trade-off Firmament's fast solver makes affordable.");
}
