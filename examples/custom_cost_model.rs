//! Writing a scheduling policy in ~40 lines: a custom `CostModel`.
//!
//! The policy here is "rack-affinity batch packing": each job is pinned to
//! a preferred rack (by job id), tasks schedule anywhere but pay a premium
//! off-rack, and jobs declare a gang minimum of two tasks. Everything the
//! policy needs — aggregates, arcs, costs, gang floors — is *declared*;
//! the `FlowGraphManager` does all the graph work.
//!
//! Run with: `cargo run --example custom_cost_model`

use firmament::cluster::{ClusterEvent, ClusterState, Job, JobClass, Machine, Task, TopologySpec};
use firmament::core::{Firmament, SchedulingAction};
use firmament::policies::{AggregateId, ArcSpec, ArcTarget, CostModel};

/// Rack-affinity packing: jobs prefer "their" rack, gang-schedule ≥ 2.
struct RackAffinity {
    racks: u64,
}

impl CostModel for RackAffinity {
    fn name(&self) -> &'static str {
        "rack-affinity"
    }

    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        // Waiting gets expensive fast: full rescheduling should drain the
        // queue within a few rounds.
        50_000 + 500 * (state.now.saturating_sub(task.submit_time) / 1_000_000) as i64
    }

    fn task_arcs(&self, _state: &ClusterState, task: &Task) -> Vec<(ArcTarget, i64)> {
        // One aggregate per rack; the job's preferred rack is cheap, every
        // other rack pays an off-rack premium.
        let preferred = task.job % self.racks;
        (0..self.racks)
            .map(|rack| {
                let premium = if rack == preferred { 0 } else { 100 };
                (ArcTarget::Aggregate(rack), 1 + premium)
            })
            .collect()
    }

    fn aggregate_arc(
        &self,
        _state: &ClusterState,
        aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcSpec> {
        // A rack aggregate reaches exactly its machines; packing (not
        // spreading): already-busy machines are slightly cheaper.
        (machine.rack as u64 == aggregate).then_some(ArcSpec {
            capacity: machine.slots as i64,
            cost: 10 - (machine.running.len() as i64).min(9),
        })
    }

    fn job_gang_minimum(&self, _state: &ClusterState, _job: &Job) -> i64 {
        2
    }
}

fn main() {
    let mut state = ClusterState::with_topology(&TopologySpec {
        machines: 12,
        machines_per_rack: 4,
        slots_per_machine: 2,
    });
    let mut scheduler = Firmament::new(RackAffinity { racks: 3 });
    let mut machines: Vec<_> = state.machines.values().cloned().collect();
    machines.sort_by_key(|m| m.id);
    for m in machines {
        scheduler
            .handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
            .expect("register machine");
    }

    // Three jobs, each of which should land in its own preferred rack.
    for job_id in 0..3u64 {
        let job = Job::new(job_id, JobClass::Batch, 0, state.now);
        let tasks: Vec<Task> = (0..4)
            .map(|i| Task::new(job_id * 100 + i, job_id, state.now, 30_000_000))
            .collect();
        let ev = ClusterEvent::JobSubmitted { job, tasks };
        state.apply(&ev);
        scheduler.handle_event(&state, &ev).expect("submit");
    }

    let outcome = scheduler.schedule(&state).expect("scheduling round");
    println!(
        "{}: placed {} of {} tasks (objective {})",
        scheduler.model().name(),
        outcome.placed_tasks,
        outcome.placed_tasks + outcome.unscheduled_tasks,
        outcome.objective,
    );
    let mut in_preferred = 0;
    let mut total = 0;
    for action in &outcome.actions {
        if let SchedulingAction::Place { task, machine } = action {
            let job = state.tasks[task].job;
            let rack = state.machines[machine].rack as u64;
            total += 1;
            if rack == job % 3 {
                in_preferred += 1;
            }
            println!("  task {task} (job {job}) → machine {machine} (rack {rack})");
        }
    }
    println!("{in_preferred}/{total} placements in the job's preferred rack");
    assert_eq!(outcome.placed_tasks, 12, "capacity exists for everything");
    assert_eq!(in_preferred, total, "rack affinity should be perfect here");
}
