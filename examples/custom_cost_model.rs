//! Writing a scheduling policy in ~50 lines: a custom *hierarchical*
//! `CostModel`.
//!
//! The policy is "rack-affinity batch packing", expressed as a 3-level
//! equivalence-class hierarchy: each task gets a cheap arc to its job's
//! preferred rack aggregate and an expensive fallback arc to the cluster
//! root; the root fans out to every rack via EC→EC arcs
//! (`aggregate_to_aggregate`), and each rack aggregate reaches exactly its
//! machines with a packing cost. Jobs declare a gang minimum of two tasks.
//! Everything — the two aggregator levels, capacities, costs, gang floors
//! — is *declared*; the `FlowGraphManager` materializes the hierarchy,
//! detects cycles, propagates capacities, and keeps costs fresh.
//!
//! Run with: `cargo run --example custom_cost_model`

use firmament::cluster::{ClusterEvent, ClusterState, Job, JobClass, Machine, Task, TopologySpec};
use firmament::core::{Firmament, SchedulingAction};
use firmament::policies::{rack_capacities, AggregateId, ArcBundle, ArcTarget, CostModel};

/// The cluster root; rack `r` is aggregate `1 + r`.
const ROOT: AggregateId = 0;

/// Rack-affinity packing over a cluster → rack → machine hierarchy.
struct RackAffinity {
    racks: u64,
}

impl RackAffinity {
    fn preferred(&self, job: u64) -> AggregateId {
        1 + job % self.racks
    }
}

impl CostModel for RackAffinity {
    fn name(&self) -> &'static str {
        "rack-affinity-hierarchy"
    }

    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        // Waiting gets expensive fast: full rescheduling should drain the
        // queue within a few rounds.
        50_000 + 500 * (state.now.saturating_sub(task.submit_time) / 1_000_000) as i64
    }

    fn task_arcs(&self, _state: &ClusterState, task: &Task) -> Vec<(ArcTarget, ArcBundle)> {
        // Cheap entry at the job's preferred rack; off-rack placements pay
        // a premium through the cluster root.
        vec![
            (
                ArcTarget::Aggregate(self.preferred(task.job)),
                ArcBundle::cost(1),
            ),
            (ArcTarget::Aggregate(ROOT), ArcBundle::cost(101)),
        ]
    }

    /// The EC→EC level: the root reaches every rack with the rack's real
    /// slot capacity, so the fallback path can never oversubscribe a rack.
    fn aggregate_to_aggregate(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
    ) -> Vec<(AggregateId, ArcBundle)> {
        if aggregate != ROOT {
            return Vec::new(); // racks are hierarchy leaves
        }
        rack_capacities(state)
            .into_iter()
            .map(|(rack, slots, _)| (1 + rack as u64, ArcBundle::single(slots, 0)))
            .collect()
    }

    fn aggregate_arc(
        &self,
        _state: &ClusterState,
        aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcBundle> {
        // A rack aggregate reaches exactly its machines; packing (not
        // spreading): already-busy machines are slightly cheaper. The root
        // touches no machine directly.
        (aggregate == 1 + machine.rack as u64).then(|| {
            ArcBundle::single(
                machine.slots as i64,
                10 - (machine.running.len() as i64).min(9),
            )
        })
    }

    fn job_gang_minimum(&self, _state: &ClusterState, _job: &Job) -> i64 {
        2
    }
}

fn main() {
    let mut state = ClusterState::with_topology(&TopologySpec {
        machines: 12,
        machines_per_rack: 4,
        slots_per_machine: 2,
    });
    let mut scheduler = Firmament::new(RackAffinity { racks: 3 });
    let mut machines: Vec<_> = state.machines.values().cloned().collect();
    machines.sort_by_key(|m| m.id);
    for m in machines {
        scheduler
            .handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
            .expect("register machine");
    }

    // Three jobs, each of which should land in its own preferred rack.
    for job_id in 0..3u64 {
        let job = Job::new(job_id, JobClass::Batch, 0, state.now);
        let tasks: Vec<Task> = (0..4)
            .map(|i| Task::new(job_id * 100 + i, job_id, state.now, 30_000_000))
            .collect();
        let ev = ClusterEvent::JobSubmitted { job, tasks };
        state.apply(&ev);
        scheduler.handle_event(&state, &ev).expect("submit");
    }

    let outcome = scheduler.schedule(&state).expect("scheduling round");
    println!(
        "{}: placed {} of {} tasks (objective {})",
        scheduler.model().name(),
        outcome.placed_tasks,
        outcome.placed_tasks + outcome.unscheduled_tasks,
        outcome.objective,
    );
    let mut in_preferred = 0;
    let mut total = 0;
    for action in &outcome.actions {
        if let SchedulingAction::Place { task, machine } = action {
            let job = state.tasks[task].job;
            let rack = state.machines[machine].rack as u64;
            total += 1;
            if rack == job % 3 {
                in_preferred += 1;
            }
            println!("  task {task} (job {job}) → machine {machine} (rack {rack})");
        }
    }
    println!("{in_preferred}/{total} placements in the job's preferred rack");
    assert_eq!(outcome.placed_tasks, 12, "capacity exists for everything");
    assert_eq!(in_preferred, total, "rack affinity should be perfect here");
    // The hierarchy did the routing: the root and rack aggregates exist,
    // and the graph holds EC→EC arcs from the root to all three racks.
    let mgr = scheduler.manager();
    assert!(mgr.aggregate_node(ROOT).is_some());
    for rack in 0..3u64 {
        assert!(
            mgr.aggregate_to_aggregate_arc(ROOT, 1 + rack).is_some(),
            "root → rack {rack} EC→EC arc"
        );
    }
}
