//! Network-aware scheduling on the simulated 40-machine testbed (Fig 19).
//!
//! Short batch tasks read 4–8 GB inputs over a shared 10 Gbps network with
//! background iperf/nginx traffic. Compares Firmament's network-aware
//! policy against SwarmKit-style load spreading and Sparrow-style random
//! placement.
//!
//! Run with: `cargo run --release --example network_aware`

use firmament::baselines::{SparrowScheduler, SwarmKitScheduler};
use firmament::sim::{run_testbed, TestbedConfig, TestbedScheduler};

fn main() {
    let config = TestbedConfig {
        tasks: 120,
        background: true,
        seed: 7,
        ..TestbedConfig::default()
    };
    println!("scheduler   p50      p80      p99   (task response, seconds)");
    for (name, sched) in [
        ("idle", TestbedScheduler::Idle),
        ("firmament", TestbedScheduler::Firmament),
        (
            "swarmkit",
            TestbedScheduler::Baseline(Box::new(SwarmKitScheduler)),
        ),
        (
            "sparrow",
            TestbedScheduler::Baseline(Box::new(SparrowScheduler::new(7))),
        ),
    ] {
        let mut samples = run_testbed(&config, sched);
        println!(
            "{name:<10} {:>6.2}s {:>7.2}s {:>7.2}s",
            samples.percentile(50.0),
            samples.percentile(80.0),
            samples.percentile(99.0),
        );
    }
    println!("\nFirmament avoids overloaded links, cutting the tail (paper: 3.4-6.2x at p99).");
}
